#include "trace/sink.hpp"

#include <cstdio>
#include <map>
#include <utility>

#include "core/table.hpp"

namespace nodebench::trace {

namespace {

/// Minimal JSON string escape — scope labels and counter names only ever
/// carry printable ASCII, but quotes/backslashes must never corrupt the
/// document.
std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with fixed sub-ns resolution — the same %.3f convention
/// the mpisim timeline tracer uses, so outputs are byte-stable.
std::string us3(Duration d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", d.us());
  return buf;
}

/// Display name of an event's actor lane ("rank 0", "device 2", ...).
std::string actorLabel(ActorKind kind, int actor) {
  return std::string(actorKindName(kind)) + " " + std::to_string(actor);
}

}  // namespace

void ChromeJsonSink::scope(const TraceBuffer& buffer) {
  const int pid = nextPid_++;
  const std::string pidStr = std::to_string(pid);
  const auto metaEvent = [&](const std::string& name, const std::string& tid,
                             const std::string& value) {
    out_ += "{\"name\":\"" + name + "\",\"ph\":\"M\",\"pid\":" + pidStr +
            tid + ",\"args\":{\"name\":\"" + jsonEscape(value) + "\"}},\n";
  };
  metaEvent("process_name", "", buffer.label());

  // One Chrome thread per (actorKind, actor) lane, numbered in sorted
  // order so tids are deterministic regardless of event order.
  std::map<std::pair<ActorKind, int>, int> tids;
  for (const Event& e : buffer.events()) {
    tids.emplace(std::pair{e.actorKind, e.actor}, 0);
  }
  int nextTid = 0;
  for (auto& [key, tid] : tids) {
    tid = nextTid++;
    metaEvent("thread_name", ",\"tid\":" + std::to_string(tid),
              actorLabel(key.first, key.second));
  }

  for (const Event& e : buffer.events()) {
    out_ += "{\"name\":\"" + std::string(categoryName(e.category)) +
            "\",\"cat\":\"" + std::string(actorKindName(e.actorKind)) +
            "\",\"ph\":\"X\",\"pid\":" + pidStr + ",\"tid\":" +
            std::to_string(tids.at({e.actorKind, e.actor})) +
            ",\"ts\":" + us3(e.begin) + ",\"dur\":" + us3(e.duration) +
            ",\"args\":{\"peer\":" + std::to_string(e.peer) +
            ",\"bytes\":" + std::to_string(e.bytes) + "}},\n";
  }
}

std::string ChromeJsonSink::finish() {
  std::string doc = "{\"traceEvents\":[\n";
  if (!out_.empty()) {
    out_.pop_back();  // trailing newline
    out_.pop_back();  // trailing comma
    doc += out_;
    doc += '\n';
  }
  doc += "],\"displayTimeUnit\":\"ms\"}\n";
  out_.clear();
  nextPid_ = 0;
  return doc;
}

void MetricsSink::scope(const TraceBuffer& buffer) {
  const std::string scopeName =
      buffer.occurrence() == 0
          ? buffer.label()
          : buffer.label() + " #" + std::to_string(buffer.occurrence() + 1);

  // Per-category totals, in Category declaration order.
  std::map<Category, std::pair<std::uint64_t, Duration>> byCategory;
  for (const Event& e : buffer.events()) {
    auto& [n, busy] = byCategory[e.category];
    ++n;
    busy = busy + e.duration;
  }
  for (const auto& [category, total] : byCategory) {
    eventRows_.push_back({scopeName, std::string(categoryName(category)),
                          std::to_string(total.first),
                          formatFixed(total.second.us(), 3)});
  }
  for (const auto& [name, value] : buffer.counters()) {
    counterRows_.push_back({scopeName, name, std::to_string(value)});
  }
  for (const auto& [name, h] : buffer.histograms()) {
    histogramRows_.push_back(
        {scopeName, name, std::to_string(h.count()), formatFixed(h.min(), 3),
         formatFixed(h.mean(), 3), "~" + formatFixed(h.quantile(0.5), 3),
         "~" + formatFixed(h.quantile(0.99), 3), formatFixed(h.max(), 3)});
  }
}

std::string MetricsSink::finish() {
  std::string doc = "\nTrace metrics appendix\n";
  if (!eventRows_.empty()) {
    Table t({"Scope", "Category", "Events", "Busy (us)"});
    t.setTitle("Events by scope and category");
    for (auto& row : eventRows_) {
      t.addRow(std::move(row));
    }
    doc += '\n' + t.renderAscii();
  }
  if (!counterRows_.empty()) {
    Table t({"Scope", "Counter", "Value"});
    t.setTitle("Counters");
    for (auto& row : counterRows_) {
      t.addRow(std::move(row));
    }
    doc += '\n' + t.renderAscii();
  }
  if (!histogramRows_.empty()) {
    Table t({"Scope", "Histogram", "Count", "Min", "Mean", "P50", "P99",
             "Max"});
    t.setTitle("Histograms (quantiles are bucket approximations)");
    for (auto& row : histogramRows_) {
      t.addRow(std::move(row));
    }
    doc += '\n' + t.renderAscii();
  }
  if (eventRows_.empty() && counterRows_.empty() && histogramRows_.empty()) {
    doc += "(nothing recorded)\n";
  }
  eventRows_.clear();
  counterRows_.clear();
  histogramRows_.clear();
  return doc;
}

void exportSession(const Session& session, TraceSink& sink) {
  for (const TraceBuffer* buffer : session.ordered()) {
    sink.scope(*buffer);
  }
}

std::string chromeJson(const Session& session) {
  ChromeJsonSink sink;
  exportSession(session, sink);
  return sink.finish();
}

std::string metricsSummary(const Session& session) {
  MetricsSink sink;
  exportSession(session, sink);
  return sink.finish();
}

}  // namespace nodebench::trace
