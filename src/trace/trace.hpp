#pragma once
/// \file trace.hpp
/// \brief Zero-overhead-when-disabled event tracing and counters for the
/// simulation substrate.
///
/// The layer makes every simulated microsecond auditable: the transport,
/// GPU runtime, memory model and scheduler record virtual-time events
/// (send/recv, loss/retransmit, kernel launch/sync, memcpy, link
/// occupancy, cache hit/miss), named counters and value histograms into
/// the *current* `TraceBuffer` — a thread-local installed by a `Scope`.
///
/// Cost model (see DESIGN.md §9):
///  - no `Session` active: `Scope` construction is one relaxed atomic
///    load and every instrumentation site is one null-pointer check on a
///    captured member — verified a no-op by the simcore gbench;
///  - `Session` active: each `Scope` owns a private buffer, so recording
///    never contends across parallel harness cells.
///
/// Determinism contract: buffers are exported sorted by (label,
/// occurrence). Scope labels are unique within one parallel fan-out (the
/// harness labels cells "<machine>/<cell>"), and same-label scopes only
/// repeat sequentially, so the export is byte-identical at any `--jobs`
/// value — the property the golden-trace determinism suite locks in.
///
/// Capture-at-construction rule: the virtual-time rank threads are *not*
/// the harness worker threads, so model objects (MpiWorld, GpuRuntime,
/// HostMemoryModel) capture `current()` in their constructor — which runs
/// on the scope's thread — and record through the captured pointer. The
/// scheduler's mutex/cv handoffs sequence all rank-thread writes.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench::trace {

/// What a recorded interval measures. The first group are rank-side MPI
/// phases, then transport-level loss recovery, GPU runtime operations,
/// channel/NIC busy intervals and memory-system classification.
enum class Category : std::uint8_t {
  Send,           ///< Blocking send / isend post, rank-side.
  Recv,           ///< Blocking recv / irecv completion, rank-side.
  Compute,        ///< Modelled local computation, rank-side.
  Loss,           ///< One lost message copy; duration = backoff until resend.
  Retransmit,     ///< The resend of a lost copy (instant).
  KernelLaunch,   ///< Kernel occupancy on its stream's device.
  KernelSync,     ///< Host blocked in stream/device synchronize.
  Memcpy,         ///< Async copy occupancy on its stream's device.
  LinkOccupancy,  ///< Transfer channel / NIC busy interval.
  CacheHit,       ///< Working set fits in the last-level cache (instant).
  CacheMiss,      ///< Working set spills the last-level cache (instant).
  JournalAppend,  ///< Campaign journal: one record persisted (instant).
  JournalReplay,  ///< Campaign journal: one record replayed on resume.
};

/// Stable lowercase name used in exports ("send", "link busy", ...).
[[nodiscard]] std::string_view categoryName(Category c);

/// What `Event::actor` identifies.
enum class ActorKind : std::uint8_t {
  Rank,    ///< MPI rank index.
  Device,  ///< GPU device index.
  Link,      ///< Directed intra-node channel (src * worldSize + dst).
  Node,      ///< Node index (NIC injection channel, transport recovery).
  Campaign,  ///< The campaign journal lane (actor is always 0).
};

[[nodiscard]] std::string_view actorKindName(ActorKind k);

/// One recorded interval on the virtual timeline. 48 bytes; buffers of
/// these are the raw trace.
struct Event {
  Category category = Category::Send;
  ActorKind actorKind = ActorKind::Rank;
  int actor = 0;              ///< Identity per actorKind.
  int peer = -1;              ///< Peer rank/node/stream; -1 when n/a.
  Duration begin;             ///< Virtual start time.
  Duration duration;          ///< Virtual extent (zero for instants).
  std::uint64_t bytes = 0;    ///< Payload size when meaningful.
};

/// Log2-bucketed value histogram (64 buckets spanning 2^-33 .. 2^31, so
/// any microsecond-scale latency lands in range). Exact count/min/max/
/// mean; quantiles are bucket-resolution approximations reported with a
/// "~" in the metrics summary.
class Histogram {
 public:
  void add(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper edge of the bucket holding the q-quantile sample (clamped to
  /// the observed max). Precondition: 0 <= q <= 1.
  [[nodiscard]] double quantile(double q) const;

 private:
  static constexpr int kBuckets = 64;
  static constexpr int kExponentBias = 32;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Per-scope recording target: an event list plus named counters and
/// histograms. Owned by exactly one `Scope`; never shared between scopes,
/// so recording needs no locks. Virtual-time rank threads may append
/// through a captured pointer — the scheduler's exactly-one-running
/// discipline sequences those writes.
class TraceBuffer {
 public:
  TraceBuffer(std::string label, int occurrence)
      : label_(std::move(label)), occurrence_(occurrence) {}

  [[nodiscard]] const std::string& label() const { return label_; }
  /// How many earlier scopes in the session share this label (sequential
  /// repeats, e.g. `table all` computing Table 5 twice).
  [[nodiscard]] int occurrence() const { return occurrence_; }

  void event(const Event& e) { events_.push_back(e); }
  void count(std::string_view counter, std::uint64_t delta = 1);
  void sample(std::string_view histogram, double value);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::string label_;
  int occurrence_ = 0;
  std::vector<Event> events_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Enables tracing for its lifetime and collects the buffers every
/// `Scope` closes. At most one session is active at a time (process-wide,
/// enforced); the CLI creates one only when `--trace`/`--metrics` is
/// requested, so default runs never pay for instrumentation.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The active session, or nullptr when tracing is disabled.
  [[nodiscard]] static Session* active();

  /// Closed buffers in deterministic (label, occurrence) order —
  /// independent of which worker threads closed them when.
  [[nodiscard]] std::vector<const TraceBuffer*> ordered() const;

 private:
  friend class Scope;

  [[nodiscard]] std::unique_ptr<TraceBuffer> open(std::string label);
  void close(std::unique_ptr<TraceBuffer> buffer);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::map<std::string, int, std::less<>> occurrences_;
};

/// RAII recording scope: while alive (and a session is active), this
/// thread's `current()` points at a fresh buffer labelled `label`;
/// destruction hands the buffer to the session and restores the previous
/// scope (nesting records into the innermost). With no active session the
/// whole object is a no-op.
class Scope {
 public:
  explicit Scope(std::string label);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Null when tracing is disabled (exposed for tests).
  [[nodiscard]] TraceBuffer* buffer() const { return buffer_.get(); }

 private:
  Session* session_ = nullptr;
  TraceBuffer* previous_ = nullptr;
  std::unique_ptr<TraceBuffer> buffer_;
};

/// This thread's recording target, or nullptr when tracing is disabled —
/// the single check every instrumentation site performs (or captures at
/// construction; see the file comment).
[[nodiscard]] TraceBuffer* current();

}  // namespace nodebench::trace
