#pragma once
/// \file sink.hpp
/// \brief Trace exporters: Chrome `trace_event` JSON (loadable in
/// Perfetto / chrome://tracing) and an aggregated metrics summary
/// (counters, per-category event totals, latency histograms) rendered
/// with core::Table for the report appendix.
///
/// A sink visits the session's scope buffers in deterministic (label,
/// occurrence) order — see `Session::ordered()` — so every export is
/// byte-identical across `--jobs` values and across runs.

#include <string>

#include "trace/trace.hpp"

namespace nodebench::trace {

/// Visitor over a session's scopes. `exportSession` drives it in
/// deterministic order; `finish()` returns the rendered document.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once per scope buffer, in (label, occurrence) order.
  virtual void scope(const TraceBuffer& buffer) = 0;

  /// Completes the export and returns the document.
  [[nodiscard]] virtual std::string finish() = 0;
};

/// Chrome `trace_event` JSON: one process per scope (named by its label
/// via "process_name" metadata), one thread per actor ("rank 0",
/// "gpu 1", "link 3", "node 0"), events as complete ("X") slices with
/// microsecond timestamps and {peer, bytes} args.
class ChromeJsonSink final : public TraceSink {
 public:
  void scope(const TraceBuffer& buffer) override;
  [[nodiscard]] std::string finish() override;

 private:
  std::string out_;
  int nextPid_ = 0;
};

/// Aggregated per-benchmark metrics: per-scope event counts and busy
/// time by category, named counters, and histogram summaries (count,
/// min, mean, ~p50, ~p99, max). Scopes with nothing recorded are
/// omitted, so a table stays readable.
class MetricsSink final : public TraceSink {
 public:
  void scope(const TraceBuffer& buffer) override;
  [[nodiscard]] std::string finish() override;

 private:
  std::vector<std::vector<std::string>> eventRows_;
  std::vector<std::vector<std::string>> counterRows_;
  std::vector<std::vector<std::string>> histogramRows_;
};

/// Runs `sink` over every closed scope of `session` in deterministic
/// order (the sink's `finish()` is left to the caller).
void exportSession(const Session& session, TraceSink& sink);

/// Convenience: full Chrome trace JSON document for the session.
[[nodiscard]] std::string chromeJson(const Session& session);

/// Convenience: metrics-appendix text for the session.
[[nodiscard]] std::string metricsSummary(const Session& session);

}  // namespace nodebench::trace
