#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace nodebench::trace {

namespace {

std::atomic<Session*> gActive{nullptr};
thread_local TraceBuffer* tlCurrent = nullptr;

}  // namespace

std::string_view categoryName(Category c) {
  switch (c) {
    case Category::Send: return "send";
    case Category::Recv: return "recv";
    case Category::Compute: return "compute";
    case Category::Loss: return "loss";
    case Category::Retransmit: return "retransmit";
    case Category::KernelLaunch: return "kernel";
    case Category::KernelSync: return "sync";
    case Category::Memcpy: return "memcpy";
    case Category::LinkOccupancy: return "link busy";
    case Category::CacheHit: return "cache hit";
    case Category::CacheMiss: return "cache miss";
    case Category::JournalAppend: return "journal append";
    case Category::JournalReplay: return "journal replay";
  }
  return "?";
}

std::string_view actorKindName(ActorKind k) {
  switch (k) {
    case ActorKind::Rank: return "rank";
    case ActorKind::Device: return "device";
    case ActorKind::Link: return "link";
    case ActorKind::Node: return "node";
    case ActorKind::Campaign: return "campaign";
  }
  return "?";
}

void Histogram::add(double value) {
  ++count_;
  if (count_ == 1) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  int exp = 0;
  if (value > 0.0) {
    (void)std::frexp(value, &exp);  // value in [2^(exp-1), 2^exp)
  }
  const int idx = std::clamp(exp + kExponentBias, 0, kBuckets - 1);
  ++buckets_[static_cast<std::size_t>(idx)];
}

double Histogram::quantile(double q) const {
  NB_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return 0.0;
  }
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) {
      // Bucket i holds [2^(i-bias-1), 2^(i-bias)); report the upper edge.
      return std::min(max_, std::ldexp(1.0, i - kExponentBias));
    }
  }
  return max_;
}

void TraceBuffer::count(std::string_view counter, std::uint64_t delta) {
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void TraceBuffer::sample(std::string_view histogram, double value) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), Histogram{}).first;
  }
  it->second.add(value);
}

Session::Session() {
  Session* expected = nullptr;
  NB_EXPECTS_MSG(gActive.compare_exchange_strong(expected, this),
                 "a trace::Session is already active");
}

Session::~Session() { gActive.store(nullptr); }

Session* Session::active() { return gActive.load(std::memory_order_acquire); }

std::vector<const TraceBuffer*> Session::ordered() const {
  std::unique_lock lock(mu_);
  std::vector<const TraceBuffer*> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    out.push_back(b.get());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceBuffer* a, const TraceBuffer* b) {
              if (a->label() != b->label()) {
                return a->label() < b->label();
              }
              return a->occurrence() < b->occurrence();
            });
  return out;
}

std::unique_ptr<TraceBuffer> Session::open(std::string label) {
  std::unique_lock lock(mu_);
  const int occurrence = occurrences_[label]++;
  return std::make_unique<TraceBuffer>(std::move(label), occurrence);
}

void Session::close(std::unique_ptr<TraceBuffer> buffer) {
  std::unique_lock lock(mu_);
  buffers_.push_back(std::move(buffer));
}

Scope::Scope(std::string label) : session_(Session::active()) {
  if (session_ == nullptr) {
    return;
  }
  buffer_ = session_->open(std::move(label));
  previous_ = tlCurrent;
  tlCurrent = buffer_.get();
}

Scope::~Scope() {
  if (session_ == nullptr) {
    return;
  }
  tlCurrent = previous_;
  session_->close(std::move(buffer_));
}

TraceBuffer* current() { return tlCurrent; }

}  // namespace nodebench::trace
