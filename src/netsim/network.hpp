#pragma once
/// \file network.hpp
/// \brief Inter-node network substrate — the paper's first future-work
/// item ("extend this work to include inter-node measurements ...
/// network contention, node-vs-network capability (e.g. injection
/// bandwidth), network topology").
///
/// Every studied system gets a representative interconnect parameter set
/// (Slingshot-11, EDR InfiniBand, Aries, Omni-Path), and helper
/// measurement functions mirror the OSU methodology across nodes:
/// point-to-point latency/bandwidth plus a neighbour-congestion sweep
/// where several node-local pairs share one NIC.

#include <optional>
#include <vector>

#include "core/stats.hpp"
#include "machines/machine.hpp"
#include "mpisim/world.hpp"

namespace nodebench::netsim {

/// Representative interconnect of a machine, keyed off its real network
/// (values from public system documentation; see network.cpp).
[[nodiscard]] mpisim::InterNodeParams networkFor(const machines::Machine& m);

struct InterNodeConfig {
  ByteCount messageSize = ByteCount::bytes(8);
  int iterations = 200;
  int binaryRuns = 100;
  /// Concurrent communicating pairs per node (congestion sweep knob).
  int pairsPerNode = 1;
  /// Device-resident buffers (GPU machines only).
  bool deviceBuffers = false;
  std::uint64_t seed = 0x4e7e0001u;
  /// Overrides `networkFor(m)` — the faults library supplies a perturbed
  /// copy (packet loss, NIC brownout) through this.
  std::optional<mpisim::InterNodeParams> network;
  /// Virtual-time watchdog for the simulated run; unset leaves the
  /// scheduler's default (disabled).
  std::optional<Duration> watchdog;
};

struct InterNodeResult {
  ByteCount messageSize;
  int pairsPerNode = 1;
  Summary latencyUs;            ///< One-way ping-pong latency.
  Summary perPairBandwidthGBps; ///< Windowed bandwidth per pair.
  std::uint64_t retransmits = 0;  ///< Lost-and-resent inter-node messages.
};

/// Ping-pong latency between rank 0 on node 0 and rank 1 on node 1, with
/// `pairsPerNode - 1` additional pairs saturating the same NICs during a
/// concurrent windowed stream (contention shows up in bandwidth, not in
/// the idle-network latency probe when pairsPerNode == 1).
[[nodiscard]] InterNodeResult measureInterNode(const machines::Machine& m,
                                               const InterNodeConfig& cfg);

/// Bandwidth-vs-pairs congestion sweep: per-pair and aggregate bandwidth
/// as 1, 2, 4, ... pairs on the same two nodes share the NICs.
[[nodiscard]] std::vector<InterNodeResult> congestionSweep(
    const machines::Machine& m, ByteCount messageSize, int maxPairs,
    const InterNodeConfig& cfg);

}  // namespace nodebench::netsim
