#include "netsim/network.hpp"

#include "core/rng.hpp"
#include "core/strings.hpp"
#include "mpisim/analytic.hpp"
#include "trace/trace.hpp"

namespace nodebench::netsim {

using machines::Machine;
using mpisim::BufferSpace;
using mpisim::Communicator;
using mpisim::InterNodeParams;
using mpisim::MpiWorld;
using mpisim::RankPlacement;
using mpisim::Request;
using namespace nodebench::literals;

InterNodeParams networkFor(const Machine& m) {
  // Representative parameter sets for the interconnect families of the
  // studied systems (per-direction figures from public documentation):
  //  - HPE Slingshot-11 (Frontier, Perlmutter, Polaris, RZVernal, Tioga):
  //    200 Gb/s NICs (25 GB/s), ~2 us end-to-end small-message latency.
  //  - Mellanox EDR InfiniBand dual-rail (Summit, Sierra, Lassen):
  //    2 x 12.5 GB/s, ~1 us latency.
  //  - Cray Aries (Trinity, Theta): ~10 GB/s injection, ~1.3 us.
  //  - EDR InfiniBand single-rail (Sawtooth, Eagle) and Intel Omni-Path
  //    (Manzano): ~12.5 GB/s, ~1.1 us.
  const std::string& accel = m.info.acceleratorModel;
  if (accel == "AMD MI250X" || accel == "NVIDIA A100") {
    return InterNodeParams{"Slingshot-11", 0.80_us, 0.30_us,
                           Bandwidth::gbps(25.0), Bandwidth::gbps(25.0), 16,
                           ByteCount::kib(8)};
  }
  if (!accel.empty()) {  // the Power9 + V100 systems
    return InterNodeParams{"EDR-IB dual-rail", 0.40_us, 0.15_us,
                           Bandwidth::gbps(25.0), Bandwidth::gbps(12.5), 18,
                           ByteCount::kib(8)};
  }
  if (m.info.cpuModel.find("Phi") != std::string::npos) {
    return InterNodeParams{"Aries", 0.55_us, 0.10_us, Bandwidth::gbps(10.2),
                           Bandwidth::gbps(5.25), 16, ByteCount::kib(8)};
  }
  if (m.info.name == "Manzano") {
    return InterNodeParams{"Omni-Path", 0.45_us, 0.12_us,
                           Bandwidth::gbps(12.3), Bandwidth::gbps(12.3), 24,
                           ByteCount::kib(8)};
  }
  return InterNodeParams{"EDR-IB", 0.45_us, 0.15_us, Bandwidth::gbps(12.5),
                         Bandwidth::gbps(12.5), 18, ByteCount::kib(8)};
}

namespace {

/// Builds a two-node world with `pairs` communicating pairs: ranks
/// 2i (node 0) <-> 2i+1 (node 1), each pair on its own core (and GPU on
/// device mode).
MpiWorld makeTwoNodeWorld(const Machine& m, int pairs, bool deviceBuffers,
                          const InterNodeParams& network) {
  NB_EXPECTS(pairs >= 1);
  NB_EXPECTS(pairs <= m.topology.coreCount());
  if (deviceBuffers) {
    NB_EXPECTS_MSG(m.accelerated() && pairs <= m.topology.gpuCount(),
                   "not enough GPUs for the requested pair count");
  }
  std::vector<RankPlacement> placements;
  placements.reserve(2 * pairs);
  for (int p = 0; p < pairs; ++p) {
    for (int node = 0; node < 2; ++node) {
      RankPlacement rp;
      rp.core = topo::CoreId{p};
      rp.node = node;
      if (deviceBuffers) {
        rp.gpu = p;
      }
      placements.push_back(rp);
    }
  }
  return MpiWorld(m, std::move(placements), network);
}

}  // namespace

InterNodeResult measureInterNode(const Machine& m,
                                 const InterNodeConfig& cfg) {
  NB_EXPECTS(cfg.iterations > 0 && cfg.binaryRuns > 0);
  const int pairs = cfg.pairsPerNode;
  const InterNodeParams network =
      cfg.network ? *cfg.network : networkFor(m);
  MpiWorld world = makeTwoNodeWorld(m, pairs, cfg.deviceBuffers, network);
  if (cfg.watchdog) {
    world.setWatchdog(*cfg.watchdog);
  }

  Duration latencyElapsed = Duration::zero();
  std::vector<double> pairBandwidth(pairs, 0.0);
  constexpr int kTag = 11;
  constexpr int kWindow = 32;

  // A single pair with no loss plan, watchdog, or tracing has no channel
  // contention or fault interleaving to simulate: compose both phases in
  // closed form (bit-identical; see mpisim/analytic.hpp). More pairs share
  // NICs, and a watchdog needs the scheduler to raise TimeoutError.
  const bool fastPath = pairs == 1 && !cfg.watchdog &&
                        network.packetLossRate <= 0.0 &&
                        mpisim::analytic::fastPathEligible();
  if (fastPath) {
    const auto composed = mpisim::analytic::interNodePairElapsed(
        m, network, cfg.deviceBuffers, cfg.messageSize, cfg.iterations);
    latencyElapsed = composed.latencyElapsed;
    const double bytes = ByteCount::kib(64).asDouble() * kWindow *
                         (cfg.iterations / 10 + 1);
    pairBandwidth[0] = bytes / composed.streamElapsed.ns();
  } else {
    world.run([&](Communicator& c) {
      const int pair = c.rank() / 2;
      const int peer = c.rank() ^ 1;
      const bool pinger = c.rank() % 2 == 0;
      const BufferSpace space = cfg.deviceBuffers
                                    ? BufferSpace::onDevice(pair)
                                    : BufferSpace::host();
      c.barrier();

      // Phase 1: latency ping-pong on pair 0, others idle (idle-network
      // latency, matching how OSU latency is normally run).
      if (pair == 0) {
        if (pinger) {
          const Duration start = c.now();
          for (int i = 0; i < cfg.iterations; ++i) {
            c.send(peer, kTag, cfg.messageSize, space);
            c.recv(peer, kTag, cfg.messageSize, space);
          }
          latencyElapsed = c.now() - start;
        } else {
          for (int i = 0; i < cfg.iterations; ++i) {
            c.recv(peer, kTag, cfg.messageSize, space);
            c.send(peer, kTag, cfg.messageSize, space);
          }
        }
      }
      c.barrier();

      // Phase 2: all pairs stream concurrently (windowed, osu_bw style);
      // NIC sharing emerges from the node-injection channel.
      const ByteCount streamSize = ByteCount::kib(64);
      const Duration start = c.now();
      for (int it = 0; it < cfg.iterations / 10 + 1; ++it) {
        if (pinger) {
          std::vector<Request> reqs;
          reqs.reserve(kWindow);
          for (int wi = 0; wi < kWindow; ++wi) {
            reqs.push_back(c.isend(peer, kTag + 1, streamSize, space));
          }
          c.waitAll(reqs);
          c.recv(peer, kTag + 2, ByteCount::bytes(4), space);
        } else {
          std::vector<Request> reqs;
          reqs.reserve(kWindow);
          for (int wi = 0; wi < kWindow; ++wi) {
            reqs.push_back(c.irecv(peer, kTag + 1, streamSize, space));
          }
          c.waitAll(reqs);
          c.send(peer, kTag + 2, ByteCount::bytes(4), space);
        }
      }
      if (pinger) {
        const double bytes = streamSize.asDouble() * kWindow *
                             (cfg.iterations / 10 + 1);
        pairBandwidth[pair] = bytes / (c.now() - start).ns();
      }
    });
  }

  const double latencyTruthUs =
      latencyElapsed.us() / (2.0 * cfg.iterations);
  double bwTruth = 0.0;
  for (double bw : pairBandwidth) {
    bwTruth += bw;
  }
  bwTruth /= static_cast<double>(pairs);  // per-pair average

  const NoiseModel noise(m.hostMpi.cv);
  Welford latAcc;
  Welford bwAcc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(cfg.seed + m.seed +
                   0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   static_cast<std::uint64_t>(pairs));
    latAcc.add(latencyTruthUs * noise.sampleFactor(rng));
    bwAcc.add(bwTruth * noise.sampleFactor(rng));
  }
  if (trace::TraceBuffer* tb = trace::current()) {
    tb->count("netsim.internode_runs");
    tb->count("netsim.retransmits", world.retransmitCount());
  }
  return InterNodeResult{cfg.messageSize, pairs, latAcc.summary(),
                         bwAcc.summary(), world.retransmitCount()};
}

std::vector<InterNodeResult> congestionSweep(const Machine& m,
                                             ByteCount messageSize,
                                             int maxPairs,
                                             const InterNodeConfig& cfg) {
  NB_EXPECTS(maxPairs >= 1);
  std::vector<InterNodeResult> out;
  for (int pairs = 1; pairs <= maxPairs; pairs *= 2) {
    InterNodeConfig c = cfg;
    c.messageSize = messageSize;
    c.pairsPerNode = pairs;
    out.push_back(measureInterNode(m, c));
  }
  return out;
}

}  // namespace nodebench::netsim
