#pragma once
/// \file message_rate.hpp
/// \brief OSU multiple-bandwidth / message-rate test (`osu_mbw_mr`):
/// N sender/receiver pairs stream windows concurrently; reports aggregate
/// bandwidth and messages per second. Runs intra-node (pairs on distinct
/// cores) or across two nodes (pairs share each node's NIC, exposing the
/// injection-bandwidth ceiling).

#include <optional>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "machines/machine.hpp"
#include "mpisim/world.hpp"

namespace nodebench::osu {

struct MessageRateConfig {
  int pairs = 4;
  ByteCount messageSize = ByteCount::bytes(8);
  int windowSize = 64;
  int iterations = 10;
  int binaryRuns = 100;
  /// When set, senders sit on node 0 and receivers on node 1 over this
  /// network; otherwise everything is intra-node.
  std::optional<mpisim::InterNodeParams> network;
  std::uint64_t seed = 0x05011a4a7eu;
};

struct MessageRateResult {
  ByteCount messageSize;
  int pairs = 0;
  Summary aggregateBandwidthGBps;
  Summary messagesPerSecondM;  ///< Millions of messages per second.
};

/// Runs osu_mbw_mr on the machine. Preconditions: pairs >= 1 and enough
/// cores (2*pairs intra-node, pairs per node otherwise).
[[nodiscard]] MessageRateResult measureMessageRate(
    const machines::Machine& machine, const MessageRateConfig& config);

}  // namespace nodebench::osu
