#pragma once
/// \file bandwidth.hpp
/// \brief OSU-style point-to-point bandwidth tests (`osu_bw`,
/// `osu_bibw`): windows of non-blocking sends drained per iteration, with
/// reported bandwidth = bytes / wall time. An extension beyond the
/// paper's latency-only selection, using the same mpisim substrate.

#include <vector>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "machines/machine.hpp"
#include "mpisim/world.hpp"

namespace nodebench::osu {

struct BandwidthConfig {
  ByteCount messageSize = ByteCount::kib(64);
  int windowSize = 64;  ///< osu_bw default window
  int iterations = 20;
  int binaryRuns = 100;
  std::uint64_t seed = 0x05011ab301u;
};

struct BandwidthResult {
  ByteCount messageSize;
  Summary bandwidthGBps;
};

class BandwidthBenchmark {
 public:
  /// Unidirectional (osu_bw) or bidirectional (osu_bibw) windowed
  /// bandwidth between two ranks. The machine must outlive this.
  BandwidthBenchmark(const machines::Machine& machine,
                     mpisim::RankPlacement rankA, mpisim::RankPlacement rankB,
                     mpisim::BufferSpace::Kind bufferKind,
                     bool bidirectional = false);

  [[nodiscard]] BandwidthResult measure(const BandwidthConfig& config) const;

  [[nodiscard]] std::vector<BandwidthResult> sweep(
      ByteCount maxSize, const BandwidthConfig& config) const;

  /// Noiseless single-binary bandwidth in GB/s.
  [[nodiscard]] double truthGBps(const BandwidthConfig& config) const;

 private:
  const machines::Machine* machine_;
  mpisim::RankPlacement rankA_;
  mpisim::RankPlacement rankB_;
  mpisim::BufferSpace spaceA_;
  mpisim::BufferSpace spaceB_;
  bool bidirectional_;
};

}  // namespace nodebench::osu
