#include "osu/message_rate.hpp"

namespace nodebench::osu {

using mpisim::Communicator;
using mpisim::MpiWorld;
using mpisim::RankPlacement;
using mpisim::Request;

namespace {

/// Sender ranks are even, receiver ranks odd; pair i = ranks (2i, 2i+1).
std::vector<RankPlacement> placementsFor(const machines::Machine& m,
                                         const MessageRateConfig& cfg) {
  std::vector<RankPlacement> out;
  out.reserve(2 * cfg.pairs);
  const bool interNode = cfg.network.has_value();
  NB_EXPECTS_MSG((interNode ? cfg.pairs : 2 * cfg.pairs) <=
                     m.topology.coreCount(),
                 "not enough cores for the requested pair count");
  for (int p = 0; p < cfg.pairs; ++p) {
    RankPlacement sender;
    RankPlacement receiver;
    if (interNode) {
      sender.core = topo::CoreId{p};
      sender.node = 0;
      receiver.core = topo::CoreId{p};
      receiver.node = 1;
    } else {
      sender.core = topo::CoreId{2 * p};
      receiver.core = topo::CoreId{2 * p + 1};
    }
    out.push_back(sender);
    out.push_back(receiver);
  }
  return out;
}

}  // namespace

MessageRateResult measureMessageRate(const machines::Machine& m,
                                     const MessageRateConfig& cfg) {
  NB_EXPECTS(cfg.pairs >= 1);
  NB_EXPECTS(cfg.windowSize > 0 && cfg.iterations > 0);
  NB_EXPECTS(cfg.binaryRuns > 0);
  NB_EXPECTS(cfg.messageSize.count() > 0);

  MpiWorld world(m, placementsFor(m, cfg), cfg.network);
  constexpr int kTag = 12;
  constexpr int kAckTag = 13;
  Duration elapsed = Duration::zero();

  world.run([&](Communicator& c) {
    const bool sender = c.rank() % 2 == 0;
    const int peer = sender ? c.rank() + 1 : c.rank() - 1;
    c.barrier();
    const Duration start = c.now();
    for (int it = 0; it < cfg.iterations; ++it) {
      std::vector<Request> reqs;
      reqs.reserve(cfg.windowSize);
      for (int w = 0; w < cfg.windowSize; ++w) {
        reqs.push_back(sender ? c.isend(peer, kTag, cfg.messageSize)
                              : c.irecv(peer, kTag, cfg.messageSize));
      }
      c.waitAll(reqs);
      if (sender) {
        c.recv(peer, kAckTag, ByteCount::bytes(4));
      } else {
        c.send(peer, kAckTag, ByteCount::bytes(4));
      }
    }
    c.barrier();
    if (c.rank() == 0) {
      elapsed = c.now() - start;
    }
  });
  NB_ENSURES(elapsed > Duration::zero());

  const double messages = static_cast<double>(cfg.pairs) * cfg.windowSize *
                          cfg.iterations;
  const double bytes = messages * cfg.messageSize.asDouble();
  const double bwTruth = bytes / elapsed.ns();             // GB/s
  const double rateTruth = messages / elapsed.ns() * 1e3;  // M msgs/s

  const NoiseModel noise(m.hostMpi.cv);
  Welford bwAcc;
  Welford rateAcc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(cfg.seed + m.seed +
                   0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   static_cast<std::uint64_t>(cfg.pairs));
    const double f = noise.sampleFactor(rng);
    bwAcc.add(bwTruth * f);
    rateAcc.add(rateTruth * f);
  }
  return MessageRateResult{cfg.messageSize, cfg.pairs, bwAcc.summary(),
                           rateAcc.summary()};
}

}  // namespace nodebench::osu
