#include "osu/collectives.hpp"

namespace nodebench::osu {

using mpisim::Communicator;
using mpisim::MpiWorld;
using mpisim::RankPlacement;

std::string_view collectiveName(Collective c) {
  switch (c) {
    case Collective::Barrier: return "barrier";
    case Collective::Bcast: return "bcast";
    case Collective::Reduce: return "reduce";
    case Collective::Allreduce: return "allreduce";
    case Collective::Allgather: return "allgather";
    case Collective::Alltoall: return "alltoall";
  }
  return "?";
}

Duration collectiveTruth(const machines::Machine& machine,
                         const CollectiveConfig& cfg) {
  NB_EXPECTS(cfg.ranks >= 2);
  NB_EXPECTS(cfg.iterations > 0);
  NB_EXPECTS_MSG(cfg.ranks <= machine.topology.coreCount(),
                 "more ranks than cores");
  std::vector<RankPlacement> placements;
  placements.reserve(cfg.ranks);
  for (int r = 0; r < cfg.ranks; ++r) {
    placements.push_back(RankPlacement{topo::CoreId{r}, std::nullopt});
  }
  MpiWorld world(machine, placements);

  Duration elapsed = Duration::zero();
  world.run([&](Communicator& c) {
    c.barrier();
    const Duration start = c.now();
    for (int i = 0; i < cfg.iterations; ++i) {
      switch (cfg.collective) {
        case Collective::Barrier: c.barrier(); break;
        case Collective::Bcast: c.bcast(0, cfg.messageSize); break;
        case Collective::Reduce: c.reduce(0, cfg.messageSize); break;
        case Collective::Allreduce: c.allreduce(cfg.messageSize); break;
        case Collective::Allgather: c.allgather(cfg.messageSize); break;
        case Collective::Alltoall: c.alltoall(cfg.messageSize); break;
      }
    }
    if (c.rank() == 0) {
      elapsed = c.now() - start;
    }
  });
  NB_ENSURES(elapsed > Duration::zero());
  return elapsed / static_cast<double>(cfg.iterations);
}

CollectiveResult measureCollective(const machines::Machine& machine,
                                   const CollectiveConfig& cfg) {
  NB_EXPECTS(cfg.binaryRuns > 0);
  const Duration truth = collectiveTruth(machine, cfg);
  const NoiseModel noise(machine.hostMpi.cv);
  Welford acc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(cfg.seed + machine.seed +
                   0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   static_cast<std::uint64_t>(cfg.collective) * 131u +
                   cfg.messageSize.count());
    acc.add(noise.apply(truth, rng).us());
  }
  return CollectiveResult{cfg.collective, cfg.messageSize, cfg.ranks,
                          acc.summary()};
}

}  // namespace nodebench::osu
