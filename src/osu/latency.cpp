#include "osu/latency.hpp"

#include "core/samples.hpp"
#include "mpisim/analytic.hpp"
#include "trace/trace.hpp"

namespace nodebench::osu {

using mpisim::BufferSpace;
using mpisim::Communicator;
using mpisim::MpiWorld;
using mpisim::RankPlacement;

LatencyBenchmark::LatencyBenchmark(const machines::Machine& machine,
                                   RankPlacement rankA, RankPlacement rankB,
                                   BufferSpace::Kind bufferKind)
    : machine_(&machine), rankA_(rankA), rankB_(rankB) {
  if (bufferKind == BufferSpace::Kind::Device) {
    NB_EXPECTS_MSG(rankA.gpu.has_value() && rankB.gpu.has_value(),
                   "device-buffer latency needs GPU-bound ranks");
    spaceA_ = BufferSpace::onDevice(*rankA.gpu);
    spaceB_ = BufferSpace::onDevice(*rankB.gpu);
  } else {
    spaceA_ = BufferSpace::host();
    spaceB_ = BufferSpace::host();
  }
}

Duration LatencyBenchmark::truthOneWay(ByteCount messageSize,
                                       int iterations) const {
  NB_EXPECTS(iterations > 0);
  MpiWorld world(*machine_, {rankA_, rankB_});
  constexpr int kTag = 1;
  Duration elapsed = Duration::zero();

  if (mpisim::analytic::fastPathEligible()) {
    // No faults, no tracing, two symmetric ranks: the closed-form
    // composition is bit-identical to the scheduled run (conformance
    // suite) at a fraction of the cost.
    elapsed = mpisim::analytic::pingPongElapsed(*machine_, rankA_, rankB_,
                                                spaceA_, spaceB_,
                                                messageSize, iterations);
  } else {
    const auto pingSide = [&](Communicator& comm) {
      const Duration start = comm.now();
      for (int i = 0; i < iterations; ++i) {
        comm.send(1, kTag, messageSize, spaceA_);
        comm.recv(1, kTag, messageSize, spaceA_);
      }
      elapsed = comm.now() - start;
    };
    const auto pongSide = [&](Communicator& comm) {
      for (int i = 0; i < iterations; ++i) {
        comm.recv(0, kTag, messageSize, spaceB_);
        comm.send(0, kTag, messageSize, spaceB_);
      }
    };
    world.runEach({pingSide, pongSide});
  }

  // Round-trip / 2, averaged over iterations — OSU's reporting rule.
  return elapsed / (2.0 * static_cast<double>(iterations));
}

Duration LatencyBenchmark::truthCached(ByteCount messageSize,
                                       int iterations) const {
  // Per-key once semantics: the first querier installs a future under the
  // lock and computes outside it; concurrent first queries wait on that
  // future instead of duplicating the expensive simulation.
  const std::pair<std::uint64_t, int> key{messageSize.count(), iterations};
  std::promise<Duration> mine;
  std::shared_future<Duration> truth;
  bool owner = false;
  {
    std::unique_lock lock(truthMu_);
    const auto [it, inserted] = truthMemo_.try_emplace(key);
    if (inserted) {
      it->second = mine.get_future().share();
      owner = true;
    }
    truth = it->second;
  }
  if (owner) {
    try {
      mine.set_value(truthOneWay(messageSize, iterations));
    } catch (...) {
      // Drop the failed entry so later queries retry, then deliver the
      // error to anyone already waiting on this computation.
      {
        std::unique_lock lock(truthMu_);
        truthMemo_.erase(key);
      }
      mine.set_exception(std::current_exception());
      throw;
    }
  }
  return truth.get();
}

LatencyResult LatencyBenchmark::measure(const LatencyConfig& config) const {
  NB_EXPECTS(config.binaryRuns > 0);
  int iterations = config.iterations;
  if (iterations <= 0) {
    iterations = config.messageSize <= config.largeMessageThreshold ? 1000
                                                                    : 100;
  }
  // Warmup affects wall time, not the deterministic average; the truth is
  // a single full in-binary run, computed once per (size, iterations).
  const Duration truth = truthCached(config.messageSize, iterations);

  const bool deviceMode = spaceA_.kind == BufferSpace::Kind::Device;
  const double cv = deviceMode && machine_->deviceMpi
                        ? machine_->deviceMpi->cv
                        : machine_->hostMpi.cv;
  const NoiseModel noise(cv);

  trace::TraceBuffer* tb = trace::current();
  Welford acc;
  for (int run = 0; run < config.binaryRuns; ++run) {
    Xoshiro256 rng(config.seed + machine_->seed +
                   0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   config.messageSize.count());
    const double us = noise.apply(truth, rng).us();
    acc.add(us);
    recordSample(kLatencySampleChannel, us);
    if (tb != nullptr) {
      // Per-binary-run latency distribution: the histogram the metrics
      // appendix summarises per benchmark cell.
      tb->sample(kLatencySampleChannel, us);
    }
  }
  return LatencyResult{config.messageSize, acc.summary()};
}

std::vector<LatencyResult> LatencyBenchmark::sweep(
    ByteCount maxSize, const LatencyConfig& config) const {
  std::vector<LatencyResult> out;
  LatencyConfig cfg = config;
  cfg.messageSize = ByteCount::bytes(0);
  out.push_back(measure(cfg));
  for (ByteCount size = ByteCount::bytes(1); size <= maxSize;
       size = size * 2ull) {
    cfg.messageSize = size;
    out.push_back(measure(cfg));
  }
  return out;
}

}  // namespace nodebench::osu
