#include "osu/pairs.hpp"

#include "core/error.hpp"

namespace nodebench::osu {

using machines::Machine;
using mpisim::RankPlacement;
using topo::CoreId;
using topo::SocketId;

PlacementPair onSocketPair(const Machine& m) {
  NB_EXPECTS(m.topology.coreCount() >= 2);
  return {RankPlacement{CoreId{0}, std::nullopt},
          RankPlacement{CoreId{1}, std::nullopt}};
}

PlacementPair onNodePair(const Machine& m) {
  const topo::NodeTopology& topo = m.topology;
  NB_EXPECTS(topo.coreCount() >= 2);
  if (topo.socketCount() >= 2) {
    const auto second = topo.coresOfSocket(SocketId{1});
    NB_EXPECTS_MSG(!second.empty(), "socket 1 has no cores");
    return {RankPlacement{CoreId{0}, std::nullopt},
            RankPlacement{second.front(), std::nullopt}};
  }
  // Single-socket (KNL) machines: first and last core (paper §3.1).
  return {RankPlacement{CoreId{0}, std::nullopt},
          RankPlacement{CoreId{topo.coreCount() - 1}, std::nullopt}};
}

PlacementPair devicePair(const Machine& m, topo::LinkClass linkClass) {
  const topo::NodeTopology& topo = m.topology;
  const auto gpus = topo.representativePair(linkClass);
  NB_EXPECTS_MSG(gpus.has_value(),
                 "machine has no GPU pair of the requested link class");
  const SocketId sa = topo.gpu(gpus->first).socket;
  const SocketId sb = topo.gpu(gpus->second).socket;
  const auto coresA = topo.coresOfSocket(sa);
  const auto coresB = topo.coresOfSocket(sb);
  NB_EXPECTS(!coresA.empty() && !coresB.empty());
  CoreId coreA = coresA.front();
  CoreId coreB = coresB.front();
  if (coreA == coreB) {
    NB_EXPECTS(coresB.size() >= 2);
    coreB = coresB[1];
  }
  return {RankPlacement{coreA, gpus->first.value},
          RankPlacement{coreB, gpus->second.value}};
}

}  // namespace nodebench::osu
