#pragma once
/// \file latency.hpp
/// \brief OSU Micro-Benchmarks style point-to-point latency test
/// (`osu_latency`) over the simulated message-passing runtime.
///
/// Methodology mirrors OSU 7.1.1 and the paper's harness:
///  - blocking ping-pong between two ranks, reported latency = round trip
///    time / 2, averaged over the in-binary iteration count;
///  - 1000 iterations for small messages, 100 for large ones (paper §4);
///  - the whole binary is executed 100 times; tables report mean ± sigma
///    across binaries.
///
/// The in-binary ping-pong runs through the full mpisim stack (virtual
///-time scheduler, eager/rendezvous protocols, topology routes). The
/// simulated transport is deterministic, so run-to-run variance is applied
/// as a per-binary multiplicative noise factor drawn from the machine's
/// calibrated cv — which is precisely the quantity the paper's sigma
/// column estimates.

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "machines/machine.hpp"
#include "mpisim/world.hpp"

namespace nodebench::osu {

/// Raw-sample channel (core/samples.hpp): one value per binary run of a
/// latency cell, in microseconds. Matches the trace histogram channel.
inline constexpr const char* kLatencySampleChannel = "osu.latency_us";

struct LatencyConfig {
  ByteCount messageSize = ByteCount::bytes(8);
  int warmupIterations = 10;
  /// In-binary iterations; <= 0 selects the OSU default (1000 small /
  /// 100 above largeMessageThreshold).
  int iterations = 0;
  ByteCount largeMessageThreshold = ByteCount::kib(8);
  int binaryRuns = 100;
  std::uint64_t seed = 0x05011a7e0cu;
};

struct LatencyResult {
  ByteCount messageSize;
  Summary latencyUs;  ///< One-way latency, microseconds, across binaries.
};

class LatencyBenchmark {
 public:
  /// Ping-pong between two ranks with the given placements. With
  /// `Kind::Device` buffers each rank uses its bound GPU's memory (both
  /// placements must then carry a GPU). The machine must outlive the
  /// benchmark.
  LatencyBenchmark(const machines::Machine& machine,
                   mpisim::RankPlacement rankA, mpisim::RankPlacement rankB,
                   mpisim::BufferSpace::Kind bufferKind);

  /// One table cell: mean ± sigma one-way latency at `config.messageSize`.
  ///
  /// Split into a deterministic *truth* run (the thread-spawning simulated
  /// ping-pong, memoized per (size, iterations)) and `binaryRuns` cheap
  /// noise draws seeded from the cell identity alone. Repeated measures of
  /// the same cell — e.g. the sweep's shared sizes, or a table rendered
  /// twice — reuse the truth instead of re-simulating it.
  [[nodiscard]] LatencyResult measure(const LatencyConfig& config) const;

  /// OSU-style sweep: powers of two from 1 B (plus 0 B) to `maxSize`.
  [[nodiscard]] std::vector<LatencyResult> sweep(
      ByteCount maxSize, const LatencyConfig& config) const;

  /// Noiseless single-binary average one-way latency (exposed for tests
  /// and the protocol-crossover ablation).
  [[nodiscard]] Duration truthOneWay(ByteCount messageSize,
                                     int iterations) const;

 private:
  /// truthOneWay with memoization; thread-safe (the parallel table
  /// harness measures disjoint cells, but a benchmark instance may be
  /// shared). Concurrent first queries of one key compute the truth
  /// exactly once: late arrivals block on the owner's future.
  [[nodiscard]] Duration truthCached(ByteCount messageSize,
                                     int iterations) const;

  const machines::Machine* machine_;
  mpisim::RankPlacement rankA_;
  mpisim::RankPlacement rankB_;
  mpisim::BufferSpace spaceA_;
  mpisim::BufferSpace spaceB_;

  mutable std::map<std::pair<std::uint64_t, int>,
                   std::shared_future<Duration>>
      truthMemo_;
  mutable std::mutex truthMu_;
};

}  // namespace nodebench::osu
