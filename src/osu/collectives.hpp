#pragma once
/// \file collectives.hpp
/// \brief OSU-style collective latency benchmarks (osu_allreduce /
/// osu_bcast / osu_alltoall flavours) over the mpisim collectives — the
/// "collective communication" limb of the paper's future-work agenda.

#include <vector>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "machines/machine.hpp"
#include "mpisim/world.hpp"

namespace nodebench::osu {

enum class Collective { Barrier, Bcast, Reduce, Allreduce, Allgather,
                        Alltoall };

[[nodiscard]] std::string_view collectiveName(Collective c);

struct CollectiveConfig {
  Collective collective = Collective::Allreduce;
  ByteCount messageSize = ByteCount::bytes(8);
  int ranks = 8;           ///< Placed round-robin over the node's cores.
  int iterations = 100;
  int binaryRuns = 100;
  std::uint64_t seed = 0x05011acc01u;
};

struct CollectiveResult {
  Collective collective;
  ByteCount messageSize;
  int ranks = 0;
  Summary latencyUs;  ///< Per-operation latency across binaries.
};

/// Average per-operation latency of the collective on `machine`.
/// One rank per core in id order (the paper's rank-per-core convention).
[[nodiscard]] CollectiveResult measureCollective(
    const machines::Machine& machine, const CollectiveConfig& config);

/// Noiseless single-binary per-operation latency.
[[nodiscard]] Duration collectiveTruth(const machines::Machine& machine,
                                       const CollectiveConfig& config);

}  // namespace nodebench::osu
