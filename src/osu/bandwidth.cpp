#include "osu/bandwidth.hpp"

#include "mpisim/analytic.hpp"

namespace nodebench::osu {

using mpisim::BufferSpace;
using mpisim::Communicator;
using mpisim::MpiWorld;
using mpisim::RankPlacement;
using mpisim::Request;

BandwidthBenchmark::BandwidthBenchmark(const machines::Machine& machine,
                                       RankPlacement rankA,
                                       RankPlacement rankB,
                                       BufferSpace::Kind bufferKind,
                                       bool bidirectional)
    : machine_(&machine),
      rankA_(rankA),
      rankB_(rankB),
      bidirectional_(bidirectional) {
  if (bufferKind == BufferSpace::Kind::Device) {
    NB_EXPECTS_MSG(rankA.gpu.has_value() && rankB.gpu.has_value(),
                   "device-buffer bandwidth needs GPU-bound ranks");
    spaceA_ = BufferSpace::onDevice(*rankA.gpu);
    spaceB_ = BufferSpace::onDevice(*rankB.gpu);
  } else {
    spaceA_ = BufferSpace::host();
    spaceB_ = BufferSpace::host();
  }
}

double BandwidthBenchmark::truthGBps(const BandwidthConfig& cfg) const {
  NB_EXPECTS(cfg.windowSize > 0 && cfg.iterations > 0);
  NB_EXPECTS(cfg.messageSize.count() > 0);
  MpiWorld world(*machine_, {rankA_, rankB_});
  constexpr int kTag = 2;
  constexpr int kAckTag = 3;
  Duration elapsed = Duration::zero();
  double bytesMoved = 0.0;

  if (mpisim::analytic::fastPathEligible()) {
    // Two symmetric ranks, no faults or tracing: compose the windowed
    // stream arithmetically (bit-identical; see mpisim/analytic.hpp).
    elapsed = mpisim::analytic::windowedStreamElapsed(
        *machine_, rankA_, rankB_, spaceA_, spaceB_, cfg.messageSize,
        cfg.windowSize, cfg.iterations, bidirectional_);
    const double directions = bidirectional_ ? 2.0 : 1.0;
    bytesMoved = directions * cfg.messageSize.asDouble() *
                 static_cast<double>(cfg.windowSize) *
                 static_cast<double>(cfg.iterations);
    NB_ENSURES(elapsed > Duration::zero());
    return bytesMoved / elapsed.ns();  // GB/s
  }

  // osu_bw: rank 0 posts a window of isends, rank 1 a window of irecvs;
  // a tiny ack closes each iteration. osu_bibw runs the mirrored window
  // simultaneously in both directions.
  const auto sideA = [&](Communicator& c) {
    const Duration start = c.now();
    for (int it = 0; it < cfg.iterations; ++it) {
      std::vector<Request> reqs;
      reqs.reserve(cfg.windowSize * 2);
      for (int wi = 0; wi < cfg.windowSize; ++wi) {
        reqs.push_back(c.isend(1, kTag, cfg.messageSize, spaceA_));
      }
      if (bidirectional_) {
        for (int wi = 0; wi < cfg.windowSize; ++wi) {
          reqs.push_back(c.irecv(1, kTag, cfg.messageSize, spaceA_));
        }
      }
      c.waitAll(reqs);
      c.recv(1, kAckTag, ByteCount::bytes(4), spaceA_);
    }
    elapsed = c.now() - start;
  };
  const auto sideB = [&](Communicator& c) {
    for (int it = 0; it < cfg.iterations; ++it) {
      std::vector<Request> reqs;
      reqs.reserve(cfg.windowSize * 2);
      for (int wi = 0; wi < cfg.windowSize; ++wi) {
        reqs.push_back(c.irecv(0, kTag, cfg.messageSize, spaceB_));
      }
      if (bidirectional_) {
        for (int wi = 0; wi < cfg.windowSize; ++wi) {
          reqs.push_back(c.isend(0, kTag, cfg.messageSize, spaceB_));
        }
      }
      c.waitAll(reqs);
      c.send(0, kAckTag, ByteCount::bytes(4), spaceB_);
    }
  };
  world.runEach({sideA, sideB});

  const double directions = bidirectional_ ? 2.0 : 1.0;
  bytesMoved = directions * cfg.messageSize.asDouble() *
               static_cast<double>(cfg.windowSize) *
               static_cast<double>(cfg.iterations);
  NB_ENSURES(elapsed > Duration::zero());
  return bytesMoved / elapsed.ns();  // GB/s
}

BandwidthResult BandwidthBenchmark::measure(
    const BandwidthConfig& cfg) const {
  NB_EXPECTS(cfg.binaryRuns > 0);
  const double truth = truthGBps(cfg);
  const NoiseModel noise(machine_->hostMpi.cv);
  Welford acc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(cfg.seed + machine_->seed +
                   0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   cfg.messageSize.count());
    acc.add(truth * noise.sampleFactor(rng));
  }
  return BandwidthResult{cfg.messageSize, acc.summary()};
}

std::vector<BandwidthResult> BandwidthBenchmark::sweep(
    ByteCount maxSize, const BandwidthConfig& config) const {
  std::vector<BandwidthResult> out;
  BandwidthConfig cfg = config;
  for (ByteCount size = ByteCount::bytes(1); size <= maxSize;
       size = size * 2ull) {
    cfg.messageSize = size;
    out.push_back(measure(cfg));
  }
  return out;
}

}  // namespace nodebench::osu
