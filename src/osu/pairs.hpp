#pragma once
/// \file pairs.hpp
/// \brief Rank-placement helpers implementing the paper's pairing
/// methodology (§3.1, §4).

#include <utility>

#include "machines/machine.hpp"
#include "mpisim/transport.hpp"
#include "topo/types.hpp"

namespace nodebench::osu {

using PlacementPair = std::pair<mpisim::RankPlacement, mpisim::RankPlacement>;

/// "On-socket": two processes on the same processor — cores 0 and 1.
/// (On KNL those are the two cores of the first tile, the paper's "close"
/// pair.)
[[nodiscard]] PlacementPair onSocketPair(const machines::Machine& m);

/// "On-node": processes on different processors — core 0 and the first
/// core of the second socket. On single-socket KNL systems, the paper's
/// "far" pair: cores 0 and N-1.
[[nodiscard]] PlacementPair onNodePair(const machines::Machine& m);

/// Device pair for a GPU link class: one rank per GPU of the class's
/// representative pair, each pinned to a distinct core of its GPU's home
/// socket. Precondition: the class exists on this machine.
[[nodiscard]] PlacementPair devicePair(const machines::Machine& m,
                                       topo::LinkClass linkClass);

}  // namespace nodebench::osu
