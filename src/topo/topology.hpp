#pragma once
/// \file topology.hpp
/// \brief Node hardware topology: sockets, NUMA domains, cores, GPUs (or
/// MI250X GCDs) and the links between them.
///
/// A `NodeTopology` is a *structural* description plus per-link physical
/// properties (latency and bandwidth). Higher layers (the memory model,
/// GPU runtime and MPI transports) resolve routes through it and convert
/// them into simulated time using machine-specific calibration parameters.

#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"
#include "topo/types.hpp"

namespace nodebench::topo {

/// Index types. Plain ints wrapped in strong structs to keep socket ids,
/// core ids and GPU ids from being interchanged silently.
struct SocketId {
  int value = -1;
  friend constexpr auto operator<=>(SocketId, SocketId) = default;
};
struct NumaId {
  int value = -1;
  friend constexpr auto operator<=>(NumaId, NumaId) = default;
};
struct CoreId {
  int value = -1;
  friend constexpr auto operator<=>(CoreId, CoreId) = default;
};
/// Identifies one *visible device*: a whole GPU on NVIDIA systems, one GCD
/// on MI250X systems (matching how the runtime exposes them).
struct GpuId {
  int value = -1;
  friend constexpr auto operator<=>(GpuId, GpuId) = default;
};

struct SocketInfo {
  std::string model;
};

struct NumaInfo {
  SocketId socket;
};

struct CoreInfo {
  NumaId numa;
  SocketId socket;
  int smtThreads = 1;
  std::optional<MeshCoord> mesh;  ///< Set on KNL-style mesh CPUs.
};

struct GpuInfo {
  std::string model;
  SocketId socket;        ///< Socket hosting the device's PCIe/NVLink root.
  int packageIndex = -1;  ///< MI250X package; two GCDs share one package.
  ByteCount memory;       ///< Device HBM capacity.
};

/// One physical link between two endpoints. Endpoints are either a socket
/// (host side) or a GPU.
struct Link {
  enum class EndpointKind { Socket, Gpu };
  struct Endpoint {
    EndpointKind kind;
    int id;
    friend constexpr bool operator==(Endpoint, Endpoint) = default;
  };

  Endpoint a;
  Endpoint b;
  LinkType type;
  int count = 1;        ///< Parallel link count (e.g. 4 xGMI links).
  Duration latency;     ///< One-way hardware latency of the hop.
  Bandwidth bandwidth;  ///< Aggregate unidirectional bandwidth of the hop.
  bool failed = false;  ///< Fault-injected: link is down; lookups skip it.

  [[nodiscard]] bool connects(Endpoint x, Endpoint y) const {
    return (a == x && b == y) || (a == y && b == x);
  }
};

/// A resolved route between two endpoints.
struct Route {
  std::vector<const Link*> hops;
  Duration latency = Duration::zero();           ///< Sum of hop latencies.
  Bandwidth bottleneck = Bandwidth::zero();      ///< Min of hop bandwidths.

  [[nodiscard]] bool direct() const { return hops.size() == 1; }
};

/// Structural model of one compute node.
///
/// Thread-safety: the construction/calibration API (`add*`, `connect*`,
/// `set*`) must not run concurrently with anything. Once built, all
/// queries are safe to call from multiple threads; route and link-class
/// resolution is memoized in an internal cache built once under a mutex
/// (the parallel table harnesses resolve routes from many workers, and a
/// simulated message otherwise re-walks the link list on every transfer).
class NodeTopology {
 public:
  NodeTopology() = default;
  // The route cache holds pointers into links_, so copies/moves must not
  // carry it over; the destination rebuilds its own cache on first query.
  NodeTopology(const NodeTopology& other);
  NodeTopology& operator=(const NodeTopology& other);
  NodeTopology(NodeTopology&& other) noexcept;
  NodeTopology& operator=(NodeTopology&& other) noexcept;
  ~NodeTopology() = default;

  // --- construction -------------------------------------------------------
  SocketId addSocket(std::string model);
  NumaId addNumaDomain(SocketId socket);
  /// Adds `count` cores to a NUMA domain; returns the id of the first.
  CoreId addCores(NumaId numa, int count, int smtThreads = 1);
  /// Adds one core with a mesh coordinate (KNL tiles).
  CoreId addMeshCore(NumaId numa, MeshCoord coord, int smtThreads = 4);
  GpuId addGpu(std::string model, SocketId socket, ByteCount memory,
               int packageIndex = -1);

  void connectSockets(SocketId a, SocketId b, LinkType type, Duration latency,
                      Bandwidth bandwidth);
  void connectHostGpu(SocketId s, GpuId g, LinkType type, Duration latency,
                      Bandwidth bandwidth);
  void connectGpuPeer(GpuId a, GpuId b, LinkType type, int count,
                      Duration latency, Bandwidth bandwidth);

  void setGpuFlavor(GpuInterconnectFlavor flavor) {
    flavor_ = flavor;
    invalidateRouteCache();
  }

  /// Adjusts the bandwidth of the existing socket<->GPU link. Used by the
  /// machine calibration pass, which solves link bandwidths so that the
  /// full transfer model (overheads + latency + size/bw) reproduces the
  /// paper's measured 1 GiB transfer rates.
  void setHostGpuLinkBandwidth(SocketId s, GpuId g, Bandwidth bw);

  // --- fault injection ----------------------------------------------------
  // Mutators used by the faults library. Like the construction API they
  // must not run concurrently with queries; each invalidates the route
  // cache. `linkIndex` addresses links() in insertion order.

  /// Marks one link as down. Every lookup (`directGpuLink`, `hostGpuLink`,
  /// `socketLink`) then skips it, so routes that depended on it resolve to
  /// an alternative path or raise the usual NotFoundError.
  void setLinkFailed(std::size_t linkIndex, bool failed = true);

  /// Degrades one link in place: bandwidth is scaled by `bandwidthFactor`
  /// (in (0, 1] for a brownout) and `addedLatency` is added to the hop
  /// latency. Precondition: bandwidthFactor > 0.
  void degradeLink(std::size_t linkIndex, double bandwidthFactor,
                   Duration addedLatency);

  // --- queries ------------------------------------------------------------
  [[nodiscard]] int socketCount() const { return static_cast<int>(sockets_.size()); }
  [[nodiscard]] int numaCount() const { return static_cast<int>(numas_.size()); }
  [[nodiscard]] int coreCount() const { return static_cast<int>(cores_.size()); }
  [[nodiscard]] int gpuCount() const { return static_cast<int>(gpus_.size()); }
  [[nodiscard]] GpuInterconnectFlavor gpuFlavor() const { return flavor_; }

  [[nodiscard]] const SocketInfo& socket(SocketId id) const;
  [[nodiscard]] const NumaInfo& numa(NumaId id) const;
  [[nodiscard]] const CoreInfo& core(CoreId id) const;
  [[nodiscard]] const GpuInfo& gpu(GpuId id) const;
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Cores belonging to one socket, in id order.
  [[nodiscard]] std::vector<CoreId> coresOfSocket(SocketId s) const;

  /// Relationship between two cores (drives host MPI latency).
  [[nodiscard]] CpuPath cpuPath(CoreId a, CoreId b) const;

  /// Direct link between two GPUs, if one exists.
  [[nodiscard]] const Link* directGpuLink(GpuId a, GpuId b) const;

  /// Link between a socket and a GPU. Throws NotFoundError if the GPU is
  /// not attached to this socket.
  [[nodiscard]] const Link& hostGpuLink(SocketId s, GpuId g) const;

  /// Link between two sockets. Throws NotFoundError if absent.
  [[nodiscard]] const Link& socketLink(SocketId a, SocketId b) const;

  /// Route from a socket's memory complex to a device. Memoized: the
  /// returned reference stays valid until the topology is next mutated.
  [[nodiscard]] const Route& routeHostToGpu(SocketId s, GpuId g) const;

  /// Route between two devices: the direct peer link when present,
  /// otherwise through the host (gpu -> socket [-> socket] -> gpu).
  /// Precondition: a != b. Memoized like routeHostToGpu.
  [[nodiscard]] const Route& routeGpuToGpu(GpuId a, GpuId b) const;

  /// Uncached route resolution (full link-list walk). Exposed so tests
  /// and the simcore microbenchmarks can compare against the cache.
  [[nodiscard]] Route routeHostToGpuUncached(SocketId s, GpuId g) const;
  [[nodiscard]] Route routeGpuToGpuUncached(GpuId a, GpuId b) const;

  /// Paper link-class of a GPU pair under this machine's flavour.
  /// Precondition: a != b and flavour != None. Memoized; the uncached
  /// variant recomputes from the link list.
  [[nodiscard]] LinkClass gpuPairClass(GpuId a, GpuId b) const;
  [[nodiscard]] LinkClass gpuPairClassUncached(GpuId a, GpuId b) const;

  /// All distinct link classes present among GPU pairs, in enum order.
  [[nodiscard]] std::vector<LinkClass> presentGpuLinkClasses() const;

  /// A representative GPU pair for each link class (first pair found in
  /// (a,b) lexicographic order). Used by the benches to pick endpoints.
  [[nodiscard]] std::optional<std::pair<GpuId, GpuId>>
  representativePair(LinkClass c) const;

 private:
  void checkSocket(SocketId id) const;
  void checkNuma(NumaId id) const;
  void checkCore(CoreId id) const;
  void checkGpu(GpuId id) const;

  /// Memoized route/link-class resolution. Built once per topology state;
  /// any mutation invalidates it (construction is single-threaded, so the
  /// invalidate itself needs no synchronization with readers).
  struct RouteCache {
    std::vector<std::optional<Route>> hostGpu;  ///< socketCount x gpuCount.
    std::vector<std::optional<Route>> gpuGpu;   ///< gpuCount x gpuCount.
    /// Valid only when classesValid (flavour set, >= 2 GPUs).
    std::vector<LinkClass> pairClass;           ///< gpuCount x gpuCount.
    bool classesValid = false;
    std::vector<LinkClass> presentClasses;
    std::array<std::optional<std::pair<GpuId, GpuId>>, 4> representatives;
  };
  const RouteCache& routeCache() const;
  void invalidateRouteCache() {
    cacheReady_.store(false, std::memory_order_release);
  }
  [[nodiscard]] std::size_t pairIndex(int a, int b) const {
    return static_cast<std::size_t>(a) *
               static_cast<std::size_t>(gpuCount()) +
           static_cast<std::size_t>(b);
  }

  std::vector<SocketInfo> sockets_;
  std::vector<NumaInfo> numas_;
  std::vector<CoreInfo> cores_;
  std::vector<GpuInfo> gpus_;
  std::vector<Link> links_;
  GpuInterconnectFlavor flavor_ = GpuInterconnectFlavor::None;

  mutable RouteCache cache_;
  mutable std::atomic<bool> cacheReady_{false};
  mutable std::mutex cacheMu_;
};

}  // namespace nodebench::topo
