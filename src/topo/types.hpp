#pragma once
/// \file types.hpp
/// \brief Basic vocabulary types of the node hardware topology model.

#include <string>
#include <string_view>

namespace nodebench::topo {

/// Physical interconnect technologies appearing in the studied systems
/// (Figures 1-3 of the paper).
enum class LinkType {
  PCIe3,            ///< PCI Express gen3 (V100 systems host<->far GPUs path)
  PCIe4,            ///< PCI Express gen4 (Perlmutter/Polaris/MI250X host links)
  NVLink2,          ///< NVLink 2.0 (Summit/Sierra/Lassen CPU-GPU and GPU-GPU)
  NVLink3,          ///< NVLink 3.0 (Perlmutter/Polaris GPU-GPU)
  XBus,             ///< IBM X-Bus between Power9 sockets
  UPI,              ///< Intel Ultra Path Interconnect between Xeon sockets
  InfinityFabric,   ///< AMD xGMI/Infinity Fabric (GCD-GCD and CPU-GCD)
  KnlMesh,          ///< Intel Knights Landing on-die 2D mesh
  Smp,              ///< Generic intra-socket coherence fabric
};

[[nodiscard]] std::string_view linkTypeName(LinkType t);

/// GPU-to-GPU interconnect flavour of a machine; drives the link-class
/// (A/B/C/D) labelling used by Tables 5 and 6.
enum class GpuInterconnectFlavor {
  None,             ///< CPU-only system
  NvlinkPcieMix,    ///< Summit/Sierra/Lassen: NVLink cliques + PCIe/X-Bus rest
  NvlinkAllToAll,   ///< Perlmutter/Polaris: NVLink between every GPU pair
  InfinityFabric,   ///< Frontier/RZVernal/Tioga: 4/2/1/0 IF links per pair
};

/// Link class labels exactly as the paper's tables use them.
/// For NvlinkPcieMix: A = direct NVLink, B = otherwise.
/// For InfinityFabric: A/B/C = quad/dual/single links, D = no direct link.
/// For NvlinkAllToAll: every pair is A.
enum class LinkClass { A, B, C, D, None };

[[nodiscard]] std::string_view linkClassName(LinkClass c);

/// 2D coordinate of a core tile on the KNL on-die mesh.
struct MeshCoord {
  int row = 0;
  int col = 0;
};

/// Relationship between two host cores, as needed by the MPI host
/// transport model.
struct CpuPath {
  bool sameCore = false;
  bool sameNuma = false;
  bool sameSocket = false;
  int meshDistance = 0;  ///< Manhattan tile distance; 0 on non-mesh CPUs.
};

}  // namespace nodebench::topo
