#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace nodebench::topo {

std::string_view linkTypeName(LinkType t) {
  switch (t) {
    case LinkType::PCIe3: return "PCIe3";
    case LinkType::PCIe4: return "PCIe4";
    case LinkType::NVLink2: return "NVLink2";
    case LinkType::NVLink3: return "NVLink3";
    case LinkType::XBus: return "X-Bus";
    case LinkType::UPI: return "UPI";
    case LinkType::InfinityFabric: return "InfinityFabric";
    case LinkType::KnlMesh: return "KNL-Mesh";
    case LinkType::Smp: return "SMP";
  }
  return "?";
}

std::string_view linkClassName(LinkClass c) {
  switch (c) {
    case LinkClass::A: return "A";
    case LinkClass::B: return "B";
    case LinkClass::C: return "C";
    case LinkClass::D: return "D";
    case LinkClass::None: return "-";
  }
  return "?";
}

NodeTopology::NodeTopology(const NodeTopology& other)
    : sockets_(other.sockets_),
      numas_(other.numas_),
      cores_(other.cores_),
      gpus_(other.gpus_),
      links_(other.links_),
      flavor_(other.flavor_) {}

NodeTopology& NodeTopology::operator=(const NodeTopology& other) {
  if (this != &other) {
    sockets_ = other.sockets_;
    numas_ = other.numas_;
    cores_ = other.cores_;
    gpus_ = other.gpus_;
    links_ = other.links_;
    flavor_ = other.flavor_;
    invalidateRouteCache();
  }
  return *this;
}

NodeTopology::NodeTopology(NodeTopology&& other) noexcept
    : sockets_(std::move(other.sockets_)),
      numas_(std::move(other.numas_)),
      cores_(std::move(other.cores_)),
      gpus_(std::move(other.gpus_)),
      links_(std::move(other.links_)),
      flavor_(other.flavor_) {
  other.invalidateRouteCache();
}

NodeTopology& NodeTopology::operator=(NodeTopology&& other) noexcept {
  if (this != &other) {
    sockets_ = std::move(other.sockets_);
    numas_ = std::move(other.numas_);
    cores_ = std::move(other.cores_);
    gpus_ = std::move(other.gpus_);
    links_ = std::move(other.links_);
    flavor_ = other.flavor_;
    invalidateRouteCache();
    other.invalidateRouteCache();
  }
  return *this;
}

SocketId NodeTopology::addSocket(std::string model) {
  sockets_.push_back(SocketInfo{std::move(model)});
  invalidateRouteCache();
  return SocketId{static_cast<int>(sockets_.size()) - 1};
}

NumaId NodeTopology::addNumaDomain(SocketId socket) {
  checkSocket(socket);
  numas_.push_back(NumaInfo{socket});
  return NumaId{static_cast<int>(numas_.size()) - 1};
}

CoreId NodeTopology::addCores(NumaId numa, int count, int smtThreads) {
  checkNuma(numa);
  NB_EXPECTS(count > 0);
  NB_EXPECTS(smtThreads >= 1);
  const CoreId first{static_cast<int>(cores_.size())};
  const SocketId socket = numas_[numa.value].socket;
  for (int i = 0; i < count; ++i) {
    cores_.push_back(CoreInfo{numa, socket, smtThreads, std::nullopt});
  }
  return first;
}

CoreId NodeTopology::addMeshCore(NumaId numa, MeshCoord coord, int smtThreads) {
  checkNuma(numa);
  NB_EXPECTS(smtThreads >= 1);
  const CoreId id{static_cast<int>(cores_.size())};
  const SocketId socket = numas_[numa.value].socket;
  cores_.push_back(CoreInfo{numa, socket, smtThreads, coord});
  return id;
}

GpuId NodeTopology::addGpu(std::string model, SocketId socket,
                           ByteCount memory, int packageIndex) {
  checkSocket(socket);
  gpus_.push_back(GpuInfo{std::move(model), socket, packageIndex, memory});
  invalidateRouteCache();
  return GpuId{static_cast<int>(gpus_.size()) - 1};
}

void NodeTopology::connectSockets(SocketId a, SocketId b, LinkType type,
                                  Duration latency, Bandwidth bandwidth) {
  checkSocket(a);
  checkSocket(b);
  NB_EXPECTS(a != b);
  links_.push_back(Link{{Link::EndpointKind::Socket, a.value},
                        {Link::EndpointKind::Socket, b.value},
                        type, 1, latency, bandwidth});
  invalidateRouteCache();
}

void NodeTopology::connectHostGpu(SocketId s, GpuId g, LinkType type,
                                  Duration latency, Bandwidth bandwidth) {
  checkSocket(s);
  checkGpu(g);
  links_.push_back(Link{{Link::EndpointKind::Socket, s.value},
                        {Link::EndpointKind::Gpu, g.value},
                        type, 1, latency, bandwidth});
  invalidateRouteCache();
}

void NodeTopology::connectGpuPeer(GpuId a, GpuId b, LinkType type, int count,
                                  Duration latency, Bandwidth bandwidth) {
  checkGpu(a);
  checkGpu(b);
  NB_EXPECTS(a != b);
  NB_EXPECTS(count >= 1);
  links_.push_back(Link{{Link::EndpointKind::Gpu, a.value},
                        {Link::EndpointKind::Gpu, b.value},
                        type, count, latency, bandwidth});
  invalidateRouteCache();
}

const SocketInfo& NodeTopology::socket(SocketId id) const {
  checkSocket(id);
  return sockets_[id.value];
}

const NumaInfo& NodeTopology::numa(NumaId id) const {
  checkNuma(id);
  return numas_[id.value];
}

const CoreInfo& NodeTopology::core(CoreId id) const {
  checkCore(id);
  return cores_[id.value];
}

const GpuInfo& NodeTopology::gpu(GpuId id) const {
  checkGpu(id);
  return gpus_[id.value];
}

std::vector<CoreId> NodeTopology::coresOfSocket(SocketId s) const {
  checkSocket(s);
  std::vector<CoreId> out;
  for (int i = 0; i < coreCount(); ++i) {
    if (cores_[i].socket == s) {
      out.push_back(CoreId{i});
    }
  }
  return out;
}

CpuPath NodeTopology::cpuPath(CoreId a, CoreId b) const {
  checkCore(a);
  checkCore(b);
  CpuPath path;
  path.sameCore = a == b;
  const CoreInfo& ca = cores_[a.value];
  const CoreInfo& cb = cores_[b.value];
  path.sameNuma = ca.numa == cb.numa;
  path.sameSocket = ca.socket == cb.socket;
  if (ca.mesh && cb.mesh) {
    path.meshDistance = std::abs(ca.mesh->row - cb.mesh->row) +
                        std::abs(ca.mesh->col - cb.mesh->col);
  }
  return path;
}

const Link* NodeTopology::directGpuLink(GpuId a, GpuId b) const {
  checkGpu(a);
  checkGpu(b);
  const Link::Endpoint ea{Link::EndpointKind::Gpu, a.value};
  const Link::Endpoint eb{Link::EndpointKind::Gpu, b.value};
  for (const Link& link : links_) {
    if (!link.failed && link.connects(ea, eb)) {
      return &link;
    }
  }
  return nullptr;
}

const Link& NodeTopology::hostGpuLink(SocketId s, GpuId g) const {
  checkSocket(s);
  checkGpu(g);
  const Link::Endpoint es{Link::EndpointKind::Socket, s.value};
  const Link::Endpoint eg{Link::EndpointKind::Gpu, g.value};
  for (const Link& link : links_) {
    if (!link.failed && link.connects(es, eg)) {
      return link;
    }
  }
  throw NotFoundError("no host-GPU link between socket " +
                      std::to_string(s.value) + " and GPU " +
                      std::to_string(g.value));
}

const Link& NodeTopology::socketLink(SocketId a, SocketId b) const {
  checkSocket(a);
  checkSocket(b);
  const Link::Endpoint ea{Link::EndpointKind::Socket, a.value};
  const Link::Endpoint eb{Link::EndpointKind::Socket, b.value};
  for (const Link& link : links_) {
    if (!link.failed && link.connects(ea, eb)) {
      return link;
    }
  }
  throw NotFoundError("no socket-socket link between " +
                      std::to_string(a.value) + " and " +
                      std::to_string(b.value));
}

namespace {

Route makeRoute(std::vector<const Link*> hops) {
  Route r;
  r.hops = std::move(hops);
  NB_ENSURES(!r.hops.empty());
  r.latency = Duration::zero();
  r.bottleneck = r.hops.front()->bandwidth;
  for (const Link* hop : r.hops) {
    r.latency += hop->latency;
    r.bottleneck = min(r.bottleneck, hop->bandwidth);
  }
  return r;
}

}  // namespace

Route NodeTopology::routeHostToGpuUncached(SocketId s, GpuId g) const {
  checkSocket(s);
  checkGpu(g);
  const SocketId home = gpus_[g.value].socket;
  if (home == s) {
    return makeRoute({&hostGpuLink(s, g)});
  }
  // Traverse the inter-socket fabric first, then the device link.
  return makeRoute({&socketLink(s, home), &hostGpuLink(home, g)});
}

Route NodeTopology::routeGpuToGpuUncached(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  if (const Link* direct = directGpuLink(a, b)) {
    return makeRoute({direct});
  }
  const SocketId sa = gpus_[a.value].socket;
  const SocketId sb = gpus_[b.value].socket;
  std::vector<const Link*> hops;
  hops.push_back(&hostGpuLink(sa, a));
  if (sa != sb) {
    hops.push_back(&socketLink(sa, sb));
  }
  hops.push_back(&hostGpuLink(sb, b));
  return makeRoute(std::move(hops));
}

const NodeTopology::RouteCache& NodeTopology::routeCache() const {
  if (!cacheReady_.load(std::memory_order_acquire)) {
    std::unique_lock lock(cacheMu_);
    if (!cacheReady_.load(std::memory_order_relaxed)) {
      RouteCache fresh;
      const std::size_t nSockets = static_cast<std::size_t>(socketCount());
      const std::size_t nGpus = static_cast<std::size_t>(gpuCount());
      fresh.hostGpu.resize(nSockets * nGpus);
      fresh.gpuGpu.resize(nGpus * nGpus);
      // Combinations the structural model cannot route (e.g. a socket with
      // no fabric link toward the device) stay empty; querying one falls
      // back to the uncached path so the original NotFoundError surfaces.
      for (int s = 0; s < socketCount(); ++s) {
        for (int g = 0; g < gpuCount(); ++g) {
          try {
            fresh.hostGpu[static_cast<std::size_t>(s) * nGpus +
                          static_cast<std::size_t>(g)] =
                routeHostToGpuUncached(SocketId{s}, GpuId{g});
          } catch (const NotFoundError&) {
          }
        }
      }
      for (int a = 0; a < gpuCount(); ++a) {
        for (int b = 0; b < gpuCount(); ++b) {
          if (a == b) {
            continue;
          }
          try {
            fresh.gpuGpu[pairIndex(a, b)] =
                routeGpuToGpuUncached(GpuId{a}, GpuId{b});
          } catch (const NotFoundError&) {
          }
        }
      }
      if (flavor_ != GpuInterconnectFlavor::None && gpuCount() >= 2) {
        fresh.pairClass.assign(nGpus * nGpus, LinkClass::None);
        bool present[4] = {false, false, false, false};
        for (int a = 0; a < gpuCount(); ++a) {
          for (int b = 0; b < gpuCount(); ++b) {
            if (a == b) {
              continue;
            }
            const LinkClass c = gpuPairClassUncached(GpuId{a}, GpuId{b});
            fresh.pairClass[pairIndex(a, b)] = c;
            if (a < b) {
              present[static_cast<int>(c)] = true;
              auto& rep = fresh.representatives[static_cast<int>(c)];
              if (!rep) {
                rep = std::pair{GpuId{a}, GpuId{b}};
              }
            }
          }
        }
        for (int k = 0; k < 4; ++k) {
          if (present[k]) {
            fresh.presentClasses.push_back(static_cast<LinkClass>(k));
          }
        }
        fresh.classesValid = true;
      }
      cache_ = std::move(fresh);
      cacheReady_.store(true, std::memory_order_release);
    }
  }
  return cache_;
}

const Route& NodeTopology::routeHostToGpu(SocketId s, GpuId g) const {
  checkSocket(s);
  checkGpu(g);
  const auto& entry =
      routeCache().hostGpu[static_cast<std::size_t>(s.value) *
                               static_cast<std::size_t>(gpuCount()) +
                           static_cast<std::size_t>(g.value)];
  if (!entry) {
    (void)routeHostToGpuUncached(s, g);  // raises the original error
    throw InvariantError("route cache missed a resolvable host-GPU route");
  }
  return *entry;
}

const Route& NodeTopology::routeGpuToGpu(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  checkGpu(a);
  checkGpu(b);
  const auto& entry = routeCache().gpuGpu[pairIndex(a.value, b.value)];
  if (!entry) {
    (void)routeGpuToGpuUncached(a, b);  // raises the original error
    throw InvariantError("route cache missed a resolvable GPU-GPU route");
  }
  return *entry;
}

LinkClass NodeTopology::gpuPairClassUncached(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  NB_EXPECTS_MSG(flavor_ != GpuInterconnectFlavor::None,
                 "link classes are defined only for accelerator machines");
  const Link* direct = directGpuLink(a, b);
  switch (flavor_) {
    case GpuInterconnectFlavor::NvlinkAllToAll:
      return LinkClass::A;
    case GpuInterconnectFlavor::NvlinkPcieMix:
      return (direct != nullptr &&
              (direct->type == LinkType::NVLink2 ||
               direct->type == LinkType::NVLink3))
                 ? LinkClass::A
                 : LinkClass::B;
    case GpuInterconnectFlavor::InfinityFabric: {
      if (direct == nullptr) {
        return LinkClass::D;
      }
      switch (direct->count) {
        case 4: return LinkClass::A;
        case 2: return LinkClass::B;
        case 1: return LinkClass::C;
        default:
          throw InvariantError("unexpected Infinity Fabric link count " +
                               std::to_string(direct->count));
      }
    }
    case GpuInterconnectFlavor::None:
      break;
  }
  throw InvariantError("unhandled GPU interconnect flavour");
}

LinkClass NodeTopology::gpuPairClass(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  checkGpu(a);
  checkGpu(b);
  const RouteCache& cache = routeCache();
  if (!cache.classesValid) {
    // Degenerate topologies (single GPU, or flavour queried before it is
    // set) keep the uncached behaviour, including its precondition checks.
    return gpuPairClassUncached(a, b);
  }
  return cache.pairClass[pairIndex(a.value, b.value)];
}

std::vector<LinkClass> NodeTopology::presentGpuLinkClasses() const {
  const RouteCache& cache = routeCache();
  if (cache.classesValid) {
    return cache.presentClasses;
  }
  bool present[4] = {false, false, false, false};
  for (int i = 0; i < gpuCount(); ++i) {
    for (int j = i + 1; j < gpuCount(); ++j) {
      const LinkClass c = gpuPairClassUncached(GpuId{i}, GpuId{j});
      present[static_cast<int>(c)] = true;
    }
  }
  std::vector<LinkClass> out;
  for (int k = 0; k < 4; ++k) {
    if (present[k]) {
      out.push_back(static_cast<LinkClass>(k));
    }
  }
  return out;
}

std::optional<std::pair<GpuId, GpuId>> NodeTopology::representativePair(
    LinkClass c) const {
  if (c == LinkClass::None) {
    return std::nullopt;  // no pair ever classifies as None
  }
  const RouteCache& cache = routeCache();
  if (cache.classesValid) {
    return cache.representatives[static_cast<int>(c)];
  }
  for (int i = 0; i < gpuCount(); ++i) {
    for (int j = i + 1; j < gpuCount(); ++j) {
      if (gpuPairClassUncached(GpuId{i}, GpuId{j}) == c) {
        return std::pair{GpuId{i}, GpuId{j}};
      }
    }
  }
  return std::nullopt;
}

void NodeTopology::setHostGpuLinkBandwidth(SocketId s, GpuId g, Bandwidth bw) {
  checkSocket(s);
  checkGpu(g);
  const Link::Endpoint es{Link::EndpointKind::Socket, s.value};
  const Link::Endpoint eg{Link::EndpointKind::Gpu, g.value};
  for (Link& link : links_) {
    if (link.connects(es, eg)) {
      link.bandwidth = bw;
      invalidateRouteCache();
      return;
    }
  }
  throw NotFoundError("setHostGpuLinkBandwidth: no such link");
}

void NodeTopology::setLinkFailed(std::size_t linkIndex, bool failed) {
  NB_EXPECTS_MSG(linkIndex < links_.size(), "link index out of range");
  links_[linkIndex].failed = failed;
  invalidateRouteCache();
}

void NodeTopology::degradeLink(std::size_t linkIndex, double bandwidthFactor,
                               Duration addedLatency) {
  NB_EXPECTS_MSG(linkIndex < links_.size(), "link index out of range");
  NB_EXPECTS(bandwidthFactor > 0.0);
  Link& link = links_[linkIndex];
  link.bandwidth = link.bandwidth * bandwidthFactor;
  link.latency += addedLatency;
  invalidateRouteCache();
}

void NodeTopology::checkSocket(SocketId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < socketCount(),
                 "socket id out of range");
}
void NodeTopology::checkNuma(NumaId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < numaCount(),
                 "numa id out of range");
}
void NodeTopology::checkCore(CoreId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < coreCount(),
                 "core id out of range");
}
void NodeTopology::checkGpu(GpuId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < gpuCount(),
                 "gpu id out of range");
}

}  // namespace nodebench::topo
