#include "topo/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace nodebench::topo {

std::string_view linkTypeName(LinkType t) {
  switch (t) {
    case LinkType::PCIe3: return "PCIe3";
    case LinkType::PCIe4: return "PCIe4";
    case LinkType::NVLink2: return "NVLink2";
    case LinkType::NVLink3: return "NVLink3";
    case LinkType::XBus: return "X-Bus";
    case LinkType::UPI: return "UPI";
    case LinkType::InfinityFabric: return "InfinityFabric";
    case LinkType::KnlMesh: return "KNL-Mesh";
    case LinkType::Smp: return "SMP";
  }
  return "?";
}

std::string_view linkClassName(LinkClass c) {
  switch (c) {
    case LinkClass::A: return "A";
    case LinkClass::B: return "B";
    case LinkClass::C: return "C";
    case LinkClass::D: return "D";
    case LinkClass::None: return "-";
  }
  return "?";
}

SocketId NodeTopology::addSocket(std::string model) {
  sockets_.push_back(SocketInfo{std::move(model)});
  return SocketId{static_cast<int>(sockets_.size()) - 1};
}

NumaId NodeTopology::addNumaDomain(SocketId socket) {
  checkSocket(socket);
  numas_.push_back(NumaInfo{socket});
  return NumaId{static_cast<int>(numas_.size()) - 1};
}

CoreId NodeTopology::addCores(NumaId numa, int count, int smtThreads) {
  checkNuma(numa);
  NB_EXPECTS(count > 0);
  NB_EXPECTS(smtThreads >= 1);
  const CoreId first{static_cast<int>(cores_.size())};
  const SocketId socket = numas_[numa.value].socket;
  for (int i = 0; i < count; ++i) {
    cores_.push_back(CoreInfo{numa, socket, smtThreads, std::nullopt});
  }
  return first;
}

CoreId NodeTopology::addMeshCore(NumaId numa, MeshCoord coord, int smtThreads) {
  checkNuma(numa);
  NB_EXPECTS(smtThreads >= 1);
  const CoreId id{static_cast<int>(cores_.size())};
  const SocketId socket = numas_[numa.value].socket;
  cores_.push_back(CoreInfo{numa, socket, smtThreads, coord});
  return id;
}

GpuId NodeTopology::addGpu(std::string model, SocketId socket,
                           ByteCount memory, int packageIndex) {
  checkSocket(socket);
  gpus_.push_back(GpuInfo{std::move(model), socket, packageIndex, memory});
  return GpuId{static_cast<int>(gpus_.size()) - 1};
}

void NodeTopology::connectSockets(SocketId a, SocketId b, LinkType type,
                                  Duration latency, Bandwidth bandwidth) {
  checkSocket(a);
  checkSocket(b);
  NB_EXPECTS(a != b);
  links_.push_back(Link{{Link::EndpointKind::Socket, a.value},
                        {Link::EndpointKind::Socket, b.value},
                        type, 1, latency, bandwidth});
}

void NodeTopology::connectHostGpu(SocketId s, GpuId g, LinkType type,
                                  Duration latency, Bandwidth bandwidth) {
  checkSocket(s);
  checkGpu(g);
  links_.push_back(Link{{Link::EndpointKind::Socket, s.value},
                        {Link::EndpointKind::Gpu, g.value},
                        type, 1, latency, bandwidth});
}

void NodeTopology::connectGpuPeer(GpuId a, GpuId b, LinkType type, int count,
                                  Duration latency, Bandwidth bandwidth) {
  checkGpu(a);
  checkGpu(b);
  NB_EXPECTS(a != b);
  NB_EXPECTS(count >= 1);
  links_.push_back(Link{{Link::EndpointKind::Gpu, a.value},
                        {Link::EndpointKind::Gpu, b.value},
                        type, count, latency, bandwidth});
}

const SocketInfo& NodeTopology::socket(SocketId id) const {
  checkSocket(id);
  return sockets_[id.value];
}

const NumaInfo& NodeTopology::numa(NumaId id) const {
  checkNuma(id);
  return numas_[id.value];
}

const CoreInfo& NodeTopology::core(CoreId id) const {
  checkCore(id);
  return cores_[id.value];
}

const GpuInfo& NodeTopology::gpu(GpuId id) const {
  checkGpu(id);
  return gpus_[id.value];
}

std::vector<CoreId> NodeTopology::coresOfSocket(SocketId s) const {
  checkSocket(s);
  std::vector<CoreId> out;
  for (int i = 0; i < coreCount(); ++i) {
    if (cores_[i].socket == s) {
      out.push_back(CoreId{i});
    }
  }
  return out;
}

CpuPath NodeTopology::cpuPath(CoreId a, CoreId b) const {
  checkCore(a);
  checkCore(b);
  CpuPath path;
  path.sameCore = a == b;
  const CoreInfo& ca = cores_[a.value];
  const CoreInfo& cb = cores_[b.value];
  path.sameNuma = ca.numa == cb.numa;
  path.sameSocket = ca.socket == cb.socket;
  if (ca.mesh && cb.mesh) {
    path.meshDistance = std::abs(ca.mesh->row - cb.mesh->row) +
                        std::abs(ca.mesh->col - cb.mesh->col);
  }
  return path;
}

const Link* NodeTopology::directGpuLink(GpuId a, GpuId b) const {
  checkGpu(a);
  checkGpu(b);
  const Link::Endpoint ea{Link::EndpointKind::Gpu, a.value};
  const Link::Endpoint eb{Link::EndpointKind::Gpu, b.value};
  for (const Link& link : links_) {
    if (link.connects(ea, eb)) {
      return &link;
    }
  }
  return nullptr;
}

const Link& NodeTopology::hostGpuLink(SocketId s, GpuId g) const {
  checkSocket(s);
  checkGpu(g);
  const Link::Endpoint es{Link::EndpointKind::Socket, s.value};
  const Link::Endpoint eg{Link::EndpointKind::Gpu, g.value};
  for (const Link& link : links_) {
    if (link.connects(es, eg)) {
      return link;
    }
  }
  throw NotFoundError("no host-GPU link between socket " +
                      std::to_string(s.value) + " and GPU " +
                      std::to_string(g.value));
}

const Link& NodeTopology::socketLink(SocketId a, SocketId b) const {
  checkSocket(a);
  checkSocket(b);
  const Link::Endpoint ea{Link::EndpointKind::Socket, a.value};
  const Link::Endpoint eb{Link::EndpointKind::Socket, b.value};
  for (const Link& link : links_) {
    if (link.connects(ea, eb)) {
      return link;
    }
  }
  throw NotFoundError("no socket-socket link between " +
                      std::to_string(a.value) + " and " +
                      std::to_string(b.value));
}

namespace {

Route makeRoute(std::vector<const Link*> hops) {
  Route r;
  r.hops = std::move(hops);
  NB_ENSURES(!r.hops.empty());
  r.latency = Duration::zero();
  r.bottleneck = r.hops.front()->bandwidth;
  for (const Link* hop : r.hops) {
    r.latency += hop->latency;
    r.bottleneck = min(r.bottleneck, hop->bandwidth);
  }
  return r;
}

}  // namespace

Route NodeTopology::routeHostToGpu(SocketId s, GpuId g) const {
  checkSocket(s);
  checkGpu(g);
  const SocketId home = gpus_[g.value].socket;
  if (home == s) {
    return makeRoute({&hostGpuLink(s, g)});
  }
  // Traverse the inter-socket fabric first, then the device link.
  return makeRoute({&socketLink(s, home), &hostGpuLink(home, g)});
}

Route NodeTopology::routeGpuToGpu(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  if (const Link* direct = directGpuLink(a, b)) {
    return makeRoute({direct});
  }
  const SocketId sa = gpus_[a.value].socket;
  const SocketId sb = gpus_[b.value].socket;
  std::vector<const Link*> hops;
  hops.push_back(&hostGpuLink(sa, a));
  if (sa != sb) {
    hops.push_back(&socketLink(sa, sb));
  }
  hops.push_back(&hostGpuLink(sb, b));
  return makeRoute(std::move(hops));
}

LinkClass NodeTopology::gpuPairClass(GpuId a, GpuId b) const {
  NB_EXPECTS(a != b);
  NB_EXPECTS_MSG(flavor_ != GpuInterconnectFlavor::None,
                 "link classes are defined only for accelerator machines");
  const Link* direct = directGpuLink(a, b);
  switch (flavor_) {
    case GpuInterconnectFlavor::NvlinkAllToAll:
      return LinkClass::A;
    case GpuInterconnectFlavor::NvlinkPcieMix:
      return (direct != nullptr &&
              (direct->type == LinkType::NVLink2 ||
               direct->type == LinkType::NVLink3))
                 ? LinkClass::A
                 : LinkClass::B;
    case GpuInterconnectFlavor::InfinityFabric: {
      if (direct == nullptr) {
        return LinkClass::D;
      }
      switch (direct->count) {
        case 4: return LinkClass::A;
        case 2: return LinkClass::B;
        case 1: return LinkClass::C;
        default:
          throw InvariantError("unexpected Infinity Fabric link count " +
                               std::to_string(direct->count));
      }
    }
    case GpuInterconnectFlavor::None:
      break;
  }
  throw InvariantError("unhandled GPU interconnect flavour");
}

std::vector<LinkClass> NodeTopology::presentGpuLinkClasses() const {
  bool present[4] = {false, false, false, false};
  for (int i = 0; i < gpuCount(); ++i) {
    for (int j = i + 1; j < gpuCount(); ++j) {
      const LinkClass c = gpuPairClass(GpuId{i}, GpuId{j});
      present[static_cast<int>(c)] = true;
    }
  }
  std::vector<LinkClass> out;
  for (int k = 0; k < 4; ++k) {
    if (present[k]) {
      out.push_back(static_cast<LinkClass>(k));
    }
  }
  return out;
}

std::optional<std::pair<GpuId, GpuId>> NodeTopology::representativePair(
    LinkClass c) const {
  for (int i = 0; i < gpuCount(); ++i) {
    for (int j = i + 1; j < gpuCount(); ++j) {
      if (gpuPairClass(GpuId{i}, GpuId{j}) == c) {
        return std::pair{GpuId{i}, GpuId{j}};
      }
    }
  }
  return std::nullopt;
}

void NodeTopology::setHostGpuLinkBandwidth(SocketId s, GpuId g, Bandwidth bw) {
  checkSocket(s);
  checkGpu(g);
  const Link::Endpoint es{Link::EndpointKind::Socket, s.value};
  const Link::Endpoint eg{Link::EndpointKind::Gpu, g.value};
  for (Link& link : links_) {
    if (link.connects(es, eg)) {
      link.bandwidth = bw;
      return;
    }
  }
  throw NotFoundError("setHostGpuLinkBandwidth: no such link");
}

void NodeTopology::checkSocket(SocketId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < socketCount(),
                 "socket id out of range");
}
void NodeTopology::checkNuma(NumaId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < numaCount(),
                 "numa id out of range");
}
void NodeTopology::checkCore(CoreId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < coreCount(),
                 "core id out of range");
}
void NodeTopology::checkGpu(GpuId id) const {
  NB_EXPECTS_MSG(id.value >= 0 && id.value < gpuCount(),
                 "gpu id out of range");
}

}  // namespace nodebench::topo
