#include "topo/dot.hpp"

#include <cstdio>

namespace nodebench::topo {

namespace {

std::string endpointName(const Link::Endpoint& e) {
  if (e.kind == Link::EndpointKind::Socket) {
    return "socket" + std::to_string(e.id);
  }
  return "gpu" + std::to_string(e.id);
}

}  // namespace

std::string toDot(const NodeTopology& topology, const std::string& graphName) {
  std::string out = "graph \"" + graphName + "\" {\n";
  out += "  graph [layout=neato, overlap=false];\n";
  for (int s = 0; s < topology.socketCount(); ++s) {
    out += "  socket" + std::to_string(s) + " [shape=box, label=\"" +
           topology.socket(SocketId{s}).model + "\\nsocket " +
           std::to_string(s) + "\"];\n";
  }
  for (int g = 0; g < topology.gpuCount(); ++g) {
    const GpuInfo& info = topology.gpu(GpuId{g});
    std::string label = info.model + "\\ngpu " + std::to_string(g);
    if (info.packageIndex >= 0) {
      label += " (pkg " + std::to_string(info.packageIndex) + ")";
    }
    out += "  gpu" + std::to_string(g) + " [shape=ellipse, label=\"" + label +
           "\"];\n";
  }
  for (const Link& link : topology.links()) {
    char props[128];
    std::snprintf(props, sizeof(props), "%sx%d\\n%.2f us, %.0f GB/s",
                  std::string(linkTypeName(link.type)).c_str(), link.count,
                  link.latency.us(), link.bandwidth.inGBps());
    out += "  " + endpointName(link.a) + " -- " + endpointName(link.b) +
           " [label=\"" + props + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace nodebench::topo
