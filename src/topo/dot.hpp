#pragma once
/// \file dot.hpp
/// \brief Graphviz DOT export of a node topology (machine-readable
/// companion to the ASCII node diagrams of Figures 1-3).

#include <string>

#include "topo/topology.hpp"

namespace nodebench::topo {

/// Renders the topology as an undirected Graphviz graph. Sockets become
/// box nodes, GPUs become ellipse nodes; edges carry the link type, count
/// and physical properties as labels.
[[nodiscard]] std::string toDot(const NodeTopology& topology,
                                const std::string& graphName);

}  // namespace nodebench::topo
