#pragma once
/// \file commscope.hpp
/// \brief Comm|Scope 0.12.0 re-implementation over the simulated GPU
/// runtime (the five test families the paper runs, §B.2):
///   Comm_cudart_kernel / Comm_hip_kernel        -> kernelLaunch
///   Comm_cudaDeviceSynchronize / hip...         -> syncWait
///   Comm_*MemcpyAsync_PinnedToGPU / GPUToPinned -> hostDevice{Latency,Bandwidth}
///   Comm_*MemcpyAsync_GPUToGPU                  -> d2d{Latency,Bandwidth}
///
/// Measurement definitions follow the paper exactly: launch latency is
/// the wall time to *launch* (not complete) an empty zero-argument
/// kernel; wait latency is a device synchronize with an empty queue;
/// copies are invoked and completed; H->D and D->H are averaged; latency
/// uses 128 B transfers, bandwidth 1 GiB transfers; 100 binary runs feed
/// the mean ± sigma.

#include <optional>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/machine.hpp"
#include "topo/types.hpp"

namespace nodebench::commscope {

/// Raw-sample channels (core/samples.hpp): one value per binary run,
/// named per quantity so a single capture around measureAll() can still
/// attribute samples to the individual Table 6 cells.
inline constexpr const char* kLaunchSampleChannel = "commscope.launch_us";
inline constexpr const char* kWaitSampleChannel = "commscope.wait_us";
inline constexpr const char* kHdLatencySampleChannel =
    "commscope.hd_latency_us";
inline constexpr const char* kHdBandwidthSampleChannel =
    "commscope.hd_bandwidth_gbps";
inline constexpr const char* kD2dLatencySampleChannel =
    "commscope.d2d_latency_us";
inline constexpr const char* kD2dBandwidthSampleChannel =
    "commscope.d2d_bandwidth_gbps";
inline constexpr const char* kD2dDuplexSampleChannel =
    "commscope.d2d_duplex_gbps";
inline constexpr const char* kUmPrefetchSampleChannel =
    "commscope.um_prefetch_gbps";
inline constexpr const char* kUmDemandSampleChannel =
    "commscope.um_demand_gbps";

struct Config {
  ByteCount latencyProbe = ByteCount::bytes(128);
  ByteCount bandwidthProbe = ByteCount::gib(1);
  int binaryRuns = 100;
  std::uint64_t seed = 0xc035c09e01u;
};

/// All Table 6 quantities for one machine.
struct MachineResults {
  Summary launchUs;
  Summary waitUs;
  Summary hostDeviceLatencyUs;
  Summary hostDeviceBandwidthGBps;
  /// Indexed by link class A..D; nullopt for absent classes.
  std::array<std::optional<Summary>, 4> d2dLatencyUs;
};

class CommScope {
 public:
  /// Precondition: accelerator machine. The machine must outlive this.
  explicit CommScope(const machines::Machine& machine);

  // -- noiseless single measurements (exposed for tests/ablations) --------
  [[nodiscard]] Duration truthKernelLaunch();
  [[nodiscard]] Duration truthSyncWait();
  /// (H->D + D->H)/2 completion time for `bytes`.
  [[nodiscard]] Duration truthHostDeviceTime(ByteCount bytes);
  /// D2D completion time between the class's representative pair.
  [[nodiscard]] Duration truthD2dTime(topo::LinkClass linkClass,
                                      ByteCount bytes);

  // -- aggregated benchmarks (100 binary runs, mean ± sigma) --------------
  [[nodiscard]] Summary kernelLaunchUs(const Config& config);
  [[nodiscard]] Summary syncWaitUs(const Config& config);
  [[nodiscard]] Summary hostDeviceLatencyUs(const Config& config);
  [[nodiscard]] Summary hostDeviceBandwidthGBps(const Config& config);
  [[nodiscard]] Summary d2dLatencyUs(topo::LinkClass linkClass,
                                     const Config& config);
  [[nodiscard]] Summary d2dBandwidthGBps(topo::LinkClass linkClass,
                                         const Config& config);

  /// Unified-memory extension (Comm|Scope's Comm_UM_* family): explicit
  /// prefetch bandwidth of a 1 GiB managed buffer host->device, and the
  /// demand-paging "coherence" bandwidth when the device touches
  /// host-resident pages (per-fault service latency dominates).
  [[nodiscard]] Duration truthUmPrefetchTime(ByteCount bytes);
  [[nodiscard]] Duration truthUmDemandTime(ByteCount bytes);
  [[nodiscard]] Summary umPrefetchBandwidthGBps(const Config& config);
  [[nodiscard]] Summary umDemandBandwidthGBps(const Config& config);

  /// Duplex extension (Comm|Scope's *_Duplex tests): both directions of
  /// the pair stream concurrently on their own devices' streams; reports
  /// aggregate bandwidth. On full-duplex fabrics this approaches twice
  /// the unidirectional figure.
  [[nodiscard]] Duration truthD2dDuplexTime(topo::LinkClass linkClass,
                                            ByteCount bytesPerDirection);
  [[nodiscard]] Summary d2dDuplexBandwidthGBps(topo::LinkClass linkClass,
                                               const Config& config);

  /// Runs everything Table 6 needs for this machine.
  [[nodiscard]] MachineResults measureAll(const Config& config);

 private:
  /// Aggregates `truthUs * noise` over binary runs, recording each draw
  /// on the quantity's raw-sample channel.
  [[nodiscard]] Summary aggregate(double truthUs, double cv,
                                  const Config& config,
                                  std::uint64_t streamSalt,
                                  const char* channel) const;

  gpusim::GpuRuntime runtime_;
};

}  // namespace nodebench::commscope
