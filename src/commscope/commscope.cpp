#include "commscope/commscope.hpp"

#include "core/samples.hpp"

namespace nodebench::commscope {

using gpusim::Buffer;
using gpusim::StreamId;
using topo::GpuId;
using topo::LinkClass;

CommScope::CommScope(const machines::Machine& machine) : runtime_(machine) {
  NB_EXPECTS(runtime_.deviceCount() >= 1);
}

Duration CommScope::truthKernelLaunch() {
  runtime_.reset();
  const StreamId stream = runtime_.defaultStream(0);
  const Duration start = runtime_.hostNow();
  runtime_.launchKernel(stream, Duration::zero());  // empty zero-arg kernel
  return runtime_.hostNow() - start;  // launch only: no synchronize
}

Duration CommScope::truthSyncWait() {
  runtime_.reset();
  const Duration start = runtime_.hostNow();
  runtime_.deviceSynchronize(0);  // empty work queue
  return runtime_.hostNow() - start;
}

Duration CommScope::truthHostDeviceTime(ByteCount bytes) {
  const Buffer host = runtime_.allocPinnedHost(bytes);
  const Buffer dev = runtime_.allocDevice(0, bytes);
  const StreamId stream = runtime_.defaultStream(0);

  runtime_.reset();
  Duration start = runtime_.hostNow();
  runtime_.memcpyAsync(stream, dev, host, bytes);  // PinnedToGPU
  runtime_.streamSynchronize(stream);
  const Duration h2d = runtime_.hostNow() - start;

  runtime_.reset();
  start = runtime_.hostNow();
  runtime_.memcpyAsync(stream, host, dev, bytes);  // GPUToPinned
  runtime_.streamSynchronize(stream);
  const Duration d2h = runtime_.hostNow() - start;

  return (h2d + d2h) * 0.5;  // the paper averages the two directions
}

Duration CommScope::truthD2dTime(LinkClass linkClass, ByteCount bytes) {
  const auto pair = runtime_.machine().topology.representativePair(linkClass);
  NB_EXPECTS_MSG(pair.has_value(), "machine lacks the requested link class");
  const Buffer src = runtime_.allocDevice(pair->first.value, bytes);
  const Buffer dst = runtime_.allocDevice(pair->second.value, bytes);
  const StreamId stream = runtime_.defaultStream(pair->first.value);

  runtime_.reset();
  const Duration start = runtime_.hostNow();
  runtime_.memcpyAsync(stream, dst, src, bytes);
  runtime_.streamSynchronize(stream);
  return runtime_.hostNow() - start;
}

Summary CommScope::aggregate(double truthUs, double cv, const Config& config,
                             std::uint64_t streamSalt,
                             const char* channel) const {
  NB_EXPECTS(config.binaryRuns > 0);
  const NoiseModel noise(cv);
  Welford acc;
  for (int run = 0; run < config.binaryRuns; ++run) {
    Xoshiro256 rng(config.seed + runtime_.machine().seed + streamSalt +
                   0x9e3779b9u * static_cast<std::uint64_t>(run));
    const double value = truthUs * noise.sampleFactor(rng);
    acc.add(value);
    recordSample(channel, value);
  }
  return acc.summary();
}

Summary CommScope::kernelLaunchUs(const Config& config) {
  return aggregate(truthKernelLaunch().us(),
                   runtime_.machine().device->cvLaunch, config, 0x11,
                   kLaunchSampleChannel);
}

Summary CommScope::syncWaitUs(const Config& config) {
  return aggregate(truthSyncWait().us(), runtime_.machine().device->cvWait,
                   config, 0x22, kWaitSampleChannel);
}

Summary CommScope::hostDeviceLatencyUs(const Config& config) {
  return aggregate(truthHostDeviceTime(config.latencyProbe).us(),
                   runtime_.machine().device->cvXferLat, config, 0x33,
                   kHdLatencySampleChannel);
}

Summary CommScope::hostDeviceBandwidthGBps(const Config& config) {
  const Duration t = truthHostDeviceTime(config.bandwidthProbe);
  const double gbps = config.bandwidthProbe.asDouble() / t.ns();
  return aggregate(gbps, runtime_.machine().device->cvXferBw, config, 0x44,
                   kHdBandwidthSampleChannel);
}

Summary CommScope::d2dLatencyUs(LinkClass linkClass, const Config& config) {
  return aggregate(truthD2dTime(linkClass, config.latencyProbe).us(),
                   runtime_.machine().device->cvD2D, config,
                   0x55 + static_cast<std::uint64_t>(linkClass),
                   kD2dLatencySampleChannel);
}

Summary CommScope::d2dBandwidthGBps(LinkClass linkClass,
                                    const Config& config) {
  const Duration t = truthD2dTime(linkClass, config.bandwidthProbe);
  const double gbps = config.bandwidthProbe.asDouble() / t.ns();
  return aggregate(gbps, runtime_.machine().device->cvXferBw, config,
                   0x66 + static_cast<std::uint64_t>(linkClass),
                   kD2dBandwidthSampleChannel);
}

Duration CommScope::truthUmPrefetchTime(ByteCount bytes) {
  runtime_.reset();
  auto managed = runtime_.allocManaged(bytes);
  const StreamId stream = runtime_.defaultStream(0);
  const Duration start = runtime_.hostNow();
  runtime_.prefetchAsync(stream, managed, /*device=*/0);
  runtime_.streamSynchronize(stream);
  return runtime_.hostNow() - start;
}

Duration CommScope::truthUmDemandTime(ByteCount bytes) {
  runtime_.reset();
  auto managed = runtime_.allocManaged(bytes);
  const Duration start = runtime_.hostNow();
  (void)runtime_.touchManaged(managed, /*device=*/0);
  return runtime_.hostNow() - start;
}

Summary CommScope::umPrefetchBandwidthGBps(const Config& config) {
  const Duration t = truthUmPrefetchTime(config.bandwidthProbe);
  return aggregate(config.bandwidthProbe.asDouble() / t.ns(),
                   runtime_.machine().device->cvXferBw, config, 0x88,
                   kUmPrefetchSampleChannel);
}

Summary CommScope::umDemandBandwidthGBps(const Config& config) {
  const Duration t = truthUmDemandTime(config.bandwidthProbe);
  return aggregate(config.bandwidthProbe.asDouble() / t.ns(),
                   runtime_.machine().device->cvXferLat, config, 0x99,
                   kUmDemandSampleChannel);
}

Duration CommScope::truthD2dDuplexTime(LinkClass linkClass,
                                       ByteCount bytesPerDirection) {
  const auto pair = runtime_.machine().topology.representativePair(linkClass);
  NB_EXPECTS_MSG(pair.has_value(), "machine lacks the requested link class");
  const Buffer a = runtime_.allocDevice(pair->first.value, bytesPerDirection);
  const Buffer b = runtime_.allocDevice(pair->second.value,
                                        bytesPerDirection);
  const StreamId sa = runtime_.defaultStream(pair->first.value);
  const StreamId sb = runtime_.defaultStream(pair->second.value);

  runtime_.reset();
  const Duration start = runtime_.hostNow();
  runtime_.memcpyAsync(sa, b, a, bytesPerDirection);  // a -> b
  runtime_.memcpyAsync(sb, a, b, bytesPerDirection);  // b -> a, concurrent
  runtime_.streamSynchronize(sa);
  runtime_.streamSynchronize(sb);
  return runtime_.hostNow() - start;
}

Summary CommScope::d2dDuplexBandwidthGBps(LinkClass linkClass,
                                          const Config& config) {
  const Duration t = truthD2dDuplexTime(linkClass, config.bandwidthProbe);
  const double gbps = 2.0 * config.bandwidthProbe.asDouble() / t.ns();
  return aggregate(gbps, runtime_.machine().device->cvXferBw, config,
                   0x77 + static_cast<std::uint64_t>(linkClass),
                   kD2dDuplexSampleChannel);
}

MachineResults CommScope::measureAll(const Config& config) {
  MachineResults out;
  out.launchUs = kernelLaunchUs(config);
  out.waitUs = syncWaitUs(config);
  out.hostDeviceLatencyUs = hostDeviceLatencyUs(config);
  out.hostDeviceBandwidthGBps = hostDeviceBandwidthGBps(config);
  for (const LinkClass c :
       runtime_.machine().topology.presentGpuLinkClasses()) {
    out.d2dLatencyUs[static_cast<int>(c)] = d2dLatencyUs(c, config);
  }
  return out;
}

}  // namespace nodebench::commscope
