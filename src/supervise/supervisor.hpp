#pragma once
/// \file supervisor.hpp
/// \brief `nodebench supervise` — the fault-tolerant lease-based
/// campaign coordinator.
///
/// Replaces the `shard` driver's fork-and-pray model (launch N workers,
/// wait, hope) with a worker-pull protocol: shard leases live in a
/// bounded slot pool, workers are launched as slots free up, each worker
/// heartbeats through the file contract (heartbeat.hpp) and journals its
/// slice exactly as PR 8's shard workers do. The supervisor:
///
///  - expires a lease when the worker dies, misses heartbeats, or
///    exceeds the attempt wall-clock budget, and reassigns the shard
///    with deterministic capped-exponential backoff (backoff.hpp) — the
///    replacement *resumes* the dead worker's crash-safe journal, never
///    re-measures finished cells;
///  - quarantines a shard as poisoned after `maxAttempts` failed
///    attempts and degrades to a partial merge: merged journal/store of
///    the healthy shards plus a gap manifest naming every missing shard
///    and cell, exiting with a distinct code (44) — never a silently
///    smaller table;
///  - survives its own SIGKILL: every lease transition is an fsynced
///    CRC-framed event in the supervisor journal (journal.hpp), so
///    `--resume` replays the state, kills/releases stale workers, and
///    continues;
///  - stays byte-identical: an all-shards-healthy supervised campaign's
///    merged journal and store `cmp` equal to a single-process
///    `--jobs 1` run, chaos or no chaos.
///
/// Workers are local processes today, but every contract they depend on
/// (journals, stores, heartbeats, leases) is a file, so the protocol is
/// host-agnostic by construction.

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "supervise/backoff.hpp"

namespace nodebench::supervise {

/// Exit code of a supervised campaign that completed with poisoned
/// shards: the merged artifacts are partial (see the gap manifest).
/// Distinct from success (0), generic failure (1), and interruption
/// (43), so scripts can tell "partial but explicit" from everything
/// else.
inline constexpr int kPartialCampaignExitCode = 44;

struct SuperviseOptions {
  std::string table;        ///< table selector ("4", "all", ...)
  std::uint32_t shards = 0;
  /// Concurrent worker slots (the bounded lease pool); 0 = one slot per
  /// shard (full fan-out, the shard driver's behaviour).
  std::uint32_t workers = 0;
  std::string journalBase;  ///< workers journal to BASE.shard<i>of<N>
  std::string storeBase;    ///< optional shard stores
  std::string supervisorJournalPath;  ///< default: journalBase + ".supervisor"
  std::uint32_t runs = 0;   ///< 0 = table default
  std::uint32_t jobs = 0;   ///< per-worker --jobs; 0 = worker default
  std::string faultsPath;
  std::uint32_t maxAttempts = 3;
  BackoffPolicy backoff;
  std::uint32_t heartbeatIntervalMs = 100;
  std::uint32_t heartbeatTimeoutMs = 5000;
  std::uint32_t attemptTimeoutMs = 0;  ///< 0 = no wall-clock straggler cap
  bool resume = false;
  std::string mergeOut;       ///< merged journal path ("" = skip merge)
  std::string mergeStoreOut;  ///< merged store path (requires storeBase)
  std::string gapOut;         ///< gap manifest path; default mergeOut + ".gaps.json"
  std::uint32_t testCellDelayMs = 0;  ///< forwarded test hook
  /// Test hook: workers for this shard run `--test-fail-run` (fail after
  /// opening the journal), deterministically poisoning the shard.
  std::int64_t testPoisonShard = -1;
  /// Test hook: this shard's *first* attempt stalls its heartbeat after
  /// one beat, forcing a heartbeat expiry + reassignment.
  std::int64_t testStallShard = -1;
  /// Set by the CLI's SIGINT/SIGTERM handler; the event loop polls it
  /// and drains (SIGTERM to workers, exit 43). nullptr = no signal
  /// integration (tests).
  const volatile std::sig_atomic_t* stopFlag = nullptr;
};

struct SuperviseResult {
  int exitCode = 0;  ///< 0, kInterruptedExitCode, or kPartialCampaignExitCode
  std::vector<campaign::ShardGap> quarantined;  ///< poisoned shards
};

/// Runs the supervised campaign to completion (or interruption). Throws
/// Error on configuration problems; worker failures are not exceptions,
/// they are the job.
[[nodiscard]] SuperviseResult runSupervise(const SuperviseOptions& options);

}  // namespace nodebench::supervise
