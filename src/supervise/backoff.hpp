#pragma once
/// \file backoff.hpp
/// \brief Deterministic capped-exponential retry backoff for shard
/// reassignment.
///
/// When the supervisor expires a worker's lease it does not relaunch
/// immediately — a machine-level cause (OOM pressure, a flapping
/// filesystem) would just kill the replacement too. Attempt k waits
/// `min(cap, base * 2^(k-1))` plus jitter. The jitter is *seeded from
/// the campaign fingerprint* (the same discipline as the bootstrap CIs
/// in src/stats): two runs of the same campaign produce byte-identical
/// retry schedules, so a chaos-suite failure reproduces instead of
/// flaking.

#include <cstdint>

#include "campaign/journal.hpp"

namespace nodebench::supervise {

/// Backoff shape. `jitterFrac` bounds the added jitter as a fraction of
/// the deterministic delay: delay + uniform[0, jitterFrac * delay).
struct BackoffPolicy {
  std::uint32_t baseMs = 250;
  std::uint32_t capMs = 5000;
  double jitterFrac = 0.5;
};

/// The jitter seed for (campaign, shard, attempt): an FNV-1a mix of
/// every fingerprint field the journal header carries (except `jobs`,
/// which is provenance, not identity) plus the shard index and attempt
/// number. Stable across processes, platforms, and reruns.
[[nodiscard]] std::uint64_t retrySeed(const campaign::CampaignConfig& config,
                                      std::uint32_t shard,
                                      std::uint32_t attempt);

/// The delay before launching attempt `attempt + 1` after `attempt`
/// failed attempts (attempt >= 1). Pure function of (policy, seed,
/// attempt) — see retrySeed for the determinism contract.
[[nodiscard]] std::uint32_t backoffDelayMs(const BackoffPolicy& policy,
                                           std::uint64_t seed,
                                           std::uint32_t attempt);

}  // namespace nodebench::supervise
