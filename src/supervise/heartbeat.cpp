#include "supervise/heartbeat.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace nodebench::supervise {

std::string heartbeatPath(const std::string& shardJournalPath) {
  return shardJournalPath + ".hb";
}

std::optional<Heartbeat> readHeartbeatFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::string tag;
  Heartbeat beat;
  in >> tag >> beat.pid >> beat.seq;
  if (!in || tag != "nbhb") {
    return std::nullopt;
  }
  return beat;
}

void writeHeartbeatFile(const std::string& path, const Heartbeat& beat) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return;
    }
    out << "nbhb " << beat.pid << " " << beat.seq << "\n";
    if (!out.flush()) {
      (void)std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
  }
}

HeartbeatWriter::HeartbeatWriter(std::string path, std::uint32_t intervalMs,
                                 std::uint64_t stallAfter)
    : path_(std::move(path)),
      intervalMs_(intervalMs == 0 ? 1 : intervalMs),
      stallAfter_(stallAfter) {
  thread_ = std::thread([this] { run(); });
}

HeartbeatWriter::~HeartbeatWriter() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void HeartbeatWriter::run() {
  const auto pid = static_cast<std::uint64_t>(::getpid());
  std::uint64_t seq = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (stallAfter_ == 0 || seq < stallAfter_) {
      ++seq;
      lock.unlock();
      writeHeartbeatFile(path_, Heartbeat{pid, seq});
      beats_.store(seq, std::memory_order_relaxed);
      lock.lock();
    }
    cv_.wait_for(lock, std::chrono::milliseconds(intervalMs_),
                 [this] { return stop_; });
  }
}

}  // namespace nodebench::supervise
