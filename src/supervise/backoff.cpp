#include "supervise/backoff.hpp"

#include <algorithm>

#include "core/checksum.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace nodebench::supervise {

std::uint64_t retrySeed(const campaign::CampaignConfig& config,
                        std::uint32_t shard, std::uint32_t attempt) {
  std::uint64_t h = Fnv1a::init();
  h = Fnv1a::mix(h, std::string_view("nodebench-supervise-backoff-v1"));
  h = Fnv1a::mix(h, config.registryHash);
  h = Fnv1a::mix(h, config.faultPlanHash);
  h = Fnv1a::mix(h, config.seed);
  h = Fnv1a::mix(h, static_cast<std::uint64_t>(config.runs));
  h = Fnv1a::mix(h, static_cast<std::uint64_t>(config.cellRetries));
  h = Fnv1a::mix(h, config.cpuArrayBytes);
  h = Fnv1a::mix(h, config.gpuArrayBytes);
  h = Fnv1a::mix(h, config.mpiMessageSize);
  h = Fnv1a::mix(h, static_cast<std::uint64_t>(shard));
  h = Fnv1a::mix(h, static_cast<std::uint64_t>(attempt));
  return h;
}

std::uint32_t backoffDelayMs(const BackoffPolicy& policy, std::uint64_t seed,
                             std::uint32_t attempt) {
  NB_EXPECTS(attempt >= 1);
  NB_EXPECTS(policy.jitterFrac >= 0.0 && policy.jitterFrac <= 1.0);
  // min(cap, base << (attempt - 1)), with the shift saturated long
  // before it could overflow.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 31);
  const std::uint64_t raw = static_cast<std::uint64_t>(policy.baseMs) << shift;
  const auto delay = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(raw, policy.capMs));
  Xoshiro256 rng(seed);
  const auto jitter = static_cast<std::uint32_t>(
      static_cast<double>(delay) * policy.jitterFrac * rng.uniform01());
  return delay + jitter;
}

}  // namespace nodebench::supervise
