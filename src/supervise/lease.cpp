#include "supervise/lease.hpp"

#include <utility>

#include "core/error.hpp"

namespace nodebench::supervise {

LeaseScheduler::LeaseScheduler(std::uint32_t shards,
                               std::uint32_t maxAttempts, BackoffPolicy policy,
                               campaign::CampaignConfig config)
    : maxAttempts_(maxAttempts),
      policy_(policy),
      config_(std::move(config)),
      leases_(shards) {
  NB_EXPECTS(shards >= 1);
  NB_EXPECTS(maxAttempts >= 1);
}

std::optional<std::uint32_t> LeaseScheduler::acquire(std::int64_t nowMs) {
  for (std::uint32_t i = 0; i < leases_.size(); ++i) {
    Lease& lease = leases_[i];
    if (lease.state == ShardState::Pending && lease.notBeforeMs <= nowMs) {
      lease.state = ShardState::Leased;
      lease.pid = 0;
      ++lease.attempts;
      return i;
    }
  }
  return std::nullopt;
}

void LeaseScheduler::bind(std::uint32_t shard, std::uint64_t pid) {
  NB_EXPECTS(shard < leases_.size());
  NB_EXPECTS(leases_[shard].state == ShardState::Leased);
  leases_[shard].pid = pid;
}

void LeaseScheduler::complete(std::uint32_t shard) {
  NB_EXPECTS(shard < leases_.size());
  NB_EXPECTS(leases_[shard].state == ShardState::Leased);
  leases_[shard].state = ShardState::Done;
  leases_[shard].pid = 0;
}

ShardState LeaseScheduler::fail(std::uint32_t shard,
                                const std::string& incident,
                                std::int64_t nowMs) {
  NB_EXPECTS(shard < leases_.size());
  Lease& lease = leases_[shard];
  NB_EXPECTS(lease.state == ShardState::Leased);
  lease.pid = 0;
  lease.lastIncident = incident;
  if (lease.attempts >= maxAttempts_) {
    lease.state = ShardState::Poisoned;
    return lease.state;
  }
  lease.state = ShardState::Pending;
  lease.notBeforeMs =
      nowMs + backoffDelayMs(policy_, retrySeed(config_, shard, lease.attempts),
                             lease.attempts);
  return lease.state;
}

void LeaseScheduler::release(std::uint32_t shard) {
  NB_EXPECTS(shard < leases_.size());
  Lease& lease = leases_[shard];
  NB_EXPECTS(lease.state == ShardState::Leased);
  NB_EXPECTS(lease.attempts >= 1);
  lease.state = ShardState::Pending;
  lease.pid = 0;
  --lease.attempts;  // the attempt was never accounted: un-burn it
}

void LeaseScheduler::replay(const std::vector<SupervisorEvent>& events,
                            std::int64_t nowMs) {
  // The journal passed its CRCs, but the event *sequence* is still
  // untrusted (a forged or mis-copied file): violations get a clean
  // refusal, not a precondition trap.
  const auto refuse = [](std::uint32_t shard, const char* why) {
    throw SupervisorJournalError(
        "cannot replay supervisor journal: shard " + std::to_string(shard) +
        " " + why + " — the event log is inconsistent");
  };
  for (const SupervisorEvent& event : events) {
    if (event.shard >= leases_.size()) {
      refuse(event.shard, "is out of range");
    }
    Lease& lease = leases_[event.shard];
    switch (event.kind) {
      case EventKind::AttemptStarted:
        // Mirrors acquire() + bind(): the journal records the decision
        // the scheduler made, so replay re-applies it directly.
        if (lease.state != ShardState::Pending) {
          refuse(event.shard, "starts an attempt while not pending");
        }
        lease.state = ShardState::Leased;
        lease.attempts = event.attempt;
        lease.pid = event.pid;
        break;
      case EventKind::AttemptFailed:
        if (lease.state != ShardState::Leased) {
          refuse(event.shard, "fails an attempt that never started");
        }
        (void)fail(event.shard, event.detail, nowMs);
        break;
      case EventKind::ShardDone:
        if (lease.state != ShardState::Leased) {
          refuse(event.shard, "completes an attempt that never started");
        }
        complete(event.shard);
        break;
      case EventKind::ShardPoisoned:
        // fail() already poisoned the lease when the threshold was hit;
        // the explicit event is the durable record for merge tooling.
        if (lease.state != ShardState::Poisoned) {
          refuse(event.shard,
                 "is declared poisoned before its attempts were exhausted");
        }
        break;
    }
  }
}

const Lease& LeaseScheduler::lease(std::uint32_t shard) const {
  NB_EXPECTS(shard < leases_.size());
  return leases_[shard];
}

bool LeaseScheduler::allResolved() const {
  for (const Lease& lease : leases_) {
    if (lease.state != ShardState::Done &&
        lease.state != ShardState::Poisoned) {
      return false;
    }
  }
  return true;
}

bool LeaseScheduler::anyPoisoned() const {
  for (const Lease& lease : leases_) {
    if (lease.state == ShardState::Poisoned) {
      return true;
    }
  }
  return false;
}

std::size_t LeaseScheduler::leasedCount() const {
  std::size_t n = 0;
  for (const Lease& lease : leases_) {
    if (lease.state == ShardState::Leased) {
      ++n;
    }
  }
  return n;
}

std::vector<campaign::ShardGap> LeaseScheduler::quarantined() const {
  std::vector<campaign::ShardGap> gaps;
  for (std::uint32_t i = 0; i < leases_.size(); ++i) {
    if (leases_[i].state == ShardState::Poisoned) {
      campaign::ShardGap gap;
      gap.shard = i;
      gap.attempts = leases_[i].attempts;
      gap.lastIncident = leases_[i].lastIncident;
      gaps.push_back(std::move(gap));
    }
  }
  return gaps;
}

std::vector<std::uint32_t> LeaseScheduler::doneShards() const {
  std::vector<std::uint32_t> done;
  for (std::uint32_t i = 0; i < leases_.size(); ++i) {
    if (leases_[i].state == ShardState::Done) {
      done.push_back(i);
    }
  }
  return done;
}

std::optional<std::int64_t> LeaseScheduler::nextPendingReadyMs() const {
  std::optional<std::int64_t> earliest;
  for (const Lease& lease : leases_) {
    if (lease.state == ShardState::Pending &&
        (!earliest || lease.notBeforeMs < *earliest)) {
      earliest = lease.notBeforeMs;
    }
  }
  return earliest;
}

}  // namespace nodebench::supervise
