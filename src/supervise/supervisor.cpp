#include "supervise/supervisor.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "campaign/io.hpp"
#include "campaign/journal.hpp"
#include "core/cancel.hpp"
#include "core/deadline.hpp"
#include "core/error.hpp"
#include "faults/fault_plan.hpp"
#include "report/tables.hpp"
#include "stats/merge.hpp"
#include "supervise/heartbeat.hpp"
#include "supervise/journal.hpp"
#include "supervise/lease.hpp"

namespace nodebench::supervise {
namespace {

/// The supervisor's real clock, exposed both as lease-scheduler virtual
/// milliseconds and as DeadlineMonitor time points, with one shared
/// epoch so the two views can never drift.
class WallClock {
 public:
  WallClock() : t0_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] std::int64_t nowMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  [[nodiscard]] std::chrono::steady_clock::time_point at(
      std::int64_t ms) const {
    return t0_ + std::chrono::milliseconds(ms);
  }

  [[nodiscard]] std::chrono::steady_clock::time_point now() const {
    return std::chrono::steady_clock::now();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// One live worker process, keyed by pid in the event loop.
struct RunningWorker {
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  pid_t pid = -1;
  std::uint64_t lastSeq = 0;  ///< highest heartbeat sequence seen
  /// Set when the supervisor itself killed the worker (missed
  /// heartbeats, straggler timeout); becomes the incident text at reap
  /// time so the journal records *why*, not just "killed by signal 9".
  std::string pendingIncident;
};

/// True when /proc/<pid>/cmdline names `needle` as one of its
/// NUL-separated arguments — the guard against pid reuse before the
/// resume path kills what it believes is a stale worker.
bool cmdlineMentions(pid_t pid, const std::string& needle) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/cmdline",
                   std::ios::binary);
  if (!in) {
    return false;  // process already gone
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  std::size_t start = 0;
  while (start < raw.size()) {
    const std::size_t end = raw.find('\0', start);
    const std::string arg =
        raw.substr(start, end == std::string::npos ? end : end - start);
    if (arg == needle) {
      return true;
    }
    if (end == std::string::npos) {
      break;
    }
    start = end + 1;
  }
  return false;
}

/// Kills a worker left over from a supervisor that died, then waits for
/// it to disappear so its journal is quiescent before a replacement
/// resumes it. Only kills a process whose cmdline names the shard
/// journal — a recycled pid belonging to someone else is left alone.
void killStaleWorker(std::uint64_t pid64, const std::string& shardJournal) {
  if (pid64 == 0 || pid64 > static_cast<std::uint64_t>(
                                std::numeric_limits<pid_t>::max())) {
    return;
  }
  const auto pid = static_cast<pid_t>(pid64);
  if (!cmdlineMentions(pid, shardJournal)) {
    return;
  }
  std::cerr << "nodebench supervise: killing stale worker pid " << pid
            << " (" << shardJournal << ")\n";
  (void)::kill(pid, SIGKILL);
  // Not our child (the parent died), so waitpid cannot reap it; poll
  // until the kernel has torn it down. Bounded: a kill that has not
  // landed after 5s means something is deeply wrong with the host.
  for (int i = 0; i < 500; ++i) {
    if (::kill(pid, 0) != 0 && errno == ESRCH) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  throw Error("stale worker pid " + std::to_string(pid) +
              " did not die within 5s of SIGKILL");
}

[[nodiscard]] bool fileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

SuperviseResult runSupervise(const SuperviseOptions& options) {
  if (options.table.empty()) {
    throw Error("supervise requires a table selector");
  }
  if (options.shards == 0) {
    throw Error("supervise requires --shards N (the shard count)");
  }
  if (options.shards > campaign::kMaxShardCount) {
    throw Error("--shards must be at most " +
                std::to_string(campaign::kMaxShardCount));
  }
  if (options.journalBase.empty()) {
    throw Error("supervise requires --journal BASE (worker journals land "
                "at BASE.shard<i>of<N>)");
  }
  if (options.maxAttempts == 0) {
    throw Error("--max-attempts must be at least 1");
  }
  if (!options.mergeStoreOut.empty() && options.storeBase.empty()) {
    throw Error("--merge-store-out requires --store BASE (the workers "
                "must write shard stores to merge)");
  }
  if (!options.mergeStoreOut.empty() && options.mergeOut.empty()) {
    throw Error("--merge-store-out requires --merge-out FILE");
  }
  if (options.heartbeatTimeoutMs <= options.heartbeatIntervalMs) {
    throw Error("--heartbeat-timeout-ms must exceed "
                "--heartbeat-interval-ms, or every healthy worker "
                "would be expired between beats");
  }

  const std::uint32_t slots =
      options.workers == 0 ? options.shards
                           : std::min(options.workers, options.shards);

  // The fingerprint the workers will stamp into their shard journals,
  // derived exactly as `table` derives it so the supervisor journal,
  // the backoff seed, and the worker artifacts all agree.
  report::TableOptions topt;
  std::optional<faults::FaultPlan> faultPlan;
  if (!options.faultsPath.empty()) {
    faultPlan = faults::FaultPlan::load(options.faultsPath);
    topt.faults = &*faultPlan;
  }
  if (options.runs != 0) {
    topt.binaryRuns = options.runs;
  }
  const campaign::CampaignConfig cfg = report::campaignConfig(topt);

  SupervisorConfig scfg;
  scfg.campaign = cfg;
  scfg.shards = options.shards;
  scfg.maxAttempts = options.maxAttempts;
  scfg.backoffBaseMs = options.backoff.baseMs;
  scfg.backoffCapMs = options.backoff.capMs;

  const std::string supJournalPath =
      options.supervisorJournalPath.empty()
          ? options.journalBase + ".supervisor"
          : options.supervisorJournalPath;

  std::unique_ptr<SupervisorJournal> journal;
  if (options.resume) {
    journal = SupervisorJournal::resume(supJournalPath, scfg);
    for (const std::string& warning : journal->warnings()) {
      std::cerr << "nodebench supervise: warning: " << warning << "\n";
    }
  } else {
    journal = SupervisorJournal::create(supJournalPath, scfg);
  }

  WallClock clock;
  LeaseScheduler sched(options.shards, options.maxAttempts, options.backoff,
                       cfg);

  // Per-shard file paths, fixed for the campaign's lifetime.
  std::vector<std::string> journalPaths(options.shards);
  std::vector<std::string> storePaths(options.shards);
  std::vector<std::string> hbPaths(options.shards);
  for (std::uint32_t i = 0; i < options.shards; ++i) {
    const campaign::ShardSpec spec{i, options.shards};
    journalPaths[i] = campaign::shardPath(options.journalBase, spec);
    if (!options.storeBase.empty()) {
      storePaths[i] = campaign::shardPath(options.storeBase, spec);
    }
    hbPaths[i] = heartbeatPath(journalPaths[i]);
  }

  if (options.resume) {
    sched.replay(journal->events(), clock.nowMs());
    std::cerr << "nodebench supervise: resuming campaign from "
              << supJournalPath << " (" << journal->events().size()
              << " event(s) replayed)\n";
    // Shards whose last event is AttemptStarted were in flight when the
    // previous supervisor died. Kill any worker still running (guarded
    // against pid reuse), then release the lease: the attempt was never
    // adjudicated, so it is un-burned and the shard re-runs from the
    // worker's crash-safe journal.
    for (std::uint32_t i = 0; i < options.shards; ++i) {
      if (sched.lease(i).state != ShardState::Leased) {
        continue;
      }
      killStaleWorker(sched.lease(i).pid, journalPaths[i]);
      // The journalled pid can lag reality by one fork (the previous
      // supervisor died between fork and append); the heartbeat file
      // names whoever actually beat last.
      if (const auto beat = readHeartbeatFile(hbPaths[i])) {
        if (beat->pid != sched.lease(i).pid) {
          killStaleWorker(beat->pid, journalPaths[i]);
        }
      }
      sched.release(i);
    }
  }

  DeadlineMonitor monitor;
  std::map<pid_t, RunningWorker> running;
  std::map<std::uint32_t, pid_t> shardPid;  // shard -> running pid

  const auto hbKey = [](std::uint32_t shard) {
    return "hb:" + std::to_string(shard);
  };
  const auto toKey = [](std::uint32_t shard) {
    return "to:" + std::to_string(shard);
  };

  const auto drain = [&]() -> SuperviseResult {
    std::cerr << "nodebench supervise: interrupted; draining "
              << running.size() << " worker(s)\n";
    for (const auto& [pid, worker] : running) {
      (void)::kill(pid, SIGTERM);
    }
    for (const auto& [pid, worker] : running) {
      int status = 0;
      (void)::waitpid(pid, &status, 0);
    }
    // The in-flight leases stay journalled as bare AttemptStarted
    // events: --resume releases them without burning the attempt,
    // exactly the supervisor-crash semantics.
    SuperviseResult result;
    result.exitCode = kInterruptedExitCode;
    return result;
  };

  const auto launch = [&](std::uint32_t shard) {
    const std::uint32_t attempt = sched.lease(shard).attempts;
    const campaign::ShardSpec spec{shard, options.shards};
    std::vector<std::string> workerArgs = {
        "nodebench",
        "table",
        options.table,
        "--shard",
        campaign::shardSpecText(spec),
        "--journal",
        journalPaths[shard],
        "--heartbeat",
        hbPaths[shard],
        "--heartbeat-interval-ms",
        std::to_string(options.heartbeatIntervalMs)};
    if (!options.storeBase.empty()) {
      workerArgs.push_back("--store");
      workerArgs.push_back(storePaths[shard]);
    }
    if (options.runs != 0) {
      workerArgs.push_back("--runs");
      workerArgs.push_back(std::to_string(options.runs));
    }
    if (options.jobs != 0) {
      workerArgs.push_back("--jobs");
      workerArgs.push_back(std::to_string(options.jobs));
    }
    if (!options.faultsPath.empty()) {
      workerArgs.push_back("--faults");
      workerArgs.push_back(options.faultsPath);
    }
    if (options.testCellDelayMs != 0) {
      workerArgs.push_back("--test-cell-delay-ms");
      workerArgs.push_back(std::to_string(options.testCellDelayMs));
    }
    if (options.testPoisonShard >= 0 &&
        static_cast<std::uint32_t>(options.testPoisonShard) == shard) {
      workerArgs.push_back("--test-fail-run");
    }
    if (options.testStallShard >= 0 &&
        static_cast<std::uint32_t>(options.testStallShard) == shard &&
        attempt == 1) {
      workerArgs.push_back("--test-heartbeat-stall-after");
      workerArgs.push_back("1");
    }
    // A retry (or a resumed campaign) picks up the dead worker's
    // crash-safe journal instead of re-measuring finished cells.
    if (fileExists(journalPaths[shard])) {
      workerArgs.push_back("--resume");
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw Error(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Worker: discard stdout (the deliverable is the shard journal),
      // keep stderr, become `nodebench table ... --shard i/N`.
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
      }
      std::vector<char*> argvC;
      argvC.reserve(workerArgs.size() + 1);
      for (std::string& s : workerArgs) {
        argvC.push_back(s.data());
      }
      argvC.push_back(nullptr);
      ::execv("/proc/self/exe", argvC.data());
      std::fprintf(stderr, "nodebench supervise: exec failed: %s\n",
                   std::strerror(errno));
      std::_Exit(127);
    }

    sched.bind(shard, static_cast<std::uint64_t>(pid));
    SupervisorEvent event;
    event.kind = EventKind::AttemptStarted;
    event.shard = shard;
    event.attempt = attempt;
    event.pid = static_cast<std::uint64_t>(pid);
    journal->append(event);

    RunningWorker worker;
    worker.shard = shard;
    worker.attempt = attempt;
    worker.pid = pid;
    running[pid] = worker;
    shardPid[shard] = pid;

    const std::int64_t now = clock.nowMs();
    monitor.arm(hbKey(shard), clock.at(now + options.heartbeatTimeoutMs));
    if (options.attemptTimeoutMs != 0) {
      monitor.arm(toKey(shard), clock.at(now + options.attemptTimeoutMs));
    }
    std::cerr << "nodebench supervise: shard " << campaign::shardSpecText(spec)
              << " attempt " << attempt << " (pid " << pid << ") -> "
              << journalPaths[shard] << "\n";
  };

  while (!sched.allResolved()) {
    if (options.stopFlag != nullptr && *options.stopFlag != 0) {
      return drain();
    }

    // Fill free worker slots with ready leases.
    while (sched.leasedCount() < slots) {
      const auto shard = sched.acquire(clock.nowMs());
      if (!shard) {
        break;
      }
      launch(*shard);
    }

    // Reap finished workers and adjudicate their attempts.
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) {
        break;
      }
      const auto it = running.find(pid);
      if (it == running.end()) {
        continue;  // not a worker we launched (cannot happen in practice)
      }
      const RunningWorker worker = it->second;
      running.erase(it);
      shardPid.erase(worker.shard);
      monitor.disarm(hbKey(worker.shard));
      monitor.disarm(toKey(worker.shard));

      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        sched.complete(worker.shard);
        SupervisorEvent event;
        event.kind = EventKind::ShardDone;
        event.shard = worker.shard;
        event.attempt = worker.attempt;
        journal->append(event);
        std::cerr << "nodebench supervise: shard " << worker.shard
                  << " done (attempt " << worker.attempt << ")\n";
        continue;
      }

      std::string incident;
      if (!worker.pendingIncident.empty()) {
        incident = worker.pendingIncident;
      } else if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        incident = code == kInterruptedExitCode
                       ? "worker was interrupted (exit code 43)"
                       : "worker exited with code " + std::to_string(code);
      } else if (WIFSIGNALED(status)) {
        incident =
            "worker was killed by signal " + std::to_string(WTERMSIG(status));
      } else {
        incident = "worker ended with unrecognized wait status " +
                   std::to_string(status);
      }

      SupervisorEvent failed;
      failed.kind = EventKind::AttemptFailed;
      failed.shard = worker.shard;
      failed.attempt = worker.attempt;
      failed.detail = incident;
      journal->append(failed);
      const ShardState next =
          sched.fail(worker.shard, incident, clock.nowMs());
      std::cerr << "nodebench supervise: shard " << worker.shard
                << " attempt " << worker.attempt << " failed: " << incident
                << "\n";
      if (next == ShardState::Poisoned) {
        SupervisorEvent poisoned;
        poisoned.kind = EventKind::ShardPoisoned;
        poisoned.shard = worker.shard;
        poisoned.attempt = worker.attempt;
        poisoned.detail = incident;
        journal->append(poisoned);
        std::cerr << "nodebench supervise: shard " << worker.shard
                  << " POISONED after " << worker.attempt
                  << " failed attempt(s); quarantining\n";
      }
    }

    // Heartbeat liveness: a beat with a fresh sequence number re-arms
    // the shard's expiry deadline. Beats from a previous attempt's pid
    // are ignored (a stale file is silence, not liveness).
    for (auto& [pid, worker] : running) {
      const auto beat = readHeartbeatFile(hbPaths[worker.shard]);
      if (beat && beat->pid == static_cast<std::uint64_t>(worker.pid) &&
          beat->seq > worker.lastSeq) {
        worker.lastSeq = beat->seq;
        monitor.arm(hbKey(worker.shard),
                    clock.at(clock.nowMs() + options.heartbeatTimeoutMs));
      }
    }

    // Expire wedged workers and stragglers: SIGKILL now, record why;
    // the wait-status classification above turns the pending incident
    // into the journalled failure when the corpse is reaped.
    for (const std::string& id : monitor.expired(clock.now())) {
      const bool isHeartbeat = id.rfind("hb:", 0) == 0;
      const auto shard =
          static_cast<std::uint32_t>(std::stoul(id.substr(3)));
      const auto pidIt = shardPid.find(shard);
      if (pidIt == shardPid.end()) {
        continue;  // already reaped between arm and expiry
      }
      const auto workerIt = running.find(pidIt->second);
      if (workerIt == running.end()) {
        continue;
      }
      RunningWorker& worker = workerIt->second;
      if (worker.pendingIncident.empty()) {
        worker.pendingIncident =
            isHeartbeat
                ? "worker missed heartbeats for " +
                      std::to_string(options.heartbeatTimeoutMs) +
                      "ms (last sequence " + std::to_string(worker.lastSeq) +
                      "); killed as wedged"
                : "worker exceeded the attempt wall-clock budget of " +
                      std::to_string(options.attemptTimeoutMs) +
                      "ms; killed as a straggler";
      }
      std::cerr << "nodebench supervise: expiring shard " << shard
                << " (pid " << worker.pid << "): " << worker.pendingIncident
                << "\n";
      (void)::kill(worker.pid, SIGKILL);
      monitor.disarm(hbKey(shard));
      monitor.disarm(toKey(shard));
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  SuperviseResult result;
  result.quarantined = sched.quarantined();
  const std::vector<std::uint32_t> done = sched.doneShards();

  if (!result.quarantined.empty()) {
    result.exitCode = kPartialCampaignExitCode;
    for (const campaign::ShardGap& gap : result.quarantined) {
      std::cerr << "nodebench supervise: shard " << gap.shard
                << " quarantined after " << gap.attempts
                << " failed attempt(s); last incident: " << gap.lastIncident
                << "\n";
    }
  }

  if (options.mergeOut.empty()) {
    std::cerr << "nodebench supervise: campaign resolved: " << done.size()
              << " shard(s) done, " << result.quarantined.size()
              << " quarantined; journals at " << options.journalBase
              << ".shard*of" << options.shards << "\n";
    return result;
  }

  if (done.empty()) {
    std::cerr << "nodebench supervise: every shard is quarantined; "
                 "nothing to merge\n";
    return result;
  }

  std::vector<campaign::ShardInput> inputs;
  inputs.reserve(done.size());
  for (const std::uint32_t shard : done) {
    inputs.push_back(campaign::readShardInput(journalPaths[shard]));
  }
  campaign::MergeOptions mopt;
  mopt.allowPartial = !result.quarantined.empty();
  mopt.quarantined = result.quarantined;
  const campaign::MergedCampaign merged =
      campaign::mergeShardJournals(inputs, mopt);
  campaign::io::atomicWrite(options.mergeOut, merged.journalBytes,
                            "supervise merge");
  std::cout << "merged " << inputs.size() << " shard journal(s) -> "
            << options.mergeOut << "\n";

  if (!options.mergeStoreOut.empty()) {
    std::vector<stats::ShardStoreInput> stores;
    stores.reserve(done.size());
    for (const std::uint32_t shard : done) {
      stores.push_back(stats::loadShardStoreInput(storePaths[shard]));
    }
    const std::vector<std::uint8_t> bytes =
        stats::mergeShardStores(stores, merged);
    campaign::io::atomicWrite(options.mergeStoreOut, bytes,
                              "supervise merge");
    std::cout << "merged " << stores.size() << " shard store(s) -> "
              << options.mergeStoreOut << "\n";
  }

  if (merged.partial) {
    const std::string gapPath = options.gapOut.empty()
                                    ? options.mergeOut + ".gaps.json"
                                    : options.gapOut;
    const std::string manifest = campaign::renderGapManifest(merged);
    campaign::io::atomicWrite(
        gapPath,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(manifest.data()),
            manifest.size()),
        "gap manifest");
    std::cerr << "nodebench supervise: PARTIAL merge: "
              << merged.missingCells.size() << " cell(s) from "
              << merged.missingShards.size()
              << " quarantined shard(s) are missing; gap manifest at "
              << gapPath << "\n";
  }

  return result;
}

}  // namespace nodebench::supervise
