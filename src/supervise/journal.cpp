#include "supervise/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "campaign/io.hpp"
#include "campaign/shard.hpp"
#include "core/checksum.hpp"
#include "core/utf8.hpp"

namespace nodebench::supervise {

using campaign::PayloadReader;
using campaign::PayloadWriter;

namespace {

constexpr char kMagic[4] = {'N', 'B', 'S', 'V'};
constexpr std::uint32_t kSchemaVersion = 1;
constexpr const char* kWhat = "supervisor journal";

/// Decode limits, sized like the campaign journal's: an event is a few
/// integers plus one incident string, and even a pathological campaign
/// journals a few thousand events.
constexpr std::uint32_t kMaxEventBytes = 1u << 20;
constexpr std::uintmax_t kMaxJournalBytes = 64ull << 20;

/// One length-prefixed CRC-framed chunk: [u32 len][u32 crc][payload] —
/// byte-compatible with the campaign journal's framing.
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xffu));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t readU32At(std::span<const std::uint8_t> bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> readFileCapped(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw Error("cannot open supervisor journal: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw Error("cannot stat supervisor journal: " + path);
  }
  if (static_cast<std::uintmax_t>(size) > kMaxJournalBytes) {
    throw SupervisorJournalError("supervisor journal " + path +
                                 " is implausibly large (" +
                                 std::to_string(size) + " bytes)");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw Error("failed reading supervisor journal: " + path);
  }
  return bytes;
}

}  // namespace

bool SupervisorConfig::operator==(const SupervisorConfig& o) const {
  return campaign::describeConfigMismatch(campaign, o.campaign).empty() &&
         shards == o.shards && maxAttempts == o.maxAttempts &&
         backoffBaseMs == o.backoffBaseMs && backoffCapMs == o.backoffCapMs;
}

std::string describeSupervisorConfigMismatch(const SupervisorConfig& recorded,
                                             const SupervisorConfig& current) {
  const std::string campaignMismatch =
      campaign::describeConfigMismatch(recorded.campaign, current.campaign);
  if (!campaignMismatch.empty()) {
    return campaignMismatch;
  }
  const auto diff = [](const std::string& param, std::uint32_t was,
                       std::uint32_t now) {
    return "supervisor configuration mismatch: " + param + " was " +
           std::to_string(was) + " when the campaign started but is " +
           std::to_string(now) +
           " in this run; rerun with the original parameters or start a "
           "fresh campaign";
  };
  if (recorded.shards != current.shards) {
    return diff("--shards", recorded.shards, current.shards);
  }
  if (recorded.maxAttempts != current.maxAttempts) {
    return diff("--max-attempts", recorded.maxAttempts, current.maxAttempts);
  }
  if (recorded.backoffBaseMs != current.backoffBaseMs) {
    return diff("--backoff-base-ms", recorded.backoffBaseMs,
                current.backoffBaseMs);
  }
  if (recorded.backoffCapMs != current.backoffCapMs) {
    return diff("--backoff-cap-ms", recorded.backoffCapMs,
                current.backoffCapMs);
  }
  return {};
}

std::vector<std::uint8_t> SupervisorJournal::encodeHeader(
    const SupervisorConfig& config) {
  PayloadWriter w;
  w.putU64(config.campaign.registryHash);
  w.putU64(config.campaign.faultPlanHash);
  w.putU64(config.campaign.seed);
  w.putU32(config.campaign.runs);
  w.putU32(config.campaign.jobs);
  w.putU32(config.campaign.cellRetries);
  w.putU64(config.campaign.cpuArrayBytes);
  w.putU64(config.campaign.gpuArrayBytes);
  w.putU64(config.campaign.mpiMessageSize);
  w.putU32(config.shards);
  w.putU32(config.maxAttempts);
  w.putU32(config.backoffBaseMs);
  w.putU32(config.backoffCapMs);

  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(
        static_cast<std::uint8_t>((kSchemaVersion >> (8 * i)) & 0xffu));
  }
  const auto framed = frame(w.bytes());
  out.insert(out.end(), framed.begin(), framed.end());
  return out;
}

std::vector<std::uint8_t> SupervisorJournal::encodeEvent(
    const SupervisorEvent& event) {
  PayloadWriter w;
  w.putU32(static_cast<std::uint32_t>(event.kind));
  w.putU32(event.shard);
  w.putU32(event.attempt);
  w.putU64(event.pid);
  w.putString(event.detail);
  return frame(w.bytes());
}

SupervisorJournal::Decoded SupervisorJournal::decode(
    std::span<const std::uint8_t> bytes) {
  Decoded out;
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw SupervisorJournalError(
        "not a nodebench supervisor journal (bad magic bytes)");
  }
  const std::uint32_t version = readU32At(bytes, 4);
  if (version != kSchemaVersion) {
    throw SupervisorJournalError(
        "unsupported supervisor journal schema version " +
        std::to_string(version) + " (this build reads " +
        std::to_string(kSchemaVersion) + ")");
  }
  std::size_t pos = 8;

  if (bytes.size() - pos < 8) {
    throw SupervisorJournalError("supervisor journal header truncated");
  }
  const std::uint32_t headerLen = readU32At(bytes, pos);
  const std::uint32_t headerCrc = readU32At(bytes, pos + 4);
  if (headerLen > kMaxEventBytes || bytes.size() - pos - 8 < headerLen) {
    throw SupervisorJournalError("supervisor journal header truncated");
  }
  const auto headerPayload = bytes.subspan(pos + 8, headerLen);
  if (crc32(headerPayload) != headerCrc) {
    throw SupervisorJournalError(
        "supervisor journal header checksum mismatch");
  }
  try {
    PayloadReader r(headerPayload);
    out.config.campaign.registryHash = r.u64();
    out.config.campaign.faultPlanHash = r.u64();
    out.config.campaign.seed = r.u64();
    out.config.campaign.runs = r.u32();
    out.config.campaign.jobs = r.u32();
    out.config.campaign.cellRetries = r.u32();
    out.config.campaign.cpuArrayBytes = r.u64();
    out.config.campaign.gpuArrayBytes = r.u64();
    out.config.campaign.mpiMessageSize = r.u64();
    out.config.shards = r.u32();
    out.config.maxAttempts = r.u32();
    out.config.backoffBaseMs = r.u32();
    out.config.backoffCapMs = r.u32();
    if (!r.atEnd()) {
      throw campaign::JournalCorruptError(
          "supervisor journal header carries unexpected bytes");
    }
  } catch (const campaign::JournalCorruptError& e) {
    throw SupervisorJournalError(e.what());
  }
  if (out.config.shards == 0 ||
      out.config.shards > campaign::kMaxShardCount) {
    throw SupervisorJournalError(
        "supervisor journal header carries an invalid shard count " +
        std::to_string(out.config.shards));
  }
  pos += 8 + headerLen;
  out.validBytes = pos;

  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    const auto tornTail = [&](const std::string& why) {
      out.warnings.push_back(
          "torn tail truncated: " + why + "; dropped " +
          std::to_string(bytes.size() - pos) + " trailing byte(s), kept " +
          std::to_string(out.events.size()) + " valid event(s)");
    };
    if (remaining < 8) {
      tornTail("incomplete event frame");
      break;
    }
    const std::uint32_t len = readU32At(bytes, pos);
    const std::uint32_t crc = readU32At(bytes, pos + 4);
    if (len > kMaxEventBytes) {
      tornTail("event length " + std::to_string(len) + " exceeds the " +
               std::to_string(kMaxEventBytes) + "-byte limit");
      break;
    }
    if (remaining - 8 < len) {
      tornTail("event extends past end of file");
      break;
    }
    const auto payload = bytes.subspan(pos + 8, len);
    if (crc32(payload) != crc) {
      tornTail("event checksum mismatch");
      break;
    }
    try {
      PayloadReader r(payload);
      SupervisorEvent event;
      const std::uint32_t kind = r.u32();
      if (kind < 1 || kind > 4) {
        throw campaign::JournalCorruptError(
            "supervisor event kind " + std::to_string(kind) +
            " out of range");
      }
      event.kind = static_cast<EventKind>(kind);
      event.shard = r.u32();
      event.attempt = r.u32();
      event.pid = r.u64();
      event.detail = r.string();
      if (!validUtf8(event.detail)) {
        throw campaign::JournalCorruptError(
            "supervisor event carries invalid UTF-8 in its detail field");
      }
      if (event.shard >= out.config.shards) {
        throw campaign::JournalCorruptError(
            "supervisor event names shard " + std::to_string(event.shard) +
            " but the campaign has " + std::to_string(out.config.shards) +
            " shard(s)");
      }
      if (!r.atEnd()) {
        throw campaign::JournalCorruptError(
            "supervisor event carries trailing bytes");
      }
      out.events.push_back(std::move(event));
    } catch (const campaign::JournalCorruptError& e) {
      tornTail(e.what());
      break;
    }
    pos += 8 + len;
    out.validBytes = pos;
  }
  return out;
}

std::unique_ptr<SupervisorJournal> SupervisorJournal::create(
    const std::string& path, const SupervisorConfig& config) {
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    throw Error("supervisor journal already exists: " + path +
                " (pass --resume to continue the recorded campaign, or "
                "remove the file to start fresh)");
  }
  campaign::io::atomicWrite(path, encodeHeader(config), kWhat);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen supervisor journal for appending: " + path +
                ": " + std::strerror(errno));
  }
  auto journal = std::unique_ptr<SupervisorJournal>(new SupervisorJournal());
  journal->path_ = path;
  journal->fd_ = fd;
  journal->config_ = config;
  return journal;
}

std::unique_ptr<SupervisorJournal> SupervisorJournal::resume(
    const std::string& path, const SupervisorConfig& current) {
  const std::vector<std::uint8_t> bytes = readFileCapped(path);
  Decoded decoded = decode(bytes);
  const std::string mismatch =
      describeSupervisorConfigMismatch(decoded.config, current);
  if (!mismatch.empty()) {
    throw Error("cannot resume " + path + ": " + mismatch);
  }
  if (decoded.validBytes < bytes.size()) {
    campaign::io::atomicWrite(path, std::span(bytes).first(decoded.validBytes),
                              kWhat);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen supervisor journal for appending: " + path +
                ": " + std::strerror(errno));
  }
  auto journal = std::unique_ptr<SupervisorJournal>(new SupervisorJournal());
  journal->path_ = path;
  journal->fd_ = fd;
  journal->config_ = decoded.config;
  journal->events_ = std::move(decoded.events);
  journal->warnings_ = std::move(decoded.warnings);
  return journal;
}

SupervisorJournal::~SupervisorJournal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void SupervisorJournal::append(const SupervisorEvent& event) {
  const std::vector<std::uint8_t> framed = encodeEvent(event);
  campaign::io::appendDurable(fd_, framed, path_, kWhat);
  events_.push_back(event);
}

}  // namespace nodebench::supervise
