#pragma once
/// \file journal.hpp
/// \brief The supervisor's own crash-safe state journal.
///
/// The supervisor must survive its own SIGKILL: which shard is leased to
/// which pid, how many attempts each shard has burned, and which shards
/// are done or poisoned all have to be reconstructable on `--resume`.
/// This journal records that state as an append-only event log using the
/// exact on-disk discipline of the campaign journal (`src/campaign`):
/// magic + schema version, a CRC32-framed fsynced header carrying the
/// campaign fingerprint plus the supervise parameters, then one
/// CRC32-framed fsynced event per lease transition. A kill mid-append
/// leaves a torn tail the resume path truncates with a warning; resuming
/// under different parameters is refused naming the parameter.
///
/// Event semantics on replay (see LeaseScheduler::replay):
///  - AttemptStarted without a matching terminal event = the supervisor
///    died while that worker ran. Resume kills any stale worker and
///    releases the lease *without* burning the attempt.
///  - AttemptFailed counts toward the poison threshold.
///  - ShardDone / ShardPoisoned are terminal.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "core/error.hpp"

namespace nodebench::supervise {

/// Thrown when the supervisor journal is unusable (bad magic, corrupt
/// header) — torn event tails are recovered, not thrown.
class SupervisorJournalError : public Error {
 public:
  using Error::Error;
};

enum class EventKind : std::uint32_t {
  AttemptStarted = 1,  ///< shard leased; pid = the worker
  AttemptFailed = 2,   ///< attempt terminal-failed; detail = incident
  ShardDone = 3,       ///< worker exited 0; shard complete
  ShardPoisoned = 4,   ///< attempts exhausted; detail = last incident
};

struct SupervisorEvent {
  EventKind kind = EventKind::AttemptStarted;
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;  ///< 1-based attempt number
  std::uint64_t pid = 0;      ///< worker pid (AttemptStarted), else 0
  std::string detail;         ///< incident text; "" when not applicable

  [[nodiscard]] bool operator==(const SupervisorEvent& o) const {
    return kind == o.kind && shard == o.shard && attempt == o.attempt &&
           pid == o.pid && detail == o.detail;
  }
};

/// What the supervisor journal header fingerprints: the campaign config
/// the workers run under, plus every supervise parameter that shapes the
/// lease/retry schedule. Resuming under different values is refused.
struct SupervisorConfig {
  campaign::CampaignConfig campaign;
  std::uint32_t shards = 0;
  std::uint32_t maxAttempts = 0;
  std::uint32_t backoffBaseMs = 0;
  std::uint32_t backoffCapMs = 0;

  [[nodiscard]] bool operator==(const SupervisorConfig& o) const;
};

/// "" when resume-compatible, else a diagnostic naming the first
/// mismatched parameter and both values. The campaign fields reuse
/// campaign::describeConfigMismatch (so `jobs` stays provenance-only).
[[nodiscard]] std::string describeSupervisorConfigMismatch(
    const SupervisorConfig& recorded, const SupervisorConfig& current);

class SupervisorJournal {
 public:
  /// Fresh journal via write-temp/fsync/rename; refuses an existing
  /// file (resuming must be explicit, exactly like the campaign
  /// journal).
  [[nodiscard]] static std::unique_ptr<SupervisorJournal> create(
      const std::string& path, const SupervisorConfig& config);

  /// Replays the valid event prefix, truncates a torn tail (recorded in
  /// warnings()), refuses a parameter mismatch naming the parameter.
  [[nodiscard]] static std::unique_ptr<SupervisorJournal> resume(
      const std::string& path, const SupervisorConfig& current);

  struct Decoded {
    SupervisorConfig config;
    std::vector<SupervisorEvent> events;
    std::size_t validBytes = 0;
    std::vector<std::string> warnings;
  };
  /// Pure in-memory decode (tests exercise torn tails through this).
  [[nodiscard]] static Decoded decode(std::span<const std::uint8_t> bytes);

  [[nodiscard]] static std::vector<std::uint8_t> encodeHeader(
      const SupervisorConfig& config);
  [[nodiscard]] static std::vector<std::uint8_t> encodeEvent(
      const SupervisorEvent& event);

  ~SupervisorJournal();
  SupervisorJournal(const SupervisorJournal&) = delete;
  SupervisorJournal& operator=(const SupervisorJournal&) = delete;

  /// CRC-framed durable append (write + fsync, rollback on failure).
  void append(const SupervisorEvent& event);

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<SupervisorEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<std::string>& warnings() const {
    return warnings_;
  }

 private:
  SupervisorJournal() = default;

  std::string path_;
  int fd_ = -1;
  SupervisorConfig config_;
  std::vector<SupervisorEvent> events_;
  std::vector<std::string> warnings_;
};

}  // namespace nodebench::supervise
