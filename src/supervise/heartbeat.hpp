#pragma once
/// \file heartbeat.hpp
/// \brief Worker liveness over the file contract.
///
/// A worker proves it is alive by periodically rewriting a tiny
/// heartbeat file ("nbhb <pid> <seq>\n") next to its shard journal via
/// write-temp + rename, so the supervisor never reads a torn beat. The
/// file contract is deliberate: it is the same host-agnostic channel the
/// shard journals use, so a worker on another host heartbeats through
/// the shared filesystem with no socket plumbing. The supervisor
/// monitors the *sequence number* — a worker that is alive but wedged
/// (sequence frozen) is as dead as a killed one.
///
/// The writer never fsyncs: a heartbeat is a freshness signal, not
/// durable state, and an fsync per beat would serialize every worker on
/// the journal disk.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace nodebench::supervise {

struct Heartbeat {
  std::uint64_t pid = 0;
  std::uint64_t seq = 0;
};

/// The conventional heartbeat path for a shard journal.
[[nodiscard]] std::string heartbeatPath(const std::string& shardJournalPath);

/// Parses a heartbeat file; nullopt when missing or (transiently)
/// malformed — the monitor treats both as "no beat yet".
[[nodiscard]] std::optional<Heartbeat> readHeartbeatFile(
    const std::string& path);

/// One beat: write-temp + rename (atomic, never torn). Errors are
/// swallowed — a worker must not die because its liveness channel
/// hiccupped; the supervisor will see the stall and handle it.
void writeHeartbeatFile(const std::string& path, const Heartbeat& beat);

/// Background beat thread for workers (`table --heartbeat FILE`). Beats
/// immediately on start, then every `intervalMs`. `stallAfter` is a test
/// hook: stop beating (but keep running) after N beats, simulating a
/// wedged worker the supervisor must expire.
class HeartbeatWriter {
 public:
  HeartbeatWriter(std::string path, std::uint32_t intervalMs,
                  std::uint64_t stallAfter = 0);
  ~HeartbeatWriter();
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  [[nodiscard]] std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  std::string path_;
  std::uint32_t intervalMs_;
  std::uint64_t stallAfter_;
  std::atomic<std::uint64_t> beats_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace nodebench::supervise
