#pragma once
/// \file lease.hpp
/// \brief The supervisor's lease state machine, in virtual milliseconds.
///
/// Each shard walks Pending -> Leased -> {Done | Pending(backoff) |
/// Poisoned}. The scheduler is deliberately pure — time is a number the
/// caller passes in — so every transition (backoff windows, the poison
/// threshold, crash re-adoption) is unit-testable without sleeping, the
/// same discipline as the simulator's virtual clock. The event loop in
/// supervisor.cpp owns the real clock and the processes; this class owns
/// the *decisions*.
///
/// Crash re-adoption semantics: `release()` returns a Leased shard to
/// Pending *without* recording a failure. It models "the supervisor
/// died, not the worker" — an attempt that was in flight when the
/// supervisor was killed is unaccounted, so the resumed supervisor
/// re-runs it (from the worker's crash-safe journal) rather than
/// counting it toward the poison threshold.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "supervise/backoff.hpp"
#include "supervise/journal.hpp"

namespace nodebench::supervise {

enum class ShardState : std::uint8_t { Pending, Leased, Done, Poisoned };

/// One shard's lease bookkeeping.
struct Lease {
  ShardState state = ShardState::Pending;
  std::uint32_t attempts = 0;   ///< attempts started so far
  std::int64_t notBeforeMs = 0; ///< earliest next acquire (backoff window)
  std::uint64_t pid = 0;        ///< current worker, valid while Leased
  std::string lastIncident;     ///< most recent failure's incident text
};

class LeaseScheduler {
 public:
  /// `config` seeds the deterministic backoff jitter (see backoff.hpp).
  LeaseScheduler(std::uint32_t shards, std::uint32_t maxAttempts,
                 BackoffPolicy policy, campaign::CampaignConfig config);

  /// Leases the lowest-indexed Pending shard whose backoff window has
  /// passed, bumping its attempt counter. nullopt when nothing is ready
  /// (all busy/resolved, or every pending shard is still backing off).
  [[nodiscard]] std::optional<std::uint32_t> acquire(std::int64_t nowMs);

  /// Records the leased worker's pid (journalled for stale-worker
  /// detection on resume).
  void bind(std::uint32_t shard, std::uint64_t pid);

  /// Leased -> Done.
  void complete(std::uint32_t shard);

  /// Leased -> Pending with a deterministic backoff window, or ->
  /// Poisoned once `maxAttempts` attempts have failed. Returns the new
  /// state so the caller knows whether to journal a poison event.
  ShardState fail(std::uint32_t shard, const std::string& incident,
                  std::int64_t nowMs);

  /// Leased -> Pending, attempt counter rolled back: the supervisor (not
  /// the worker) is what failed, so the in-flight attempt is un-burned.
  void release(std::uint32_t shard);

  /// Rebuilds lease state from a supervisor journal's event log. After
  /// replay, shards whose last event is AttemptStarted are Leased to
  /// their recorded pid — the caller kills/adopts those workers and
  /// calls release().
  void replay(const std::vector<SupervisorEvent>& events, std::int64_t nowMs);

  [[nodiscard]] const Lease& lease(std::uint32_t shard) const;
  [[nodiscard]] std::uint32_t shardCount() const {
    return static_cast<std::uint32_t>(leases_.size());
  }

  /// True when every shard is Done or Poisoned.
  [[nodiscard]] bool allResolved() const;
  [[nodiscard]] bool anyPoisoned() const;
  [[nodiscard]] std::size_t leasedCount() const;

  /// Poisoned shards as merge-ready gap records, sorted by index.
  [[nodiscard]] std::vector<campaign::ShardGap> quarantined() const;

  /// Done shards, sorted by index.
  [[nodiscard]] std::vector<std::uint32_t> doneShards() const;

  /// The earliest notBefore among Pending shards (what the event loop
  /// may sleep toward); nullopt when no shard is Pending.
  [[nodiscard]] std::optional<std::int64_t> nextPendingReadyMs() const;

 private:
  std::uint32_t maxAttempts_;
  BackoffPolicy policy_;
  campaign::CampaignConfig config_;
  std::vector<Lease> leases_;
};

}  // namespace nodebench::supervise
