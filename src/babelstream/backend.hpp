#pragma once
/// \file backend.hpp
/// \brief Backend interface of the BabelStream driver, mirroring the real
/// benchmark's pluggable programming-model backends (OpenMP / CUDA / HIP).

#include <string>

#include "babelstream/kernels.hpp"
#include "core/units.hpp"

namespace nodebench::babelstream {

class Backend {
 public:
  virtual ~Backend() = default;
  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Human-readable backend name ("omp-sim", "device-sim", "native").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Time for one iteration of `op` on arrays of `arrayBytes` each (the
  /// noiseless truth for simulated backends; a real measurement for the
  /// native backend).
  [[nodiscard]] virtual Duration iterationTime(StreamOp op,
                                               ByteCount arrayBytes) = 0;

  /// Run-to-run coefficient of variation of this backend's measurements
  /// (simulated backends: from machine calibration; native: 0, real
  /// jitter is already in iterationTime).
  [[nodiscard]] virtual double noiseCv() const = 0;

  /// True when `iterationTime` returns the same value on every call with
  /// the same arguments (simulated backends). The driver then evaluates
  /// the model once per op instead of once per binary run — unless a
  /// tracing session is active, because each evaluation's cache/kernel
  /// events are part of the observable trace. Native measurement backends
  /// keep the default: every call is a fresh (jittered) measurement.
  [[nodiscard]] virtual bool deterministicTruth() const { return false; }
};

}  // namespace nodebench::babelstream
