#pragma once
/// \file sim_omp_backend.hpp
/// \brief BabelStream's OpenMP backend over the simulated host memory
/// model, parameterized by the OpenMP environment (Table 1 rows).

#include "babelstream/backend.hpp"
#include "machines/machine.hpp"
#include "memsim/host_memory_model.hpp"
#include "ompenv/omp_config.hpp"
#include "ompenv/placement.hpp"

namespace nodebench::babelstream {

class SimOmpBackend final : public Backend {
 public:
  /// The machine must outlive the backend.
  SimOmpBackend(const machines::Machine& machine,
                const ompenv::OmpConfig& config);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Duration iterationTime(StreamOp op,
                                       ByteCount arrayBytes) override;
  [[nodiscard]] double noiseCv() const override;
  [[nodiscard]] bool deterministicTruth() const override { return true; }

  [[nodiscard]] const ompenv::ThreadPlacement& placement() const {
    return placement_;
  }

  /// Flat-MCDRAM what-if for the KNL ablation (forwards to the model).
  void setCacheModeOverride(double factor) {
    model_.setCacheModeOverride(factor);
  }

 private:
  memsim::HostMemoryModel model_;
  ompenv::OmpConfig config_;
  ompenv::ThreadPlacement placement_;
};

}  // namespace nodebench::babelstream
