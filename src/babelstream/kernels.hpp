#pragma once
/// \file kernels.hpp
/// \brief The five BabelStream 4.0 kernels and their byte-accounting
/// rules.
///
/// BabelStream's reported bandwidth divides *counted* bytes by measured
/// time, where counted bytes ignore write-allocate traffic (paper §3.1:
/// "the bandwidth numerator is twice the allocation size for copy, mul,
/// and dot, and three times the allocation size for Add and Triad"). On
/// CPUs whose plain stores allocate cache lines, the *actual* memory
/// traffic of a store is read-for-ownership + write, which is why
/// reported CPU bandwidth sits below the machine's raw capability and why
/// Dot (which has no store) is usually the best op.

#include <array>
#include <string_view>

#include "core/units.hpp"

namespace nodebench::babelstream {

/// a, b, c are arrays of `arrayBytes` each:
///   Copy:  c = a          Mul: b = k*c      Add: c = a + b
///   Triad: a = b + k*c    Dot: sum(a*b)
enum class StreamOp { Copy, Mul, Add, Triad, Dot };

inline constexpr std::array<StreamOp, 5> kAllOps{
    StreamOp::Copy, StreamOp::Mul, StreamOp::Add, StreamOp::Triad,
    StreamOp::Dot};

[[nodiscard]] std::string_view streamOpName(StreamOp op);

/// Counted array-traversals (BabelStream numerator / arrayBytes).
[[nodiscard]] double countedFactor(StreamOp op);

/// Actual array-traversals including write-allocate fills for stores.
/// With non-temporal stores (or on device HBM) actual == counted.
[[nodiscard]] double actualFactor(StreamOp op, bool writeAllocate);

/// Number of distinct arrays the kernel touches (its working set).
[[nodiscard]] int arraysTouched(StreamOp op);

[[nodiscard]] inline ByteCount countedBytes(StreamOp op, ByteCount arrayBytes) {
  return ByteCount::bytes(static_cast<std::uint64_t>(
      countedFactor(op) * arrayBytes.asDouble()));
}

}  // namespace nodebench::babelstream
