#include "babelstream/sim_omp_backend.hpp"

namespace nodebench::babelstream {

SimOmpBackend::SimOmpBackend(const machines::Machine& machine,
                             const ompenv::OmpConfig& config)
    : model_(machine),
      config_(config),
      placement_(ompenv::place(machine.topology, config)) {}

std::string SimOmpBackend::name() const {
  return "omp-sim(" + config_.toString() + ")";
}

Duration SimOmpBackend::iterationTime(StreamOp op, ByteCount arrayBytes) {
  NB_EXPECTS(arrayBytes.count() > 0);
  const bool wa = model_.writeAllocate();
  const auto actual = ByteCount::bytes(static_cast<std::uint64_t>(
      actualFactor(op, wa) * arrayBytes.asDouble()));
  const auto workingSet = ByteCount::bytes(
      static_cast<std::uint64_t>(arraysTouched(op)) * arrayBytes.count());
  return model_.transferTime(actual, workingSet, placement_);
}

double SimOmpBackend::noiseCv() const {
  const machines::HostMemoryParams& p = model_.machine().hostMemory;
  return placement_.threadCount() == 1 ? p.cvSingle : p.cvAll;
}

}  // namespace nodebench::babelstream
