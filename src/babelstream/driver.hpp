#pragma once
/// \file driver.hpp
/// \brief BabelStream measurement driver: repeats the benchmark binary
/// the paper's 100 times, aggregates mean ± sigma per op, and applies the
/// paper's reporting rule (best op at the largest vector size).

#include <vector>

#include "babelstream/backend.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"

namespace nodebench::babelstream {

struct DriverConfig {
  ByteCount arrayBytes = ByteCount::mib(128);
  /// Repeats inside one binary execution (BabelStream default).
  int innerRepeats = 100;
  /// Benchmark binary executions aggregated into mean ± sigma (paper §4).
  int binaryRuns = 100;
  std::uint64_t seed = 0x6a6e5d2b01u;
};

/// Aggregated result of one op at one size.
struct OpResult {
  StreamOp op = StreamOp::Copy;
  ByteCount arrayBytes;
  Summary bandwidthGBps;  ///< Across binary runs.
};

/// Result of one full benchmark campaign (all five ops).
struct RunResult {
  std::vector<OpResult> ops;

  /// The paper's reporting rule: the op with the highest mean bandwidth.
  [[nodiscard]] const OpResult& best() const;
};

/// Runs all five ops. Each binary run samples one multiplicative noise
/// factor (run-to-run system state: page placement, frequency, ...) and
/// reports countedBytes / iterationTime; within-run repeats of a
/// noiseless simulated backend are identical, so the run factor carries
/// the entire observed variance, matching how the paper's sigma was
/// computed (across binaries, not within).
[[nodiscard]] RunResult run(Backend& backend, const DriverConfig& config);

/// Ablation helper: bandwidth of one op across a size sweep
/// (16 KiB .. arrayBytes by powers of two), one Summary per size.
[[nodiscard]] std::vector<OpResult> sizeSweep(Backend& backend, StreamOp op,
                                              const DriverConfig& config);

/// One op at exactly config.arrayBytes — the building block `run` and
/// `sizeSweep` iterate, exposed for families that pick their own size
/// grid (the memlab working-set sweep). Noise streams are seeded from
/// (config.seed, run, op) only, so callers vary config.seed per size to
/// decorrelate grid points.
[[nodiscard]] OpResult measureOne(Backend& backend, StreamOp op,
                                  const DriverConfig& config);

}  // namespace nodebench::babelstream
