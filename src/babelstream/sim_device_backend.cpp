#include "babelstream/sim_device_backend.hpp"

namespace nodebench::babelstream {

SimDeviceBackend::SimDeviceBackend(const machines::Machine& machine,
                                   int device)
    : runtime_(machine), device_(device) {
  NB_EXPECTS(device >= 0 && device < runtime_.deviceCount());
}

std::string SimDeviceBackend::name() const {
  return "device-sim(" + runtime_.machine().info.name + ":gpu" +
         std::to_string(device_) + ")";
}

Duration SimDeviceBackend::iterationTime(StreamOp op, ByteCount arrayBytes) {
  NB_EXPECTS(arrayBytes.count() > 0);
  const machines::DeviceParams& d = *runtime_.machine().device;
  // Device HBM does not pay CPU-style write-allocate under BabelStream's
  // streaming access pattern: actual == counted.
  const double traffic = countedFactor(op) * arrayBytes.asDouble();
  const Duration kernel =
      Duration::nanoseconds(traffic / d.hbmBw.bytesPerNanosecond());

  runtime_.reset();
  const gpusim::StreamId stream = runtime_.defaultStream(device_);
  const Duration start = runtime_.hostNow();
  runtime_.launchKernel(stream, kernel);
  runtime_.streamSynchronize(stream);
  return runtime_.hostNow() - start;
}

double SimDeviceBackend::noiseCv() const {
  return runtime_.machine().device->cvBw;
}

}  // namespace nodebench::babelstream
