#pragma once
/// \file sim_device_backend.hpp
/// \brief BabelStream's CUDA/HIP backend over the simulated GPU runtime.
///
/// Each iteration launches one kernel on the device's default stream and
/// synchronizes, exactly like the real backend's per-op timing loop; the
/// kernel's execution time is the op's memory traffic over the device's
/// achievable HBM bandwidth. On MI250X machines a "device" is one GCD,
/// reproducing the paper's note that BabelStream only exercises half the
/// package.

#include "babelstream/backend.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/machine.hpp"

namespace nodebench::babelstream {

class SimDeviceBackend final : public Backend {
 public:
  /// The machine must outlive the backend.
  SimDeviceBackend(const machines::Machine& machine, int device);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Duration iterationTime(StreamOp op,
                                       ByteCount arrayBytes) override;
  [[nodiscard]] double noiseCv() const override;
  [[nodiscard]] bool deterministicTruth() const override { return true; }

  [[nodiscard]] gpusim::GpuRuntime& runtime() { return runtime_; }

 private:
  gpusim::GpuRuntime runtime_;
  int device_;
};

}  // namespace nodebench::babelstream
