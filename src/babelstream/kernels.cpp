#include "babelstream/kernels.hpp"

#include "core/error.hpp"

namespace nodebench::babelstream {

std::string_view streamOpName(StreamOp op) {
  switch (op) {
    case StreamOp::Copy: return "Copy";
    case StreamOp::Mul: return "Mul";
    case StreamOp::Add: return "Add";
    case StreamOp::Triad: return "Triad";
    case StreamOp::Dot: return "Dot";
  }
  return "?";
}

double countedFactor(StreamOp op) {
  switch (op) {
    case StreamOp::Copy:
    case StreamOp::Mul:
    case StreamOp::Dot:
      return 2.0;
    case StreamOp::Add:
    case StreamOp::Triad:
      return 3.0;
  }
  throw InvariantError("unhandled StreamOp");
}

double actualFactor(StreamOp op, bool writeAllocate) {
  const double extra = writeAllocate ? 1.0 : 0.0;  // one fill per store
  switch (op) {
    case StreamOp::Copy:
    case StreamOp::Mul:
      return 2.0 + extra;
    case StreamOp::Add:
    case StreamOp::Triad:
      return 3.0 + extra;
    case StreamOp::Dot:
      return 2.0;  // read-only
  }
  throw InvariantError("unhandled StreamOp");
}

int arraysTouched(StreamOp op) {
  switch (op) {
    case StreamOp::Copy:
    case StreamOp::Mul:
    case StreamOp::Dot:
      return 2;
    case StreamOp::Add:
    case StreamOp::Triad:
      return 3;
  }
  throw InvariantError("unhandled StreamOp");
}

}  // namespace nodebench::babelstream
