#include "babelstream/driver.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/samples.hpp"
#include "trace/trace.hpp"

namespace nodebench::babelstream {

const OpResult& RunResult::best() const {
  NB_EXPECTS(!ops.empty());
  const auto it =
      std::max_element(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
        return a.bandwidthGBps.mean < b.bandwidthGBps.mean;
      });
  return *it;
}

namespace {

Summary measureOp(Backend& backend, StreamOp op, const DriverConfig& cfg) {
  const NoiseModel noise(backend.noiseCv());
  // Deterministic backends return the same truth on every call, so the
  // model evaluation hoists out of the noise loop — except under tracing,
  // where each evaluation's cache/kernel events are observable output.
  const bool hoist =
      backend.deterministicTruth() && trace::current() == nullptr;
  const Duration hoisted =
      hoist ? backend.iterationTime(op, cfg.arrayBytes) : Duration::zero();
  Welford acc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(cfg.seed + 0x9e3779b9u * static_cast<std::uint64_t>(run) +
                   static_cast<std::uint64_t>(op));
    const double factor = noise.sampleFactor(rng);
    const Duration iter =
        (hoist ? hoisted : backend.iterationTime(op, cfg.arrayBytes)) *
        factor;
    NB_ENSURES(iter > Duration::zero());
    const double bw =
        countedBytes(op, cfg.arrayBytes).asDouble() / iter.ns();  // GB/s
    acc.add(bw);
    // Channel per STREAM op so the sweep can attribute samples to the
    // winning kernel ("Dot", "Triad", ...).
    recordSample(streamOpName(op), bw);
  }
  return acc.summary();
}

}  // namespace

OpResult measureOne(Backend& backend, StreamOp op,
                    const DriverConfig& config) {
  NB_EXPECTS(config.binaryRuns > 0);
  NB_EXPECTS(config.arrayBytes.count() > 0);
  return OpResult{op, config.arrayBytes, measureOp(backend, op, config)};
}

RunResult run(Backend& backend, const DriverConfig& config) {
  NB_EXPECTS(config.binaryRuns > 0);
  NB_EXPECTS(config.arrayBytes.count() > 0);
  RunResult result;
  result.ops.reserve(kAllOps.size());
  for (const StreamOp op : kAllOps) {
    result.ops.push_back(
        OpResult{op, config.arrayBytes, measureOp(backend, op, config)});
  }
  return result;
}

std::vector<OpResult> sizeSweep(Backend& backend, StreamOp op,
                                const DriverConfig& config) {
  std::vector<OpResult> out;
  for (ByteCount size = ByteCount::kib(16); size <= config.arrayBytes;
       size = size * 2ull) {
    DriverConfig cfg = config;
    cfg.arrayBytes = size;
    out.push_back(OpResult{op, size, measureOp(backend, op, cfg)});
  }
  return out;
}

}  // namespace nodebench::babelstream
