#include "memsim/host_memory_model.hpp"

#include <cmath>

namespace nodebench::memsim {

Bandwidth HostMemoryModel::achievableBandwidth(
    const ompenv::ThreadPlacement& placement, ByteCount workingSet) const {
  NB_EXPECTS(!placement.threads.empty());
  const machines::HostMemoryParams& p = machine_->hostMemory;
  const topo::NodeTopology& topo = machine_->topology;

  const int cores = placement.coresUsed();
  const int domains = placement.numaDomainsUsed(topo);
  const int sockets = placement.socketsUsed(topo);
  const int smtOccupancy = placement.maxSmtOccupancy();

  const Bandwidth corePortion = p.perCoreBw * static_cast<double>(cores);
  const Bandwidth saturation =
      p.perNumaSaturation * static_cast<double>(domains);
  double bw = min(corePortion, saturation).inGBps();

  if (smtOccupancy > 1) {
    bw *= p.smtFactor;
  }
  if (!placement.bound) {
    bw *= placement.threadCount() == 1 ? p.unboundSingleFactor
                                       : p.unboundFactor;
  }

  const double cacheMode =
      cacheModeOverride_ >= 1.0 ? cacheModeOverride_ : p.cacheModeOverhead;
  bw /= cacheMode;

  // Smooth cache knee: full boost deep inside the LLC, none far outside.
  const double llc =
      p.llcPerSocket.asDouble() * static_cast<double>(sockets);
  if (llc > 0.0 && workingSet.count() > 0) {
    const double ratio = workingSet.asDouble() / llc;
    const double boost =
        1.0 + (p.cacheBandwidthBoost - 1.0) / (1.0 + std::pow(ratio, 6.0));
    bw *= boost;
    if (traceSink_ != nullptr) {
      // Instant events (no memory clock exists): whether this working
      // set fits the LLC — the knee the BabelStream size sweep shows.
      const bool hit = ratio < 1.0;
      traceSink_->event(trace::Event{
          hit ? trace::Category::CacheHit : trace::Category::CacheMiss,
          trace::ActorKind::Node, 0, -1, Duration::zero(), Duration::zero(),
          workingSet.count()});
      traceSink_->count(hit ? "memsim.llc_hits" : "memsim.llc_misses");
    }
  }
  return Bandwidth::gbps(bw);
}

Duration HostMemoryModel::transferTime(
    ByteCount actualTraffic, ByteCount workingSet,
    const ompenv::ThreadPlacement& placement) const {
  NB_EXPECTS(actualTraffic.count() > 0);
  return achievableBandwidth(placement, workingSet)
      .transferTime(actualTraffic);
}

}  // namespace nodebench::memsim
