#include "memsim/host_memory_model.hpp"

#include <cmath>

namespace nodebench::memsim {

Bandwidth HostMemoryModel::achievableBandwidth(
    const ompenv::ThreadPlacement& placement, ByteCount workingSet) const {
  NB_EXPECTS(!placement.threads.empty());
  const machines::HostMemoryParams& p = machine_->hostMemory;
  const topo::NodeTopology& topo = machine_->topology;

  const int cores = placement.coresUsed();
  const int domains = placement.numaDomainsUsed(topo);
  const int sockets = placement.socketsUsed(topo);
  const int smtOccupancy = placement.maxSmtOccupancy();

  const Bandwidth corePortion = p.perCoreBw * static_cast<double>(cores);
  const Bandwidth saturation =
      p.perNumaSaturation * static_cast<double>(domains);
  double bw = min(corePortion, saturation).inGBps();

  if (smtOccupancy > 1) {
    bw *= p.smtFactor;
  }
  if (!placement.bound) {
    bw *= placement.threadCount() == 1 ? p.unboundSingleFactor
                                       : p.unboundFactor;
  }

  const double cacheMode =
      cacheModeOverride_ >= 1.0 ? cacheModeOverride_ : p.cacheModeOverhead;
  bw /= cacheMode;
  const double plateau = bw;  ///< DRAM-saturated value, pre-knee.

  // Smooth cache knee: full boost deep inside the LLC, none far outside.
  const double llc =
      p.llcPerSocket.asDouble() * static_cast<double>(sockets);
  if (llc > 0.0 && workingSet.count() > 0) {
    const double ratio = workingSet.asDouble() / llc;
    const double boost =
        1.0 + (p.cacheBandwidthBoost - 1.0) / (1.0 + std::pow(ratio, 6.0));
    bw *= boost;
    if (traceSink_ != nullptr) {
      // Instant events (no memory clock exists): whether this working
      // set fits the LLC — the knee the BabelStream size sweep shows.
      const bool hit = ratio < 1.0;
      traceSink_->event(trace::Event{
          hit ? trace::Category::CacheHit : trace::Category::CacheMiss,
          trace::ActorKind::Node, 0, -1, Duration::zero(), Duration::zero(),
          workingSet.count()});
      traceSink_->count(hit ? "memsim.llc_hits" : "memsim.llc_misses");
    }

    // Cache-ladder refinement. The legacy knee above is the outermost
    // rung, kept bit-exact: every paper table is calibrated through it.
    // Inner levels of the explicit hierarchy multiply in extra gain when
    // the working set fits them, telescoping level-over-level so the
    // small-size limit approaches the innermost level's aggregate
    // bandwidth. Two invariants keep large-size results byte-identical:
    //  - a level only participates when its effective capacity is below
    //    the legacy LLC size (the knee already models everything at or
    //    beyond it) and its aggregate bandwidth beats the running outer
    //    reference, and
    //  - the rescaled knee k(r) is cut off hard at r = 4: for working
    //    sets at least 4x a level's effective capacity the factor is
    //    *exactly* 1.0 and the multiply is skipped, so table-sized
    //    working sets never touch `bw`'s bits.
    const auto& ladder = machine_->cacheHierarchy.levels;
    double reference = plateau * p.cacheBandwidthBoost;
    constexpr double kCutoffRatio = 4.0;
    const double kAtCutoff = 1.0 / (1.0 + std::pow(kCutoffRatio, 6.0));
    for (std::size_t i = ladder.size(); i-- > 0;) {
      const machines::CacheLevel& level = ladder[i];
      const double instances =
          std::ceil(static_cast<double>(cores) /
                    static_cast<double>(level.sharedByCores));
      const double effective = level.capacity.asDouble() * instances;
      if (effective <= 0.0 || effective >= llc) {
        continue;
      }
      const double aggregate =
          level.perCoreBandwidth.inGBps() * static_cast<double>(cores);
      if (aggregate <= reference) {
        continue;
      }
      const double r = workingSet.asDouble() / effective;
      if (r < kCutoffRatio) {
        const double k = 1.0 / (1.0 + std::pow(r, 6.0));
        const double weight = (k - kAtCutoff) / (1.0 - kAtCutoff);
        bw *= 1.0 + (aggregate / reference - 1.0) * weight;
        if (traceSink_ != nullptr) {
          traceSink_->count("memsim.cache_ladder_boosts");
        }
      }
      reference = aggregate;
    }
  }
  return Bandwidth::gbps(bw);
}

Duration HostMemoryModel::transferTime(
    ByteCount actualTraffic, ByteCount workingSet,
    const ompenv::ThreadPlacement& placement) const {
  NB_EXPECTS(actualTraffic.count() > 0);
  return achievableBandwidth(placement, workingSet)
      .transferTime(actualTraffic);
}

}  // namespace nodebench::memsim
