#pragma once
/// \file host_memory_model.hpp
/// \brief Analytic model of a node's host memory system under an OpenMP
/// thread placement.
///
/// The model composes four effects, each traceable to a paper observation:
///  1. *Per-core limit*: one core sustains `perCoreBw`; small teams are
///     core-limited (Table 4 "Single").
///  2. *Saturation*: each NUMA domain saturates at `perNumaSaturation`;
///     full teams are saturation-limited (Table 4 "All").
///  3. *Binding*: unpinned teams lose a machine-specific factor to
///     migration and imperfect NUMA spread (why Table 1 sweeps
///     OMP_PROC_BIND / OMP_PLACES).
///  4. *MCDRAM cache mode*: KNL systems pay a cache-management factor
///     (the paper's explanation for Trinity's sub-peak "All" value).
///
/// Additionally a last-level-cache boost applies when the working set fits
/// in cache, giving the BabelStream size sweep its characteristic knee.
/// When the machine carries an explicit `CacheHierarchy`, the single knee
/// is refined into a full ladder: each inner level (L1/L2/... below the
/// legacy LLC size) contributes a telescoping bandwidth gain with a hard
/// cutoff at four times its effective capacity, so the working-set sweep
/// family shows one knee per level while every table-sized working set
/// resolves to bit-identical bandwidth with or without the hierarchy
/// (docs/MODELING.md, "Cache ladder"; the conformance suite is the proof).

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "ompenv/placement.hpp"
#include "trace/trace.hpp"

namespace nodebench::memsim {

class HostMemoryModel {
 public:
  /// The machine must outlive the model. Captures the current trace
  /// buffer, so cache hit/miss classifications of a traced measurement
  /// land in the scope that constructed the model.
  explicit HostMemoryModel(const machines::Machine& machine)
      : machine_(&machine), traceSink_(trace::current()) {}

  /// Sustained bandwidth (actual-traffic basis) achievable by `placement`
  /// for a kernel whose resident working set is `workingSet` bytes.
  [[nodiscard]] Bandwidth achievableBandwidth(
      const ompenv::ThreadPlacement& placement, ByteCount workingSet) const;

  /// Wall time for the placement to move `actualTraffic` bytes (reads +
  /// writes + write-allocate fills) with a `workingSet`-byte footprint.
  [[nodiscard]] Duration transferTime(ByteCount actualTraffic,
                                      ByteCount workingSet,
                                      const ompenv::ThreadPlacement&) const;

  /// Whether plain stores incur write-allocate traffic on this machine.
  [[nodiscard]] bool writeAllocate() const {
    return !machine_->hostMemory.nonTemporalStores;
  }

  [[nodiscard]] const machines::Machine& machine() const { return *machine_; }

  /// Override the MCDRAM cache-mode overhead (flat-mode what-if used by
  /// the KNL ablation bench). 1.0 disables the overhead entirely.
  void setCacheModeOverride(double factor) {
    NB_EXPECTS(factor >= 1.0);
    cacheModeOverride_ = factor;
  }

 private:
  const machines::Machine* machine_;
  trace::TraceBuffer* traceSink_ = nullptr;  ///< Null = tracing disabled.
  double cacheModeOverride_ = -1.0;  ///< <0 means "use machine value".
};

}  // namespace nodebench::memsim
