#pragma once
/// \file stencil.hpp
/// \brief Halo-exchange stencil proxy application.
///
/// The paper motivates its microbenchmarks with developers of portable
/// application codes; this module closes the loop with a Mantevo-style
/// mini-app whose performance is *composed* from exactly the quantities
/// the paper measures: sustained memory bandwidth (compute phases),
/// point-to-point MPI latency/bandwidth (halo exchanges), kernel launch
/// and synchronize overheads (device variants), and an allreduce
/// (residual check) per iteration.
///
/// Decomposition: a 1D chain of ranks, each owning `cellsPerRank` cells
/// of double-precision state, exchanging `haloCells` cells with both
/// neighbours per iteration.

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "mpisim/trace.hpp"

namespace nodebench::workload {

struct StencilConfig {
  int ranks = 8;                        ///< One rank per core (or per GPU).
  std::uint64_t cellsPerRank = 1 << 21; ///< Doubles of state per rank.
  std::uint64_t haloCells = 2048;       ///< Cells exchanged per side.
  int iterations = 10;
  /// Arithmetic per cell per iteration (a 7-point stencil update is ~8).
  double flopsPerCell = 8.0;
  /// Memory traffic per cell per iteration (read state + neighbours from
  /// cache-resident lines + write result): bytes = trafficPerCell.
  double trafficBytesPerCell = 16.0;
  /// Device variant: compute on GPUs (one rank per GPU, launch + sync per
  /// iteration) with device-resident halo buffers.
  bool useDevice = false;
  /// Residual allreduce every `reduceEvery` iterations (0 disables).
  int reduceEvery = 1;
};

struct StencilResult {
  Duration totalPerIteration;
  Duration computePerIteration;
  Duration haloPerIteration;
  Duration reducePerIteration;
  double cellsPerSecond = 0.0;  ///< Aggregate update rate.

  [[nodiscard]] double haloFraction() const {
    return haloPerIteration / totalPerIteration;
  }
};

/// Runs the proxy on a simulated machine and returns rank 0's per-phase
/// breakdown. Optionally records a timeline into `tracer`.
/// Preconditions: config.ranks >= 2, fits the machine's cores (and GPUs
/// in device mode), iterations > 0.
[[nodiscard]] StencilResult runStencil(const machines::Machine& machine,
                                       const StencilConfig& config,
                                       mpisim::Tracer* tracer = nullptr);

}  // namespace nodebench::workload
