#include "workload/stencil.hpp"

#include <algorithm>

#include "memsim/host_memory_model.hpp"
#include "mpisim/world.hpp"
#include "ompenv/placement.hpp"

namespace nodebench::workload {

using machines::Machine;
using mpisim::BufferSpace;
using mpisim::Communicator;
using mpisim::MpiWorld;
using mpisim::RankPlacement;
using mpisim::Request;

namespace {

/// Per-iteration compute time of one rank.
Duration computeTime(const Machine& m, const StencilConfig& cfg) {
  const double traffic =
      cfg.trafficBytesPerCell * static_cast<double>(cfg.cellsPerRank);
  const double flops =
      cfg.flopsPerCell * static_cast<double>(cfg.cellsPerRank);
  if (cfg.useDevice) {
    // Device: bandwidth-vs-compute roofline on the HBM / FP64 peak; the
    // launch + sync overheads are paid through the communicator clock.
    const machines::DeviceParams& d = *m.device;
    const double memNs = traffic / d.hbmBw.bytesPerNanosecond();
    const double flopNs =
        d.peakFp64Gflops > 0.0 ? flops / d.peakFp64Gflops : 0.0;
    return Duration::nanoseconds(std::max(memNs, flopNs)) + d.kernelLaunch +
           d.syncWait;
  }
  // Host: each rank owns one core; its sustainable bandwidth is the
  // single-core rate capped by its share of the NUMA saturation.
  const machines::HostMemoryParams& hm = m.hostMemory;
  const int ranksPerNuma = std::max(
      1, cfg.ranks / std::max(1, m.topology.numaCount()));
  const double perRankBw =
      std::min(hm.perCoreBw.inGBps(),
               hm.perNumaSaturation.inGBps() /
                   static_cast<double>(ranksPerNuma)) /
      hm.cacheModeOverhead;
  const double memNs = traffic / perRankBw;
  const double perCoreGflops =
      m.hostPeakFp64Gflops > 0.0
          ? m.hostPeakFp64Gflops / static_cast<double>(m.coreCount())
          : 0.0;
  const double flopNs = perCoreGflops > 0.0 ? flops / perCoreGflops : 0.0;
  return Duration::nanoseconds(std::max(memNs, flopNs));
}

}  // namespace

StencilResult runStencil(const Machine& machine, const StencilConfig& cfg,
                         mpisim::Tracer* tracer) {
  NB_EXPECTS(cfg.ranks >= 2);
  NB_EXPECTS(cfg.iterations > 0);
  NB_EXPECTS(cfg.cellsPerRank > 0);
  NB_EXPECTS_MSG(cfg.ranks <= machine.topology.coreCount(),
                 "more ranks than cores");
  if (cfg.useDevice) {
    NB_EXPECTS_MSG(machine.accelerated() &&
                       cfg.ranks <= machine.topology.gpuCount(),
                   "device stencil needs one GPU per rank");
  }

  std::vector<RankPlacement> placements;
  placements.reserve(cfg.ranks);
  for (int r = 0; r < cfg.ranks; ++r) {
    RankPlacement p;
    p.core = topo::CoreId{r};
    if (cfg.useDevice) {
      p.gpu = r;
    }
    placements.push_back(p);
  }
  MpiWorld world(machine, std::move(placements));
  world.setTracer(tracer);

  const Duration compute = computeTime(machine, cfg);
  const ByteCount haloBytes =
      ByteCount::bytes(cfg.haloCells * sizeof(double));
  constexpr int kHaloTag = 21;

  Duration computeTotal = Duration::zero();
  Duration haloTotal = Duration::zero();
  Duration reduceTotal = Duration::zero();
  Duration wallTotal = Duration::zero();

  world.run([&](Communicator& c) {
    const int left = c.rank() - 1;
    const int right = c.rank() + 1;
    const BufferSpace space = cfg.useDevice
                                  ? BufferSpace::onDevice(c.rank())
                                  : BufferSpace::host();
    c.barrier();
    const Duration start = c.now();
    Duration myCompute = Duration::zero();
    Duration myHalo = Duration::zero();
    Duration myReduce = Duration::zero();

    for (int it = 0; it < cfg.iterations; ++it) {
      Duration t0 = c.now();
      c.compute(compute);
      myCompute += c.now() - t0;

      // Halo exchange: non-blocking sends both ways, then receives.
      t0 = c.now();
      std::vector<Request> sends;
      if (left >= 0) {
        sends.push_back(c.isend(left, kHaloTag, haloBytes, space));
      }
      if (right < c.size()) {
        sends.push_back(c.isend(right, kHaloTag, haloBytes, space));
      }
      if (left >= 0) {
        c.recv(left, kHaloTag, haloBytes, space);
      }
      if (right < c.size()) {
        c.recv(right, kHaloTag, haloBytes, space);
      }
      c.waitAll(sends);
      myHalo += c.now() - t0;

      if (cfg.reduceEvery > 0 && (it + 1) % cfg.reduceEvery == 0) {
        t0 = c.now();
        c.allreduce(ByteCount::bytes(8), space);
        myReduce += c.now() - t0;
      }
    }
    if (c.rank() == 0) {
      wallTotal = c.now() - start;
      computeTotal = myCompute;
      haloTotal = myHalo;
      reduceTotal = myReduce;
    }
  });

  const double iters = static_cast<double>(cfg.iterations);
  StencilResult result;
  result.totalPerIteration = wallTotal / iters;
  result.computePerIteration = computeTotal / iters;
  result.haloPerIteration = haloTotal / iters;
  result.reducePerIteration = reduceTotal / iters;
  result.cellsPerSecond =
      static_cast<double>(cfg.cellsPerRank) * cfg.ranks /
      result.totalPerIteration.s();
  return result;
}

}  // namespace nodebench::workload
