#include "workload/gemm.hpp"

#include <algorithm>

namespace nodebench::workload {

using machines::Machine;

GemmResult runGemm(const Machine& m, const GemmConfig& cfg) {
  NB_EXPECTS(cfg.blockSize >= 16);
  NB_EXPECTS(cfg.n >= cfg.blockSize);
  NB_EXPECTS(cfg.computeEfficiency > 0.0 && cfg.computeEfficiency <= 1.0);

  const double n = static_cast<double>(cfg.n);
  const double flops = 2.0 * n * n * n;
  // Blocked GEMM traffic: each of the (n/b)^3 block multiplies streams
  // three b*b tiles; with output-tile reuse the dominant term is
  // 2 * n^3 / b doubles of A/B traffic.
  const double traffic =
      (2.0 * n * n * n / static_cast<double>(cfg.blockSize) + 3.0 * n * n) *
      sizeof(double);

  double peakGflops = 0.0;
  double bandwidth = 0.0;  // bytes per ns
  Duration overhead = Duration::zero();
  if (cfg.useDevice) {
    NB_EXPECTS_MSG(m.accelerated(), "device GEMM on a CPU-only machine");
    NB_EXPECTS_MSG(m.device->peakFp64Gflops > 0.0, "device peak not set");
    peakGflops = m.device->peakFp64Gflops;
    bandwidth = m.device->hbmBw.bytesPerNanosecond();
    overhead = m.device->kernelLaunch + m.device->syncWait;
  } else {
    NB_EXPECTS_MSG(m.hostPeakFp64Gflops > 0.0, "host peak not set");
    peakGflops = m.hostPeakFp64Gflops;
    bandwidth = m.hostMemory.perNumaSaturation.bytesPerNanosecond() *
                static_cast<double>(m.topology.numaCount()) /
                m.hostMemory.cacheModeOverhead;
  }

  GemmResult result;
  result.intensityFlopsPerByte = flops / traffic;
  result.computePortion = Duration::nanoseconds(
      flops / (peakGflops * cfg.computeEfficiency));
  result.memoryPortion = Duration::nanoseconds(traffic / bandwidth);
  // Compute and memory overlap on modern hardware: the slower side rules.
  result.total =
      max(result.computePortion, result.memoryPortion) + overhead;
  result.computeBound = result.computePortion >= result.memoryPortion;
  result.achievedGflops = flops / result.total.ns();
  return result;
}

}  // namespace nodebench::workload
