#pragma once
/// \file gemm.hpp
/// \brief Blocked DGEMM proxy: the compute-bound counterpart of the
/// stencil proxy. Its time model composes the roofline quantities —
/// arithmetic at the FP64 peak vs blocked memory traffic at the STREAM
/// bandwidth — plus per-launch overheads on devices, showing which
/// machines win once kernels stop being bandwidth-bound.

#include "core/units.hpp"
#include "machines/machine.hpp"

namespace nodebench::workload {

struct GemmConfig {
  std::uint64_t n = 4096;      ///< C(NxN) += A(NxN) * B(NxN), doubles.
  /// Cache/shared-memory tile edge. Effective arithmetic intensity of
  /// the blocked algorithm is ~b/8 flops/byte, so the default clears
  /// every studied ridge point (max ~22 flops/byte on Theta).
  std::uint64_t blockSize = 256;
  bool useDevice = false;
  /// Fraction of peak the implementation reaches on the compute side
  /// (vendor BLAS typically lands at 80-95%).
  double computeEfficiency = 0.9;
};

struct GemmResult {
  Duration total;
  Duration computePortion;  ///< Arithmetic at efficiency * peak.
  Duration memoryPortion;   ///< Blocked traffic at stream bandwidth.
  double achievedGflops = 0.0;
  bool computeBound = true;

  /// Effective arithmetic intensity of the blocked algorithm.
  double intensityFlopsPerByte = 0.0;
};

/// Analytic execution estimate of one GEMM on the machine.
/// Preconditions: n >= blockSize >= 16; device mode requires an
/// accelerator with peak FLOPS set; host mode requires host peak FLOPS.
[[nodiscard]] GemmResult runGemm(const machines::Machine& machine,
                                 const GemmConfig& config);

}  // namespace nodebench::workload
