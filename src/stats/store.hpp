#pragma once
/// \file store.hpp
/// \brief Versioned on-disk results store: full per-repetition sample
/// vectors, the raw material of regression detection.
///
/// The campaign journal (campaign/journal.hpp) persists *summaries* so a
/// crashed run can resume; this store persists *samples* so two runs can
/// be compared statistically (`nodebench compare` / `gate`). Format:
///
///   magic "NBRS" | u32 schema version
///   CRC32-framed header: the same campaign-configuration fingerprint a
///     journal records (registry hash, fault-plan hash, seed, --runs,
///     --jobs, retry budget, array/message sizes) — a comparison between
///     stores can therefore name exactly which knob differed.
///   CRC32-framed records: machine, cell, quantity, unit, direction
///     (lower- or higher-is-better), the Summary, and every raw sample
///     as an exact IEEE-754 bit pattern.
///
/// Framing and payload serialization reuse the campaign layer
/// (core/checksum CRC32, campaign::PayloadWriter/Reader), but the decode
/// policy is deliberately stricter than the journal's: a journal
/// tolerates a torn tail because a crash mid-campaign is its normal
/// operating condition, while a results store is a finished artifact —
/// any invalid frame means the file cannot be trusted as a baseline and
/// decoding throws StoreCorruptError instead of silently comparing
/// against a partial run. The decoder is a fuzz target (tests/fuzz/).
///
/// Appends are idempotent per (machine, cell, quantity) and thread-safe:
/// the parallel table harness writes records from worker threads, so
/// *file order* varies with `--jobs`, but consumers index records by key
/// — every comparison built from a store is byte-identical at any
/// worker count.

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/journal.hpp"
#include "core/error.hpp"
#include "core/stats.hpp"

namespace nodebench::stats {

/// Thrown when a store file is unusable: bad magic, unsupported schema
/// version, or any framing/payload corruption. Unlike the journal there
/// is no torn-tail recovery — a results artifact is all-or-nothing.
class StoreCorruptError : public Error {
 public:
  using Error::Error;
};

/// Thrown when `--store` with `--resume` finds a store recorded under a
/// different campaign configuration; what() names the mismatched
/// parameter (same UX as the journal's `--resume` refusal).
class StoreConfigMismatchError : public Error {
 public:
  using Error::Error;
};

/// Which direction of change is a regression for a quantity.
enum class Better : std::uint8_t {
  Lower = 0,   ///< Latencies: an increase is a regression.
  Higher = 1,  ///< Bandwidths: a decrease is a regression.
};

/// One stored measurement: a cell quantity with its full sample vector.
struct SampleRecord {
  std::string machine;
  std::string cell;      ///< Harness cell name (e.g. "host bandwidth").
  std::string quantity;  ///< Quantity within the cell (e.g. "latency").
  std::string unit;      ///< "us", "GB/s", ...
  Better better = Better::Lower;
  Summary summary;  ///< Aggregate of `samples`, stored for cheap scans.
  std::vector<double> samples;
};

/// A fully decoded store: the recorded configuration plus every record
/// in file order.
struct StoreContents {
  campaign::CampaignConfig config;
  std::vector<SampleRecord> records;
};

/// "" when resume-compatible (every field except `jobs` equal), else a
/// diagnostic naming the first mismatched parameter and both values.
[[nodiscard]] std::string describeStoreMismatch(
    const campaign::CampaignConfig& recorded,
    const campaign::CampaignConfig& current);

/// The append-side handle the measurement harness writes through.
class ResultStore {
 public:
  /// Starts a fresh store at `path` (atomic header write, then append
  /// stream). Refuses to overwrite an existing file.
  [[nodiscard]] static std::unique_ptr<ResultStore> create(
      const std::string& path, const campaign::CampaignConfig& config);

  /// Opens a store for a campaign: `resume == false` is create();
  /// `resume == true` reopens an existing file for appending — after
  /// verifying its recorded configuration matches `current`
  /// (StoreConfigMismatchError naming the parameter otherwise) — or
  /// creates the file when it does not exist yet.
  [[nodiscard]] static std::unique_ptr<ResultStore> attach(
      const std::string& path, const campaign::CampaignConfig& current,
      bool resume);

  /// Reads and strictly decodes a store file.
  [[nodiscard]] static StoreContents load(const std::string& path);

  /// Pure in-memory decode — the fuzz-target entry point. Throws
  /// StoreCorruptError on any deviation from the format.
  [[nodiscard]] static StoreContents decode(
      std::span<const std::uint8_t> bytes);

  /// Serialized forms (exposed for tests and the fuzz corpus).
  [[nodiscard]] static std::vector<std::uint8_t> encodeHeader(
      const campaign::CampaignConfig& config);
  [[nodiscard]] static std::vector<std::uint8_t> encodeRecord(
      const SampleRecord& record);

  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// CRC-framed append. Idempotent per (machine, cell, quantity) and
  /// thread-safe — the harness calls this from parallel workers.
  void append(SampleRecord record);

  /// True when any quantity of (machine, cell) is already stored — the
  /// harness's "skip re-measuring this cell" test.
  [[nodiscard]] bool containsCell(std::string_view machine,
                                  std::string_view cell) const;

  [[nodiscard]] const campaign::CampaignConfig& config() const {
    return config_;
  }
  [[nodiscard]] std::size_t recordCount() const;

 private:
  ResultStore() = default;

  std::string path_;
  int fd_ = -1;
  campaign::CampaignConfig config_;
  std::set<std::string, std::less<>> recordKeys_;
  std::set<std::string, std::less<>> cellKeys_;
  mutable std::mutex mu_;
};

}  // namespace nodebench::stats
