#include "stats/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "core/checksum.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"

namespace nodebench::stats {

namespace {

/// Regularized incomplete beta I_x(a, b) via Lentz's modified continued
/// fraction (the classic betacf construction). Converges in a few dozen
/// iterations for the (df/2, 1/2) arguments the t CDF uses.
double betaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

double regularizedIncompleteBeta(double a, double b, double x) {
  NB_EXPECTS(a > 0.0 && b > 0.0 && x >= 0.0 && x <= 1.0);
  if (x == 0.0 || x == 1.0) {
    return x;
  }
  const double lnFront = std::lgamma(a + b) - std::lgamma(a) -
                         std::lgamma(b) + a * std::log(x) +
                         b * std::log1p(-x);
  // Use the continued fraction on the side where it converges fastest.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(lnFront) * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(lnFront) * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double mean(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double sampleVariance(std::span<const double> xs, double mu) {
  double acc = 0.0;
  for (const double x : xs) {
    acc += (x - mu) * (x - mu);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

}  // namespace

std::uint64_t sampleFingerprint(std::span<const double> xs) {
  std::uint64_t h = Fnv1a::init();
  h = Fnv1a::mix(h, static_cast<std::uint64_t>(xs.size()));
  for (const double x : xs) {
    h = Fnv1a::mix(h, x);
  }
  return h;
}

double normalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double studentTCdf(double t, double df) {
  NB_EXPECTS(df > 0.0);
  if (std::isinf(t)) {
    return t > 0.0 ? 1.0 : 0.0;
  }
  const double x = df / (df + t * t);
  const double tail = 0.5 * regularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

BootstrapCi bootstrapMeanCi(std::span<const double> xs, double level,
                            int resamples) {
  NB_EXPECTS(!xs.empty());
  NB_EXPECTS(level > 0.0 && level < 1.0);
  NB_EXPECTS(resamples > 0);
  Xoshiro256 rng(sampleFingerprint(xs) ^ 0xb0075742b0075742ull);
  const std::uint64_t n = xs.size();
  std::vector<double> means(static_cast<std::size_t>(resamples));
  for (double& m : means) {
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      acc += xs[static_cast<std::size_t>(rng.uniformInt(n))];
    }
    m = acc / static_cast<double>(n);
  }
  const double tailPct = 100.0 * (1.0 - level) / 2.0;
  BootstrapCi ci;
  ci.lo = percentile(means, tailPct);
  ci.hi = percentile(means, 100.0 - tailPct);
  ci.level = level;
  ci.resamples = resamples;
  return ci;
}

WelchResult welchTTest(std::span<const double> a, std::span<const double> b) {
  NB_EXPECTS(a.size() >= 2 && b.size() >= 2);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ma = mean(a);
  const double mb = mean(b);
  const double va = sampleVariance(a, ma);
  const double vb = sampleVariance(b, mb);
  const double se2 = va / na + vb / nb;

  WelchResult out;
  if (se2 == 0.0) {
    // Both samples are constant: the test degenerates to exact equality.
    out.df = na + nb - 2.0;
    if (ma == mb) {
      out.t = 0.0;
      out.p = 1.0;
    } else {
      out.t = mb > ma ? std::numeric_limits<double>::infinity()
                      : -std::numeric_limits<double>::infinity();
      out.p = 0.0;
    }
    return out;
  }
  out.t = (mb - ma) / std::sqrt(se2);
  out.df = se2 * se2 /
           ((va / na) * (va / na) / (na - 1.0) +
            (vb / nb) * (vb / nb) / (nb - 1.0));
  out.p = 2.0 * (1.0 - studentTCdf(std::fabs(out.t), out.df));
  out.p = std::clamp(out.p, 0.0, 1.0);
  return out;
}

MannWhitneyResult mannWhitneyU(std::span<const double> a,
                               std::span<const double> b) {
  NB_EXPECTS(!a.empty() && !b.empty());
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  const std::size_t n = na + nb;

  // Joint ascending sort with provenance, then midrank assignment for
  // ties plus the variance tie-correction term sum(t^3 - t).
  struct Tagged {
    double value;
    bool fromA;
  };
  std::vector<Tagged> all;
  all.reserve(n);
  for (const double x : a) {
    all.push_back({x, true});
  }
  for (const double x : b) {
    all.push_back({x, false});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& x, const Tagged& y) {
                     return x.value < y.value;
                   });
  double rankSumA = 0.0;
  double tieTerm = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && all[j].value == all[i].value) {
      ++j;
    }
    const double midRank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    const double t = static_cast<double>(j - i);
    if (j - i > 1) {
      tieTerm += t * t * t - t;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (all[k].fromA) {
        rankSumA += midRank;
      }
    }
    i = j;
  }

  const double dna = static_cast<double>(na);
  const double dnb = static_cast<double>(nb);
  const double dn = static_cast<double>(n);
  MannWhitneyResult out;
  out.u = rankSumA - dna * (dna + 1.0) / 2.0;
  const double mu = dna * dnb / 2.0;
  const double var =
      dna * dnb / 12.0 *
      ((dn + 1.0) - tieTerm / (dn * (dn - 1.0)));
  if (var <= 0.0) {
    // Every observation tied: no evidence of a shift either way.
    out.z = 0.0;
    out.p = 1.0;
    return out;
  }
  // Continuity correction toward the null.
  const double diff = out.u - mu;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  out.z = corrected / std::sqrt(var);
  out.p = std::clamp(2.0 * (1.0 - normalCdf(std::fabs(out.z))), 0.0, 1.0);
  return out;
}

double cohensD(std::span<const double> a, std::span<const double> b) {
  NB_EXPECTS(a.size() >= 2 && b.size() >= 2);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ma = mean(a);
  const double mb = mean(b);
  const double va = sampleVariance(a, ma);
  const double vb = sampleVariance(b, mb);
  const double pooled =
      ((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0);
  if (pooled <= 0.0) {
    return 0.0;
  }
  return (mb - ma) / std::sqrt(pooled);
}

double cliffsDelta(std::span<const double> a, std::span<const double> b) {
  NB_EXPECTS(!a.empty() && !b.empty());
  // O(n log n) via sorted baseline + binary search (the sample vectors
  // are 100 elements in the paper's methodology, but campaign stores can
  // carry far more).
  std::vector<double> sortedA(a.begin(), a.end());
  std::sort(sortedA.begin(), sortedA.end());
  const double na = static_cast<double>(a.size());
  std::int64_t dominance = 0;
  for (const double y : b) {
    const auto lower = std::lower_bound(sortedA.begin(), sortedA.end(), y);
    const auto upper = std::upper_bound(lower, sortedA.end(), y);
    const auto less = lower - sortedA.begin();            // a < y
    const auto greater = sortedA.end() - upper;           // a > y
    dominance += static_cast<std::int64_t>(less) -
                 static_cast<std::int64_t>(greater);
  }
  return static_cast<double>(dominance) /
         (na * static_cast<double>(b.size()));
}

}  // namespace nodebench::stats
