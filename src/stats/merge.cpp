#include "stats/merge.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace nodebench::stats {

using campaign::ShardMergeError;
using campaign::shardSpecText;

namespace {

std::string gridKey(std::string_view machine, std::string_view cell) {
  std::string key;
  key.reserve(machine.size() + 1 + cell.size());
  key.append(machine);
  key.push_back('\x1f');
  key.append(cell);
  return key;
}

}  // namespace

ShardStoreInput loadShardStoreInput(const std::string& path) {
  ShardStoreInput input;
  input.name = path;
  try {
    input.contents = ResultStore::load(path);
  } catch (const StoreCorruptError& e) {
    throw ShardMergeError("cannot merge store " + path + ": " + e.what());
  }
  return input;
}

std::vector<std::uint8_t> mergeShardStores(
    const std::vector<ShardStoreInput>& stores,
    const campaign::MergedCampaign& plan) {
  const std::uint32_t count = plan.shardCount;
  NB_EXPECTS_MSG(count >= 1, "merge plan carries no shard count");

  // Exactly one store per shard index; every index the journal merge saw
  // must be present, and — under a partial plan — a store for a shard
  // whose *journal* was missing is refused too: the journal is the
  // source of truth, and samples without journalled cells cannot merge.
  std::set<std::uint32_t> journalMissing;
  for (const campaign::ShardGap& gap : plan.missingShards) {
    journalMissing.insert(gap.shard);
  }
  std::vector<const ShardStoreInput*> byIndex(count, nullptr);
  for (const ShardStoreInput& s : stores) {
    const campaign::CampaignConfig& cfg = s.contents.config;
    if (cfg.shardCount == 0) {
      throw ShardMergeError("cannot merge store " + s.name +
                            ": not a shard store (it was recorded without "
                            "--shard)");
    }
    if (cfg.shardCount != count) {
      throw ShardMergeError("cannot merge store " + s.name +
                            ": recorded as one of " +
                            std::to_string(cfg.shardCount) +
                            " shard(s) but the journal set has " +
                            std::to_string(count));
    }
    if (journalMissing.count(cfg.shardIndex) != 0) {
      throw ShardMergeError(
          "cannot merge: store shard " +
          shardSpecText({cfg.shardIndex, count}) + " (" + s.name +
          ") has samples but its journal is a quarantined gap in the "
          "partial merge — a store without its journal cannot merge");
    }
    const ShardStoreInput*& slot = byIndex[cfg.shardIndex];
    if (slot != nullptr) {
      throw ShardMergeError("cannot merge: store shard " +
                            shardSpecText({cfg.shardIndex, count}) +
                            " appears twice (" + slot->name + " and " +
                            s.name + ")");
    }
    slot = &s;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr && journalMissing.count(i) == 0) {
      throw ShardMergeError("cannot merge: store shard " +
                            shardSpecText({i, count}) +
                            " is missing from the merge set (" +
                            std::to_string(stores.size()) + " of " +
                            std::to_string(count) + " shard store(s) given)");
    }
  }

  // One fingerprint, the journal plan's.
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    campaign::CampaignConfig normalized = byIndex[i]->contents.config;
    normalized.shardIndex = 0;
    normalized.shardCount = 0;
    const std::string mismatch =
        describeStoreMismatch(plan.config, normalized);
    if (!mismatch.empty()) {
      throw ShardMergeError("cannot merge: store shard " +
                            shardSpecText({i, count}) + " (" +
                            byIndex[i]->name +
                            ") does not match the shard journals' "
                            "configuration: " + mismatch);
    }
  }

  // Index the plan's grid, and the cells the partial journal merge
  // declared missing — a store record for one of those would be a sample
  // set with no journalled cell record backing it.
  std::map<std::string, std::size_t, std::less<>> gridIndex;
  for (std::size_t g = 0; g < plan.grid.size(); ++g) {
    gridIndex.emplace(gridKey(plan.grid[g].machine, plan.grid[g].cell), g);
  }
  std::set<std::size_t> missingCells(plan.missingCells.begin(),
                                     plan.missingCells.end());

  // Gather records, proving each one sits inside its shard's slice.
  struct Keyed {
    std::size_t gridPos;
    std::size_t fileOrder;
    const SampleRecord* record;
  };
  std::vector<Keyed> merged;
  std::set<std::string, std::less<>> seenKeys;
  std::size_t fileOrder = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    const ShardStoreInput& s = *byIndex[i];
    for (const SampleRecord& record : s.contents.records) {
      const auto git = gridIndex.find(gridKey(record.machine, record.cell));
      if (git == gridIndex.end()) {
        throw ShardMergeError("cannot merge: store " + s.name +
                              " contains a record for (" + record.machine +
                              ", " + record.cell +
                              ") which is not in the campaign grid");
      }
      if (missingCells.count(git->second) != 0) {
        throw ShardMergeError(
            "cannot merge: store " + s.name + " has samples for cell (" +
            record.machine + ", " + record.cell +
            ") which the partial journal merge lists as missing — a store "
            "record without its journal record cannot merge");
      }
      const std::uint32_t owner = plan.ownerShard[git->second];
      if (owner != i) {
        throw ShardMergeError(
            "cannot merge: store cell (" + record.machine + ", " +
            record.cell + ") is assigned to shard " +
            shardSpecText({owner, count}) + " but was recorded by shard " +
            shardSpecText({i, count}) + " (" + s.name +
            ") — overlapping shard stores cannot be merged");
      }
      std::string key = gridKey(record.machine, record.cell);
      key.push_back('\x1f');
      key.append(record.quantity);
      if (!seenKeys.insert(std::move(key)).second) {
        throw ShardMergeError("cannot merge: store " + s.name +
                              " records (" + record.machine + ", " +
                              record.cell + ", " + record.quantity +
                              ") twice");
      }
      merged.push_back(Keyed{git->second, fileOrder++, &record});
    }
  }

  // Grid order, stable within a cell: each shard's same-cell records are
  // appended by one worker thread in quantity order even at --jobs > 1,
  // so this reproduces the single-process --jobs 1 file order exactly.
  std::sort(merged.begin(), merged.end(), [](const Keyed& a, const Keyed& b) {
    if (a.gridPos != b.gridPos) {
      return a.gridPos < b.gridPos;
    }
    return a.fileOrder < b.fileOrder;
  });

  std::vector<std::uint8_t> out = ResultStore::encodeHeader(plan.config);
  for (const Keyed& k : merged) {
    const std::vector<std::uint8_t> framed =
        ResultStore::encodeRecord(*k.record);
    out.insert(out.end(), framed.begin(), framed.end());
  }
  return out;
}

}  // namespace nodebench::stats
