#include "stats/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "campaign/io.hpp"
#include "campaign/shard.hpp"
#include "core/checksum.hpp"
#include "core/utf8.hpp"

namespace nodebench::stats {

namespace {

namespace io = campaign::io;

constexpr char kMagic[4] = {'N', 'B', 'R', 'S'};
constexpr std::uint32_t kSchemaVersion = 1;
constexpr const char* kWhat = "store";  ///< io:: error-text label.

/// Defensive decode limits. A record carries a full sample vector (8
/// bytes per repetition), so the per-record cap is far above the
/// journal's: 64 MiB covers ~8.4M samples, three orders of magnitude
/// beyond the paper's 100-run methodology. Anything larger is treated
/// as corruption, not an allocation request.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;
constexpr std::uint32_t kMaxSampleCount = 1u << 22;
constexpr std::uintmax_t kMaxStoreBytes = 512ull << 20;

std::string errnoText() { return std::strerror(errno); }

std::vector<std::uint8_t> readFileCapped(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw Error("cannot open store file: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw Error("cannot stat store file: " + path);
  }
  if (static_cast<std::uintmax_t>(size) > kMaxStoreBytes) {
    throw StoreCorruptError("store file " + path + " is implausibly large (" +
                            std::to_string(size) + " bytes)");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw Error("failed reading store file: " + path);
  }
  return bytes;
}

std::string utf8Checked(std::string value, const char* what) {
  if (!validUtf8(value)) {
    throw StoreCorruptError(
        std::string("store record carries invalid UTF-8 in its ") + what +
        " field");
  }
  return value;
}

std::string recordKey(std::string_view machine, std::string_view cell,
                      std::string_view quantity) {
  std::string key;
  key.reserve(machine.size() + cell.size() + quantity.size() + 2);
  key.append(machine);
  key.push_back('\x1f');  // unit separator: cannot appear in valid UTF-8 names
  key.append(cell);
  key.push_back('\x1f');
  key.append(quantity);
  return key;
}

std::string cellKey(std::string_view machine, std::string_view cell) {
  std::string key;
  key.reserve(machine.size() + 1 + cell.size());
  key.append(machine);
  key.push_back('\x1f');
  key.append(cell);
  return key;
}

/// One length-prefixed CRC-framed chunk: [u32 len][u32 crc][payload].
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xffu));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t readU32At(std::span<const std::uint8_t> bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// --- configuration compatibility --------------------------------------------

std::string describeStoreMismatch(const campaign::CampaignConfig& recorded,
                                  const campaign::CampaignConfig& current) {
  const auto diff = [](const std::string& param, const std::string& was,
                       const std::string& now) {
    return "store configuration mismatch: " + param + " was " + was +
           " when the store was recorded but is " + now +
           " in this run; samples measured under different configurations "
           "are not comparable — rerun with the original parameters or "
           "write a fresh store";
  };
  if (recorded.registryHash != current.registryHash) {
    return diff("the machine registry", hex(recorded.registryHash),
                hex(current.registryHash));
  }
  if (recorded.faultPlanHash != current.faultPlanHash) {
    return diff("the fault plan (--faults)", hex(recorded.faultPlanHash),
                hex(current.faultPlanHash));
  }
  if (recorded.seed != current.seed) {
    return diff("the fault-plan seed", std::to_string(recorded.seed),
                std::to_string(current.seed));
  }
  if (recorded.runs != current.runs) {
    return diff("--runs", std::to_string(recorded.runs),
                std::to_string(current.runs));
  }
  if (recorded.cellRetries != current.cellRetries) {
    return diff("the cell retry budget", std::to_string(recorded.cellRetries),
                std::to_string(current.cellRetries));
  }
  if (recorded.cpuArrayBytes != current.cpuArrayBytes) {
    return diff("the CPU array size (bytes)",
                std::to_string(recorded.cpuArrayBytes),
                std::to_string(current.cpuArrayBytes));
  }
  if (recorded.gpuArrayBytes != current.gpuArrayBytes) {
    return diff("the GPU array size (bytes)",
                std::to_string(recorded.gpuArrayBytes),
                std::to_string(current.gpuArrayBytes));
  }
  if (recorded.mpiMessageSize != current.mpiMessageSize) {
    return diff("the MPI message size (bytes)",
                std::to_string(recorded.mpiMessageSize),
                std::to_string(current.mpiMessageSize));
  }
  const auto shardText = [](const campaign::CampaignConfig& c) {
    if (c.shardCount == 0) {
      return std::string("unsharded");
    }
    return std::to_string(c.shardIndex) + "/" + std::to_string(c.shardCount);
  };
  if (recorded.shardIndex != current.shardIndex ||
      recorded.shardCount != current.shardCount) {
    return diff("the shard spec (--shard)", shardText(recorded),
                shardText(current));
  }
  // `jobs` is deliberately not compared — harness output is byte-identical
  // at any worker count (DESIGN.md §7), so appending at a different --jobs
  // is safe.
  return {};
}

// --- encode / decode ---------------------------------------------------------

std::vector<std::uint8_t> ResultStore::encodeHeader(
    const campaign::CampaignConfig& config) {
  campaign::PayloadWriter w;
  w.putU64(config.registryHash);
  w.putU64(config.faultPlanHash);
  w.putU64(config.seed);
  w.putU32(config.runs);
  w.putU32(config.jobs);
  w.putU32(config.cellRetries);
  w.putU64(config.cpuArrayBytes);
  w.putU64(config.gpuArrayBytes);
  w.putU64(config.mpiMessageSize);
  if (config.shardCount != 0) {
    // Optional shard extension, mirroring the journal header: written
    // only when sharded, so unsharded (and merged) stores stay
    // byte-identical to the pre-shard format.
    w.putU32(config.shardIndex);
    w.putU32(config.shardCount);
  }

  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(
        static_cast<std::uint8_t>((kSchemaVersion >> (8 * i)) & 0xffu));
  }
  const auto framed = frame(w.bytes());
  out.insert(out.end(), framed.begin(), framed.end());
  return out;
}

std::vector<std::uint8_t> ResultStore::encodeRecord(
    const SampleRecord& record) {
  NB_EXPECTS(record.samples.size() == record.summary.count);
  NB_EXPECTS(record.samples.size() <= kMaxSampleCount);
  campaign::PayloadWriter w;
  w.putString(record.machine);
  w.putString(record.cell);
  w.putString(record.quantity);
  w.putString(record.unit);
  w.putU32(static_cast<std::uint32_t>(record.better));
  campaign::putSummary(w, record.summary);
  w.putU32(static_cast<std::uint32_t>(record.samples.size()));
  for (const double x : record.samples) {
    w.putF64(x);
  }
  return frame(w.bytes());
}

StoreContents ResultStore::decode(std::span<const std::uint8_t> bytes) {
  StoreContents out;
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw StoreCorruptError("not a nodebench results store (bad magic bytes)");
  }
  const std::uint32_t version = readU32At(bytes, 4);
  if (version != kSchemaVersion) {
    throw StoreCorruptError("unsupported store schema version " +
                            std::to_string(version) + " (this build reads " +
                            std::to_string(kSchemaVersion) + ")");
  }
  std::size_t pos = 8;

  // Unlike the journal, every frame here is mandatory-valid: a store is a
  // finished results artifact, and comparing against a silently truncated
  // baseline would be worse than refusing.
  const auto readFrame = [&](const char* what) {
    if (bytes.size() - pos < 8) {
      throw StoreCorruptError(std::string("store ") + what + " truncated");
    }
    const std::uint32_t len = readU32At(bytes, pos);
    const std::uint32_t crc = readU32At(bytes, pos + 4);
    if (len > kMaxRecordBytes) {
      throw StoreCorruptError(std::string("store ") + what + " length " +
                              std::to_string(len) + " exceeds the " +
                              std::to_string(kMaxRecordBytes) + "-byte limit");
    }
    if (bytes.size() - pos - 8 < len) {
      throw StoreCorruptError(std::string("store ") + what +
                              " extends past end of file");
    }
    const auto payload = bytes.subspan(pos + 8, len);
    if (crc32(payload) != crc) {
      throw StoreCorruptError(std::string("store ") + what +
                              " checksum mismatch");
    }
    pos += 8 + len;
    return payload;
  };

  try {
    {
      campaign::PayloadReader r(readFrame("header"));
      out.config.registryHash = r.u64();
      out.config.faultPlanHash = r.u64();
      out.config.seed = r.u64();
      out.config.runs = r.u32();
      out.config.jobs = r.u32();
      out.config.cellRetries = r.u32();
      out.config.cpuArrayBytes = r.u64();
      out.config.gpuArrayBytes = r.u64();
      out.config.mpiMessageSize = r.u64();
      if (!r.atEnd()) {
        // Shard extension (present only on --shard stores).
        out.config.shardIndex = r.u32();
        out.config.shardCount = r.u32();
        if (out.config.shardCount == 0 ||
            out.config.shardCount > campaign::kMaxShardCount ||
            out.config.shardIndex >= out.config.shardCount) {
          throw StoreCorruptError(
              "store header carries an invalid shard spec " +
              std::to_string(out.config.shardIndex) + "/" +
              std::to_string(out.config.shardCount));
        }
      }
      if (!r.atEnd()) {
        throw StoreCorruptError("store header carries unexpected bytes");
      }
    }
    while (pos < bytes.size()) {
      campaign::PayloadReader r(readFrame("record"));
      SampleRecord record;
      record.machine = utf8Checked(r.string(), "machine");
      record.cell = utf8Checked(r.string(), "cell");
      record.quantity = utf8Checked(r.string(), "quantity");
      record.unit = utf8Checked(r.string(), "unit");
      const std::uint32_t better = r.u32();
      if (better > 1) {
        throw StoreCorruptError("store record 'better' flag out of range");
      }
      record.better = static_cast<Better>(better);
      record.summary = campaign::readSummary(r);
      const std::uint32_t nSamples = r.u32();
      if (nSamples > kMaxSampleCount) {
        throw StoreCorruptError("store record sample count " +
                                std::to_string(nSamples) + " exceeds the " +
                                std::to_string(kMaxSampleCount) + " limit");
      }
      if (nSamples != record.summary.count) {
        throw StoreCorruptError(
            "store record sample count " + std::to_string(nSamples) +
            " disagrees with its summary count " +
            std::to_string(record.summary.count));
      }
      record.samples.reserve(nSamples);
      for (std::uint32_t i = 0; i < nSamples; ++i) {
        record.samples.push_back(r.f64());
      }
      if (!r.atEnd()) {
        throw StoreCorruptError("store record carries trailing bytes");
      }
      out.records.push_back(std::move(record));
    }
  } catch (const campaign::JournalCorruptError& e) {
    // PayloadReader reports overruns in journal vocabulary; rethrow in
    // store vocabulary so callers see a single corruption type.
    throw StoreCorruptError(std::string("store payload corrupt: ") + e.what());
  }
  return out;
}

// --- ResultStore lifecycle ---------------------------------------------------

std::unique_ptr<ResultStore> ResultStore::create(
    const std::string& path, const campaign::CampaignConfig& config) {
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    throw Error("store file already exists: " + path +
                " (pass --resume to continue the recorded campaign, or "
                "remove the file to start fresh)");
  }
  io::atomicWrite(path, encodeHeader(config), kWhat);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen store for appending: " + path + ": " +
                errnoText());
  }
  auto store = std::unique_ptr<ResultStore>(new ResultStore());
  store->path_ = path;
  store->fd_ = fd;
  store->config_ = config;
  return store;
}

std::unique_ptr<ResultStore> ResultStore::attach(
    const std::string& path, const campaign::CampaignConfig& current,
    bool resume) {
  if (!resume) {
    return create(path, current);
  }
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    // Resuming a campaign whose first run predates --store (or crashed
    // before the header landed): start the store fresh.
    return create(path, current);
  }
  const std::vector<std::uint8_t> bytes = readFileCapped(path);
  StoreContents contents = decode(bytes);
  const std::string mismatch = describeStoreMismatch(contents.config, current);
  if (!mismatch.empty()) {
    throw StoreConfigMismatchError("cannot resume " + path + ": " + mismatch);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen store for appending: " + path + ": " +
                errnoText());
  }
  auto store = std::unique_ptr<ResultStore>(new ResultStore());
  store->path_ = path;
  store->fd_ = fd;
  store->config_ = contents.config;
  for (const SampleRecord& record : contents.records) {
    store->recordKeys_.insert(
        recordKey(record.machine, record.cell, record.quantity));
    store->cellKeys_.insert(cellKey(record.machine, record.cell));
  }
  return store;
}

StoreContents ResultStore::load(const std::string& path) {
  return decode(readFileCapped(path));
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ResultStore::append(SampleRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string key = recordKey(record.machine, record.cell, record.quantity);
  if (recordKeys_.find(key) != recordKeys_.end()) {
    return;  // idempotent: `table all` recomputes Tables 5/6 for Table 7
  }
  const std::vector<std::uint8_t> framed = encodeRecord(record);
  io::appendDurable(fd_, framed, path_, kWhat);
  cellKeys_.insert(cellKey(record.machine, record.cell));
  recordKeys_.insert(std::move(key));
}

bool ResultStore::containsCell(std::string_view machine,
                               std::string_view cell) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cellKeys_.find(cellKey(machine, cell)) != cellKeys_.end();
}

std::size_t ResultStore::recordCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recordKeys_.size();
}

}  // namespace nodebench::stats
