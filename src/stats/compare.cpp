#include "stats/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "core/parallel.hpp"
#include "core/table.hpp"

namespace nodebench::stats {

namespace {

std::string joinKey(const SampleRecord& r) {
  std::string key;
  key.reserve(r.machine.size() + r.cell.size() + r.quantity.size() + 2);
  key.append(r.machine);
  key.push_back('\x1f');
  key.append(r.cell);
  key.push_back('\x1f');
  key.append(r.quantity);
  return key;
}

using RecordIndex = std::map<std::string, const SampleRecord*, std::less<>>;

RecordIndex indexRecords(const StoreContents& store) {
  RecordIndex index;
  for (const SampleRecord& r : store.records) {
    index.emplace(joinKey(r), &r);  // first occurrence wins
  }
  return index;
}

/// Every configuration field that differs (jobs excluded), as
/// human-readable notes. Unlike the resume path this does not refuse:
/// comparing across a fault plan or seed change is the tool's whole
/// point, but the reader must see what changed.
std::vector<std::string> configNotes(const campaign::CampaignConfig& base,
                                     const campaign::CampaignConfig& cand) {
  std::vector<std::string> notes;
  const auto hex = [](std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  const auto note = [&](const std::string& param, const std::string& was,
                        const std::string& now) {
    notes.push_back("note: " + param + " differs between the stores (" +
                    was + " in the baseline, " + now + " in the candidate)");
  };
  if (base.registryHash != cand.registryHash) {
    note("the machine registry", hex(base.registryHash),
         hex(cand.registryHash));
  }
  if (base.faultPlanHash != cand.faultPlanHash) {
    note("the fault plan (--faults)", hex(base.faultPlanHash),
         hex(cand.faultPlanHash));
  }
  if (base.seed != cand.seed) {
    note("the fault-plan seed", std::to_string(base.seed),
         std::to_string(cand.seed));
  }
  if (base.runs != cand.runs) {
    note("--runs", std::to_string(base.runs), std::to_string(cand.runs));
  }
  if (base.cellRetries != cand.cellRetries) {
    note("the cell retry budget", std::to_string(base.cellRetries),
         std::to_string(cand.cellRetries));
  }
  if (base.cpuArrayBytes != cand.cpuArrayBytes) {
    note("the CPU array size (bytes)", std::to_string(base.cpuArrayBytes),
         std::to_string(cand.cpuArrayBytes));
  }
  if (base.gpuArrayBytes != cand.gpuArrayBytes) {
    note("the GPU array size (bytes)", std::to_string(base.gpuArrayBytes),
         std::to_string(cand.gpuArrayBytes));
  }
  if (base.mpiMessageSize != cand.mpiMessageSize) {
    note("the MPI message size (bytes)", std::to_string(base.mpiMessageSize),
         std::to_string(cand.mpiMessageSize));
  }
  return notes;
}

CellComparison compareCell(const SampleRecord* base, const SampleRecord* cand,
                           const CompareOptions& opt) {
  const SampleRecord& any = base != nullptr ? *base : *cand;
  CellComparison out;
  out.machine = any.machine;
  out.cell = any.cell;
  out.quantity = any.quantity;
  out.unit = any.unit;
  out.better = any.better;

  if (base != nullptr) {
    out.baseline = base->summary;
    if (!base->samples.empty()) {
      out.baselineCi = bootstrapMeanCi(base->samples, opt.ciLevel,
                                       opt.bootstrapResamples);
    }
  }
  if (cand != nullptr) {
    out.candidate = cand->summary;
    if (!cand->samples.empty()) {
      out.candidateCi = bootstrapMeanCi(cand->samples, opt.ciLevel,
                                        opt.bootstrapResamples);
    }
  }
  if (base == nullptr) {
    out.verdict = Verdict::CandidateOnly;
    return out;
  }
  if (cand == nullptr) {
    out.verdict = Verdict::BaselineOnly;
    return out;
  }
  if (base->samples.size() < 2 || cand->samples.size() < 2 ||
      base->summary.mean == 0.0) {
    out.verdict = Verdict::Insufficient;
    return out;
  }

  out.deltaPct = (cand->summary.mean - base->summary.mean) /
                 std::fabs(base->summary.mean) * 100.0;
  out.welch = welchTTest(base->samples, cand->samples);
  out.mw = mannWhitneyU(base->samples, cand->samples);
  out.cohensD = stats::cohensD(base->samples, cand->samples);
  out.cliffsDelta = stats::cliffsDelta(base->samples, cand->samples);

  const bool significant = out.welch.p < opt.alpha && out.mw.p < opt.alpha;
  const bool material = std::fabs(out.deltaPct) >= opt.thresholdPct;
  if (!significant || !material) {
    out.verdict = Verdict::Unchanged;
    return out;
  }
  const bool worse = (out.better == Better::Lower && out.deltaPct > 0.0) ||
                     (out.better == Better::Higher && out.deltaPct < 0.0);
  out.verdict = worse ? Verdict::Regression : Verdict::Improvement;
  return out;
}

std::string formatP(double p) {
  if (p < 0.0001) {
    return "<0.0001";
  }
  return formatFixed(p, 4);
}

std::string formatMeanCi(const Summary& s, const BootstrapCi& ci) {
  if (s.count == 0) {
    return "-";
  }
  std::string out = formatFixed(s.mean, 4);
  if (ci.resamples > 0) {
    out += " [" + formatFixed(ci.lo, 4) + ", " + formatFixed(ci.hi, 4) + "]";
  }
  return out;
}

std::string verdictCell(const CellComparison& c, double alpha) {
  std::string out(verdictName(c.verdict));
  if (c.verdict == Verdict::Regression || c.verdict == Verdict::Improvement) {
    const double pMax = std::max(c.welch.p, c.mw.p);
    out += pMax < 0.01 ? " **" : (pMax < alpha ? " *" : "");
  }
  return out;
}

}  // namespace

std::string_view verdictName(Verdict v) {
  switch (v) {
    case Verdict::Unchanged:
      return "unchanged";
    case Verdict::Regression:
      return "REGRESSION";
    case Verdict::Improvement:
      return "improvement";
    case Verdict::BaselineOnly:
      return "baseline-only";
    case Verdict::CandidateOnly:
      return "candidate-only";
    case Verdict::Insufficient:
      return "insufficient";
  }
  return "unknown";
}

CompareReport compareStores(const StoreContents& baseline,
                            const StoreContents& candidate,
                            const CompareOptions& options) {
  CompareReport report;
  report.options = options;
  report.configNotes = configNotes(baseline.config, candidate.config);

  const RecordIndex baseIndex = indexRecords(baseline);
  const RecordIndex candIndex = indexRecords(candidate);
  std::vector<std::string> keys;
  keys.reserve(baseIndex.size() + candIndex.size());
  for (const auto& [key, record] : baseIndex) {
    keys.push_back(key);
  }
  for (const auto& [key, record] : candIndex) {
    if (baseIndex.find(key) == baseIndex.end()) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());

  // Order-preserving map over the sorted key union: each cell's battery
  // (two 2000-resample bootstraps plus the rank test) is independent, and
  // the result vector is indexed by key order, so the report is
  // byte-identical at any worker count.
  report.cells = par::parallelMap(
      keys,
      [&](const std::string& key) {
        const auto b = baseIndex.find(key);
        const auto c = candIndex.find(key);
        return compareCell(b == baseIndex.end() ? nullptr : b->second,
                           c == candIndex.end() ? nullptr : c->second,
                           options);
      },
      options.jobs);

  for (const CellComparison& c : report.cells) {
    switch (c.verdict) {
      case Verdict::Regression:
        ++report.regressions;
        break;
      case Verdict::Improvement:
        ++report.improvements;
        break;
      case Verdict::Unchanged:
        ++report.unchanged;
        break;
      case Verdict::BaselineOnly:
      case Verdict::CandidateOnly:
        ++report.unmatched;
        break;
      case Verdict::Insufficient:
        ++report.insufficient;
        break;
    }
  }
  return report;
}

std::string renderCompare(const CompareReport& report) {
  std::ostringstream out;
  out << "comparison: alpha=" << formatFixed(report.options.alpha, 3)
      << ", threshold=" << formatFixed(report.options.thresholdPct, 2)
      << "%, bootstrap " << report.options.bootstrapResamples
      << " resamples at " << formatFixed(report.options.ciLevel * 100.0, 0)
      << "% coverage\n";
  for (const std::string& note : report.configNotes) {
    out << note << "\n";
  }
  out << "\n";

  std::size_t i = 0;
  while (i < report.cells.size()) {
    const std::string& machine = report.cells[i].machine;
    Table table({"Cell", "Quantity", "Unit", "Baseline [95% CI]",
                 "Candidate [95% CI]", "Delta %", "p(Welch)", "p(MWU)",
                 "Cliff d", "Verdict"});
    table.setTitle(machine);
    table.setAlign(1, Align::Left);
    table.setAlign(2, Align::Left);
    table.setAlign(9, Align::Left);
    for (; i < report.cells.size() && report.cells[i].machine == machine;
         ++i) {
      const CellComparison& c = report.cells[i];
      const bool tested = c.verdict == Verdict::Unchanged ||
                          c.verdict == Verdict::Regression ||
                          c.verdict == Verdict::Improvement;
      table.addRow({c.cell, c.quantity, c.unit,
                    formatMeanCi(c.baseline, c.baselineCi),
                    formatMeanCi(c.candidate, c.candidateCi),
                    tested ? (c.deltaPct >= 0.0 ? "+" : "") +
                                 formatFixed(c.deltaPct, 2)
                           : "-",
                    tested ? formatP(c.welch.p) : "-",
                    tested ? formatP(c.mw.p) : "-",
                    tested ? formatFixed(c.cliffsDelta, 3) : "-",
                    verdictCell(c, report.options.alpha)});
    }
    out << table.renderAscii() << "\n";
  }

  out << report.cells.size() << " cell(s) compared: " << report.regressions
      << " regression(s), " << report.improvements << " improvement(s), "
      << report.unchanged << " unchanged, " << report.unmatched
      << " unmatched, " << report.insufficient << " insufficient\n";
  out << "significance markers: ** both tests p < 0.01, * both tests p < "
      << formatFixed(report.options.alpha, 3) << "\n";
  return out.str();
}

std::string renderGate(const CompareReport& report) {
  std::ostringstream out;
  for (const std::string& note : report.configNotes) {
    out << note << "\n";
  }
  for (const CellComparison& c : report.cells) {
    if (c.verdict != Verdict::Regression) {
      continue;
    }
    out << "REGRESSION: " << c.machine << " / " << c.cell << " / "
        << c.quantity << ": " << (c.deltaPct >= 0.0 ? "+" : "")
        << formatFixed(c.deltaPct, 2) << "% ("
        << (c.better == Better::Lower ? "lower" : "higher")
        << " is better), p(Welch)=" << formatP(c.welch.p)
        << ", p(MWU)=" << formatP(c.mw.p) << ", Cliff d="
        << formatFixed(c.cliffsDelta, 3) << "\n";
  }
  out << "gate: " << report.cells.size() << " cell(s) compared, "
      << report.regressions << " regression(s) at threshold "
      << formatFixed(report.options.thresholdPct, 2) << "% -> "
      << (report.regressions == 0 ? "PASS" : "FAIL") << "\n";
  return out.str();
}

int gateExit(const CompareReport& report) {
  return report.regressions == 0 ? 0 : kGateRegressionExitCode;
}

}  // namespace nodebench::stats
