#pragma once
/// \file analysis.hpp
/// \brief Statistical engine over raw per-repetition samples.
///
/// The paper reports mean ± sigma over 100 binary runs; Hunold &
/// Carpen-Amarie ("MPI Benchmarking Revisited") show that for exactly
/// these latency/bandwidth microbenchmarks that pair of numbers is not
/// enough to decide whether two runs differ: the distributions are
/// skewed, occasionally multi-modal, and a mean shift smaller than sigma
/// can still be systematic. This engine supplies what a defensible
/// regression verdict needs, computed from the full sample vectors the
/// results store persists:
///
///  - a percentile **bootstrap confidence interval of the mean** —
///    deterministic: the resampling RNG is seeded from a fingerprint of
///    the sample data itself, so any `--jobs` value (and any call order)
///    produces bit-identical intervals;
///  - **Welch's t-test** (unequal variances) for a mean shift, with the
///    Student-t CDF evaluated via the regularized incomplete beta
///    function (no external math library);
///  - the **Mann-Whitney U test** (tie-corrected normal approximation,
///    continuity-corrected) as a distribution-free second opinion that
///    is robust to the outlier runs fault injection produces;
///  - **effect sizes**: Cohen's d (standardized mean difference) and
///    Cliff's delta (ordinal dominance), because with 100 repetitions
///    even irrelevant differences become "significant" — the compare
///    layer gates on magnitude as well as p-values.
///
/// Everything here is a pure function of its inputs: no global state,
/// no wall-clock, no entropy. That is what makes `nodebench compare`
/// output byte-identical at any worker count.

#include <cstdint>
#include <span>

namespace nodebench::stats {

/// FNV-1a fingerprint of a sample vector (length + IEEE-754 bit
/// patterns, in order). Used to derive the bootstrap seed from the data
/// itself, which keeps resampling deterministic and independent of how
/// the caller schedules work.
[[nodiscard]] std::uint64_t sampleFingerprint(std::span<const double> xs);

/// Standard normal CDF.
[[nodiscard]] double normalCdf(double z);

/// Student-t CDF with `df` degrees of freedom (df > 0), via the
/// regularized incomplete beta function (Lentz's continued fraction).
[[nodiscard]] double studentTCdf(double t, double df);

/// Percentile bootstrap confidence interval of the mean.
struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;  ///< Two-sided coverage.
  int resamples = 0;
};

/// Deterministic percentile bootstrap: `resamples` means of
/// with-replacement resamples of `xs`, interval at the (1±level)/2
/// percentiles. The RNG seed is `sampleFingerprint(xs)` — two calls on
/// the same data give bit-identical intervals, on any thread.
/// Preconditions: !xs.empty(), 0 < level < 1, resamples > 0.
[[nodiscard]] BootstrapCi bootstrapMeanCi(std::span<const double> xs,
                                          double level = 0.95,
                                          int resamples = 2000);

/// Welch's unequal-variance t-test (two-sided).
struct WelchResult {
  double t = 0.0;   ///< Signed: positive when mean(b) > mean(a).
  double df = 0.0;  ///< Welch-Satterthwaite degrees of freedom.
  double p = 1.0;   ///< Two-sided p-value.
};

/// Preconditions: a.size() >= 2, b.size() >= 2. When both variances are
/// zero the test degenerates: p = 1 for equal means, p = 0 otherwise.
[[nodiscard]] WelchResult welchTTest(std::span<const double> a,
                                     std::span<const double> b);

/// Mann-Whitney U test (two-sided, tie-corrected normal approximation
/// with continuity correction).
struct MannWhitneyResult {
  double u = 0.0;  ///< U statistic of sample `a`.
  double z = 0.0;  ///< Normal-approximation z-score.
  double p = 1.0;  ///< Two-sided p-value; 1.0 when every value is tied.
};

/// Preconditions: !a.empty(), !b.empty().
[[nodiscard]] MannWhitneyResult mannWhitneyU(std::span<const double> a,
                                             std::span<const double> b);

/// Cohen's d: (mean(b) - mean(a)) / pooled stddev; 0 when the pooled
/// stddev is 0. Preconditions: a.size() >= 2, b.size() >= 2.
[[nodiscard]] double cohensD(std::span<const double> a,
                             std::span<const double> b);

/// Cliff's delta: P(b > a) - P(b < a), in [-1, 1].
/// Preconditions: !a.empty(), !b.empty().
[[nodiscard]] double cliffsDelta(std::span<const double> a,
                                 std::span<const double> b);

}  // namespace nodebench::stats
