#pragma once
/// \file compare.hpp
/// \brief Regression detection between two results stores
/// (`nodebench compare` / `nodebench gate`).
///
/// A comparison joins two stores on (machine, cell, quantity) and runs
/// the full statistical battery (analysis.hpp) on each matched pair of
/// sample vectors. The verdict for a cell requires *three* things to
/// call a change real, following Hunold & Carpen-Amarie's critique of
/// mean-only benchmark comparisons:
///
///  1. **Welch's t-test** significant at `alpha` (mean shift, unequal
///     variances), AND
///  2. **Mann-Whitney U** significant at `alpha` (distribution shift —
///     robust against the heavy-tailed runs fault injection produces),
///     AND
///  3. a **material magnitude**: |delta| >= `thresholdPct` percent of the
///     baseline mean. With 100 repetitions per cell, trivial differences
///     reach statistical significance; the threshold keeps the gate
///     focused on changes someone would act on.
///
/// Direction comes from each record's lower/higher-is-better flag, so a
/// latency increase and a bandwidth decrease both read "Regression".
///
/// Determinism: cells are compared via the order-preserving parallel
/// map over a sorted key union, and every statistic is a pure function
/// of the sample data (the bootstrap seeds from a data fingerprint) —
/// compare/gate output is byte-identical at any `--jobs`.

#include <string>
#include <vector>

#include "stats/analysis.hpp"
#include "stats/store.hpp"

namespace nodebench::stats {

struct CompareOptions {
  int jobs = 0;               ///< Worker threads (0 = hardware default).
  double alpha = 0.05;        ///< Significance level for both tests.
  double thresholdPct = 2.0;  ///< Materiality threshold, percent.
  double ciLevel = 0.95;
  int bootstrapResamples = 2000;
};

enum class Verdict {
  Unchanged,      ///< Not significant, or significant but immaterial.
  Regression,     ///< Significant, material, worse.
  Improvement,    ///< Significant, material, better.
  BaselineOnly,   ///< Record missing from the candidate store.
  CandidateOnly,  ///< Record missing from the baseline store.
  Insufficient,   ///< Too few samples (or zero baseline) to test.
};

[[nodiscard]] std::string_view verdictName(Verdict v);

/// One joined (machine, cell, quantity) with its statistics. The
/// statistical fields are meaningful only when both sides are present
/// with enough samples (verdict not *Only/Insufficient).
struct CellComparison {
  std::string machine;
  std::string cell;
  std::string quantity;
  std::string unit;
  Better better = Better::Lower;
  Summary baseline;
  Summary candidate;
  BootstrapCi baselineCi;
  BootstrapCi candidateCi;
  double deltaPct = 0.0;  ///< (cand.mean - base.mean) / |base.mean| * 100.
  WelchResult welch;
  MannWhitneyResult mw;
  double cohensD = 0.0;
  double cliffsDelta = 0.0;
  Verdict verdict = Verdict::Unchanged;
};

struct CompareReport {
  CompareOptions options;
  /// Non-blocking notes about configuration fields that differ between
  /// the stores (`jobs` excluded). A cross-configuration compare is
  /// allowed — measuring a fault plan's impact *is* such a compare — but
  /// the reader must see what changed.
  std::vector<std::string> configNotes;
  std::vector<CellComparison> cells;  ///< Sorted by machine, cell, quantity.
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t unchanged = 0;
  std::size_t unmatched = 0;    ///< BaselineOnly + CandidateOnly.
  std::size_t insufficient = 0;
};

/// Joins and tests every (machine, cell, quantity) present in either
/// store. First occurrence wins when a store carries duplicate keys.
[[nodiscard]] CompareReport compareStores(const StoreContents& baseline,
                                          const StoreContents& candidate,
                                          const CompareOptions& options = {});

/// Full human-readable report: config notes, one table per machine
/// (baseline/candidate means with bootstrap CIs, delta, p-values,
/// Cliff's delta, verdict with significance markers), summary counts.
[[nodiscard]] std::string renderCompare(const CompareReport& report);

/// Compact gate output: config notes, each regression on one line, and
/// a final "gate: PASS" / "gate: FAIL" line.
[[nodiscard]] std::string renderGate(const CompareReport& report);

/// Exit status for `nodebench gate`: 0 when no regression,
/// kGateRegressionExitCode otherwise.
inline constexpr int kGateRegressionExitCode = 3;
[[nodiscard]] int gateExit(const CompareReport& report);

}  // namespace nodebench::stats
