#pragma once
/// \file merge.hpp
/// \brief NBRS store merge for sharded campaigns.
///
/// The journal merge (campaign/shard.hpp) validates the shard set and
/// rebuilds the global grid; this layer merges the per-shard results
/// stores against that validated plan. Store records are re-ordered
/// into grid-enumeration order (stable within a cell, so a cell's
/// quantity records keep their append order), which is exactly the file
/// order a single-process `--jobs 1 --store` run writes — the merged
/// store is byte-identical to it.
///
/// Failed cells never write store records, so the store merge does not
/// require one record per grid cell; it does refuse records for cells
/// outside the grid or outside the writing shard's slice, duplicate
/// (machine, cell, quantity) keys, and any fingerprint mismatch against
/// the plan.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "stats/store.hpp"

namespace nodebench::stats {

/// One shard's decoded store plus a name for diagnostics.
struct ShardStoreInput {
  std::string name;
  StoreContents contents;
};

/// Reads and strictly decodes one shard store file. Store corruption is
/// rethrown as campaign::ShardMergeError naming the path.
[[nodiscard]] ShardStoreInput loadShardStoreInput(const std::string& path);

/// Validates `stores` against the journal-merge plan and returns the
/// merged store file image (normalized header + records in grid order).
/// Throws campaign::ShardMergeError naming the offending shard/record.
[[nodiscard]] std::vector<std::uint8_t> mergeShardStores(
    const std::vector<ShardStoreInput>& stores,
    const campaign::MergedCampaign& plan);

}  // namespace nodebench::stats
