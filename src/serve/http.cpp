#include "serve/http.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "core/error.hpp"

namespace nodebench::serve {

namespace {

/// One poll-guarded read. Returns 0 on EOF; throws on error/timeout.
std::size_t readSome(int fd, char* buf, std::size_t cap, int timeoutMs) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeoutMs);
    if (pr < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("poll failed: ") + std::strerror(errno));
    }
    if (pr == 0) {
      throw Error("read timed out");
    }
    const ssize_t n = ::read(fd, buf, cap);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string("read failed: ") + std::strerror(errno));
    }
    return static_cast<std::size_t>(n);
  }
}

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Strict non-negative integer parse for Content-Length (no sign, no
/// whitespace, no overflow past the body cap's magnitude).
std::size_t parseContentLength(std::string_view s) {
  if (s.empty() || s.size() > 9 ||
      !std::all_of(s.begin(), s.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    throw Error("invalid Content-Length");
  }
  std::size_t v = 0;
  for (const char c : s) {
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  return v;
}

void setCloexec(int fd) {
  // Best-effort: a leaked listener fd in a forked child is a nuisance,
  // not a correctness issue.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

}  // namespace

std::optional<HttpRequest> readHttpRequest(int fd, int timeoutMs) {
  std::string buf;
  std::size_t headerEnd = std::string::npos;
  char chunk[4096];
  while (headerEnd == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      throw Error("request header block exceeds " +
                  std::to_string(kMaxHeaderBytes) + " bytes");
    }
    const std::size_t n = readSome(fd, chunk, sizeof(chunk), timeoutMs);
    if (n == 0) {
      if (buf.empty()) {
        return std::nullopt;  // clean EOF: client connected and left
      }
      throw Error("connection closed mid-header");
    }
    buf.append(chunk, n);
    headerEnd = buf.find("\r\n\r\n");
  }

  HttpRequest req;
  const std::string_view head(buf.data(), headerEnd);
  std::size_t lineEnd = head.find("\r\n");
  const std::string_view requestLine =
      head.substr(0, lineEnd == std::string_view::npos ? head.size()
                                                       : lineEnd);
  const std::size_t sp1 = requestLine.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : requestLine.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    throw Error("malformed request line");
  }
  req.method = std::string(requestLine.substr(0, sp1));
  req.target = std::string(requestLine.substr(sp1 + 1, sp2 - sp1 - 1));
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    throw Error("malformed request line");
  }

  std::size_t pos = lineEnd == std::string_view::npos ? head.size()
                                                      : lineEnd + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) {
      end = head.size();
    }
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw Error("malformed header line");
    }
    std::string key = toLower(std::string(line.substr(0, colon)));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
      value.remove_suffix(1);
    }
    req.headers[std::move(key)] = std::string(value);
  }

  std::size_t bodyLen = 0;
  if (const auto it = req.headers.find("content-length");
      it != req.headers.end()) {
    bodyLen = parseContentLength(it->second);
  }
  if (bodyLen > kMaxBodyBytes) {
    throw Error("request body exceeds " + std::to_string(kMaxBodyBytes) +
                " bytes");
  }
  req.body = buf.substr(headerEnd + 4);
  if (req.body.size() > bodyLen) {
    throw Error("request carries more body bytes than Content-Length");
  }
  while (req.body.size() < bodyLen) {
    const std::size_t n = readSome(
        fd, chunk, std::min(sizeof(chunk), bodyLen - req.body.size()),
        timeoutMs);
    if (n == 0) {
      throw Error("connection closed mid-body");
    }
    req.body.append(chunk, n);
  }
  return req;
}

void writeHttpResponse(int fd, int status, std::string_view reason,
                       std::string_view contentType, std::string_view body,
                       int retryAfterSeconds) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(contentType) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (retryAfterSeconds >= 0) {
    out += "Retry-After: " + std::to_string(retryAfterSeconds) + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // client gone; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

int listenUnix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A daemon that was SIGKILLed leaves its socket file behind; a fresh
  // bind must replace it (connect()s to the stale file would hang).
  (void)::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("cannot create unix socket: ") +
                std::strerror(errno));
  }
  setCloexec(fd);
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on unix socket " + path + ": " + err);
  }
  return fd;
}

int listenTcp(std::uint16_t port, std::uint16_t* boundPort) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("cannot create TCP socket: ") +
                std::strerror(errno));
  }
  setCloexec(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local-only by design
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw Error("cannot listen on 127.0.0.1:" + std::to_string(port) + ": " +
                err);
  }
  if (boundPort != nullptr) {
    struct sockaddr_in got;
    socklen_t len = sizeof(got);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&got), &len) !=
        0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw Error(std::string("getsockname failed: ") + err);
    }
    *boundPort = ntohs(got.sin_port);
  }
  return fd;
}

}  // namespace nodebench::serve
