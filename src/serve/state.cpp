#include "serve/state.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>

#include "campaign/io.hpp"
#include "core/error.hpp"

namespace nodebench::serve {

namespace fs = std::filesystem;
namespace io = campaign::io;

namespace {

constexpr const char* kWhat = "serve state";
constexpr const char* kSpecSuffix = ".spec.json";
constexpr const char* kResultSuffix = ".result.json";

/// "req-000042" -> 42; nullopt for anything that is not exactly a
/// well-formed request id (the state dir may contain foreign files).
std::optional<std::uint64_t> parseRequestId(std::string_view name) {
  constexpr std::string_view prefix = "req-";
  if (name.size() != prefix.size() + 6 ||
      name.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (const char c : name.substr(prefix.size())) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string formatRequestId(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "req-%06llu",
                static_cast<unsigned long long>(n));
  return buf;
}

std::optional<std::string> readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw Error("failed reading " + path);
  }
  return text;
}

std::span<const std::uint8_t> asBytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

StateDir::StateDir(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw Error("cannot create state directory " + root_ +
                (ec ? ": " + ec.message() : ""));
  }
  // Continue numbering past the highest request already on disk, so a
  // restarted daemon never reuses an id (reuse would make a recovered
  // request and a new one fight over the same journal).
  std::uint64_t maxSeen = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    const std::size_t dot = name.find('.');
    if (const auto id = parseRequestId(
            dot == std::string::npos ? name : name.substr(0, dot))) {
      maxSeen = std::max(maxSeen, *id);
    }
  }
  nextId_ = maxSeen + 1;
}

std::string StateDir::nextRequestId() {
  std::lock_guard<std::mutex> lock(mu_);
  return formatRequestId(nextId_++);
}

std::string StateDir::specPath(const std::string& id) const {
  return (fs::path(root_) / (id + kSpecSuffix)).string();
}

std::string StateDir::journalPath(const std::string& id) const {
  return (fs::path(root_) / (id + ".journal")).string();
}

std::string StateDir::storePath(const std::string& id) const {
  return (fs::path(root_) / (id + ".store")).string();
}

std::string StateDir::resultPath(const std::string& id) const {
  return (fs::path(root_) / (id + kResultSuffix)).string();
}

void StateDir::writeSpec(const std::string& id, const std::string& json)
    const {
  io::atomicWrite(specPath(id), asBytes(json), kWhat);
}

void StateDir::writeResult(const std::string& id, const std::string& json)
    const {
  io::atomicWrite(resultPath(id), asBytes(json), kWhat);
}

void StateDir::removeSpec(const std::string& id) const {
  std::error_code ec;
  fs::remove(specPath(id), ec);  // best-effort; a leftover spec only
                                 // means a spurious resume later
}

std::optional<std::string> StateDir::readSpec(const std::string& id) const {
  return readWholeFile(specPath(id));
}

std::optional<std::string> StateDir::readResult(const std::string& id) const {
  return readWholeFile(resultPath(id));
}

bool StateDir::knownRequest(const std::string& id) const {
  std::error_code ec;
  return fs::exists(specPath(id), ec);
}

std::vector<std::string> StateDir::interruptedRequests() const {
  std::vector<std::string> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view suffix = kSpecSuffix;
    if (name.size() <= suffix.size() ||
        name.substr(name.size() - suffix.size()) != suffix) {
      continue;
    }
    const std::string id = name.substr(0, name.size() - suffix.size());
    if (!parseRequestId(id)) {
      continue;
    }
    std::error_code ec;
    if (!fs::exists(resultPath(id), ec)) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nodebench::serve
