#include "serve/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace nodebench::serve {

void appendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string jsonDouble(double value) {
  if (!std::isfinite(value)) {
    return value > 0 ? "\"inf\"" : (value < 0 ? "\"-inf\"" : "\"nan\"");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::comma() {
  if (needComma_) {
    out_.push_back(',');
  }
  needComma_ = true;
}

JsonWriter& JsonWriter::beginObject() {
  comma();
  out_.push_back('{');
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  out_.push_back('}');
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  comma();
  out_.push_back('[');
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  out_.push_back(']');
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  appendJsonString(out_, k);
  out_.push_back(':');
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  appendJsonString(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  out_ += jsonDouble(d);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

}  // namespace nodebench::serve
