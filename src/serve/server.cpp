#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <set>

#include "campaign/journal.hpp"
#include "core/error.hpp"
#include "report/memlab_report.hpp"
#include "serve/http.hpp"
#include "serve/json_writer.hpp"
#include "stats/store.hpp"

namespace nodebench::serve {

namespace {

std::string errorJson(std::string_view message) {
  JsonWriter w;
  w.beginObject();
  w.key("error").value(message);
  w.endObject();
  return w.str();
}

std::string stateJson(const std::string& id, std::string_view state) {
  JsonWriter w;
  w.beginObject();
  w.key("id").value(id);
  w.key("state").value(state);
  w.endObject();
  return w.str();
}

std::string interruptedJson(const std::string& id) {
  JsonWriter w;
  w.beginObject();
  w.key("id").value(id);
  w.key("state").value("interrupted");
  w.key("error").value(
      "daemon drained before this request finished; its journal is "
      "intact — restart the daemon with --resume to complete it");
  w.endObject();
  return w.str();
}

/// "req-" + 6 digits; anything else on the status path is a 400, which
/// also keeps ids from smuggling path separators into the state dir.
bool validRequestId(std::string_view id) {
  constexpr std::string_view prefix = "req-";
  if (id.size() != prefix.size() + 6 || id.substr(0, prefix.size()) != prefix) {
    return false;
  }
  for (const char c : id.substr(prefix.size())) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* Server::reqStateName(ReqState s) {
  switch (s) {
    case ReqState::Queued: return "queued";
    case ReqState::Running: return "running";
    case ReqState::Done: return "done";
    case ReqState::Cancelled: return "cancelled";
    case ReqState::Failed: return "error";
    case ReqState::Interrupted: return "interrupted";
  }
  return "?";
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), state_(opt_.stateDir), queue_(opt_.limits) {}

Server::~Server() {
  if (started_) {
    waitUntilStopped();
  } else if (listenFd_ >= 0) {
    ::close(listenFd_);
  }
}

void Server::start() {
  if (!opt_.socketPath.empty() && opt_.port >= 0) {
    throw Error("serve: --socket and --port are mutually exclusive");
  }
  if (opt_.socketPath.empty() && opt_.port < 0) {
    throw Error("serve: one of --socket PATH or --port N is required");
  }
  if (!opt_.socketPath.empty()) {
    listenFd_ = listenUnix(opt_.socketPath);
  } else {
    listenFd_ = listenTcp(static_cast<std::uint16_t>(opt_.port), &boundPort_);
  }

  if (opt_.resume) {
    // Crash recovery: every accepted-but-unfinished request goes back on
    // the queue, bypassing admission limits — this work was admitted in
    // a previous lifetime and must not bounce off its own quota.
    for (const std::string& id : state_.interruptedRequests()) {
      const auto spec = state_.readSpec(id);
      if (!spec) {
        continue;
      }
      std::string tenant;
      try {
        tenant = CampaignRequest::fromJson(*spec).tenant;
      } catch (const std::exception& e) {
        std::cerr << "nodebench serve: skipping unreadable spec for " << id
                  << ": " << e.what() << "\n";
        continue;
      }
      auto entry = std::make_shared<RequestEntry>();
      entry->tenant = tenant;
      {
        std::lock_guard<std::mutex> lock(entriesMu_);
        entries_[id] = std::move(entry);
      }
      queue_.pushRecovered({id, tenant});
      ++recovered_;
      std::cerr << "nodebench serve: recovered interrupted request " << id
                << "\n";
    }
  }

  for (int i = 0; i < std::max(1, opt_.executorThreads); ++i) {
    executors_.emplace_back([this] { executorLoop(); });
  }
  for (int i = 0; i < std::max(1, opt_.ioThreads); ++i) {
    ioThreads_.emplace_back([this] { ioLoop(); });
  }
  watchdog_ = std::thread([this] { watchdogLoop(); });
  acceptor_ = std::thread([this] { acceptLoop(); });
  started_ = true;
}

void Server::requestDrain() {
  draining_ = true;
  queue_.close();
  // In-flight work is cancelled cell-cooperatively: completed cells are
  // already journalled, the running cell finishes and journals, and the
  // request resolves as Interrupted (spec kept, no result) for --resume.
  std::lock_guard<std::mutex> lock(entriesMu_);
  for (auto& [id, entry] : entries_) {
    if (entry->state == ReqState::Running) {
      entry->cancel.set(CancelReason::Drain);
    }
  }
}

void Server::waitUntilStopped() {
  requestDrain();
  for (std::thread& t : executors_) {
    t.join();
  }
  executors_.clear();
  // Executors settled: every entry is final, every wait=true response
  // has been written. Now stop the watchdog and the HTTP front end.
  stopIo_ = true;
  {
    std::lock_guard<std::mutex> lock(connMu_);
    for (std::size_t i = 0; i < ioThreads_.size(); ++i) {
      connQueue_.push_back(-1);
    }
  }
  connCv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (std::thread& t : ioThreads_) {
    t.join();
  }
  ioThreads_.clear();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!opt_.socketPath.empty()) {
    (void)::unlink(opt_.socketPath.c_str());
  }
  started_ = false;
}

void Server::acceptLoop() {
  while (!stopIo_) {
    struct pollfd pfd;
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) {
      continue;  // timeout, EINTR — re-check stopIo_
    }
    const int cfd = ::accept(listenFd_, nullptr, nullptr);
    if (cfd < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(connMu_);
      connQueue_.push_back(cfd);
    }
    connCv_.notify_one();
  }
}

void Server::ioLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(connMu_);
      connCv_.wait(lock, [&] { return !connQueue_.empty(); });
      fd = connQueue_.front();
      connQueue_.pop_front();
    }
    if (fd < 0) {
      return;  // shutdown sentinel
    }
    handleConnection(fd);
    ::close(fd);
  }
}

void Server::handleConnection(int fd) {
  std::optional<HttpRequest> req;
  try {
    req = readHttpRequest(fd, opt_.readTimeoutMs);
  } catch (const std::exception& e) {
    writeHttpResponse(fd, 400, "Bad Request", "application/json",
                      errorJson(e.what()));
    return;
  }
  if (!req) {
    return;  // client connected and left
  }
  try {
    constexpr std::string_view statusPrefix = "/requests/";
    if (req->method == "POST" && req->target == "/requests") {
      handleSubmit(fd, req->body);
    } else if (req->method == "GET" &&
               req->target.rfind(statusPrefix, 0) == 0) {
      handleStatus(fd, req->target.substr(statusPrefix.size()));
    } else if (req->method == "GET" && req->target == "/healthz") {
      handleHealth(fd);
    } else {
      writeHttpResponse(fd, 404, "Not Found", "application/json",
                        errorJson("unknown endpoint"));
    }
  } catch (const std::exception& e) {
    writeHttpResponse(fd, 500, "Internal Server Error", "application/json",
                      errorJson(e.what()));
  }
}

void Server::handleSubmit(int fd, const std::string& body) {
  CampaignRequest req;
  try {
    req = CampaignRequest::fromJson(body);
  } catch (const std::exception& e) {
    writeHttpResponse(fd, 400, "Bad Request", "application/json",
                      errorJson(e.what()));
    return;
  }
  if (req.debugCellDelayMs > 0 && !opt_.allowDebugHooks) {
    writeHttpResponse(fd, 400, "Bad Request", "application/json",
                      errorJson("debug_cell_delay_ms requires a daemon "
                                "started with --test-hooks"));
    return;
  }
  if (draining_) {
    writeHttpResponse(fd, 503, "Service Unavailable", "application/json",
                      errorJson("draining: no new work is admitted"));
    return;
  }

  const std::string id = state_.nextRequestId();
  state_.writeSpec(id, req.canonicalJson());
  auto entry = std::make_shared<RequestEntry>();
  entry->tenant = req.tenant;
  {
    std::lock_guard<std::mutex> lock(entriesMu_);
    entries_[id] = entry;
  }

  const Admit admit = queue_.tryPush({id, req.tenant});
  if (admit != Admit::Admitted) {
    {
      std::lock_guard<std::mutex> lock(entriesMu_);
      entries_.erase(id);
    }
    state_.removeSpec(id);
    if (admit == Admit::Draining) {
      writeHttpResponse(fd, 503, "Service Unavailable", "application/json",
                        errorJson("draining: no new work is admitted"));
      return;
    }
    // Structured back-pressure: the reason names which limit tripped and
    // Retry-After (header and body) tells the client when to come back.
    const int retryAfter = queue_.retryAfterSeconds(admit);
    JsonWriter w;
    w.beginObject();
    w.key("error").value("request rejected by admission control");
    w.key("reason").value(admitName(admit));
    w.key("tenant").value(req.tenant);
    w.key("retry_after_s").value(retryAfter);
    w.endObject();
    writeHttpResponse(fd, 429, "Too Many Requests", "application/json",
                      w.str(), retryAfter);
    return;
  }

  if (!req.wait) {
    writeHttpResponse(fd, 202, "Accepted", "application/json",
                      stateJson(id, "queued"));
    return;
  }

  // wait=true pins this I/O thread until the request resolves — by
  // completion, watchdog cancellation, failure, or drain interruption.
  ReqState finalState;
  std::string resultBody;
  {
    std::unique_lock<std::mutex> lock(entriesMu_);
    entriesCv_.wait(lock, [&] {
      return entry->state != ReqState::Queued &&
             entry->state != ReqState::Running;
    });
    finalState = entry->state;
    resultBody = entry->resultJson;
  }
  switch (finalState) {
    case ReqState::Done:
    case ReqState::Cancelled:
      writeHttpResponse(fd, 200, "OK", "application/json", resultBody);
      break;
    case ReqState::Failed:
      writeHttpResponse(fd, 500, "Internal Server Error", "application/json",
                        resultBody);
      break;
    default:
      writeHttpResponse(fd, 503, "Service Unavailable", "application/json",
                        resultBody.empty() ? interruptedJson(id)
                                           : resultBody);
      break;
  }
}

void Server::handleStatus(int fd, const std::string& id) {
  if (!validRequestId(id)) {
    writeHttpResponse(fd, 400, "Bad Request", "application/json",
                      errorJson("malformed request id"));
    return;
  }
  if (const auto entry = findEntry(id)) {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(entriesMu_);
      body = entry->resultJson.empty()
                 ? stateJson(id, reqStateName(entry->state))
                 : entry->resultJson;
    }
    writeHttpResponse(fd, 200, "OK", "application/json", body);
    return;
  }
  // Not live: a previous lifetime's request. The state dir is the truth.
  if (const auto result = state_.readResult(id)) {
    writeHttpResponse(fd, 200, "OK", "application/json", *result);
    return;
  }
  if (state_.knownRequest(id)) {
    writeHttpResponse(fd, 200, "OK", "application/json", interruptedJson(id));
    return;
  }
  writeHttpResponse(fd, 404, "Not Found", "application/json",
                    errorJson("unknown request id"));
}

void Server::handleHealth(int fd) {
  const AdmissionQueue::Stats qs = queue_.stats();
  JsonWriter w;
  w.beginObject();
  w.key("state").value(draining_ ? "draining" : "serving");
  w.key("queued").value(static_cast<std::uint64_t>(qs.queued));
  w.key("inflight").value(static_cast<std::uint64_t>(qs.inflight));
  w.key("admitted").value(qs.admitted);
  w.key("rejected").value(qs.rejected);
  w.key("completed").value(qs.completed);
  w.key("watchdog_cancelled").value(watchdogCancelled_.load());
  w.key("drain_interrupted").value(drainInterrupted_.load());
  w.key("memo_hits").value(memoHits_.load());
  {
    std::lock_guard<std::mutex> lock(memoMu_);
    w.key("memo_entries").value(static_cast<std::uint64_t>(memo_.size()));
  }
  w.key("memo_evictions").value(memoEvictions_.load());
  w.key("memo_max_entries")
      .value(static_cast<std::uint64_t>(opt_.memoMaxEntries));
  w.key("recovered").value(recovered_.load());
  w.endObject();
  writeHttpResponse(fd, 200, "OK", "application/json", w.str());
}

void Server::executorLoop() {
  while (auto ticket = queue_.pop()) {
    runRequest(*ticket);
  }
}

void Server::watchdogLoop() {
  while (!stopIo_) {
    for (const std::string& id :
         watchdogMonitor_.expired(std::chrono::steady_clock::now())) {
      const auto entry = findEntry(id);
      if (entry) {
        std::lock_guard<std::mutex> lock(entriesMu_);
        if (entry->state == ReqState::Running &&
            !entry->cancel.requested()) {
          entry->cancel.set(CancelReason::Watchdog);
          std::cerr << "nodebench serve: watchdog expired for " << id
                    << ", cancelling\n";
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, opt_.watchdogPollMs)));
  }
}

std::shared_ptr<Server::RequestEntry> Server::findEntry(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(entriesMu_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second;
}

void Server::finishEntry(const std::string& id, ReqState state,
                         std::string resultJson) {
  {
    std::lock_guard<std::mutex> lock(entriesMu_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      it->second->state = state;
      it->second->resultJson = std::move(resultJson);
    }
  }
  watchdogMonitor_.disarm(id);
  entriesCv_.notify_all();
}

void Server::runRequest(const Ticket& ticket) {
  const std::string& id = ticket.id;
  const auto entry = findEntry(id);
  if (!entry) {
    queue_.finish(ticket);
    return;
  }
  if (draining_) {
    // Popped after drain began: never started, so leave its spec on
    // disk for --resume instead of racing the shutdown.
    ++drainInterrupted_;
    finishEntry(id, ReqState::Interrupted, interruptedJson(id));
    queue_.finish(ticket);
    return;
  }

  // Persist-or-report wrapper: a result we cannot write (disk full) must
  // not crash the executor; the entry still resolves with the error.
  const auto persist = [&](const std::string& json) {
    try {
      state_.writeResult(id, json);
      return true;
    } catch (const std::exception& e) {
      std::cerr << "nodebench serve: cannot persist result for " << id
                << ": " << e.what() << "\n";
      return false;
    }
  };

  try {
    const auto spec = state_.readSpec(id);
    if (!spec) {
      throw Error("spec file missing for " + id);
    }
    const CampaignRequest req = CampaignRequest::fromJson(*spec);
    {
      std::lock_guard<std::mutex> lock(entriesMu_);
      entry->state = ReqState::Running;
    }
    if (req.watchdogMs > 0) {
      watchdogMonitor_.arm(id, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(req.watchdogMs));
    }

    report::TableOptions opt = req.tableOptions();
    opt.cancel = &entry->cancel;
    const campaign::CampaignConfig cfg = report::campaignConfig(opt);
    const std::string journalPath = state_.journalPath(id);
    std::error_code ec;
    std::unique_ptr<campaign::Journal> journal =
        std::filesystem::exists(journalPath, ec)
            ? campaign::Journal::resume(journalPath, cfg)
            : campaign::Journal::create(journalPath, cfg);
    for (const std::string& warning : journal->warnings()) {
      std::cerr << "nodebench serve: " << id << ": " << warning << "\n";
    }
    opt.journal = journal.get();
    std::unique_ptr<stats::ResultStore> store;
    if (req.storeSamples) {
      store = stats::ResultStore::attach(state_.storePath(id), cfg,
                                         /*resume=*/true);
      opt.store = store.get();
    }

    const std::string json = renderTables(id, req, opt);
    persist(json);
    finishEntry(id, ReqState::Done, json);
  } catch (const CancelledError& e) {
    if (e.reason() == CancelReason::Watchdog) {
      ++watchdogCancelled_;
      // Structured incident: the request is finished (persisted), its
      // journal remains for post-mortems, other requests are untouched.
      JsonWriter w;
      w.beginObject();
      w.key("id").value(id);
      w.key("tenant").value(entry->tenant);
      w.key("state").value("cancelled");
      w.key("incident").beginObject();
      w.key("kind").value("watchdog");
      w.key("detail").value(e.what());
      w.endObject();
      w.endObject();
      persist(w.str());
      finishEntry(id, ReqState::Cancelled, w.str());
    } else {
      ++drainInterrupted_;
      finishEntry(id, ReqState::Interrupted, interruptedJson(id));
    }
  } catch (const std::exception& e) {
    JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("tenant").value(entry->tenant);
    w.key("state").value("error");
    w.key("error").value(e.what());
    w.endObject();
    persist(w.str());
    finishEntry(id, ReqState::Failed, w.str());
  }
  queue_.finish(ticket);
}

std::string Server::renderTables(const std::string& id,
                                 const CampaignRequest& req,
                                 report::TableOptions& opt) {
  const std::string measKey = req.measurementKey();
  struct Out {
    std::string label;  ///< "4".."7" or a memlab family name.
    std::shared_ptr<const MemoEntry> entry;
  };
  // Tables first, then the memlab families, each rendered (and memoized)
  // under its own label.
  std::vector<std::string> labels;
  for (const int table : req.tables) {
    labels.push_back(std::to_string(table));
  }
  for (const std::string& family : req.families) {
    labels.push_back(family);
  }
  std::vector<Out> outs;
  for (const std::string& label : labels) {
    const std::string key = measKey + "#" + label;
    if (!req.storeSamples) {
      std::lock_guard<std::mutex> lock(memoMu_);
      const auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++memoHits_;
        memoLru_.splice(memoLru_.begin(), memoLru_, it->second.lru);
        outs.push_back({label, it->second.entry});
        continue;
      }
    }
    auto fresh = std::make_shared<MemoEntry>();
    if (label == "sweep") {
      const auto rows = report::computeSweep(opt, &fresh->incidents);
      fresh->ascii = report::renderSweep(rows, &fresh->incidents).renderAscii();
      if (const std::string chart = report::renderSweepChart(rows);
          !chart.empty()) {
        fresh->ascii += "\n" + chart;
      }
    } else if (label == "chase") {
      const auto rows = report::computeChase(opt, &fresh->incidents);
      fresh->ascii =
          report::renderChaseNs(rows, &fresh->incidents).renderAscii() + "\n" +
          report::renderChaseClk(rows, &fresh->incidents).renderAscii();
      if (const std::string chart = report::renderChaseChart(rows);
          !chart.empty()) {
        fresh->ascii += "\n" + chart;
      }
    } else {
      switch (std::stoi(label)) {
        case 4:
          fresh->ascii = report::renderTable4(
                             report::computeTable4(opt, &fresh->incidents),
                             &fresh->incidents)
                             .renderAscii();
          break;
        case 5:
          fresh->ascii = report::renderTable5(
                             report::computeTable5(opt, &fresh->incidents),
                             &fresh->incidents)
                             .renderAscii();
          break;
        case 6:
          fresh->ascii = report::renderTable6(
                             report::computeTable6(opt, &fresh->incidents),
                             &fresh->incidents)
                             .renderAscii();
          break;
        case 7: {
          // Table 7 is a digest of 5 and 6; within one request the shared
          // journal replays any cells tables 5/6 already measured.
          const auto t5 = report::computeTable5(opt, &fresh->incidents);
          const auto t6 = report::computeTable6(opt, &fresh->incidents);
          fresh->ascii =
              report::buildTable7(t5, t6, &fresh->incidents).renderAscii();
          break;
        }
        default:
          throw Error("unsupported table " + label);
      }
    }
    if (!req.storeSamples) {
      // Sound because results are deterministic functions of the
      // measurement key; store-sample runs skip the cache so every such
      // request materializes its own NBRS file. Eviction past the LRU
      // cap only costs recomputation, never correctness.
      std::lock_guard<std::mutex> lock(memoMu_);
      if (memo_.find(key) == memo_.end()) {
        memoLru_.push_front(key);
        memo_.emplace(key, MemoSlot{fresh, memoLru_.begin()});
        while (opt_.memoMaxEntries != 0 &&
               memo_.size() > opt_.memoMaxEntries) {
          memo_.erase(memoLru_.back());
          memoLru_.pop_back();
          ++memoEvictions_;
        }
      }
    }
    outs.push_back({label, std::move(fresh)});
  }

  JsonWriter w;
  w.beginObject();
  w.key("id").value(id);
  w.key("tenant").value(req.tenant);
  w.key("state").value("done");
  w.key("tables").beginObject();
  for (const Out& o : outs) {
    w.key(o.label).value(o.entry->ascii);
  }
  w.endObject();
  // One deduplicated incident list: a cell replayed for Table 7 after
  // Table 5 measured it restores the same incident slot; report it once.
  w.key("incidents").beginArray();
  std::set<std::string> seen;
  for (const Out& o : outs) {
    for (const report::CellIncident& i : o.entry->incidents) {
      if (!seen.insert(i.machine + "\n" + i.cell).second) {
        continue;
      }
      w.beginObject();
      w.key("machine").value(i.machine);
      w.key("cell").value(i.cell);
      w.key("attempts").value(i.attempts);
      w.key("failed").value(i.failed);
      w.key("error").value(i.error);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();
  return w.str();
}

}  // namespace nodebench::serve
