#pragma once
/// \file state.hpp
/// \brief The daemon's on-disk state directory: one spec, journal,
/// store and result file per request.
///
/// Layout under the state root:
///
///   req-000001.spec.json   canonical request spec (atomic write)
///   req-000001.journal     campaign journal (crash-safe, append-only)
///   req-000001.store       NBRS results store (when store_samples)
///   req-000001.result.json final result document (atomic write)
///
/// The files double as the crash-recovery protocol: a spec *without* a
/// result is a request the daemon accepted but did not finish — after a
/// SIGKILL or a drain, `--resume` scans for exactly those, re-parses
/// the canonical spec, and re-executes against the existing journal.
/// Completed cells replay from the journal and skipped ones re-measure
/// deterministically, so the recovered result is byte-identical to what
/// an uninterrupted run would have produced. Because the result write
/// is atomic (temp + rename via campaign::io), "spec without result" is
/// an unambiguous state: there is no torn result file to misread.
///
/// Request ids are dense, zero-padded and monotonic; after a restart
/// the counter continues past the highest id on disk, so recovered and
/// new requests never collide.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nodebench::serve {

class StateDir {
 public:
  /// Opens (creating if needed) the state directory and initializes the
  /// id counter past any existing requests. Throws Error when the path
  /// exists but is not a directory, or cannot be created.
  explicit StateDir(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Allocates the next request id ("req-000042"), unique within and
  /// across daemon lifetimes on this state dir.
  [[nodiscard]] std::string nextRequestId();

  [[nodiscard]] std::string specPath(const std::string& id) const;
  [[nodiscard]] std::string journalPath(const std::string& id) const;
  [[nodiscard]] std::string storePath(const std::string& id) const;
  [[nodiscard]] std::string resultPath(const std::string& id) const;

  /// Atomic spec/result writes (campaign::io::atomicWrite).
  void writeSpec(const std::string& id, const std::string& json) const;
  void writeResult(const std::string& id, const std::string& json) const;
  void removeSpec(const std::string& id) const;

  [[nodiscard]] std::optional<std::string> readSpec(
      const std::string& id) const;
  [[nodiscard]] std::optional<std::string> readResult(
      const std::string& id) const;

  /// True when `id` names a known request (a spec file exists).
  [[nodiscard]] bool knownRequest(const std::string& id) const;

  /// The crash-recovery scan: ids with a spec but no result, sorted.
  [[nodiscard]] std::vector<std::string> interruptedRequests() const;

 private:
  std::string root_;
  std::mutex mu_;
  std::uint64_t nextId_ = 1;
};

}  // namespace nodebench::serve
