#pragma once
/// \file request.hpp
/// \brief Campaign request decoding and validation for `nodebench serve`.
///
/// A campaign request is the daemon's unit of work: which tables to
/// regenerate, over which machines, with how many repetitions, under
/// which fault plan — plus the serve-layer envelope (tenant identity,
/// watchdog budget, whether the HTTP response should wait for the
/// result). Requests arrive as JSON over a local socket from untrusted
/// clients, so the decoder is strict (unknown fields and out-of-range
/// values are errors, never guesses) and is a fuzz target
/// (tests/fuzz/fuzz_serve.cpp).
///
/// `canonicalJson()` renders the decoded request back to a normalized
/// form — sorted deduplicated tables, registry-canonical machine names,
/// every field explicit, doubles with full round-trip precision. That is
/// what the daemon persists to its state directory: crash recovery
/// re-parses the canonical spec, so a resumed request reconstructs the
/// exact configuration (and therefore, by the determinism contract,
/// byte-identical results).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_plan.hpp"
#include "report/tables.hpp"

namespace nodebench::serve {

/// Decoded, validated campaign request.
struct CampaignRequest {
  std::string tenant = "default";  ///< Quota key: [A-Za-z0-9_-]{1,64}.
  std::vector<int> tables;         ///< Sorted unique subset of 4..7.
  /// Sorted unique subset of {"chase", "sweep"}: the memlab benchmark
  /// families to run alongside (or instead of) the tables. When the
  /// request names families but no tables, only the families run; when
  /// it names neither, the default is tables = [4].
  std::vector<std::string> families;
  int runs = 100;                  ///< Binary runs per cell (1..100000).
  int jobs = 1;                    ///< Harness workers (1..256).
  std::vector<std::string> machines;  ///< Canonical names; empty = all.
  std::optional<faults::FaultPlan> faultPlan;  ///< Inline "fault_plan".
  bool storeSamples = false;  ///< Record raw samples (NBRS store).
  int watchdogMs = 0;         ///< Wall-clock budget; 0 = unlimited.
  bool wait = true;           ///< POST response carries the result.
  int cellRetries = 2;        ///< Extra attempts per failing cell.
  int retryBackoffBaseMs = 0;    ///< Capped-exponential retry backoff.
  int retryBackoffMaxMs = 1000;  ///< Backoff cap.
  int debugCellDelayMs = 0;  ///< Test hook; daemon gates on --test-hooks.

  /// Parses and validates a request document. Throws Error with a
  /// message naming the offending field on any malformed, unknown or
  /// out-of-range input. This is the fuzz-target entry point.
  [[nodiscard]] static CampaignRequest fromJson(std::string_view text);

  /// Normalized re-rendering of this request (see file comment). A
  /// decode of the canonical form re-canonicalizes to the same bytes.
  [[nodiscard]] std::string canonicalJson() const;

  /// The measurement-relevant identity of this request: every field
  /// that can change a measured value, excluding the serve envelope
  /// (tenant, wait, watchdog) and storage options. Two requests with
  /// equal keys produce byte-identical tables, which is what makes the
  /// daemon's process-wide memoization sound.
  [[nodiscard]] std::string measurementKey() const;

  /// Harness options for executing this request. The returned options
  /// hold pointers into this request (fault plan, machine filter), so
  /// the request must outlive them.
  [[nodiscard]] report::TableOptions tableOptions() const;
};

}  // namespace nodebench::serve
