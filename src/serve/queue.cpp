#include "serve/queue.hpp"

#include <algorithm>

namespace nodebench::serve {

const char* admitName(Admit a) {
  switch (a) {
    case Admit::Admitted: return "admitted";
    case Admit::QueueFull: return "queue-full";
    case Admit::TenantQueueFull: return "tenant-queue-full";
    case Admit::TenantInflightFull: return "tenant-inflight-full";
    case Admit::Draining: return "draining";
  }
  return "?";
}

Admit AdmissionQueue::tryPush(Ticket t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    ++rejected_;
    return Admit::Draining;
  }
  if (queue_.size() >= limits_.maxQueueDepth) {
    ++rejected_;
    return Admit::QueueFull;
  }
  // A tenant's queueable budget is its queued cap plus its currently
  // free executor slots: queueing into a free slot is immediately
  // popped, so it never really sits in the queue. When the budget is
  // exhausted the reason distinguishes "your queue is full" from "you
  // are at your concurrency cap" (the latter only arises with a zero
  // queued cap, the synchronous per-tenant configuration).
  const std::size_t inflight = tenantInflight_[t.tenant];
  const std::size_t freeSlots = limits_.maxInflightPerTenant > inflight
                                    ? limits_.maxInflightPerTenant - inflight
                                    : 0;
  const std::size_t budget = limits_.maxQueuedPerTenant + freeSlots;
  const std::size_t queued = tenantQueued_[t.tenant];
  if (queued >= budget) {
    ++rejected_;
    return inflight >= limits_.maxInflightPerTenant
               ? Admit::TenantInflightFull
               : Admit::TenantQueueFull;
  }
  ++tenantQueued_[t.tenant];
  ++admitted_;
  queue_.push_back(std::move(t));
  cv_.notify_one();
  return Admit::Admitted;
}

void AdmissionQueue::pushRecovered(Ticket t) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tenantQueued_[t.tenant];
  ++admitted_;
  queue_.push_back(std::move(t));
  cv_.notify_one();
}

std::optional<Ticket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // First queued ticket whose tenant has a free inflight slot; later
    // tenants overtake a capped one instead of head-of-line blocking.
    const auto eligible =
        std::find_if(queue_.begin(), queue_.end(), [&](const Ticket& t) {
          return tenantInflight_[t.tenant] < limits_.maxInflightPerTenant;
        });
    if (eligible != queue_.end()) {
      Ticket t = std::move(*eligible);
      queue_.erase(eligible);
      --tenantQueued_[t.tenant];
      ++tenantInflight_[t.tenant];
      ++inflight_;
      return t;
    }
    if (closed_ && queue_.empty()) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

void AdmissionQueue::finish(const Ticket& t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenantInflight_.find(t.tenant);
  if (it != tenantInflight_.end() && it->second > 0) {
    --it->second;
  }
  if (inflight_ > 0) {
    --inflight_;
  }
  ++completed_;
  // A freed slot may make a capped tenant's queued work eligible, and
  // drain waits for closed && empty && idle — wake everyone.
  cv_.notify_all();
}

void AdmissionQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int AdmissionQueue::retryAfterSeconds(Admit a) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (a == Admit::QueueFull) {
    // Proportional to the backlog: with N requests queued ahead, coming
    // back in ~N seconds is the earliest a slot can plausibly be free.
    return static_cast<int>(std::min<std::size_t>(30, 1 + queue_.size()));
  }
  // Per-tenant caps clear as soon as one of the tenant's own requests
  // finishes; retry soon.
  return 1;
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.queued = queue_.size();
  s.inflight = inflight_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  return s;
}

}  // namespace nodebench::serve
