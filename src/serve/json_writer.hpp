#pragma once
/// \file json_writer.hpp
/// \brief Tiny JSON emitter for the serve daemon's wire format.
///
/// The daemon's responses and persisted request specs are JSON. Two
/// properties matter more than convenience here:
///
///  - **Exact doubles.** Numbers render with "%.17g", enough digits to
///    round-trip any IEEE-754 double bit-exactly. Result files are the
///    artifact the crash-recovery proof compares byte-for-byte, so the
///    renderer must be deterministic down to the last digit.
///  - **Strict escaping.** Table text and error messages flow into
///    responses verbatim; the writer escapes every control character,
///    quote and backslash so no payload can break the framing.
///
/// This is a writer only — the daemon parses requests with the
/// faults::JsonValue reader, keeping one parser in the tree.

#include <cstdint>
#include <string>
#include <string_view>

namespace nodebench::serve {

/// Appends `s` as a quoted, escaped JSON string to `out`.
void appendJsonString(std::string& out, std::string_view s);

/// Renders a double with enough precision to round-trip bit-exactly
/// ("%.17g"); non-finite values render as quoted strings ("inf", "nan")
/// since JSON has no literal for them.
[[nodiscard]] std::string jsonDouble(double value);

/// Incremental object/array builder. Minimal by design: the call sites
/// know their structure statically, the builder only handles commas,
/// escaping and nesting.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object member key (must be inside an object, before a value).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t i);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  bool needComma_ = false;
};

}  // namespace nodebench::serve
