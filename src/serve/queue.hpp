#pragma once
/// \file queue.hpp
/// \brief Bounded admission queue with per-tenant quotas for the daemon.
///
/// Back-pressure lives here. The daemon never buffers unbounded work:
/// the queue has a global depth cap, each tenant has a queued cap and a
/// concurrent-execution cap, and an over-limit submission is *rejected
/// at admission time* with a structured reason and a retry-after hint —
/// the HTTP layer turns that into a 429. Rejecting early beats queueing
/// and timing out: the client knows immediately, and a misbehaving
/// tenant cannot starve the others (their quotas are independent, and
/// `pop` lets a later tenant's work overtake an earlier tenant that is
/// at its concurrency cap).
///
/// Thread-safety: all members are callable from any thread; `pop`
/// blocks. `close` begins drain — no further admissions, poppers finish
/// the remaining queue and then see std::nullopt. The tsan concurrency
/// suite hammers admit/pop/finish from many threads
/// (tests/serve/queue_test.cpp).

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace nodebench::serve {

/// One queued unit of work: a request id plus the tenant it counts
/// against. The payload itself lives in the server's request table.
struct Ticket {
  std::string id;
  std::string tenant;
};

/// Admission limits. Defaults are deliberately small: this is a
/// measurement daemon, not a job scheduler — a deep queue only hides
/// how far behind the executors are.
struct QueueLimits {
  std::size_t maxQueueDepth = 8;        ///< Global queued cap.
  std::size_t maxQueuedPerTenant = 4;   ///< Per-tenant queued cap.
  std::size_t maxInflightPerTenant = 1; ///< Per-tenant executing cap.
};

/// Admission outcome. Everything except Admitted is a rejection the
/// HTTP layer reports without side effects.
enum class Admit {
  Admitted = 0,
  QueueFull,          ///< Global depth cap reached.
  TenantQueueFull,    ///< This tenant's queued cap reached.
  TenantInflightFull, ///< Tenant queued cap fine, but queueing more than
                      ///< it could ever run is pointless — still counted
                      ///< per-tenant at pop time, reported at admission
                      ///< only when queued + inflight hits both caps.
  Draining,           ///< close() was called; daemon is shutting down.
};

[[nodiscard]] const char* admitName(Admit a);

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueLimits limits) : limits_(limits) {}

  /// Admission control + enqueue; every rejection leaves the queue
  /// untouched.
  [[nodiscard]] Admit tryPush(Ticket t);

  /// Enqueues bypassing the admission limits — the crash-recovery path:
  /// work that was already admitted before a restart must not bounce
  /// off its own quota on the way back in.
  void pushRecovered(Ticket t);

  /// Blocks for the next ticket whose tenant is below its inflight cap
  /// (later tenants may overtake a capped one). Returns std::nullopt
  /// once the queue is closed *and* empty. The popped tenant's inflight
  /// count is incremented; the caller must pair with finish().
  [[nodiscard]] std::optional<Ticket> pop();

  /// Marks a popped ticket's execution finished (success or not).
  void finish(const Ticket& t);

  /// Begins drain: all further tryPush calls return Draining, poppers
  /// drain the remaining queue and then unblock with std::nullopt.
  void close();

  [[nodiscard]] bool closed() const;

  /// Retry-after hint (seconds) for a rejection: proportional to the
  /// backlog for a global-full rejection, minimal for per-tenant caps
  /// (those clear as soon as one of the tenant's own requests finishes).
  [[nodiscard]] int retryAfterSeconds(Admit a) const;

  struct Stats {
    std::size_t queued = 0;
    std::size_t inflight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  std::map<std::string, std::size_t, std::less<>> tenantQueued_;
  std::map<std::string, std::size_t, std::less<>> tenantInflight_;
  QueueLimits limits_;
  bool closed_ = false;
  std::size_t inflight_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace nodebench::serve
