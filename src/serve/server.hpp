#pragma once
/// \file server.hpp
/// \brief The `nodebench serve` daemon: a crash-tolerant measurement
/// service over a local socket.
///
/// Architecture (all threads owned by Server):
///
///   acceptor ──> connection queue ──> I/O threads (HTTP parse, route,
///                                     respond; a wait=true POST blocks
///                                     its I/O thread until the result)
///   admission queue (bounded, per-tenant quotas, see queue.hpp)
///   executor threads ──> campaign harness (report::computeTable*)
///                        with a per-request journal + optional store
///   watchdog thread ──> cancels requests past their wall-clock budget
///
/// Robustness contract:
///  - **Back-pressure**: over-limit submissions get a structured 429
///    with a Retry-After hint; the daemon never buffers unbounded work.
///  - **Watchdog**: a request exceeding its `watchdog_ms` is cancelled
///    cell-cooperatively; its result records a structured incident and
///    concurrent requests are unaffected.
///  - **Graceful drain**: SIGTERM/SIGINT (via requestDrain) stops
///    admissions, cancels in-flight work at cell granularity (completed
///    cells are journalled), leaves queued specs on disk, keeps
///    answering status reads until the executors settle, then exits 0.
///  - **Crash recovery**: on restart with resume=true, specs without
///    results are re-queued; their journals replay completed cells, so
///    the final results are byte-identical to an uninterrupted run.
///  - **Memoization**: identical measurement specs (see
///    CampaignRequest::measurementKey) share one in-process computation
///    across tenants; sound because results are deterministic.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/deadline.hpp"
#include "report/tables.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/state.hpp"

namespace nodebench::serve {

struct ServerOptions {
  /// Exactly one of socketPath / port selects the listener: a unix
  /// socket path, or a TCP port on 127.0.0.1 (0 = ephemeral, see
  /// boundPort()).
  std::string socketPath;
  int port = -1;

  std::string stateDir = "nodebench-serve-state";
  QueueLimits limits;
  int ioThreads = 2;
  int executorThreads = 1;
  int watchdogPollMs = 20;   ///< Deadline scan period.
  int readTimeoutMs = 10000; ///< Per-connection HTTP read budget.
  /// Bounded memoization: the memo table keeps at most this many
  /// rendered tables, evicting least-recently-used entries past the
  /// cap (0 = unbounded). Eviction only costs recomputation — results
  /// are deterministic, so byte-identity is unaffected.
  std::size_t memoMaxEntries = 1024;
  bool allowDebugHooks = false;  ///< Permit debug_cell_delay_ms requests.
  bool resume = false;  ///< Re-queue interrupted requests from stateDir.
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, performs the recovery scan (resume mode) and
  /// spawns all threads. Throws Error on bind/state-dir failure.
  void start();

  /// Begins graceful drain (idempotent; callable from any thread — the
  /// CLI calls it when its signal flag trips).
  void requestDrain();

  /// Blocks until the drain completes and every thread has joined.
  void waitUntilStopped();

  /// The actual TCP port (after start(), TCP mode only).
  [[nodiscard]] std::uint16_t boundPort() const { return boundPort_; }

  [[nodiscard]] const std::string& stateRoot() const {
    return state_.root();
  }

 private:
  enum class ReqState {
    Queued,
    Running,
    Done,        ///< Result persisted, success.
    Cancelled,   ///< Watchdog expiry; result persisted with incident.
    Failed,      ///< Execution error; result persisted with the message.
    Interrupted, ///< Drain; spec kept without result for --resume.
  };
  static const char* reqStateName(ReqState s);

  struct RequestEntry {
    std::string tenant;
    ReqState state = ReqState::Queued;
    std::string resultJson;  ///< Final response body (Done/Cancelled/Failed).
    CancelToken cancel;
  };

  struct MemoEntry {
    std::string ascii;
    std::vector<report::CellIncident> incidents;
  };

  /// One memo-table slot: the shared rendered result plus its position
  /// in the recency list (front = most recently used).
  struct MemoSlot {
    std::shared_ptr<const MemoEntry> entry;
    std::list<std::string>::iterator lru;
  };

  // Thread bodies.
  void acceptLoop();
  void ioLoop();
  void executorLoop();
  void watchdogLoop();

  // HTTP handling.
  void handleConnection(int fd);
  void handleSubmit(int fd, const std::string& body);
  void handleStatus(int fd, const std::string& id);
  void handleHealth(int fd);

  // Execution.
  void runRequest(const Ticket& ticket);
  [[nodiscard]] std::string renderTables(const std::string& id,
                                         const CampaignRequest& req,
                                         report::TableOptions& opt);
  void finishEntry(const std::string& id, ReqState state,
                   std::string resultJson);

  [[nodiscard]] std::shared_ptr<RequestEntry> findEntry(
      const std::string& id);

  ServerOptions opt_;
  StateDir state_;
  AdmissionQueue queue_;

  int listenFd_ = -1;
  std::uint16_t boundPort_ = 0;

  std::thread acceptor_;
  std::vector<std::thread> ioThreads_;
  std::vector<std::thread> executors_;
  std::thread watchdog_;
  bool started_ = false;

  // Pending accepted connections (fd -1 is the shutdown sentinel).
  std::mutex connMu_;
  std::condition_variable connCv_;
  std::deque<int> connQueue_;

  // Live request table + completion signalling.
  std::mutex entriesMu_;
  std::condition_variable entriesCv_;
  std::map<std::string, std::shared_ptr<RequestEntry>> entries_;

  // Process-wide measurement memoization, LRU-bounded by
  // opt_.memoMaxEntries.
  std::mutex memoMu_;
  std::map<std::string, MemoSlot> memo_;
  std::list<std::string> memoLru_;  ///< Keys, most recently used first.

  // Request wall-clock deadlines, shared plumbing with the supervise
  // heartbeat monitor (core/deadline.hpp). Armed by runRequest, cleared
  // by finishEntry, swept by watchdogLoop.
  DeadlineMonitor watchdogMonitor_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopIo_{false};
  std::atomic<std::uint64_t> watchdogCancelled_{0};
  std::atomic<std::uint64_t> drainInterrupted_{0};
  std::atomic<std::uint64_t> memoHits_{0};
  std::atomic<std::uint64_t> memoEvictions_{0};
  std::atomic<std::uint64_t> recovered_{0};
};

}  // namespace nodebench::serve
