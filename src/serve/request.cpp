#include "serve/request.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "faults/json_value.hpp"
#include "machines/registry.hpp"
#include "serve/json_writer.hpp"

namespace nodebench::serve {

using faults::JsonValue;

namespace {

/// The request fields the decoder accepts; anything else is an error.
/// Strictness is the fuzz-hardening posture: a typo'd "run" silently
/// falling back to 100 runs would waste hours of measurement.
constexpr const char* kKnownFields[] = {
    "tenant",          "tables",
    "families",
    "runs",            "jobs",
    "machines",        "fault_plan",
    "seed",            "store_samples",
    "watchdog_ms",     "wait",
    "cell_retries",    "retry_backoff_base_ms",
    "retry_backoff_max_ms", "debug_cell_delay_ms",
};

bool knownField(std::string_view key) {
  return std::any_of(std::begin(kKnownFields), std::end(kKnownFields),
                     [&](const char* f) { return key == f; });
}

bool validTenantChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

/// Integral number in [lo, hi]; throws naming the field otherwise.
int intField(const JsonValue& v, const char* field, long lo, long hi) {
  const double d = v.asNumber();
  if (!std::isfinite(d) || d != std::floor(d)) {
    throw Error(std::string("\"") + field + "\" must be an integer");
  }
  if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
    throw Error(std::string("\"") + field + "\" must be in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return static_cast<int>(d);
}

}  // namespace

CampaignRequest CampaignRequest::fromJson(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.isObject()) {
    throw Error("campaign request must be a JSON object");
  }
  for (const auto& [key, unused] : doc.asObject()) {
    if (!knownField(key)) {
      throw Error("unknown request field \"" + key + "\"");
    }
  }

  CampaignRequest req;
  if (const JsonValue* v = doc.find("tenant")) {
    req.tenant = v->asString();
    if (req.tenant.empty() || req.tenant.size() > 64 ||
        !std::all_of(req.tenant.begin(), req.tenant.end(), validTenantChar)) {
      throw Error(
          "\"tenant\" must be 1..64 characters of [A-Za-z0-9_-]");
    }
  }

  if (const JsonValue* v = doc.find("tables")) {
    for (const JsonValue& entry : v->asArray()) {
      req.tables.push_back(intField(entry, "tables", 4, 7));
    }
    if (req.tables.empty()) {
      // An explicit empty list is a request to measure nothing — almost
      // certainly a client bug; reject it instead of guessing.
      throw Error("\"tables\" must not be empty");
    }
    std::sort(req.tables.begin(), req.tables.end());
    req.tables.erase(std::unique(req.tables.begin(), req.tables.end()),
                     req.tables.end());
  } else if (doc.find("families") == nullptr) {
    // Only when the request names neither tables nor families: a
    // families-only request runs just the families.
    req.tables = {4};
  }

  if (const JsonValue* v = doc.find("families")) {
    for (const JsonValue& entry : v->asArray()) {
      const std::string f = entry.asString();
      if (f != "sweep" && f != "chase") {
        throw Error("\"families\" entries must be \"sweep\" or \"chase\", "
                    "got \"" + f + "\"");
      }
      req.families.push_back(f);
    }
    if (req.families.empty()) {
      throw Error("\"families\" must not be empty");
    }
    std::sort(req.families.begin(), req.families.end());
    req.families.erase(
        std::unique(req.families.begin(), req.families.end()),
        req.families.end());
  }

  if (const JsonValue* v = doc.find("runs")) {
    req.runs = intField(*v, "runs", 1, 100000);
  }
  if (const JsonValue* v = doc.find("jobs")) {
    req.jobs = intField(*v, "jobs", 1, 256);
  }

  if (const JsonValue* v = doc.find("machines")) {
    for (const JsonValue& entry : v->asArray()) {
      // byName throws for unknown names; re-throw with the field named
      // so the client knows which part of the request to fix. The
      // canonical registry spelling is what the harness filter matches.
      try {
        req.machines.push_back(machines::byName(entry.asString()).info.name);
      } catch (const Error&) {
        throw Error("\"machines\" names unknown machine \"" +
                    entry.asString() + "\"");
      }
    }
    std::sort(req.machines.begin(), req.machines.end());
    req.machines.erase(
        std::unique(req.machines.begin(), req.machines.end()),
        req.machines.end());
  }

  if (const JsonValue* v = doc.find("fault_plan")) {
    req.faultPlan = faults::FaultPlan::fromJsonValue(*v);
  }
  if (const JsonValue* v = doc.find("seed")) {
    if (!req.faultPlan) {
      throw Error("\"seed\" requires \"fault_plan\" (the seed drives the "
                  "plan's deterministic draws)");
    }
    const double d = v->asNumber();
    if (!std::isfinite(d) || d != std::floor(d) || d < 0.0 ||
        d >= 9007199254740992.0 /* 2^53 */) {
      throw Error("\"seed\" must be an integer in [0, 2^53)");
    }
    req.faultPlan->seed = static_cast<std::uint64_t>(d);
  }

  if (const JsonValue* v = doc.find("store_samples")) {
    req.storeSamples = v->asBool();
  }
  if (const JsonValue* v = doc.find("watchdog_ms")) {
    req.watchdogMs = intField(*v, "watchdog_ms", 0, 86400000);
  }
  if (const JsonValue* v = doc.find("wait")) {
    req.wait = v->asBool();
  }
  if (const JsonValue* v = doc.find("cell_retries")) {
    req.cellRetries = intField(*v, "cell_retries", 0, 100);
  }
  if (const JsonValue* v = doc.find("retry_backoff_base_ms")) {
    req.retryBackoffBaseMs =
        intField(*v, "retry_backoff_base_ms", 0, 60000);
  }
  if (const JsonValue* v = doc.find("retry_backoff_max_ms")) {
    req.retryBackoffMaxMs =
        intField(*v, "retry_backoff_max_ms", 1, 600000);
  }
  if (req.retryBackoffMaxMs < req.retryBackoffBaseMs) {
    throw Error(
        "\"retry_backoff_max_ms\" must be >= \"retry_backoff_base_ms\"");
  }
  if (const JsonValue* v = doc.find("debug_cell_delay_ms")) {
    req.debugCellDelayMs = intField(*v, "debug_cell_delay_ms", 0, 60000);
  }
  return req;
}

std::string CampaignRequest::canonicalJson() const {
  JsonWriter w;
  w.beginObject();
  w.key("tenant").value(tenant);
  // A families-only request has no tables; omitting the key (rather than
  // emitting an empty array the strict decoder would reject) keeps the
  // canonical form re-parseable, and pre-families canonical documents
  // keep their exact bytes.
  if (!tables.empty()) {
    w.key("tables").beginArray();
    for (const int t : tables) {
      w.value(t);
    }
    w.endArray();
  }
  if (!families.empty()) {
    w.key("families").beginArray();
    for (const std::string& f : families) {
      w.value(f);
    }
    w.endArray();
  }
  w.key("runs").value(runs);
  w.key("jobs").value(jobs);
  w.key("machines").beginArray();
  for (const std::string& m : machines) {
    w.value(m);
  }
  w.endArray();
  if (faultPlan) {
    w.key("fault_plan").beginObject();
    // Seeds reach the plan through a double, so every stored value is
    // exactly double-representable and the decimal rendering round-trips.
    w.key("seed").value(static_cast<std::uint64_t>(faultPlan->seed));
    w.key("faults").beginArray();
    for (const faults::FaultSpec& f : faultPlan->faults) {
      w.beginObject();
      w.key("type").value(faults::faultTypeName(f.type));
      w.key("machine").value(f.machine);
      w.key("link").value(f.link);
      w.key("bandwidth_factor").value(f.bandwidthFactor);
      w.key("added_latency_us").value(f.addedLatency.us());
      w.key("cv_factor").value(f.cvFactor);
      w.key("slowdown").value(f.slowdown);
      w.key("rate").value(f.rate);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.key("store_samples").value(storeSamples);
  w.key("watchdog_ms").value(watchdogMs);
  w.key("wait").value(wait);
  w.key("cell_retries").value(cellRetries);
  w.key("retry_backoff_base_ms").value(retryBackoffBaseMs);
  w.key("retry_backoff_max_ms").value(retryBackoffMaxMs);
  w.key("debug_cell_delay_ms").value(debugCellDelayMs);
  w.endObject();
  return w.str();
}

std::string CampaignRequest::measurementKey() const {
  JsonWriter w;
  w.beginObject();
  if (!tables.empty()) {
    w.key("tables").beginArray();
    for (const int t : tables) {
      w.value(t);
    }
    w.endArray();
  }
  if (!families.empty()) {
    w.key("families").beginArray();
    for (const std::string& f : families) {
      w.value(f);
    }
    w.endArray();
  }
  w.key("runs").value(runs);
  w.key("machines").beginArray();
  for (const std::string& m : machines) {
    w.value(m);
  }
  w.endArray();
  w.key("cell_retries").value(cellRetries);
  if (faultPlan) {
    // The plan's canonical rendering, reused from canonicalJson via a
    // stripped-down request: only the plan differs between keys.
    CampaignRequest planOnly;
    planOnly.faultPlan = faultPlan;
    w.key("fault_plan").value(planOnly.canonicalJson());
  }
  w.endObject();
  return w.str();
}

report::TableOptions CampaignRequest::tableOptions() const {
  report::TableOptions opt;
  opt.binaryRuns = runs;
  opt.jobs = jobs;
  opt.cellRetries = cellRetries;
  opt.retryBackoffBaseMs = retryBackoffBaseMs;
  opt.retryBackoffMaxMs = retryBackoffMaxMs;
  opt.testCellDelayMs = debugCellDelayMs;
  if (faultPlan) {
    opt.faults = &*faultPlan;
  }
  if (!machines.empty()) {
    opt.machines = &machines;
  }
  return opt;
}

}  // namespace nodebench::serve
