#pragma once
/// \file http.hpp
/// \brief Minimal HTTP/1.1 request/response over local sockets.
///
/// The daemon speaks just enough HTTP for `curl --unix-socket` and
/// netcat to be its clients: one request per connection (the response
/// always carries `Connection: close`), a bounded header block, a
/// bounded `Content-Length` body, and nothing else — no chunked
/// encoding, no keep-alive, no TLS. Inputs are untrusted: every bound
/// is enforced before allocation, reads are poll-timed so a stalled
/// client cannot pin an I/O thread forever, and any protocol deviation
/// is a clean 400, never a crash.
///
/// Listeners are local-only by construction: a unix-domain socket path
/// or a TCP socket bound to 127.0.0.1. There is deliberately no way to
/// bind a public interface.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace nodebench::serve {

/// Caps on untrusted input. Exposed for the tests that probe them.
inline constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< Request path, e.g. "/requests".
  std::map<std::string, std::string> headers;  ///< Keys lower-cased.
  std::string body;
};

/// Reads one request from `fd`. Returns std::nullopt on clean EOF
/// before any bytes; throws Error (message suitable for a 400 body) on
/// protocol violations, oversized input, or a read stalled past
/// `timeoutMs`.
[[nodiscard]] std::optional<HttpRequest> readHttpRequest(int fd,
                                                         int timeoutMs);

/// Writes a complete response (status line, Content-Length,
/// Connection: close, optional Retry-After, body). Best-effort: write
/// errors are swallowed — the client is gone, the daemon is not.
void writeHttpResponse(int fd, int status, std::string_view reason,
                       std::string_view contentType, std::string_view body,
                       int retryAfterSeconds = -1);

/// Creates a listening unix-domain socket at `path`, replacing a stale
/// socket file left by a crashed daemon. Throws Error on failure.
[[nodiscard]] int listenUnix(const std::string& path);

/// Creates a listening TCP socket on 127.0.0.1:`port` (0 = ephemeral);
/// `boundPort` receives the actual port. Throws Error on failure.
[[nodiscard]] int listenTcp(std::uint16_t port, std::uint16_t* boundPort);

}  // namespace nodebench::serve
