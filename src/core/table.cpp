#include "core/table.hpp"

#include <cstdio>
#include <sstream>

namespace nodebench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NB_EXPECTS(!headers_.empty());
  aligns_.assign(headers_.size(), Align::Right);
  aligns_[0] = Align::Left;
}

void Table::setAlign(std::size_t column, Align align) {
  NB_EXPECTS(column < headers_.size());
  aligns_[column] = align;
}

void Table::addRow(std::vector<std::string> cells) {
  NB_EXPECTS_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::addSeparator() { rows_.emplace_back(); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  NB_EXPECTS(row < rows_.size());
  NB_EXPECTS(col < headers_.size());
  NB_EXPECTS_MSG(!rows_[row].empty(), "cannot index a separator row");
  return rows_[row][col];
}

std::vector<std::size_t> Table::columnWidths() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

namespace {

void appendPadded(std::string& out, const std::string& text,
                  std::size_t width, Align align) {
  const std::size_t pad = width - std::min(width, text.size());
  if (align == Align::Right) {
    out.append(pad, ' ');
    out += text;
  } else {
    out += text;
    out.append(pad, ' ');
  }
}

}  // namespace

std::string Table::renderAscii() const {
  const auto widths = columnWidths();
  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  out += rule;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    appendPadded(out, headers_[c], widths[c], Align::Left);
    out += " |";
  }
  out += '\n';
  out += rule;
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule;
      continue;
    }
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      appendPadded(out, row[c], widths[c], aligns_[c]);
      out += " |";
    }
    out += '\n';
  }
  out += rule;
  if (!caption_.empty()) {
    out += caption_;
    out += '\n';
  }
  return out;
}

std::string Table::renderMarkdown() const {
  std::string out;
  if (!title_.empty()) {
    out += "### " + title_ + "\n\n";
  }
  out += "|";
  for (const auto& h : headers_) {
    out += " " + h + " |";
  }
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += aligns_[c] == Align::Right ? " ---: |" : " --- |";
  }
  out += '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      continue;  // Markdown has no mid-table separators.
    }
    out += "|";
    for (const auto& cellText : row) {
      out += " " + cellText + " |";
    }
    out += '\n';
  }
  if (!caption_.empty()) {
    out += "\n*" + caption_ + "*\n";
  }
  return out;
}

namespace {

std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::renderCsv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) {
      out += ',';
    }
    out += csvEscape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out += ',';
      }
      out += csvEscape(row[c]);
    }
    out += '\n';
  }
  return out;
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::renderJson() const {
  std::string out = "{\n  \"title\": " + jsonEscape(title_) +
                    ",\n  \"caption\": " + jsonEscape(caption_) +
                    ",\n  \"headers\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) {
      out += ", ";
    }
    out += jsonEscape(headers_[c]);
  }
  out += "],\n  \"rows\": [\n";
  bool firstRow = true;
  for (const auto& row : rows_) {
    if (row.empty()) {
      continue;  // separators have no JSON representation
    }
    if (!firstRow) {
      out += ",\n";
    }
    firstRow = false;
    out += "    [";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out += ", ";
      }
      out += jsonEscape(row[c]);
    }
    out += "]";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string formatFixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace nodebench
