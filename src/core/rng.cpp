#include "core/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace nodebench {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : s_) {
    word = seeder.next();
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  NB_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::uniformInt(std::uint64_t n) {
  NB_EXPECTS(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = next();
  while (x >= limit) {
    x = next();
  }
  return x % n;
}

double Xoshiro256::normal() {
  if (haveCachedNormal_) {
    haveCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box-Muller transform; u1 nudged away from 0 so log() stays finite.
  double u1 = uniform01();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cachedNormal_ = radius * std::sin(angle);
  haveCachedNormal_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Xoshiro256 Xoshiro256::split() { return Xoshiro256(next()); }

double NoiseModel::sampleFactor(Xoshiro256& rng) const {
  if (cv_ == 0.0) {
    return 1.0;
  }
  const double lo = std::max(0.01, 1.0 - 4.0 * cv_);
  const double hi = 1.0 + 4.0 * cv_;
  double f = rng.normal(1.0, cv_);
  // Truncated normal by resampling; the acceptance region covers ±4 sigma
  // so rejection is vanishingly rare and cannot loop for long.
  while (f < lo || f > hi) {
    f = rng.normal(1.0, cv_);
  }
  return f;
}

Duration NoiseModel::apply(Duration truth, Xoshiro256& rng) const {
  return truth * sampleFactor(rng);
}

Bandwidth NoiseModel::apply(Bandwidth truth, Xoshiro256& rng) const {
  return truth * sampleFactor(rng);
}

}  // namespace nodebench
