#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

#include "core/rng.hpp"

namespace nodebench::par {

namespace {

thread_local bool tlInsideWorker = false;

std::string aggregateMessage(
    const std::vector<AggregateError::TaskFailure>& failures) {
  std::string msg = std::to_string(failures.size()) + " parallel task" +
                    (failures.size() == 1 ? "" : "s") + " failed:";
  for (const AggregateError::TaskFailure& f : failures) {
    msg += "\n  task " + std::to_string(f.task) + ": " + f.message;
  }
  return msg;
}

}  // namespace

AggregateError::AggregateError(std::vector<TaskFailure> failures)
    : Error(aggregateMessage(failures)), failures_(std::move(failures)) {}

int hardwareJobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int resolveJobs(int requested) {
  return requested >= 1 ? requested : hardwareJobs();
}

bool insideWorker() { return tlInsideWorker; }

std::uint64_t taskSeed(std::uint64_t base, std::uint64_t task) {
  // SplitMix64 over (base, task) — bit-mixing keeps neighbouring task
  // indices statistically independent while staying a pure function of
  // the task identity.
  SplitMix64 sm(base + 0x9e3779b97f4a7c15ull * (task + 1));
  return sm.next();
}

ThreadPool::ThreadPool(int workers) {
  NB_EXPECTS(workers >= 1);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerBody(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  NB_EXPECTS(task != nullptr);
  {
    std::unique_lock lock(mu_);
    NB_EXPECTS_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  workCv_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock lock(mu_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerBody() {
  tlInsideWorker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idleCv_.notify_all();
      }
    }
  }
}

namespace {

/// Shared error-reporting policy of the sequential and pooled paths:
/// every task ran, failures were captured per index, and any failure —
/// including a single one — surfaces as one AggregateError naming the
/// failing task indices, so callers always see *which* task died. The
/// result is a pure function of the task list — independent of worker
/// count and scheduling order.
void reportTaskErrors(const std::vector<std::exception_ptr>& errors) {
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i]) {
      failed.push_back(i);
    }
  }
  if (failed.empty()) {
    return;
  }
  std::vector<AggregateError::TaskFailure> failures;
  failures.reserve(failed.size());
  for (const std::size_t i : failed) {
    std::string message = "unknown exception";
    try {
      std::rethrow_exception(errors[i]);
    } catch (const std::exception& e) {
      message = e.what();
    } catch (...) {
    }
    failures.push_back(AggregateError::TaskFailure{i, std::move(message)});
  }
  throw AggregateError(std::move(failures));
}

}  // namespace

void parallelForEach(std::size_t count,
                     const std::function<void(std::size_t)>& fn, int jobs) {
  NB_EXPECTS(fn != nullptr);
  if (count == 0) {
    return;
  }
  const int resolved = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolveJobs(jobs)), count));
  std::vector<std::exception_ptr> errors(count);
  if (resolved <= 1 || tlInsideWorker) {
    // Sequential fallback: jobs=1 reproduces the pooled harness exactly,
    // including its run-everything-then-report error policy; nested
    // sections run inline so behaviour never depends on pool occupancy.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    reportTaskErrors(errors);
    return;
  }

  std::atomic<std::size_t> next{0};
  ThreadPool pool(resolved);
  for (int w = 0; w < resolved; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  pool.waitIdle();
  reportTaskErrors(errors);
}

}  // namespace nodebench::par
