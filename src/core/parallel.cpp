#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "core/rng.hpp"

namespace nodebench::par {

namespace {

thread_local bool tlInsideWorker = false;

}  // namespace

int hardwareJobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int resolveJobs(int requested) {
  return requested >= 1 ? requested : hardwareJobs();
}

bool insideWorker() { return tlInsideWorker; }

std::uint64_t taskSeed(std::uint64_t base, std::uint64_t task) {
  // SplitMix64 over (base, task) — bit-mixing keeps neighbouring task
  // indices statistically independent while staying a pure function of
  // the task identity.
  SplitMix64 sm(base + 0x9e3779b97f4a7c15ull * (task + 1));
  return sm.next();
}

ThreadPool::ThreadPool(int workers) {
  NB_EXPECTS(workers >= 1);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerBody(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  NB_EXPECTS(task != nullptr);
  {
    std::unique_lock lock(mu_);
    NB_EXPECTS_MSG(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  workCv_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock lock(mu_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerBody() {
  tlInsideWorker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idleCv_.notify_all();
      }
    }
  }
}

void parallelForEach(std::size_t count,
                     const std::function<void(std::size_t)>& fn, int jobs) {
  NB_EXPECTS(fn != nullptr);
  if (count == 0) {
    return;
  }
  const int resolved = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolveJobs(jobs)), count));
  if (resolved <= 1 || tlInsideWorker) {
    // Sequential fallback: jobs=1 reproduces the pre-parallel harness
    // exactly; nested sections run inline so behaviour never depends on
    // pool occupancy.
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  ThreadPool pool(resolved);
  for (int w = 0; w < resolved; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  pool.waitIdle();
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e);  // lowest task index: deterministic
    }
  }
}

}  // namespace nodebench::par
