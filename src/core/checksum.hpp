#pragma once
/// \file checksum.hpp
/// \brief Integrity and identity hashes shared by persistence layers.
///
/// CRC32 (the IEEE 802.3 reflected polynomial) guards on-disk records
/// against torn writes and bit rot: the measurement journal stores one
/// checksum per record so a reader can tell a valid prefix from a
/// corrupted tail. FNV-1a provides cheap stable 64-bit identity hashes
/// for configuration fingerprints (machine registry, fault plans) — not
/// collision-resistant against an adversary, but stable across builds
/// and platforms, which is what resume compatibility checks need.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace nodebench {

/// CRC-32 (polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF) of a byte
/// span. Matches zlib's crc32() so journals are checkable with standard
/// tooling.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Incremental form: feed `crc` the previous return value (or 0 for the
/// first chunk) to checksum discontiguous buffers.
[[nodiscard]] std::uint32_t crc32Update(std::uint32_t crc,
                                        std::span<const std::uint8_t> bytes);

/// 64-bit FNV-1a accumulator for identity fingerprints. Start from
/// `init()`, then mix fields in a fixed order; any field change yields a
/// different fingerprint with overwhelming probability.
class Fnv1a {
 public:
  [[nodiscard]] static constexpr std::uint64_t init() {
    return 0xcbf29ce484222325ull;
  }

  [[nodiscard]] static std::uint64_t mix(std::uint64_t h,
                                         std::span<const std::uint8_t> bytes);
  [[nodiscard]] static std::uint64_t mix(std::uint64_t h, std::string_view s);
  [[nodiscard]] static std::uint64_t mix(std::uint64_t h, std::uint64_t value);
  [[nodiscard]] static std::uint64_t mix(std::uint64_t h, double value);
};

}  // namespace nodebench
