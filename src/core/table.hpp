#pragma once
/// \file table.hpp
/// \brief Text table construction and rendering (ASCII box, Markdown, CSV).
///
/// Every table of the paper is reproduced through this builder so that the
/// benchmark harnesses stay free of formatting code.

#include <cstddef>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace nodebench {

enum class Align { Left, Right };

/// A rectangular text table with an optional title and one header row.
class Table {
 public:
  /// Creates a table with the given column headers. Precondition: at least
  /// one column.
  explicit Table(std::vector<std::string> headers);

  [[nodiscard]] std::size_t columnCount() const { return headers_.size(); }
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  void setTitle(std::string title) { title_ = std::move(title); }
  void setCaption(std::string caption) { caption_ = std::move(caption); }

  /// Sets the alignment of one column (default: Left for column 0, Right
  /// otherwise — numeric tables dominate this project).
  void setAlign(std::size_t column, Align align);

  /// Appends a row. Precondition: cells.size() == columnCount().
  void addRow(std::vector<std::string> cells);

  /// Appends a horizontal separator at the current position.
  void addSeparator();

  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders with unicode-free ASCII box drawing, suitable for terminals
  /// and logs.
  [[nodiscard]] std::string renderAscii() const;

  /// Renders as GitHub-flavoured Markdown.
  [[nodiscard]] std::string renderMarkdown() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string renderCsv() const;

  /// Renders as JSON: {"title":..., "caption":..., "headers":[...],
  /// "rows":[[...], ...]} with separators omitted. Strings are escaped
  /// per RFC 8259.
  [[nodiscard]] std::string renderJson() const;

 private:
  [[nodiscard]] std::vector<std::size_t> columnWidths() const;

  std::string title_;
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Formats a double with fixed precision (helper for table cells).
[[nodiscard]] std::string formatFixed(double v, int precision);

}  // namespace nodebench
