#pragma once
/// \file samples.hpp
/// \brief Thread-local raw-sample capture for the statistics subsystem.
///
/// The measurement loops aggregate their per-binary-run draws through
/// streaming Welford accumulators and discard the raw values — exactly
/// what the paper's mean ± sigma tables need, and exactly what the
/// regression-detection layer (src/stats) cannot work with: bootstrap
/// confidence intervals and rank tests need the full sample vector.
///
/// `SampleCapture` is the bridge. A harness that wants raw samples
/// installs a capture (RAII, thread-local stack) around a measurement;
/// the instrumented loops call `recordSample(channel, value)` next to
/// their `Welford::add`, which appends to the innermost active capture
/// on the current thread and is a null-check no-op otherwise — an
/// uninstrumented run costs one thread-local load per sample and stays
/// byte-identical to the pre-capture harness.
///
/// Thread-locality is safe because of the parallel harness's nesting
/// contract (DESIGN.md §7): nested parallel sections run inline,
/// sequentially, on the same worker thread, so every sample a cell body
/// produces lands on the thread that installed the capture. A nested
/// capture (e.g. the per-configuration sweep inside the Table 4 host
/// bandwidth cell) shadows its parent for its lifetime, which is what
/// lets the sweep attribute samples to individual configurations.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nodebench {

/// One active capture scope: samples recorded on this thread while it is
/// the innermost capture accumulate here, keyed by channel name.
class SampleCapture {
 public:
  SampleCapture();
  ~SampleCapture();
  SampleCapture(const SampleCapture&) = delete;
  SampleCapture& operator=(const SampleCapture&) = delete;

  /// Appends one sample (called via recordSample()).
  void record(std::string_view channel, double value);

  /// Moves the channel's sample vector out (empty when the channel was
  /// never recorded); subsequent takes of the same channel are empty.
  [[nodiscard]] std::vector<double> take(std::string_view channel);

  /// The channel's samples so far, or nullptr when never recorded.
  [[nodiscard]] const std::vector<double>* find(
      std::string_view channel) const;

 private:
  std::map<std::string, std::vector<double>, std::less<>> channels_;
  SampleCapture* prev_ = nullptr;  ///< Shadowed enclosing capture.
};

/// The innermost capture active on this thread, or nullptr.
[[nodiscard]] SampleCapture* activeSampleCapture();

/// Appends `value` to the innermost active capture's `channel`; no-op
/// when no capture is installed on this thread.
void recordSample(std::string_view channel, double value);

}  // namespace nodebench
