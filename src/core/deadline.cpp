#include "core/deadline.hpp"

namespace nodebench {

void DeadlineMonitor::arm(const std::string& id, Clock::time_point deadline) {
  const std::lock_guard<std::mutex> lock(mu_);
  deadlines_[id] = deadline;
}

void DeadlineMonitor::disarm(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mu_);
  deadlines_.erase(id);
}

std::vector<std::string> DeadlineMonitor::expired(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = deadlines_.begin(); it != deadlines_.end();) {
    if (it->second <= now) {
      out.push_back(it->first);
      it = deadlines_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<DeadlineMonitor::Clock::time_point>
DeadlineMonitor::nextDeadline() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::optional<Clock::time_point> earliest;
  for (const auto& [id, deadline] : deadlines_) {
    if (!earliest || deadline < *earliest) {
      earliest = deadline;
    }
  }
  return earliest;
}

std::size_t DeadlineMonitor::armedCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return deadlines_.size();
}

}  // namespace nodebench
