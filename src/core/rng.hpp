#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation and measurement-noise
/// models.
///
/// We implement xoshiro256++ (plus a SplitMix64 seeder) rather than using
/// `std::mt19937` + `std::normal_distribution` because the standard
/// distributions are not bit-reproducible across standard library
/// implementations, and golden-value tests require identical streams
/// everywhere.

#include <array>
#include <cstdint>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, tiny state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Precondition: lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Standard normal deviate (Box-Muller on our own uniform stream).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derives an independent child stream (for per-rank / per-device RNGs).
  [[nodiscard]] Xoshiro256 split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool haveCachedNormal_ = false;
  double cachedNormal_ = 0.0;
};

/// Multiplicative measurement-noise model.
///
/// Real microbenchmark repetitions jitter around a machine-determined mean;
/// the paper reports that jitter as the "±" column of every table. We model
/// a measured quantity as `truth * factor` where `factor ~ N(1, cv)`
/// truncated to `[max(0.01, 1-4cv), 1+4cv]` — truncation keeps simulated
/// latencies positive and excludes pathological tails that 100-run samples
/// of a well-behaved benchmark do not exhibit.
class NoiseModel {
 public:
  /// `cv` is the coefficient of variation (sigma/mean). A cv of 0 produces
  /// noiseless measurements. Precondition: cv >= 0 and cv < 0.5.
  constexpr explicit NoiseModel(double cv) : cv_(cv) {
    NB_EXPECTS(cv >= 0.0 && cv < 0.5);
  }

  [[nodiscard]] constexpr double cv() const { return cv_; }

  /// Samples a multiplicative noise factor.
  [[nodiscard]] double sampleFactor(Xoshiro256& rng) const;

  /// Applies noise to a duration.
  [[nodiscard]] Duration apply(Duration truth, Xoshiro256& rng) const;

  /// Applies noise to a bandwidth.
  [[nodiscard]] Bandwidth apply(Bandwidth truth, Xoshiro256& rng) const;

  /// Convenience: a noiseless model.
  [[nodiscard]] static constexpr NoiseModel none() { return NoiseModel(0.0); }

 private:
  double cv_;
};

}  // namespace nodebench
