#pragma once
/// \file units.hpp
/// \brief Strong types for simulated time, byte counts and bandwidths.
///
/// All simulated time is kept in double-precision *nanoseconds*; all
/// bandwidths in decimal gigabytes per second. The two were chosen so that
/// `1 byte / 1 ns == 1 GB/s` holds exactly, which keeps transfer-time
/// arithmetic free of conversion constants.

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "core/error.hpp"

namespace nodebench {

/// A span of (simulated or measured) time. Internally nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(double v) { return Duration(v); }
  [[nodiscard]] static constexpr Duration microseconds(double v) { return Duration(v * 1e3); }
  [[nodiscard]] static constexpr Duration milliseconds(double v) { return Duration(v * 1e6); }
  [[nodiscard]] static constexpr Duration seconds(double v) { return Duration(v * 1e9); }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0.0); }
  /// Sentinel "no time yet / unbounded" value.
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr double ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double ms() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double s() const { return ns_ / 1e9; }

  [[nodiscard]] constexpr bool isFinite() const { return std::isfinite(ns_); }

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration& operator*=(double k) { ns_ *= k; return *this; }
  constexpr Duration& operator/=(double k) { ns_ /= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, double k) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(double k, Duration a) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator/(Duration a, double k) { return Duration(a.ns_ / k); }
  friend constexpr double operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(double ns) : ns_(ns) {}
  double ns_ = 0.0;
};

namespace literals {
constexpr Duration operator""_ns(long double v) { return Duration::nanoseconds(static_cast<double>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanoseconds(static_cast<double>(v)); }
constexpr Duration operator""_us(long double v) { return Duration::microseconds(static_cast<double>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::microseconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(long double v) { return Duration::milliseconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::milliseconds(static_cast<double>(v)); }
constexpr Duration operator""_s(long double v) { return Duration::seconds(static_cast<double>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<double>(v)); }
}  // namespace literals

/// A number of bytes. Distinguishes decimal (KB/MB/GB) from binary
/// (KiB/MiB/GiB) multiples, as both conventions appear in the paper
/// (vector sizes are binary, bandwidths decimal).
class ByteCount {
 public:
  constexpr ByteCount() = default;
  constexpr explicit ByteCount(std::uint64_t bytes) : bytes_(bytes) {}

  [[nodiscard]] static constexpr ByteCount bytes(std::uint64_t v) { return ByteCount(v); }
  [[nodiscard]] static constexpr ByteCount kib(std::uint64_t v) { return ByteCount(v * 1024ull); }
  [[nodiscard]] static constexpr ByteCount mib(std::uint64_t v) { return ByteCount(v * 1024ull * 1024ull); }
  [[nodiscard]] static constexpr ByteCount gib(std::uint64_t v) { return ByteCount(v * 1024ull * 1024ull * 1024ull); }
  [[nodiscard]] static constexpr ByteCount kb(std::uint64_t v) { return ByteCount(v * 1000ull); }
  [[nodiscard]] static constexpr ByteCount mb(std::uint64_t v) { return ByteCount(v * 1000ull * 1000ull); }
  [[nodiscard]] static constexpr ByteCount gb(std::uint64_t v) { return ByteCount(v * 1000ull * 1000ull * 1000ull); }

  [[nodiscard]] constexpr std::uint64_t count() const { return bytes_; }
  [[nodiscard]] constexpr double asDouble() const { return static_cast<double>(bytes_); }
  [[nodiscard]] constexpr double inGiB() const { return asDouble() / (1024.0 * 1024.0 * 1024.0); }
  [[nodiscard]] constexpr double inGB() const { return asDouble() / 1e9; }
  [[nodiscard]] constexpr double inMiB() const { return asDouble() / (1024.0 * 1024.0); }

  friend constexpr ByteCount operator+(ByteCount a, ByteCount b) { return ByteCount(a.bytes_ + b.bytes_); }
  friend constexpr ByteCount operator*(ByteCount a, std::uint64_t k) { return ByteCount(a.bytes_ * k); }
  friend constexpr ByteCount operator*(std::uint64_t k, ByteCount a) { return ByteCount(a.bytes_ * k); }
  friend constexpr auto operator<=>(ByteCount, ByteCount) = default;

 private:
  std::uint64_t bytes_ = 0;
};

/// A data transfer rate in decimal GB/s (the unit every table of the paper
/// reports). Equal numerically to bytes-per-nanosecond.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth gbps(double v) { return Bandwidth(v); }
  [[nodiscard]] static constexpr Bandwidth bytesPerNs(double v) { return Bandwidth(v); }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth(0.0); }

  [[nodiscard]] constexpr double inGBps() const { return gbps_; }
  [[nodiscard]] constexpr double bytesPerNanosecond() const { return gbps_; }

  /// Time to move `size` bytes at this rate. Precondition: rate > 0.
  [[nodiscard]] Duration transferTime(ByteCount size) const {
    NB_EXPECTS(gbps_ > 0.0);
    return Duration::nanoseconds(size.asDouble() / gbps_);
  }

  /// Rate realized by moving `size` bytes in `elapsed` time.
  [[nodiscard]] static Bandwidth fromTransfer(ByteCount size, Duration elapsed) {
    NB_EXPECTS(elapsed.ns() > 0.0);
    return Bandwidth(size.asDouble() / elapsed.ns());
  }

  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth(a.gbps_ * k); }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth(a.gbps_ * k); }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth(a.gbps_ / k); }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth(a.gbps_ + b.gbps_); }
  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;

 private:
  constexpr explicit Bandwidth(double gbps) : gbps_(gbps) {}
  double gbps_ = 0.0;
};

[[nodiscard]] constexpr Bandwidth min(Bandwidth a, Bandwidth b) { return a < b ? a : b; }
[[nodiscard]] constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
[[nodiscard]] constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

}  // namespace nodebench
