#pragma once
/// \file parallel.hpp
/// \brief Deterministic parallel execution layer for the measurement
/// harnesses: a fixed-size thread pool plus order-preserving
/// `parallelMap` / `parallelForEach` primitives.
///
/// Determinism contract (see DESIGN.md "Parallel harness & determinism"):
/// the *results* of a parallel run are a pure function of the task list,
/// never of the worker count or the scheduling order. Three rules enforce
/// this:
///  1. every task writes only its own, pre-allocated result slot; results
///     are consumed in task-index order;
///  2. random streams are derived from the task's identity (`taskSeed`),
///     never from a worker id, a thread id, or shared-counter draw order;
///  3. nested parallel sections execute inline (sequentially, in index
///     order) on the worker that reached them, so a task's internal
///     behaviour cannot depend on pool occupancy.
/// Under these rules `--jobs 1` and `--jobs N` are byte-identical, which
/// the golden-value and determinism suites rely on.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "core/error.hpp"

namespace nodebench::par {

/// Thrown by parallelForEach / parallelMap when any task fails:
/// aggregates every per-task failure (in task-index order) so failures
/// are diagnosable from a single what() string. Single failures wrap
/// too — the message always names the failing task index.
class AggregateError : public Error {
 public:
  struct TaskFailure {
    std::size_t task = 0;     ///< Task index that failed.
    std::string message;      ///< what() of the captured exception.
  };

  explicit AggregateError(std::vector<TaskFailure> failures);

  [[nodiscard]] const std::vector<TaskFailure>& failures() const {
    return failures_;
  }

 private:
  std::vector<TaskFailure> failures_;
};

/// Number of hardware threads of the build host (always >= 1).
[[nodiscard]] int hardwareJobs();

/// Resolves a user-supplied `--jobs` value: values >= 1 are taken as-is,
/// anything <= 0 selects the hardware concurrency.
[[nodiscard]] int resolveJobs(int requested);

/// True while running inside a ThreadPool worker (used to run nested
/// parallel sections inline; exposed for tests).
[[nodiscard]] bool insideWorker();

/// Deterministic per-task seed derivation: a pure function of the harness
/// base seed and the task index, independent of worker count and
/// scheduling order. Tasks that need randomness must seed from this (or,
/// like the benchmark cells, from their own cell identity) — never from a
/// worker id or a shared RNG.
[[nodiscard]] std::uint64_t taskSeed(std::uint64_t base, std::uint64_t task);

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Submission order is preserved by the queue, but tasks run concurrently,
/// so tasks must be independent (the parallelMap primitives built on top
/// guarantee result determinism by slot-isolation, not by ordering).
class ThreadPool {
 public:
  /// Spawns `workers` threads. Precondition: workers >= 1.
  explicit ThreadPool(int workers);

  /// Blocks until the queue drains, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workerCount() const {
    return static_cast<int>(threads_.size());
  }

  /// Enqueues one task. Tasks must not throw out of `submit`'s wrapper —
  /// wrap work that can throw (parallelForEach captures exceptions
  /// per-task and rethrows deterministically).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void waitIdle();

 private:
  void workerBody();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workCv_;   ///< Signals workers: work or stop.
  std::condition_variable idleCv_;   ///< Signals waiters: pool drained.
  std::size_t active_ = 0;           ///< Tasks currently executing.
  bool stop_ = false;
};

/// Runs `fn(0) .. fn(count - 1)` on up to `jobs` workers (0 = hardware
/// concurrency). Each index is claimed by exactly one worker; exceptions
/// are captured per index and reported after all tasks finish, so error
/// reporting is deterministic: any failure — one or several — throws one
/// AggregateError listing every failed task index and message in
/// task-index order.
///
/// With jobs == 1, count <= 1, or when called from inside a pool worker
/// (nested parallelism), the loop runs inline in index order — exactly
/// the pre-parallel sequential behaviour.
void parallelForEach(std::size_t count,
                     const std::function<void(std::size_t)>& fn,
                     int jobs = 0);

/// Order-preserving map: `out[i] = fn(items[i])` computed on up to `jobs`
/// workers. The result type must be default-constructible (each slot is
/// pre-allocated and written by exactly one task).
template <typename Item, typename Fn>
[[nodiscard]] auto parallelMap(const std::vector<Item>& items, Fn&& fn,
                               int jobs = 0) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Item&>>;
  std::vector<Result> out(items.size());
  parallelForEach(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); }, jobs);
  return out;
}

}  // namespace nodebench::par
