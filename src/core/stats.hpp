#pragma once
/// \file stats.hpp
/// \brief Streaming statistics used to aggregate the paper's "mean and
/// standard deviation over 100 binary runs".

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace nodebench {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator); 0 for n < 2.
  double min = 0.0;
  double max = 0.0;

  /// Coefficient of variation (stddev / mean); 0 when mean == 0.
  [[nodiscard]] double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }

  /// Half-width of the ~95% normal-approximation confidence interval of
  /// the mean: 1.96 * stddev / sqrt(count). 0 for count < 2.
  [[nodiscard]] double ci95() const;

  /// Renders "12.36 ± 0.16" with `precision` digits after the point,
  /// matching the formatting of Tables 4-6 in the paper.
  [[nodiscard]] std::string toString(int precision = 2) const;
};

/// Numerically stable streaming accumulator (Welford's algorithm).
///
/// Used instead of the naive sum-of-squares formula because bandwidth
/// samples span nine orders of magnitude across the experiment set.
class Welford {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Precondition for all of the below: !empty().
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sampleVariance() const;  ///< n-1 denominator; 0 for n < 2.
  [[nodiscard]] double populationVariance() const;  ///< n denominator.
  [[nodiscard]] double stddev() const;  ///< sqrt(sampleVariance()).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  [[nodiscard]] Summary summary() const;

  /// Merges another accumulator into this one (Chan et al. parallel merge);
  /// enables per-thread accumulation followed by reduction.
  void merge(const Welford& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample vector.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Median of a sample (copied and partially sorted internally).
/// Precondition: !xs.empty().
[[nodiscard]] double median(std::span<const double> xs);

/// Percentile in [0, 100] via linear interpolation between order statistics.
/// Precondition: !xs.empty(), 0 <= p <= 100.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median absolute deviation: median(|x - median(xs)|). A robust spread
/// estimator that, unlike stddev, is not dragged by fault-injected
/// outlier runs. Returns 0 for a single sample.
/// Precondition: !xs.empty().
[[nodiscard]] double mad(std::span<const double> xs);

/// Robust counterpart of Summary for fault-tolerant reporting: location
/// and spread that survive contaminated samples, plus an explicit count
/// of samples flagged as outliers.
struct RobustSummary {
  std::size_t count = 0;
  double median = 0.0;
  double mad = 0.0;
  std::size_t outliers = 0;  ///< Samples with |x - median| > 3.5 * scaled MAD.

  /// Renders "12.36 ~ 0.16 (2 outliers)"; the outlier note is omitted
  /// when no sample was flagged.
  [[nodiscard]] std::string toString(int precision = 2) const;
};

/// One-shot robust summary. Outliers use the modified z-score rule
/// (Iglewicz & Hoaglin): |x - median| > 3.5 * 1.4826 * MAD; when MAD is 0
/// every sample different from the median counts as an outlier.
/// Precondition: !xs.empty().
[[nodiscard]] RobustSummary robustSummarize(std::span<const double> xs);

}  // namespace nodebench
