#include "core/json_value.hpp"

#include <cctype>
#include <cstdlib>

#include "core/utf8.hpp"

namespace nodebench {

namespace {

/// Input-boundary limits. Fault plans are supplied by users (and, in the
/// fuzz harness, by an adversary): a pathological document must fail with
/// a diagnostic, not exhaust the stack (deep nesting) or memory (huge
/// inputs). The document cap here is a generous backstop — this reader
/// also validates multi-megabyte trace exports in tests; the tight 1 MiB
/// fault-plan cap is enforced where plan *files* enter (FaultPlan::load).
constexpr std::size_t kMaxJsonBytes = 64u << 20;  // 64 MiB document cap
constexpr std::size_t kMaxJsonDepth = 64;         // nested containers

[[noreturn]] void parseError(std::size_t pos, const std::string& what) {
  throw Error("JSON parse error at offset " + std::to_string(pos) + ": " +
              what);
}

}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) {
    throw Error("JSON value is not a boolean");
  }
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) {
    throw Error("JSON value is not a number");
  }
  return number_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) {
    throw Error("JSON value is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  if (kind_ != Kind::Array) {
    throw Error("JSON value is not an array");
  }
  return array_;
}

const std::map<std::string, JsonValue, std::less<>>& JsonValue::asObject()
    const {
  if (kind_ != Kind::Object) {
    throw Error("JSON value is not an object");
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) {
    return nullptr;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::numberOr(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->asNumber();
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::string(fallback) : v->asString();
}

/// Recursive-descent parser over a string_view; tracks the offset for
/// error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      parseError(pos_, "trailing characters after the document");
    }
    return v;
  }

 private:
  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) {
      parseError(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parseError(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeKeyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parseValue() {
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't':
      case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
  }

  /// RAII nesting guard: each open container bumps the depth; anything
  /// past kMaxJsonDepth is rejected before it can recurse further (the
  /// parser is recursive-descent, so unchecked depth is unchecked stack).
  class DepthGuard {
   public:
    DepthGuard(JsonParser& p, std::size_t pos) : parser_(p) {
      if (++parser_.depth_ > kMaxJsonDepth) {
        parseError(pos, "nesting deeper than " +
                            std::to_string(kMaxJsonDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    JsonParser& parser_;
  };

  JsonValue parseObject() {
    const DepthGuard guard(*this, pos_);
    expect('{');
    JsonValue out;
    out.kind_ = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      JsonValue key = parseString();
      expect(':');
      out.object_.emplace(std::move(key.string_), parseValue());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonValue parseArray() {
    const DepthGuard guard(*this, pos_);
    expect('[');
    JsonValue out;
    out.kind_ = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.array_.push_back(parseValue());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  JsonValue parseString() {
    const std::size_t start = pos_;
    expect('"');
    JsonValue out;
    out.kind_ = JsonValue::Kind::String;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) {
        // RFC 8259: control characters must be escaped; a raw one usually
        // means a truncated or binary-corrupted plan file.
        parseError(pos_ - 1, "raw control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          parseError(pos_, "unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            parseError(pos_ - 1, "unsupported escape sequence");
        }
      }
      out.string_.push_back(c);
    }
    if (pos_ >= text_.size()) {
      parseError(pos_, "unterminated string");
    }
    ++pos_;  // closing quote
    if (!validUtf8(out.string_)) {
      parseError(start, "string is not valid UTF-8");
    }
    return out;
  }

  JsonValue parseBool() {
    JsonValue out;
    out.kind_ = JsonValue::Kind::Bool;
    if (consumeKeyword("true")) {
      out.bool_ = true;
      return out;
    }
    if (consumeKeyword("false")) {
      out.bool_ = false;
      return out;
    }
    parseError(pos_, "expected a boolean");
  }

  JsonValue parseNull() {
    if (!consumeKeyword("null")) {
      parseError(pos_, "expected null");
    }
    return JsonValue{};
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      parseError(pos_, "expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      parseError(start, "malformed number '" + token + "'");
    }
    JsonValue out;
    out.kind_ = JsonValue::Kind::Number;
    out.number_ = value;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  if (text.size() > kMaxJsonBytes) {
    throw Error("JSON document is " + std::to_string(text.size()) +
                " bytes; the limit is " + std::to_string(kMaxJsonBytes));
  }
  return JsonParser(text).parseDocument();
}

}  // namespace nodebench
