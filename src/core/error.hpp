#pragma once
/// \file error.hpp
/// \brief Error handling primitives shared by all nodebench libraries.
///
/// Follows the C++ Core Guidelines (E.2, I.6): throw exceptions for errors
/// that cannot be handled locally, use precondition checks at API
/// boundaries. `NB_EXPECTS` / `NB_ENSURES` are always-on contract checks
/// (microbenchmark control paths are never hot enough to justify disabling
/// them).

#include <source_location>
#include <stdexcept>
#include <string>

namespace nodebench {

/// Base class of all exceptions thrown by nodebench libraries.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller violates a documented API precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant does not hold (a nodebench bug).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a lookup (machine name, GPU id, ...) fails.
class NotFoundError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void contractFailure(const char* kind, const char* expr,
                                         const std::string& msg,
                                         const std::source_location& loc) {
  std::string full = std::string(kind) + " failed: " + expr + " at " +
                     loc.file_name() + ":" + std::to_string(loc.line());
  if (!msg.empty()) {
    full += " (" + msg + ")";
  }
  if (kind[0] == 'p' || kind[0] == 'P') {
    throw PreconditionError(full);
  }
  throw InvariantError(full);
}

}  // namespace detail

}  // namespace nodebench

/// Precondition check: caller error if it fails.
#define NB_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nodebench::detail::contractFailure("precondition", #cond, "",        \
                                           std::source_location::current()); \
    }                                                                        \
  } while (false)

/// Precondition check with an explanatory message.
#define NB_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nodebench::detail::contractFailure("precondition", #cond, (msg),     \
                                           std::source_location::current()); \
    }                                                                        \
  } while (false)

/// Invariant check with an explanatory message.
#define NB_ENSURES_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nodebench::detail::contractFailure("invariant", #cond, (msg),        \
                                           std::source_location::current()); \
    }                                                                        \
  } while (false)

/// Postcondition / invariant check: nodebench bug if it fails.
#define NB_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nodebench::detail::contractFailure("invariant", #cond, "",           \
                                           std::source_location::current()); \
    }                                                                        \
  } while (false)
