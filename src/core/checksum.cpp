#include "core/checksum.hpp"

#include <array>
#include <bit>

namespace nodebench {

namespace {

/// Table for the reflected IEEE polynomial, computed once at startup.
const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t crc,
                          std::span<const std::uint8_t> bytes) {
  const auto& table = crcTable();
  std::uint32_t c = crc ^ 0xffffffffu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32Update(0, bytes);
}

std::uint64_t Fnv1a::mix(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Fnv1a::mix(std::uint64_t h, std::string_view s) {
  h = mix(h, std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  // Length terminator: distinguishes ("ab","c") from ("a","bc").
  return mix(h, static_cast<std::uint64_t>(s.size()));
}

std::uint64_t Fnv1a::mix(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Fnv1a::mix(std::uint64_t h, double value) {
  return mix(h, std::bit_cast<std::uint64_t>(value));
}

}  // namespace nodebench
