#pragma once
/// \file deadline.hpp
/// \brief Shared wall-clock deadline tracking for watchdog loops.
///
/// Two subsystems poll deadlines from a dedicated thread: the serve
/// daemon's per-request watchdog (cancel a stuck request) and the
/// supervise coordinator's heartbeat/straggler monitor (expire a worker
/// lease). Before this file each carried its own scan-the-table loop;
/// `DeadlineMonitor` centralizes the armed-deadline registry so both
/// share one tested implementation of the arm/disarm/expire lifecycle.
///
/// Semantics: a deadline fires at most once — `expired()` removes every
/// entry it returns, so the poller acts on each expiry exactly once and
/// re-arming is an explicit decision (the heartbeat monitor re-arms on
/// every observed beat; the request watchdog never does). Disarming an
/// id that is not armed is a no-op, which makes completion races
/// harmless: finishing work after its deadline fired just disarms
/// nothing.

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nodebench {

class DeadlineMonitor {
 public:
  using Clock = std::chrono::steady_clock;

  /// Arms (or re-arms) `id` to expire at `deadline`.
  void arm(const std::string& id, Clock::time_point deadline);

  /// Removes `id`'s deadline if armed; no-op otherwise.
  void disarm(const std::string& id);

  /// Removes and returns every id whose deadline is at or before `now`,
  /// in id order (deterministic for tests and logs).
  [[nodiscard]] std::vector<std::string> expired(Clock::time_point now);

  /// The earliest armed deadline, if any — what an event loop sleeps
  /// toward instead of a fixed poll period.
  [[nodiscard]] std::optional<Clock::time_point> nextDeadline() const;

  [[nodiscard]] std::size_t armedCount() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Clock::time_point> deadlines_;
};

}  // namespace nodebench
