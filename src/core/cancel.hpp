#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation for long-running measurement work.
///
/// The measurement harnesses are crash-safe (campaign journals) but, until
/// this layer, not *interruptible*: the only ways to stop a campaign were
/// to let it finish or to kill the process. A `CancelToken` is the
/// cooperative alternative shared by every consumer that needs to stop a
/// harness mid-flight:
///
///  - the CLI's SIGINT/SIGTERM handler for `--journal` runs (finish the
///    in-flight cell, fsync the journal, exit with
///    `kInterruptedExitCode` so `--resume` picks up cleanly);
///  - the serve daemon's per-request wall-clock watchdog (cancel a stuck
///    request without touching its neighbours);
///  - the serve daemon's graceful drain (journal in-flight requests on
///    SIGTERM instead of completing them).
///
/// The contract is deliberately cell-grained: a set token stops *new*
/// cells from starting, while cells already measuring run to completion
/// and are journalled — cancellation never tears a record and a resumed
/// run is byte-identical to an uninterrupted one (the cells that were
/// skipped are simply measured later, with identity-derived seeds).
///
/// `requested()` is a single relaxed atomic load, cheap enough to poll
/// from the per-cell hot path; `set()` is async-signal-safe (a lock-free
/// atomic store), so signal handlers may call it directly.

#include <atomic>

#include "core/error.hpp"

namespace nodebench {

/// Why a cancellation was requested; carried by the token and reported in
/// the CancelledError text so callers can distinguish an operator
/// interrupt from a watchdog expiry or a daemon drain.
enum class CancelReason : int {
  None = 0,
  Interrupt = 1,  ///< SIGINT/SIGTERM on a one-shot CLI run.
  Watchdog = 2,   ///< A per-request wall-clock budget expired.
  Drain = 3,      ///< The serve daemon is shutting down gracefully.
};

[[nodiscard]] const char* cancelReasonName(CancelReason reason);

/// Thrown by a harness that observed a cancellation request (after the
/// in-flight cells completed and were journalled).
class CancelledError : public Error {
 public:
  explicit CancelledError(CancelReason reason);

  [[nodiscard]] CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// One cancellation flag. First `set()` wins: a token that was cancelled
/// for one reason keeps that reason (a drain arriving after a watchdog
/// expiry must not re-label the incident).
class CancelToken {
 public:
  /// Requests cancellation. Async-signal-safe; idempotent (the first
  /// reason is kept).
  void set(CancelReason reason) {
    int expected = static_cast<int>(CancelReason::None);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
  }

  [[nodiscard]] bool requested() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int>(CancelReason::None);
  }

  [[nodiscard]] CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Throws CancelledError when cancellation has been requested.
  void throwIfRequested() const {
    if (requested()) {
      throw CancelledError(reason());
    }
  }

 private:
  std::atomic<int> reason_{static_cast<int>(CancelReason::None)};
};

/// Exit code of a one-shot CLI run stopped by SIGINT/SIGTERM with its
/// journal intact (distinct from 1 = error and from
/// campaign::Journal::kCrashExitCode = 42, the crash-injection hook), so
/// scripts can tell "interrupted, resume me" from "failed".
inline constexpr int kInterruptedExitCode = 43;

}  // namespace nodebench
