#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace nodebench {

std::string Summary::toString(int precision) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean,
                precision, stddev);
  return buf;
}

double Summary::ci95() const {
  if (count < 2) {
    return 0.0;
  }
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::mean() const {
  NB_EXPECTS(n_ > 0);
  return mean_;
}

double Welford::sampleVariance() const {
  NB_EXPECTS(n_ > 0);
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::populationVariance() const {
  NB_EXPECTS(n_ > 0);
  return m2_ / static_cast<double>(n_);
}

double Welford::stddev() const { return std::sqrt(sampleVariance()); }

double Welford::min() const {
  NB_EXPECTS(n_ > 0);
  return min_;
}

double Welford::max() const {
  NB_EXPECTS(n_ > 0);
  return max_;
}

Summary Welford::summary() const {
  NB_EXPECTS(n_ > 0);
  return Summary{n_, mean(), stddev(), min(), max()};
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(std::span<const double> xs) {
  Welford w;
  for (double x : xs) {
    w.add(x);
  }
  NB_EXPECTS(!w.empty());
  return w.summary();
}

double median(std::span<const double> xs) {
  NB_EXPECTS(!xs.empty());
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) {
    return v[mid];
  }
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mad(std::span<const double> xs) {
  NB_EXPECTS(!xs.empty());
  const double m = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    dev[i] = std::abs(xs[i] - m);
  }
  return median(dev);
}

std::string RobustSummary::toString(int precision) const {
  char buf[160];
  if (outliers == 0) {
    std::snprintf(buf, sizeof(buf), "%.*f ~ %.*f", precision, median,
                  precision, mad);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f ~ %.*f (%zu outliers)", precision,
                  median, precision, mad, outliers);
  }
  return buf;
}

RobustSummary robustSummarize(std::span<const double> xs) {
  NB_EXPECTS(!xs.empty());
  RobustSummary r;
  r.count = xs.size();
  r.median = median(xs);
  r.mad = mad(xs);
  // Modified z-score cutoff: 3.5 on the 1.4826*MAD normal-consistent
  // scale. A zero MAD (>= half the samples identical) degenerates to
  // "anything off the median is an outlier".
  const double scale = 3.5 * 1.4826 * r.mad;
  for (const double x : xs) {
    const double dev = std::abs(x - r.median);
    if (dev > scale || (r.mad == 0.0 && dev > 0.0)) {
      ++r.outliers;
    }
  }
  return r;
}

double percentile(std::span<const double> xs, double p) {
  NB_EXPECTS(!xs.empty());
  NB_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) {
    return v.front();
  }
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace nodebench
