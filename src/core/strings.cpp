#include "core/strings.hpp"

#include <cctype>

namespace nodebench {

std::string toLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::optional<unsigned> parseUnsigned(std::string_view s) {
  s = trim(s);
  if (s.empty()) {
    return std::nullopt;
  }
  unsigned value = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') {
      return std::nullopt;
    }
    const unsigned digit = static_cast<unsigned>(ch - '0');
    if (value > (~0u - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace nodebench
