#include "core/utf8.hpp"

#include <cstddef>
#include <cstdint>

namespace nodebench {

bool validUtf8(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size()) {
    const auto b0 = static_cast<unsigned char>(s[i]);
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xe0) == 0xc0) {
      len = 2;
      cp = b0 & 0x1fu;
    } else if ((b0 & 0xf0) == 0xe0) {
      len = 3;
      cp = b0 & 0x0fu;
    } else if ((b0 & 0xf8) == 0xf0) {
      len = 4;
      cp = b0 & 0x07u;
    } else {
      return false;
    }
    if (i + len > s.size()) {
      return false;
    }
    for (std::size_t k = 1; k < len; ++k) {
      const auto b = static_cast<unsigned char>(s[i + k]);
      if ((b & 0xc0) != 0x80) {
        return false;
      }
      cp = (cp << 6) | (b & 0x3fu);
    }
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10ffff ||
        (cp >= 0xd800 && cp <= 0xdfff)) {
      return false;
    }
    i += len;
  }
  return true;
}

}  // namespace nodebench
