#pragma once
/// \file utf8.hpp
/// \brief Strict UTF-8 validation shared by the input-boundary decoders
/// (campaign journal, fault-plan JSON). Both treat their byte streams as
/// untrusted, so validation lives in core rather than being re-implemented
/// per format.

#include <string_view>

namespace nodebench {

/// True when `s` is well-formed UTF-8 per RFC 3629: no overlong
/// encodings, no surrogate code points, nothing above U+10FFFF, no
/// truncated sequences. Embedded NULs and control characters are valid
/// UTF-8 and are NOT rejected here — callers with stricter needs layer
/// their own checks on top.
[[nodiscard]] bool validUtf8(std::string_view s);

}  // namespace nodebench
