#include "core/cancel.hpp"

#include <string>

namespace nodebench {

const char* cancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::None: return "none";
    case CancelReason::Interrupt: return "interrupt";
    case CancelReason::Watchdog: return "watchdog";
    case CancelReason::Drain: return "drain";
  }
  return "unknown";
}

CancelledError::CancelledError(CancelReason reason)
    : Error(std::string("measurement cancelled (") + cancelReasonName(reason) +
            "); completed cells are journalled and a --resume run "
            "continues from them"),
      reason_(reason) {}

}  // namespace nodebench
