#include "core/samples.hpp"

#include <utility>

namespace nodebench {

namespace {

thread_local SampleCapture* tActiveCapture = nullptr;

}  // namespace

SampleCapture::SampleCapture() : prev_(tActiveCapture) {
  tActiveCapture = this;
}

SampleCapture::~SampleCapture() { tActiveCapture = prev_; }

void SampleCapture::record(std::string_view channel, double value) {
  const auto it = channels_.find(channel);
  if (it != channels_.end()) {
    it->second.push_back(value);
    return;
  }
  channels_.emplace(std::string(channel), std::vector<double>{value});
}

std::vector<double> SampleCapture::take(std::string_view channel) {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return {};
  }
  std::vector<double> out = std::move(it->second);
  channels_.erase(it);
  return out;
}

const std::vector<double>* SampleCapture::find(
    std::string_view channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

SampleCapture* activeSampleCapture() { return tActiveCapture; }

void recordSample(std::string_view channel, double value) {
  if (tActiveCapture != nullptr) {
    tActiveCapture->record(channel, value);
  }
}

}  // namespace nodebench
