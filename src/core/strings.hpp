#pragma once
/// \file strings.hpp
/// \brief Small string utilities shared across modules (env-var style
/// parsing, case-insensitive comparison, joining).

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nodebench {

/// ASCII lower-casing (env var values such as "TRUE"/"true").
[[nodiscard]] std::string toLower(std::string_view s);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Strips leading/trailing spaces and tabs.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Joins with a separator.
[[nodiscard]] std::string join(std::span<const std::string> parts,
                               std::string_view sep);

/// Parses a non-negative integer; nullopt on malformed input.
[[nodiscard]] std::optional<unsigned> parseUnsigned(std::string_view s);

}  // namespace nodebench
