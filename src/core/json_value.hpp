#pragma once
/// \file json_value.hpp
/// \brief Minimal JSON reader shared by every input boundary.
///
/// The repository deliberately has no external dependencies. This small
/// recursive-descent parser covers the JSON subset our input formats
/// need: objects, arrays, strings, numbers, booleans and null. It
/// rejects anything malformed with a position-annotated Error instead of
/// guessing. It started life next to the fault-plan decoder; it moved to
/// core once machine cards (`machines/machine_json`) grew a parse path,
/// because `machines` sits below `faults` in the link order.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace nodebench {

/// One parsed JSON value. Objects keep their keys in a std::map, which is
/// sufficient for plan files (key order never matters there).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }

  /// Typed accessors; each throws Error when the value has another kind.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& asArray() const;
  [[nodiscard]] const std::map<std::string, JsonValue, std::less<>>& asObject()
      const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience typed member lookups with defaults.
  [[nodiscard]] double numberOr(std::string_view key, double fallback) const;
  [[nodiscard]] std::string stringOr(std::string_view key,
                                     std::string_view fallback) const;

  /// Parses one complete JSON document (trailing garbage is an error).
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

}  // namespace nodebench
