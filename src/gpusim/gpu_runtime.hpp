#pragma once
/// \file gpu_runtime.hpp
/// \brief Simulated GPU runtime with CUDA/HIP-shaped semantics.
///
/// The runtime models exactly the cost structure Comm|Scope measures:
///  - `launchKernel` returns after the host-side launch overhead; the
///    kernel itself executes asynchronously on the stream
///    (Comm|Scope `Comm_cudart_kernel` measures the *launch*, not the
///    completion).
///  - `memcpyAsync` returns after the driver call overhead; the transfer
///    occupies the stream for DMA-setup + route latency + size/bandwidth
///    (+ a per-link-class residual for device-to-device copies).
///  - `streamSynchronize`/`deviceSynchronize` advance the host clock to
///    the stream drain point plus the machine's empty-queue wait cost
///    (Comm|Scope `Comm_cudaDeviceSynchronize`).
///
/// Streams are in-order FIFO engines with independent tails, which is
/// sufficient for every benchmark in the paper (no cross-stream events).
/// The runtime is deterministic; measurement noise is applied by the
/// benchmark drivers at the binary-run level (see DESIGN.md §4).

#include <vector>

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"

namespace nodebench::gpusim {

/// A tracked allocation. Obtained from GpuRuntime::alloc*.
struct Buffer {
  enum class Space { HostPinned, Device, Managed };
  Space space = Space::HostPinned;
  int device = -1;  ///< Valid when space == Device.
  ByteCount size;
};

/// Residency of a managed (unified-memory) buffer: -1 = host, otherwise
/// the device index. Tracked by the runtime per managed allocation.
struct ManagedBuffer {
  Buffer buffer;
  int id = -1;  ///< Runtime-internal residency slot.
};

/// Opaque stream handle.
struct StreamId {
  int value = -1;
  friend constexpr bool operator==(StreamId, StreamId) = default;
};

/// Opaque event handle (cudaEvent_t analogue).
struct EventId {
  int value = -1;
  friend constexpr bool operator==(EventId, EventId) = default;
};

class GpuRuntime {
 public:
  /// Precondition: the machine is an accelerator system.
  explicit GpuRuntime(const machines::Machine& machine);

  [[nodiscard]] int deviceCount() const;

  /// Host wall clock of this runtime instance (starts at zero).
  [[nodiscard]] Duration hostNow() const { return hostClock_; }

  /// Resets host clock and all stream tails (between measurements).
  void reset();

  /// Advances the host clock (models host-side work between API calls).
  void hostAdvance(Duration dt);

  [[nodiscard]] Buffer allocPinnedHost(ByteCount size) const;
  /// Precondition: `size` fits in the device's memory.
  [[nodiscard]] Buffer allocDevice(int device, ByteCount size) const;

  /// Creates an in-order stream on `device`.
  [[nodiscard]] StreamId createStream(int device);

  /// Default (0th) stream of a device; created lazily.
  [[nodiscard]] StreamId defaultStream(int device);

  /// Enqueues a kernel of the given execution duration; the call consumes
  /// the machine's launch overhead on the host clock and returns.
  void launchKernel(StreamId stream, Duration kernelDuration);

  /// Enqueues an async copy on `stream`. Supported shapes: pinned-host ->
  /// device, device -> pinned-host, device -> device. The stream must
  /// belong to one of the participating devices.
  void memcpyAsync(StreamId stream, const Buffer& dst, const Buffer& src,
                   ByteCount bytes);

  /// Blocks (advances the host clock) until `stream` drains, plus the
  /// machine's synchronize wait cost.
  void streamSynchronize(StreamId stream);

  /// Blocks until every stream of `device` drains, plus the wait cost.
  void deviceSynchronize(int device);

  // --- unified (managed) memory -----------------------------------------

  /// Allocates a managed buffer, initially resident on the host.
  [[nodiscard]] ManagedBuffer allocManaged(ByteCount size);

  /// Where the managed buffer's pages currently live (-1 = host).
  [[nodiscard]] int managedResidency(const ManagedBuffer& m) const;

  /// cudaMemPrefetchAsync analogue: migrates all pages to `device`
  /// (or to the host when device == -1) over the host link at the
  /// prefetch-engine rate, as a stream operation.
  void prefetchAsync(StreamId stream, ManagedBuffer& m, int device);

  /// Demand migration: touching non-resident pages from `device`
  /// (-1 = host) faults them over one by one — per-page fault service
  /// latency plus the page transfer. Advances the host clock by the full
  /// fault storm (the toucher is stalled) and updates residency.
  /// No-op (zero time) when already resident.
  Duration touchManaged(ManagedBuffer& m, int device);

  /// Records an event on `stream`: the event completes when all work
  /// enqueued before it has drained (cudaEventRecord semantics). The call
  /// itself is free on the host clock (sub-overhead noise is ignored).
  [[nodiscard]] EventId recordEvent(StreamId stream);

  /// Completion time of a recorded event.
  [[nodiscard]] Duration eventTime(EventId event) const;

  /// cudaEventElapsedTime analogue. Precondition: from recorded not after
  /// to (in stream order the result would be negative).
  [[nodiscard]] Duration eventElapsed(EventId from, EventId to) const;

  /// Blocks the host until the event completes (plus the machine's wait
  /// cost, as with the synchronize calls).
  void eventSynchronize(EventId event);

  /// cudaStreamWaitEvent analogue: subsequent work on `stream` starts no
  /// earlier than the event's completion. Free on the host clock.
  void streamWaitEvent(StreamId stream, EventId event);

  /// True when the stream has no pending work at the current host time.
  [[nodiscard]] bool streamQuery(StreamId stream) const;

  /// Completion time of the last enqueued operation (tests/diagnostics).
  [[nodiscard]] Duration streamTail(StreamId stream) const;

  [[nodiscard]] const machines::Machine& machine() const { return *machine_; }

 private:
  struct Stream {
    int device = -1;
    Duration tail = Duration::zero();
  };

  [[nodiscard]] Stream& at(StreamId id);
  [[nodiscard]] const Stream& at(StreamId id) const;
  /// Appends an op to the stream; returns the virtual time it starts
  /// (after prior stream work and the host clock) for trace events.
  Duration enqueue(StreamId id, Duration opDuration);

  /// Records a device-lane trace event (no-op when tracing is off).
  void emitDeviceEvent(trace::Category category, StreamId stream,
                       Duration begin, Duration duration,
                       std::uint64_t bytes);

  /// Transfer occupancy of a copy between the two buffers.
  [[nodiscard]] Duration transferDuration(const Buffer& dst,
                                          const Buffer& src,
                                          ByteCount bytes) const;

  /// Bandwidth and latency of the page-migration path between the host
  /// and `device` (the device's host link).
  [[nodiscard]] const topo::Link& hostLinkOf(int device) const;

  const machines::Machine* machine_;
  std::vector<Stream> streams_;
  std::vector<int> defaultStreams_;  ///< Per device; -1 until created.
  std::vector<Duration> events_;     ///< Completion time per recorded event.
  std::vector<int> managedResidency_;  ///< Per managed buffer; -1 = host.
  Duration hostClock_ = Duration::zero();
  /// Trace buffer captured at construction (constructed on the tracing
  /// scope's thread); null when tracing is disabled. The device timeline
  /// restarts at zero after reset(), like the host clock.
  trace::TraceBuffer* traceSink_ = nullptr;
};

}  // namespace nodebench::gpusim
