#include "gpusim/gpu_runtime.hpp"

#include <algorithm>

namespace nodebench::gpusim {

using topo::GpuId;

GpuRuntime::GpuRuntime(const machines::Machine& machine)
    : machine_(&machine), traceSink_(trace::current()) {
  NB_EXPECTS_MSG(machine.accelerated() && machine.device.has_value(),
                 "GpuRuntime requires an accelerator machine");
  defaultStreams_.assign(static_cast<std::size_t>(deviceCount()), -1);
}

int GpuRuntime::deviceCount() const { return machine_->topology.gpuCount(); }

void GpuRuntime::reset() {
  hostClock_ = Duration::zero();
  for (Stream& s : streams_) {
    s.tail = Duration::zero();
  }
  events_.clear();
}

void GpuRuntime::hostAdvance(Duration dt) {
  NB_EXPECTS(dt >= Duration::zero());
  hostClock_ += dt;
}

Buffer GpuRuntime::allocPinnedHost(ByteCount size) const {
  NB_EXPECTS(size.count() > 0);
  return Buffer{Buffer::Space::HostPinned, -1, size};
}

Buffer GpuRuntime::allocDevice(int device, ByteCount size) const {
  NB_EXPECTS(device >= 0 && device < deviceCount());
  NB_EXPECTS(size.count() > 0);
  NB_EXPECTS_MSG(size <= machine_->topology.gpu(GpuId{device}).memory,
                 "allocation exceeds device memory");
  return Buffer{Buffer::Space::Device, device, size};
}

StreamId GpuRuntime::createStream(int device) {
  NB_EXPECTS(device >= 0 && device < deviceCount());
  streams_.push_back(Stream{device, Duration::zero()});
  return StreamId{static_cast<int>(streams_.size()) - 1};
}

StreamId GpuRuntime::defaultStream(int device) {
  NB_EXPECTS(device >= 0 && device < deviceCount());
  if (defaultStreams_[device] < 0) {
    defaultStreams_[device] = createStream(device).value;
  }
  return StreamId{defaultStreams_[device]};
}

GpuRuntime::Stream& GpuRuntime::at(StreamId id) {
  NB_EXPECTS(id.value >= 0 &&
             static_cast<std::size_t>(id.value) < streams_.size());
  return streams_[id.value];
}

const GpuRuntime::Stream& GpuRuntime::at(StreamId id) const {
  NB_EXPECTS(id.value >= 0 &&
             static_cast<std::size_t>(id.value) < streams_.size());
  return streams_[id.value];
}

Duration GpuRuntime::enqueue(StreamId id, Duration opDuration) {
  Stream& s = at(id);
  const Duration start = max(s.tail, hostClock_);
  s.tail = start + opDuration;
  return start;
}

void GpuRuntime::emitDeviceEvent(trace::Category category, StreamId stream,
                                 Duration begin, Duration duration,
                                 std::uint64_t bytes) {
  if (traceSink_ == nullptr) {
    return;
  }
  // peer carries the stream id so concurrent streams of one device stay
  // distinguishable in the exported trace.
  traceSink_->event(trace::Event{category, trace::ActorKind::Device,
                                 at(stream).device, stream.value, begin,
                                 duration, bytes});
}

void GpuRuntime::launchKernel(StreamId stream, Duration kernelDuration) {
  NB_EXPECTS(kernelDuration >= Duration::zero());
  // The launch overhead is host-side work; the kernel begins only after
  // the API call returns (or after prior stream work, whichever is later).
  hostClock_ += machine_->device->kernelLaunch;
  const Duration start = enqueue(stream, kernelDuration);
  emitDeviceEvent(trace::Category::KernelLaunch, stream, start,
                  kernelDuration, 0);
}

Duration GpuRuntime::transferDuration(const Buffer& dst, const Buffer& src,
                                      ByteCount bytes) const {
  const machines::DeviceParams& d = *machine_->device;
  const topo::NodeTopology& topo = machine_->topology;

  const bool srcDev = src.space == Buffer::Space::Device;
  const bool dstDev = dst.space == Buffer::Space::Device;
  NB_EXPECTS_MSG(srcDev || dstDev,
                 "host-to-host copies do not involve the GPU runtime");

  if (srcDev && dstDev) {
    if (src.device == dst.device) {
      // Intra-device copy: HBM to HBM at half the stream rate (read+write).
      return d.d2dDmaSetup +
             Duration::nanoseconds(2.0 * bytes.asDouble() /
                                   d.hbmBw.bytesPerNanosecond());
    }
    const GpuId a{src.device};
    const GpuId b{dst.device};
    const auto& route = topo.routeGpuToGpu(a, b);
    const auto linkClass = topo.gpuPairClass(a, b);
    return d.d2dDmaSetup + route.latency +
           route.bottleneck.transferTime(bytes) +
           d.d2dClassResidual[static_cast<int>(linkClass)];
  }

  // Pinned host <-> device: the benchmark pins memory on the device's
  // home socket, so the route is the single host link.
  const int device = srcDev ? src.device : dst.device;
  const GpuId g{device};
  const auto& link = topo.hostGpuLink(topo.gpu(g).socket, g);
  return d.h2dDmaSetup + link.latency + link.bandwidth.transferTime(bytes);
}

void GpuRuntime::memcpyAsync(StreamId stream, const Buffer& dst,
                             const Buffer& src, ByteCount bytes) {
  NB_EXPECTS(bytes.count() > 0);
  NB_EXPECTS(bytes <= src.size && bytes <= dst.size);
  const int streamDevice = at(stream).device;
  NB_EXPECTS_MSG(
      (src.space == Buffer::Space::Device && src.device == streamDevice) ||
          (dst.space == Buffer::Space::Device && dst.device == streamDevice),
      "stream must belong to a participating device");
  hostClock_ += machine_->device->memcpyCallOverhead;
  const Duration occupancy = transferDuration(dst, src, bytes);
  const Duration start = enqueue(stream, occupancy);
  emitDeviceEvent(trace::Category::Memcpy, stream, start, occupancy,
                  bytes.count());
}

void GpuRuntime::streamSynchronize(StreamId stream) {
  const Duration begin = hostClock_;
  hostClock_ = max(hostClock_, at(stream).tail) + machine_->device->syncWait;
  emitDeviceEvent(trace::Category::KernelSync, stream, begin,
                  hostClock_ - begin, 0);
}

void GpuRuntime::deviceSynchronize(int device) {
  NB_EXPECTS(device >= 0 && device < deviceCount());
  const Duration begin = hostClock_;
  Duration drain = hostClock_;
  for (const Stream& s : streams_) {
    if (s.device == device) {
      drain = max(drain, s.tail);
    }
  }
  hostClock_ = drain + machine_->device->syncWait;
  if (traceSink_ != nullptr) {
    traceSink_->event(trace::Event{trace::Category::KernelSync,
                                   trace::ActorKind::Device, device, -1,
                                   begin, hostClock_ - begin, 0});
  }
}

const topo::Link& GpuRuntime::hostLinkOf(int device) const {
  NB_EXPECTS(device >= 0 && device < deviceCount());
  const GpuId g{device};
  return machine_->topology.hostGpuLink(machine_->topology.gpu(g).socket, g);
}

ManagedBuffer GpuRuntime::allocManaged(ByteCount size) {
  NB_EXPECTS(size.count() > 0);
  managedResidency_.push_back(-1);  // first-touch on the host
  ManagedBuffer m;
  m.buffer = Buffer{Buffer::Space::Managed, -1, size};
  m.id = static_cast<int>(managedResidency_.size()) - 1;
  return m;
}

int GpuRuntime::managedResidency(const ManagedBuffer& m) const {
  NB_EXPECTS(m.id >= 0 &&
             static_cast<std::size_t>(m.id) < managedResidency_.size());
  return managedResidency_[m.id];
}

void GpuRuntime::prefetchAsync(StreamId stream, ManagedBuffer& m,
                               int device) {
  NB_EXPECTS(device >= -1 && device < deviceCount());
  const int from = managedResidency(m);
  hostClock_ += machine_->device->memcpyCallOverhead;
  if (from == device) {
    return;  // already resident: the call overhead is the whole cost
  }
  // Migration rides the host link of whichever side is the device (for
  // device<->device prefetch, bottleneck over both hops).
  const machines::DeviceParams& d = *machine_->device;
  Duration occupancy = d.h2dDmaSetup;
  const auto addHop = [&](int dev) {
    const topo::Link& link = hostLinkOf(dev);
    occupancy += link.latency +
                 link.bandwidth.transferTime(m.buffer.size) /
                     machine_->device->umPrefetchEfficiency;
  };
  if (from >= 0) {
    addHop(from);
  }
  if (device >= 0) {
    addHop(device);
  }
  enqueue(stream, occupancy);
  managedResidency_[m.id] = device;
}

Duration GpuRuntime::touchManaged(ManagedBuffer& m, int device) {
  NB_EXPECTS(device >= -1 && device < deviceCount());
  const int from = managedResidency(m);
  if (from == device) {
    return Duration::zero();
  }
  const machines::DeviceParams& d = *machine_->device;
  const std::uint64_t pages =
      (m.buffer.size.count() + d.umPageSize.count() - 1) /
      d.umPageSize.count();
  // Each fault pays the service latency plus one page over the slower of
  // the links involved in the migration.
  const topo::Link& link = hostLinkOf(device >= 0 ? device : from);
  const Duration perPage =
      d.umFaultLatency + link.latency +
      link.bandwidth.transferTime(
          ByteCount::bytes(std::min(d.umPageSize.count(),
                                    m.buffer.size.count())));
  const Duration storm = perPage * static_cast<double>(pages);
  hostClock_ += storm;
  managedResidency_[m.id] = device;
  return storm;
}

EventId GpuRuntime::recordEvent(StreamId stream) {
  // The event completes when everything already on the stream drains; if
  // the stream is idle it completes "now".
  const Duration completion = max(at(stream).tail, hostClock_);
  events_.push_back(completion);
  return EventId{static_cast<int>(events_.size()) - 1};
}

Duration GpuRuntime::eventTime(EventId event) const {
  NB_EXPECTS(event.value >= 0 &&
             static_cast<std::size_t>(event.value) < events_.size());
  return events_[event.value];
}

Duration GpuRuntime::eventElapsed(EventId from, EventId to) const {
  const Duration a = eventTime(from);
  const Duration b = eventTime(to);
  NB_EXPECTS_MSG(a <= b, "events out of order");
  return b - a;
}

void GpuRuntime::eventSynchronize(EventId event) {
  hostClock_ = max(hostClock_, eventTime(event)) + machine_->device->syncWait;
}

void GpuRuntime::streamWaitEvent(StreamId stream, EventId event) {
  Stream& s = at(stream);
  s.tail = max(s.tail, eventTime(event));
}

bool GpuRuntime::streamQuery(StreamId stream) const {
  return at(stream).tail <= hostClock_;
}

Duration GpuRuntime::streamTail(StreamId stream) const {
  return at(stream).tail;
}

}  // namespace nodebench::gpusim
