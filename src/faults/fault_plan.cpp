#include "faults/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/rng.hpp"
#include "core/strings.hpp"
#include "faults/json_value.hpp"
#include "topo/topology.hpp"

namespace nodebench::faults {

namespace {

/// NoiseModel requires cv < 0.5; an OS-noise storm saturates there
/// instead of violating the contract.
constexpr double kMaxCv = 0.49;

/// FNV-1a over the lower-cased string: stable identity hashing for
/// machine and cell names (never security-relevant).
std::uint64_t stableHash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    const char lower =
        (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    h ^= static_cast<unsigned char>(lower);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Canonical selector of one topology link ("host-gpu0", "gpu0-gpu1",
/// "socket0-socket1"); GPU/socket pairs are ordered low-high so the
/// selector is direction-independent.
std::string linkSelector(const topo::Link& link) {
  using Kind = topo::Link::EndpointKind;
  const auto name = [](const topo::Link::Endpoint& e) {
    return (e.kind == Kind::Socket ? "socket" : "gpu") + std::to_string(e.id);
  };
  if (link.a.kind == Kind::Socket && link.b.kind == Kind::Gpu) {
    return "host-gpu" + std::to_string(link.b.id);
  }
  if (link.a.kind == Kind::Gpu && link.b.kind == Kind::Socket) {
    return "host-gpu" + std::to_string(link.a.id);
  }
  const topo::Link::Endpoint& lo = link.a.id <= link.b.id ? link.a : link.b;
  const topo::Link::Endpoint& hi = link.a.id <= link.b.id ? link.b : link.a;
  return name(lo) + "-" + name(hi);
}

bool linkMatches(const topo::Link& link, std::string_view selector) {
  return selector == "all" || iequals(linkSelector(link), selector);
}

double uniform01(std::uint64_t seed) {
  SplitMix64 sm(seed);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

FaultType faultTypeFromName(std::string_view name) {
  if (iequals(name, "link-kill")) return FaultType::LinkKill;
  if (iequals(name, "link-degrade")) return FaultType::LinkDegrade;
  if (iequals(name, "os-noise")) return FaultType::OsNoise;
  if (iequals(name, "packet-loss")) return FaultType::PacketLoss;
  if (iequals(name, "nic-brownout")) return FaultType::NicBrownout;
  if (iequals(name, "gpu-downclock")) return FaultType::GpuDownclock;
  if (iequals(name, "gpu-ecc-stall")) return FaultType::GpuEccStall;
  if (iequals(name, "flaky-cell")) return FaultType::FlakyCell;
  throw Error("unknown fault type '" + std::string(name) + "'");
}

}  // namespace

std::string_view faultTypeName(FaultType t) {
  switch (t) {
    case FaultType::LinkKill: return "link-kill";
    case FaultType::LinkDegrade: return "link-degrade";
    case FaultType::OsNoise: return "os-noise";
    case FaultType::PacketLoss: return "packet-loss";
    case FaultType::NicBrownout: return "nic-brownout";
    case FaultType::GpuDownclock: return "gpu-downclock";
    case FaultType::GpuEccStall: return "gpu-ecc-stall";
    case FaultType::FlakyCell: return "flaky-cell";
  }
  return "?";
}

bool FaultSpec::appliesTo(std::string_view machineName) const {
  return iequals(machine, "all") || iequals(machine, machineName);
}

machines::Machine FaultPlan::applyToMachine(const machines::Machine& m) const {
  machines::Machine out = m;
  for (const FaultSpec& f : faults) {
    if (!f.appliesTo(m.info.name)) {
      continue;
    }
    switch (f.type) {
      case FaultType::LinkKill:
      case FaultType::LinkDegrade: {
        const auto& links = out.topology.links();
        for (std::size_t i = 0; i < links.size(); ++i) {
          if (!linkMatches(links[i], f.link)) {
            continue;
          }
          if (f.type == FaultType::LinkKill) {
            out.topology.setLinkFailed(i);
          } else {
            out.topology.degradeLink(i, f.bandwidthFactor, f.addedLatency);
          }
        }
        break;
      }
      case FaultType::OsNoise:
        out.hostMemory.cvSingle =
            std::min(out.hostMemory.cvSingle * f.cvFactor, kMaxCv);
        out.hostMemory.cvAll =
            std::min(out.hostMemory.cvAll * f.cvFactor, kMaxCv);
        out.hostMpi.cv = std::min(out.hostMpi.cv * f.cvFactor, kMaxCv);
        out.hostMpi.softwareOverhead =
            out.hostMpi.softwareOverhead * f.slowdown;
        break;
      case FaultType::GpuDownclock:
        if (out.device) {
          out.device->hbmBw = out.device->hbmBw * f.bandwidthFactor;
          out.device->kernelLaunch = out.device->kernelLaunch * f.slowdown;
          out.device->syncWait = out.device->syncWait * f.slowdown;
        }
        break;
      case FaultType::GpuEccStall:
        if (out.device) {
          // Scrub episodes stall the command queue: everything that waits
          // on the device pays the added latency.
          out.device->syncWait += f.addedLatency;
          out.device->memcpyCallOverhead += f.addedLatency;
        }
        break;
      case FaultType::PacketLoss:
      case FaultType::NicBrownout:
      case FaultType::FlakyCell:
        break;  // network / harness level, not machine parameters
    }
  }
  return out;
}

void FaultPlan::applyToNetwork(std::string_view machineName,
                               mpisim::InterNodeParams& network) const {
  for (const FaultSpec& f : faults) {
    if (!f.appliesTo(machineName)) {
      continue;
    }
    switch (f.type) {
      case FaultType::PacketLoss:
        // Independent loss processes compose: survive all of them.
        network.packetLossRate =
            1.0 - (1.0 - network.packetLossRate) * (1.0 - f.rate);
        break;
      case FaultType::NicBrownout:
        network.injectionBandwidth =
            network.injectionBandwidth * f.bandwidthFactor;
        network.nicOverhead += f.addedLatency;
        break;
      default:
        break;
    }
  }
  network.faultSeed = seed ^ stableHash(machineName);
}

bool FaultPlan::shouldFailAttempt(std::string_view machineName,
                                  std::string_view cell, int attempt) const {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& f = faults[i];
    if (f.type != FaultType::FlakyCell || f.rate <= 0.0 ||
        !f.appliesTo(machineName)) {
      continue;
    }
    const std::uint64_t draw =
        seed ^ (0x9e3779b97f4a7c15ull * (i + 1)) ^ stableHash(machineName) ^
        (stableHash(cell) << 1) ^
        (0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(attempt + 1));
    if (uniform01(draw) < f.rate) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::touches(std::string_view machineName) const {
  return std::any_of(faults.begin(), faults.end(), [&](const FaultSpec& f) {
    return f.appliesTo(machineName);
  });
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << "fault plan (seed " << seed << ", " << faults.size()
      << (faults.size() == 1 ? " fault" : " faults") << ")\n";
  for (const FaultSpec& f : faults) {
    out << "  - " << faultTypeName(f.type) << " on " << f.machine;
    switch (f.type) {
      case FaultType::LinkKill:
        out << ", link " << f.link;
        break;
      case FaultType::LinkDegrade:
        out << ", link " << f.link << ", bandwidth x" << f.bandwidthFactor
            << ", +" << f.addedLatency.us() << " us";
        break;
      case FaultType::OsNoise:
        out << ", cv x" << f.cvFactor << ", overhead x" << f.slowdown;
        break;
      case FaultType::PacketLoss:
        out << ", rate " << f.rate;
        break;
      case FaultType::NicBrownout:
        out << ", injection x" << f.bandwidthFactor << ", +"
            << f.addedLatency.us() << " us";
        break;
      case FaultType::GpuDownclock:
        out << ", hbm x" << f.bandwidthFactor << ", kernel path x"
            << f.slowdown;
        break;
      case FaultType::GpuEccStall:
        out << ", +" << f.addedLatency.us() << " us per device wait";
        break;
      case FaultType::FlakyCell:
        out << ", rate " << f.rate;
        break;
    }
    out << "\n";
  }
  return out.str();
}

FaultPlan FaultPlan::fromJson(std::string_view text) {
  return fromJsonValue(JsonValue::parse(text));
}

FaultPlan FaultPlan::fromJsonValue(const JsonValue& doc) {
  if (!doc.isObject()) {
    throw Error("fault plan must be a JSON object");
  }
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(doc.numberOr("seed", 0.0));
  const JsonValue* faults = doc.find("faults");
  if (faults == nullptr) {
    return plan;
  }
  for (const JsonValue& entry : faults->asArray()) {
    if (!entry.isObject()) {
      throw Error("each fault must be a JSON object");
    }
    const JsonValue* type = entry.find("type");
    if (type == nullptr) {
      throw Error("fault entry is missing \"type\"");
    }
    FaultSpec spec;
    spec.type = faultTypeFromName(type->asString());
    spec.machine = entry.stringOr("machine", "all");
    spec.link = entry.stringOr("link", "all");
    spec.bandwidthFactor = entry.numberOr("bandwidth_factor", 1.0);
    spec.addedLatency =
        Duration::microseconds(entry.numberOr("added_latency_us", 0.0));
    spec.cvFactor = entry.numberOr("cv_factor", 1.0);
    spec.slowdown = entry.numberOr("slowdown", 1.0);
    spec.rate = entry.numberOr("rate", 0.0);
    if (spec.bandwidthFactor <= 0.0) {
      throw Error("bandwidth_factor must be > 0");
    }
    if (spec.cvFactor < 0.0) {
      throw Error("cv_factor must be >= 0");
    }
    if (spec.slowdown <= 0.0) {
      throw Error("slowdown must be > 0");
    }
    if (spec.rate < 0.0 || spec.rate >= 1.0) {
      throw Error("rate must be in [0, 1)");
    }
    if (spec.addedLatency < Duration::zero()) {
      throw Error("added_latency_us must be >= 0");
    }
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open fault plan file: " + path);
  }
  // Read at most the parser's document cap plus one byte: pointing the
  // loader at a huge (or unbounded, e.g. /dev/zero) file must fail fast
  // instead of buffering it all before the parser can object.
  constexpr std::size_t kMaxPlanBytes = 1u << 20;
  std::string text(kMaxPlanBytes + 1, '\0');
  in.read(text.data(), static_cast<std::streamsize>(text.size()));
  text.resize(static_cast<std::size_t>(in.gcount()));
  if (text.size() > kMaxPlanBytes) {
    throw Error("fault plan file " + path + " exceeds the " +
                std::to_string(kMaxPlanBytes) + "-byte limit");
  }
  return fromJson(text);
}

}  // namespace nodebench::faults
