#pragma once
/// \file fault_plan.hpp
/// \brief Seeded, deterministic fault injection for the simulated systems.
///
/// A `FaultPlan` is a list of perturbations applied to the otherwise
/// fair-weather simulator: link failures and degradations (topology), OS
/// noise on host timing (memory + MPI noise models), inter-node packet
/// loss and NIC brownouts (network parameters), GPU downclock/ECC-stall
/// episodes (device parameters), and fully flaky measurement cells (the
/// harness retry path). All randomness derives from the plan seed plus
/// stable identities (machine, cell, attempt, message sequence) through
/// `core/rng` streams, so a given plan produces byte-identical results at
/// any `--jobs` value — the same determinism contract the fault-free
/// harness already honours.
///
/// Plans are loaded from JSON:
/// ```json
/// {
///   "seed": 42,
///   "faults": [
///     {"type": "link-kill", "machine": "Perlmutter", "link": "host-gpu0"},
///     {"type": "packet-loss", "rate": 0.05},
///     {"type": "os-noise", "machine": "Eagle", "cv_factor": 3.0}
///   ]
/// }
/// ```
/// `machine` defaults to "all"; link selectors are "host-gpu<N>",
/// "gpu<A>-gpu<B>", "socket<A>-socket<B>" or "all".

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "mpisim/transport.hpp"

namespace nodebench {
class JsonValue;
}

namespace nodebench::faults {

using nodebench::JsonValue;

enum class FaultType {
  LinkKill,      ///< Matching node links go down (routes re-resolve or fail).
  LinkDegrade,   ///< Matching links lose bandwidth / gain latency.
  OsNoise,       ///< Host timing jitter: cv scale + software-overhead slowdown.
  PacketLoss,    ///< Inter-node Bernoulli message loss (retransmitted).
  NicBrownout,   ///< Injection-bandwidth derate + NIC latency adder.
  GpuDownclock,  ///< HBM bandwidth derate + kernel-path slowdown.
  GpuEccStall,   ///< ECC scrub episodes: latency added to the command path.
  FlakyCell,     ///< Measurement attempts fail outright with `rate`.
};

[[nodiscard]] std::string_view faultTypeName(FaultType t);

/// One perturbation. Fields irrelevant to a type keep their inert
/// defaults; `applies` fields select the blast radius.
struct FaultSpec {
  FaultType type = FaultType::OsNoise;
  std::string machine = "all";  ///< Registry name (case-insensitive) or "all".
  std::string link = "all";     ///< Link selector (Link* types only).
  double bandwidthFactor = 1.0;  ///< Degrade/brownout/downclock multiplier.
  Duration addedLatency = Duration::zero();  ///< Latency adder.
  double cvFactor = 1.0;        ///< OS noise: multiplies noise-model cvs.
  double slowdown = 1.0;        ///< Software-overhead multiplier.
  double rate = 0.0;            ///< Loss / flaky-cell probability.

  [[nodiscard]] bool appliesTo(std::string_view machineName) const;
};

/// A seeded set of fault specs plus the deterministic draw streams the
/// harness consumes.
class FaultPlan {
 public:
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  /// Returns a perturbed copy of `m` with every matching topology /
  /// timing / device fault applied. Machines a plan does not touch come
  /// back parameter-identical, so their measurements stay byte-identical.
  /// Note: a copy with a killed link may no longer pass
  /// machines::ensureValid — that is the point; affected measurements
  /// degrade per-cell instead.
  [[nodiscard]] machines::Machine applyToMachine(
      const machines::Machine& m) const;

  /// Applies network-level faults (packet loss, NIC brownout) for the
  /// named machine to an inter-node parameter set, including the loss
  /// stream's `faultSeed` derivation.
  void applyToNetwork(std::string_view machineName,
                      mpisim::InterNodeParams& network) const;

  /// Deterministic flaky-cell draw: whether measurement attempt number
  /// `attempt` of (machine, cell) fails under the plan's FlakyCell specs.
  /// A pure function of (seed, machine, cell, attempt).
  [[nodiscard]] bool shouldFailAttempt(std::string_view machineName,
                                       std::string_view cell,
                                       int attempt) const;

  /// True when any spec can affect the named machine (used to annotate
  /// reports; measurements always run through applyToMachine regardless).
  [[nodiscard]] bool touches(std::string_view machineName) const;

  /// Human-readable one-line-per-fault description of the plan.
  [[nodiscard]] std::string summary() const;

  /// Parses a plan from JSON text; throws Error on malformed input or
  /// out-of-range parameters (e.g. rate >= 1, bandwidth_factor <= 0).
  [[nodiscard]] static FaultPlan fromJson(std::string_view text);

  /// Builds a plan from an already-parsed JSON document — the `fromJson`
  /// back half, exposed for callers that embed a plan inside a larger
  /// document (the serve campaign request's inline "fault_plan" object).
  [[nodiscard]] static FaultPlan fromJsonValue(const JsonValue& doc);

  /// Reads and parses a plan file.
  [[nodiscard]] static FaultPlan load(const std::string& path);
};

}  // namespace nodebench::faults
