#pragma once
/// \file json_value.hpp
/// \brief Forwarding header: the JSON reader now lives in core.
///
/// The parser moved to `core/json_value.hpp` when `machines` grew a
/// machine-card parse path (machines links below faults, so it cannot
/// reach a faults-owned type). Existing fault-plan and test code keeps
/// spelling `faults::JsonValue`; this alias keeps that spelling valid.

#include "core/json_value.hpp"

namespace nodebench::faults {

using nodebench::JsonValue;

}  // namespace nodebench::faults
