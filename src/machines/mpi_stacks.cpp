#include "machines/mpi_stacks.hpp"

namespace nodebench::machines {

std::vector<MpiStackVariant> alternativeStacks(const Machine& m) {
  std::vector<MpiStackVariant> out;
  out.push_back(MpiStackVariant{m.env.mpi + " (default)", 1.0, 1.0, 1.0});

  const std::string& accel = m.info.acceleratorModel;
  if (accel.find("V100") != std::string::npos ||
      accel.find("GV100") != std::string::npos) {
    // Khorassani et al.: MVAPICH2-GDR's GPU path is several times faster
    // than SpectrumMPI's on OpenPOWER; OpenMPI+UCX sits between.
    out.push_back(MpiStackVariant{"mvapich2-gdr-like", 0.95, 0.40, 2.0});
    out.push_back(MpiStackVariant{"openmpi-ucx-like", 1.10, 0.70, 1.0});
  } else if (!accel.empty()) {
    // cray-mpich is already the tuned vendor stack on these systems; an
    // untuned open-source build typically regresses the device path.
    out.push_back(MpiStackVariant{"openmpi-untuned-like", 1.25, 1.60, 0.5});
  } else {
    out.push_back(MpiStackVariant{"vendor-tuned-like", 0.85, 1.0, 1.0});
    out.push_back(MpiStackVariant{"openmpi-generic-like", 1.20, 1.0, 1.0});
  }
  return out;
}

Machine withMpiStack(const Machine& m, const MpiStackVariant& variant) {
  NB_EXPECTS(variant.hostOverheadScale > 0.0);
  NB_EXPECTS(variant.deviceBaseScale > 0.0);
  NB_EXPECTS(variant.eagerThresholdScale > 0.0);
  Machine out = m;
  out.hostMpi.softwareOverhead =
      m.hostMpi.softwareOverhead * variant.hostOverheadScale;
  out.hostMpi.eagerThreshold = ByteCount::bytes(static_cast<std::uint64_t>(
      m.hostMpi.eagerThreshold.asDouble() * variant.eagerThresholdScale));
  if (out.deviceMpi) {
    out.deviceMpi->baseOneWay =
        m.deviceMpi->baseOneWay * variant.deviceBaseScale;
  }
  return out;
}

}  // namespace nodebench::machines
