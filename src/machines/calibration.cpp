#include "machines/calibration.hpp"

#include <cmath>

#include "core/error.hpp"

namespace nodebench::machines {

namespace {

using topo::GpuId;
using topo::LinkClass;
using topo::SocketId;

constexpr double kLatencyProbeBytes = 128.0;        // Comm|Scope latency size
constexpr double kBandwidthProbeBytes = 1024.0 * 1024.0 * 1024.0;  // 1 GiB

}  // namespace

void applyHostMemoryCalibration(Machine& m, const HostMemoryTargets& t) {
  NB_EXPECTS(t.singleGBps > 0.0 && t.allGBps > 0.0);
  NB_EXPECTS(t.cacheModeOverhead >= 1.0);
  const int domains = m.topology.numaCount();
  NB_EXPECTS(domains > 0);

  HostMemoryParams& p = m.hostMemory;
  p.perCoreBw = Bandwidth::gbps(t.singleGBps * t.cacheModeOverhead);
  p.perNumaSaturation = Bandwidth::gbps(t.allGBps * t.cacheModeOverhead /
                                        static_cast<double>(domains));
  p.peak = Bandwidth::gbps(t.peakGBps);
  p.peakNote = t.peakNote;
  p.cacheModeOverhead = t.cacheModeOverhead;
  p.cvSingle = t.cvSingle;
  p.cvAll = t.cvAll;
}

void applyCommScopeCalibration(Machine& m, const CommScopeTargets& t) {
  NB_EXPECTS_MSG(m.device.has_value(), "device parameters must exist");
  NB_EXPECTS(m.topology.gpuCount() > 0);
  DeviceParams& d = *m.device;

  using nodebench::literals::operator""_us;
  d.kernelLaunch = Duration::microseconds(t.launchUs);
  d.syncWait = Duration::microseconds(t.waitUs);
  d.cvLaunch = t.cvLaunch;
  d.cvWait = t.cvWait;
  d.cvXferLat = t.cvXferLat;
  d.cvXferBw = t.cvXferBw;
  d.cvD2D = t.cvD2D;

  // ---- Pinned-host <-> device path ---------------------------------------
  // Measured transfer time model (see gpusim):
  //   T(S) = callOverhead + dmaSetup + routeLatency + S/linkBw + syncWait
  // Two targets (latency at 128 B, bandwidth at 1 GiB), two unknowns
  // (overhead total, link bandwidth); solve by fixed point — the coupling
  // through the 128 B term is tiny, so three iterations converge to
  // machine precision.
  const GpuId g0{0};
  const SocketId s0 = m.topology.gpu(g0).socket;
  const double routeLatNs = m.topology.hostGpuLink(s0, g0).latency.ns();
  const double waitNs = d.syncWait.ns();
  const double targetLatNs = t.h2dLatencyUs * 1000.0;
  const double targetBwBpns = t.h2dBandwidthGBps;  // GB/s == bytes/ns

  double linkBw = targetBwBpns;
  double overheadNs = 0.0;
  for (int iter = 0; iter < 3; ++iter) {
    overheadNs = targetLatNs - routeLatNs - waitNs - kLatencyProbeBytes / linkBw;
    linkBw = 1.0 / (1.0 / targetBwBpns -
                    (overheadNs + routeLatNs + waitNs) / kBandwidthProbeBytes);
  }
  NB_ENSURES_MSG(overheadNs > 0.0, "H2D overhead" " must be positive after calibration");
  NB_ENSURES_MSG(linkBw > 0.0, "H2D link bandwidth" " must be positive after calibration");

  d.memcpyCallOverhead = Duration::nanoseconds(0.3 * overheadNs);
  d.h2dDmaSetup = Duration::nanoseconds(0.7 * overheadNs);
  // Homogeneous node: every host<->GPU link gets the solved bandwidth.
  for (int g = 0; g < m.topology.gpuCount(); ++g) {
    const GpuId gid{g};
    m.topology.setHostGpuLinkBandwidth(m.topology.gpu(gid).socket, gid,
                                       Bandwidth::bytesPerNs(linkBw));
  }

  // ---- Device <-> device path --------------------------------------------
  //   T(S, class) = callOverhead + d2dDmaSetup + routeLatency(class)
  //               + S/routeBw(class) + syncWait + residual(class)
  // The first class with a target anchors d2dDmaSetup (residual 0 there);
  // other classes store the residual relative to the topological route,
  // capturing empirical quirks such as Frontier's class D matching class A.
  int anchor = -1;
  for (int c = 0; c < 4; ++c) {
    if (t.d2dLatencyUs[c].has_value()) {
      anchor = c;
      break;
    }
  }
  if (anchor < 0) {
    return;  // CPU-attached single-GPU configuration: no D2D columns.
  }

  auto classRoute = [&](int c) {
    const auto pair = m.topology.representativePair(static_cast<LinkClass>(c));
    NB_EXPECTS_MSG(pair.has_value(),
                   "calibration target given for a link class the topology "
                   "does not contain");
    return m.topology.routeGpuToGpu(pair->first, pair->second);
  };

  const auto anchorRoute = classRoute(anchor);
  const double callNs = d.memcpyCallOverhead.ns();
  const double anchorTargetNs = *t.d2dLatencyUs[anchor] * 1000.0;
  const double d2dSetupNs =
      anchorTargetNs - callNs - anchorRoute.latency.ns() - waitNs -
      kLatencyProbeBytes / anchorRoute.bottleneck.bytesPerNanosecond();
  NB_ENSURES_MSG(d2dSetupNs > 0.0, "D2D DMA setup" " must be positive after calibration");
  d.d2dDmaSetup = Duration::nanoseconds(d2dSetupNs);

  for (int c = 0; c < 4; ++c) {
    if (!t.d2dLatencyUs[c].has_value()) {
      d.d2dClassResidual[c] = Duration::zero();
      continue;
    }
    const auto route = classRoute(c);
    const double modelNs =
        callNs + d2dSetupNs + route.latency.ns() + waitNs +
        kLatencyProbeBytes / route.bottleneck.bytesPerNanosecond();
    d.d2dClassResidual[c] =
        Duration::nanoseconds(*t.d2dLatencyUs[c] * 1000.0 - modelNs);
  }
}

void applyDeviceStreamCalibration(Machine& m, double reportedGBps,
                                  double peakGBps, std::string peakNote,
                                  double cvBw) {
  NB_EXPECTS_MSG(m.device.has_value(), "device parameters must exist");
  NB_EXPECTS(reportedGBps > 0.0);
  DeviceParams& d = *m.device;
  // Best BabelStream op on the device backend is Triad (largest counted
  // traffic amortizes per-iteration launch + sync best). At a 1 GiB vector
  // the counted and actual traffic are both 3 * S.
  const double trafficBytes = 3.0 * kBandwidthProbeBytes;
  const double perIterOverheadNs = d.kernelLaunch.ns() + d.syncWait.ns();
  const double denomNs = trafficBytes / reportedGBps - perIterOverheadNs;
  NB_ENSURES_MSG(denomNs > 0.0, "HBM time budget" " must be positive after calibration");
  d.hbmBw = Bandwidth::bytesPerNs(trafficBytes / denomNs);
  d.hbmPeak = Bandwidth::gbps(peakGBps);
  d.hbmPeakNote = std::move(peakNote);
  d.cvBw = cvBw;
}

void applyDeviceMpiCalibration(Machine& m, double classATargetUs, double cv) {
  NB_EXPECTS(m.topology.gpuCount() >= 2);
  const auto classes = m.topology.presentGpuLinkClasses();
  NB_EXPECTS(!classes.empty());
  const auto pair = m.topology.representativePair(classes.front());
  NB_ENSURES(pair.has_value());
  const auto route = m.topology.routeGpuToGpu(pair->first, pair->second);
  const double baseNs = classATargetUs * 1000.0 - route.latency.ns();
  NB_ENSURES_MSG(baseNs > 0.0, "device MPI base overhead" " must be positive after calibration");
  m.deviceMpi = DeviceMpiParams{Duration::nanoseconds(baseNs), cv};
}

}  // namespace nodebench::machines
