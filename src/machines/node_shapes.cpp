#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;
using topo::GpuId;
using topo::LinkType;
using topo::MeshCoord;
using topo::NodeTopology;
using topo::NumaId;
using topo::SocketId;

topo::NodeTopology xeonDualSocketNode(std::string cpuModel,
                                      int coresPerSocket) {
  NB_EXPECTS(coresPerSocket > 0);
  NodeTopology node;
  for (int s = 0; s < 2; ++s) {
    const SocketId socket = node.addSocket(cpuModel);
    const NumaId numa = node.addNumaDomain(socket);
    node.addCores(numa, coresPerSocket, /*smtThreads=*/2);
  }
  // UPI: latency is a generic inter-socket fabric figure; the MPI model's
  // crossSocketHop parameter (calibrated per machine) is what actually
  // determines on-node latency, so this value only affects routed GPU
  // traffic, of which Xeon nodes have none.
  node.connectSockets(SocketId{0}, SocketId{1}, LinkType::UPI, 0.10_us,
                      Bandwidth::gbps(41.6));
  return node;
}

topo::NodeTopology knlNode(std::string cpuModel, int cores, int meshCols) {
  NB_EXPECTS(cores > 0 && cores % 2 == 0);
  NB_EXPECTS(meshCols > 0);
  NodeTopology node;
  const SocketId socket = node.addSocket(std::move(cpuModel));
  // Quad-cache mode: the whole chip is one NUMA domain (MCDRAM acts as a
  // memory-side cache in front of DDR4).
  const NumaId numa = node.addNumaDomain(socket);
  const int tiles = cores / 2;
  for (int t = 0; t < tiles; ++t) {
    const MeshCoord coord{t / meshCols, t % meshCols};
    node.addMeshCore(numa, coord, /*smtThreads=*/4);  // first core of tile
    node.addMeshCore(numa, coord, /*smtThreads=*/4);  // second core of tile
  }
  return node;
}

topo::NodeTopology mi250xNode(std::string cpuModel) {
  NodeTopology node;
  const SocketId socket = node.addSocket(std::move(cpuModel));
  // EPYC "Trento"/"Milan": 64 cores over four NUMA domains (NPS4).
  for (int d = 0; d < 4; ++d) {
    const NumaId numa = node.addNumaDomain(socket);
    node.addCores(numa, 16, /*smtThreads=*/2);
  }
  const ByteCount gcdMemory = ByteCount::gib(64);
  for (int g = 0; g < 8; ++g) {
    node.addGpu("AMD MI250X GCD", socket, gcdMemory, /*packageIndex=*/g / 2);
  }
  // Physical link properties. Latency: one Infinity Fabric hop measures
  // ~0.09 us between GCDs (the paper's Table 5 shows all-class D2D MPI at
  // 0.44-0.50 us with a sub-0.1 us spread, consistent with a single-hop
  // fabric). Bandwidth: 50 GB/s per xGMI link per direction (AMD CDNA2
  // whitepaper), scaled by link count.
  const Duration ifLat = 0.09_us;
  const Bandwidth perLink = Bandwidth::gbps(50.0);
  auto peer = [&](int a, int b, int links) {
    node.connectGpuPeer(GpuId{a}, GpuId{b}, LinkType::InfinityFabric, links,
                        ifLat, perLink * static_cast<double>(links));
  };
  // Class A: quad links inside each MI250X package.
  peer(0, 1, 4);
  peer(2, 3, 4);
  peer(4, 5, 4);
  peer(6, 7, 4);
  // Class B: dual links between neighbouring packages.
  peer(0, 2, 2);
  peer(1, 3, 2);
  peer(4, 6, 2);
  peer(5, 7, 2);
  // Class C: single links across the node.
  peer(0, 4, 1);
  peer(1, 5, 1);
  peer(2, 6, 1);
  peer(3, 7, 1);
  // Remaining pairs (e.g. 0-3, 0-5, 1-2, ...) have no direct link: class D.

  // CPU <-> GCD Infinity Fabric. Bandwidth is re-solved by the Comm|Scope
  // calibration against the measured pinned-copy rate (~25 GB/s).
  for (int g = 0; g < 8; ++g) {
    node.connectHostGpu(socket, GpuId{g}, LinkType::InfinityFabric, 0.05_us,
                        Bandwidth::gbps(36.0));
  }
  node.setGpuFlavor(topo::GpuInterconnectFlavor::InfinityFabric);
  return node;
}

topo::NodeTopology power9Node(std::string cpuModel, int gpusPerSocket,
                              Duration xbusLatency) {
  NB_EXPECTS(gpusPerSocket >= 1 && gpusPerSocket <= 3);
  NodeTopology node;
  const ByteCount gpuMemory = ByteCount::gib(16);
  SocketId sockets[2];
  for (int s = 0; s < 2; ++s) {
    sockets[s] = node.addSocket(cpuModel);
    const NumaId numa = node.addNumaDomain(sockets[s]);
    node.addCores(numa, 22, /*smtThreads=*/4);
  }
  std::vector<GpuId> gpus;
  for (int s = 0; s < 2; ++s) {
    for (int g = 0; g < gpusPerSocket; ++g) {
      gpus.push_back(node.addGpu("NVIDIA V100", sockets[s], gpuMemory));
    }
  }
  // NVLink2 between GPUs of the same socket. With 3 GPUs/socket (Summit)
  // each pair shares 2 bricks (50 GB/s); with 2 GPUs/socket
  // (Sierra/Lassen) each pair gets 3 bricks (75 GB/s).
  const int bricks = gpusPerSocket == 3 ? 2 : 3;
  const Bandwidth peerBw = Bandwidth::gbps(25.0 * bricks);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < gpusPerSocket; ++i) {
      for (int j = i + 1; j < gpusPerSocket; ++j) {
        node.connectGpuPeer(gpus[s * gpusPerSocket + i],
                            gpus[s * gpusPerSocket + j], LinkType::NVLink2,
                            bricks, 0.30_us, peerBw);
      }
    }
  }
  // CPU <-> GPU NVLink2 (same brick counts as the peer links); bandwidth
  // is re-solved by the Comm|Scope calibration.
  for (std::size_t g = 0; g < gpus.size(); ++g) {
    const SocketId s = node.gpu(gpus[g]).socket;
    node.connectHostGpu(s, gpus[g], LinkType::NVLink2, 0.55_us,
                        Bandwidth::gbps(25.0 * bricks));
  }
  node.connectSockets(sockets[0], sockets[1], LinkType::XBus, xbusLatency,
                      Bandwidth::gbps(64.0));
  node.setGpuFlavor(topo::GpuInterconnectFlavor::NvlinkPcieMix);
  return node;
}

topo::NodeTopology a100Node(std::string cpuModel, int coresPerSocket) {
  NB_EXPECTS(coresPerSocket > 0 && coresPerSocket % 4 == 0);
  NodeTopology node;
  const SocketId socket = node.addSocket(std::move(cpuModel));
  for (int d = 0; d < 4; ++d) {
    const NumaId numa = node.addNumaDomain(socket);
    node.addCores(numa, coresPerSocket / 4, /*smtThreads=*/2);
  }
  const ByteCount gpuMemory = ByteCount::gib(40);
  std::vector<GpuId> gpus;
  for (int g = 0; g < 4; ++g) {
    gpus.push_back(node.addGpu("NVIDIA A100 (40GB)", socket, gpuMemory));
  }
  // NVLink3 all-to-all: 4 links per pair, 25 GB/s per link per direction.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      node.connectGpuPeer(gpus[i], gpus[j], LinkType::NVLink3, 4, 0.25_us,
                          Bandwidth::gbps(100.0));
    }
  }
  // Host link is PCIe4 x16; bandwidth re-solved by Comm|Scope calibration.
  for (const GpuId g : gpus) {
    node.connectHostGpu(socket, g, LinkType::PCIe4, 0.40_us,
                        Bandwidth::gbps(25.0));
  }
  node.setGpuFlavor(topo::GpuInterconnectFlavor::NvlinkAllToAll);
  return node;
}

}  // namespace nodebench::machines
