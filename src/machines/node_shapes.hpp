#pragma once
/// \file node_shapes.hpp
/// \brief Topology constructors shared by machines with the same node
/// architecture (the paper's Figures 1-3 plus the CPU-only shapes).

#include <string>

#include "core/units.hpp"
#include "topo/topology.hpp"

namespace nodebench::machines {

/// Dual-socket Intel Xeon node (Sawtooth / Eagle / Manzano): one NUMA
/// domain per socket, UPI between sockets, 2-way SMT.
[[nodiscard]] topo::NodeTopology xeonDualSocketNode(std::string cpuModel,
                                                    int coresPerSocket);

/// Self-hosted Knights Landing node in quad-cache mode (Trinity / Theta):
/// one socket, one NUMA domain, cores on a 2D mesh with `meshCols` tile
/// columns and two cores per tile, 4-way SMT.
[[nodiscard]] topo::NodeTopology knlNode(std::string cpuModel, int cores,
                                         int meshCols);

/// Figure 1 shape: single EPYC socket with four NUMA domains and four
/// MI250X packages exposing eight GCDs. Infinity Fabric peer links:
/// quad in-package (class A), dual (0,2)(1,3)(4,6)(5,7) (class B), single
/// (0,4)(1,5)(2,6)(3,7) (class C); the remaining pairs have no direct
/// link (class D). Each GCD also has a CPU Infinity Fabric link.
[[nodiscard]] topo::NodeTopology mi250xNode(std::string cpuModel);

/// Figure 2 shape: two Power9 sockets joined by X-Bus, `gpusPerSocket`
/// V100s per socket. GPUs of the same socket are pairwise NVLink2
/// connected (class A); cross-socket pairs route through the hosts
/// (class B). CPU-GPU links are NVLink2.
/// `xbusLatency` is exposed because it anchors the class B - class A
/// latency separation measured on each system.
[[nodiscard]] topo::NodeTopology power9Node(std::string cpuModel,
                                            int gpusPerSocket,
                                            Duration xbusLatency);

/// Figure 3 shape: single EPYC socket (four NUMA domains) with four A100s
/// connected all-to-all by NVLink3; host links are PCIe4.
[[nodiscard]] topo::NodeTopology a100Node(std::string cpuModel,
                                          int coresPerSocket);

}  // namespace nodebench::machines
