#pragma once
/// \file machine.hpp
/// \brief Descriptor of one simulated system: identity (Tables 2/3),
/// software environment (Tables 8/9), node topology (Figures 1-3) and the
/// calibrated performance parameters the benchmark models consume.
///
/// Calibration philosophy (see DESIGN.md §1): every number stored here is a
/// *primitive* quantity — a link latency, a per-core bandwidth, a software
/// overhead — not a table cell. Table cells emerge from running the
/// benchmark code paths over these primitives. The primitives themselves
/// were derived by inverting the benchmark models against the paper's
/// reported means; the derivations are documented at each machine's
/// constructor.

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "topo/topology.hpp"

namespace nodebench::machines {

/// Identity of a system as listed in Tables 2 and 3.
struct SystemInfo {
  std::string name;
  int top500Rank = 0;
  std::string location;
  std::string cpuModel;
  std::string acceleratorModel;  ///< Empty for non-accelerator systems.

  [[nodiscard]] bool accelerated() const { return !acceleratorModel.empty(); }
};

/// Software environment as listed in Tables 8 and 9.
struct SoftwareEnv {
  std::string compiler;
  std::string deviceLibrary;  ///< Empty for non-accelerator systems.
  std::string mpi;
};

/// Host memory-system parameters (BabelStream OpenMP model).
struct HostMemoryParams {
  /// Sustainable DRAM bandwidth of one pinned core (after any cache-mode
  /// overhead is *removed*; the model re-applies it).
  Bandwidth perCoreBw;
  /// Saturated bandwidth of one NUMA domain with enough pinned threads.
  Bandwidth perNumaSaturation;
  /// Theoretical peak of the whole node (Table 4 "Peak" column).
  Bandwidth peak;
  /// Rendering of the peak for the table ("281.50", "> 450 [34]").
  std::string peakNote;
  /// Multiplicative slowdown of managing the MCDRAM cache in "quad cache"
  /// mode (1.0 on non-KNL machines; the ablation bench flips this off to
  /// emulate flat mode).
  double cacheModeOverhead = 1.0;
  /// Throughput factor when more than one SMT thread per core is used.
  double smtFactor = 1.0;
  /// Throughput factor for unpinned teams (OS migration, imperfect NUMA
  /// spread); applies to multi-thread unbound rows of Table 1.
  double unboundFactor = 0.88;
  /// Same, for a single unpinned thread.
  double unboundSingleFactor = 0.96;
  /// Whether streamed stores bypass write-allocate traffic. False on the
  /// studied CPUs (BabelStream 4.0's OpenMP kernels use plain stores).
  bool nonTemporalStores = false;
  /// Last-level cache per socket and the bandwidth boost factor applied
  /// when a kernel's working set fits in cache (drives the small-size end
  /// of the BabelStream size-sweep ablation; irrelevant at the >= 128 MB
  /// sizes used for Table 4).
  ByteCount llcPerSocket = ByteCount::mib(32);
  double cacheBandwidthBoost = 3.0;
  /// Measurement noise (sigma/mean) of single-thread / all-thread runs.
  double cvSingle = 0.01;
  double cvAll = 0.02;
};

/// One level of a machine's on-chip cache ladder, nearest-first. The
/// numbers are public-spec quantities, not calibrated fits: capacity and
/// line size from vendor datasheets, load-to-use latency and sustained
/// bandwidth from published microbenchmark studies of the same silicon
/// (see docs/MODELING.md, "Cache ladder").
struct CacheLevel {
  /// Display name: "L1d", "L2", "L3", "MCDRAM", ...
  std::string name;
  /// Capacity of ONE instance of this level (one core's L1, one socket's
  /// shared L3). Effective capacity for a thread team is derived from
  /// `sharedByCores` and the cores actually used.
  ByteCount capacity;
  /// Cache-line (transfer) granularity of this level.
  ByteCount lineSize = ByteCount::bytes(64);
  /// Dependent-load (pointer-chase) load-to-use latency when the working
  /// set is resident in this level.
  Duration loadToUseLatency;
  /// Sustained streaming bandwidth of one core reading from this level.
  Bandwidth perCoreBandwidth;
  /// How many physical cores share one instance (1 = private, cores per
  /// socket for a socket-wide LLC, whole node for MCDRAM-as-cache).
  int sharedByCores = 1;
};

/// Explicit cache hierarchy of the host CPU complex. Drives the memlab
/// benchmark families (working-set bandwidth sweeps, pointer-chase
/// latency) and the cache-ladder refinement inside
/// memsim::HostMemoryModel. An empty hierarchy is valid: the memory
/// model then falls back to the legacy single-LLC knee, and the memlab
/// families refuse the machine with a diagnostic.
struct CacheHierarchy {
  /// Ordered nearest-first: capacities strictly increase, latencies
  /// strictly increase, per-core bandwidths weakly decrease.
  std::vector<CacheLevel> levels;
  /// Dependent-load latency of a DRAM access that misses every level
  /// (local NUMA domain, open-page mix).
  Duration memoryLatency;
  /// Nominal core clock in GHz, used to convert ns-per-access into
  /// clk-per-op in the pointer-chase family.
  double coreClockGHz = 0.0;

  [[nodiscard]] bool empty() const { return levels.empty(); }
};

/// Host MPI point-to-point parameters (OSU latency model).
struct HostMpiParams {
  /// Per-message software overhead (send-side plus receive-side total).
  Duration softwareOverhead;
  /// Extra one-way wire time for two cores of the same NUMA domain.
  Duration sameNumaHop;
  /// Extra one-way wire time crossing NUMA domains within one socket.
  Duration crossNumaHop;
  /// Extra one-way wire time crossing the socket interconnect.
  Duration crossSocketHop;
  /// KNL mesh: base plus per-tile-hop time (used when cores carry mesh
  /// coordinates).
  Duration meshBase;
  Duration meshPerHop;
  /// Copy bandwidth of the eager (double-copy through shared memory) path.
  Bandwidth eagerBandwidth = Bandwidth::gbps(8.0);
  /// Copy bandwidth of the rendezvous (single-copy) path.
  Bandwidth rendezvousBandwidth = Bandwidth::gbps(14.0);
  /// Eager/rendezvous switchover message size (MPICH-style default).
  ByteCount eagerThreshold = ByteCount::kib(8);
  /// Measurement noise of latency runs.
  double cv = 0.015;
};

/// Parameters of the device-buffer MPI path (Table 5 columns A-D).
struct DeviceMpiParams {
  /// One-way software cost of the device-buffer path, *excluding* the
  /// physical link traversal (which comes from the topology route). Large
  /// on the V100/A100 systems, whose MPI stacks stage device data through
  /// host bounce buffers; sub-microsecond for cray-mpich's GPU-RMA path
  /// on the MI250X systems — exactly the paper's explanation of Table 5.
  Duration baseOneWay;
  /// Measurement noise.
  double cv = 0.01;
};

/// GPU runtime parameters (BabelStream device model + Comm|Scope).
struct DeviceParams {
  /// Achievable HBM bandwidth of one visible device (one GCD on MI250X).
  Bandwidth hbmBw;
  /// Theoretical HBM peak for the table ("900", "1555.2", "1600").
  Bandwidth hbmPeak;
  std::string hbmPeakNote;
  /// Host wall time to *launch* an empty kernel (Comm|Scope "Launch").
  Duration kernelLaunch;
  /// Host wall time of a device synchronize with an empty queue ("Wait").
  Duration syncWait;
  /// Host-side driver cost of invoking an async memcpy.
  Duration memcpyCallOverhead;
  /// DMA-engine setup cost per pinned-host <-> device transfer.
  Duration h2dDmaSetup;
  /// DMA-engine setup cost per device <-> device transfer.
  Duration d2dDmaSetup;
  /// Per-link-class residual of D2D memcpy latency relative to the
  /// topological route (captures empirical quirks such as Frontier's
  /// class D matching class A; see Table 6 discussion).
  std::array<Duration, 4> d2dClassResidual{};
  /// Peak double-precision rate of one visible device (GFLOP/s), for the
  /// machine-balance analysis (McCalpin's flops-vs-bandwidth motivation
  /// for STREAM, which the paper's related-work section recounts).
  double peakFp64Gflops = 0.0;
  /// Unified/managed memory model (extension beyond the paper, matching
  /// Comm|Scope's UM test family): demand-fault service granularity
  /// (drivers service a storm in sub-page chunks) and the per-fault
  /// service latency. Representative defaults; not calibrated against
  /// the paper (which does not measure UM).
  ByteCount umPageSize = ByteCount::kib(256);
  Duration umFaultLatency = Duration::microseconds(25.0);
  /// Prefetch engine efficiency relative to the pinned-copy link rate.
  double umPrefetchEfficiency = 0.9;
  /// Measurement noise per reported quantity.
  double cvBw = 0.001;
  double cvLaunch = 0.004;
  double cvWait = 0.004;
  double cvXferLat = 0.006;
  double cvXferBw = 0.0005;
  double cvD2D = 0.008;
};

/// A complete simulated system.
struct Machine {
  SystemInfo info;
  SoftwareEnv env;
  topo::NodeTopology topology;
  HostMemoryParams hostMemory;
  CacheHierarchy cacheHierarchy;  ///< Host cache ladder (may be empty).
  HostMpiParams hostMpi;
  std::optional<DeviceMpiParams> deviceMpi;  ///< Set iff accelerated.
  std::optional<DeviceParams> device;        ///< Set iff accelerated.
  /// Peak double-precision rate of the host CPUs (GFLOP/s, whole node).
  double hostPeakFp64Gflops = 0.0;

  /// Base RNG seed; every benchmark derives per-run streams from it.
  std::uint64_t seed = 0;

  [[nodiscard]] bool accelerated() const { return info.accelerated(); }

  /// Total physical cores / hardware threads of the node.
  [[nodiscard]] int coreCount() const { return topology.coreCount(); }
  [[nodiscard]] int hardwareThreadCount() const;
};

}  // namespace nodebench::machines
