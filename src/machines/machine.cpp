#include "machines/machine.hpp"

namespace nodebench::machines {

int Machine::hardwareThreadCount() const {
  int total = 0;
  for (int i = 0; i < topology.coreCount(); ++i) {
    total += topology.core(topo::CoreId{i}).smtThreads;
  }
  return total;
}

}  // namespace nodebench::machines
