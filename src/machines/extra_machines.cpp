/// \file extra_machines.cpp
/// \brief Representative Arm and AMD CPU nodes (future-work #3).
///
/// Parameter sources (public literature, not the paper):
///  - A64FX: HBM2 at 1024 GB/s peak; STREAM Triad ~830 GB/s published for
///    Fugaku nodes; single-core ~55 GB/s; Tofu-D MPI ~0.9 us on-node.
///  - EPYC 7763 (Milan, 2 sockets, NPS4): 8ch DDR4-3200/socket (409.6
///    GB/s node peak), STREAM ~350 GB/s; sub-0.4 us on-socket MPI.
///  - Ampere Altra Q80-30: 8ch DDR4-3200/socket, STREAM ~300 GB/s node;
///    mesh interconnect with ~0.5 us on-socket MPI.

#include "machines/extra_machines.hpp"

#include "machines/cache_hierarchy.hpp"

#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;
using topo::LinkType;
using topo::NodeTopology;
using topo::NumaId;
using topo::SocketId;

Machine makeA64fxNode() {
  Machine m;
  m.info = SystemInfo{"A64FX-node", 0, "reference", "Fujitsu A64FX", ""};
  m.env = SoftwareEnv{"fujitsu/4.8", "", "fujitsu-mpi/4.8"};
  m.seed = 0xa64f0001u;
  // Four core-memory-groups (CMGs), 12 compute cores each, no SMT.
  const SocketId socket = m.topology.addSocket(m.info.cpuModel);
  for (int cmg = 0; cmg < 4; ++cmg) {
    const NumaId numa = m.topology.addNumaDomain(socket);
    m.topology.addCores(numa, 12, /*smtThreads=*/1);
  }
  applyHostMemoryCalibration(
      m, HostMemoryTargets{55.0, 830.0, 1024.0, "1024 (HBM2)", 1.0,
                           /*cvSingle=*/0.01, /*cvAll=*/0.015});
  m.cacheHierarchy = a64fxCacheHierarchy();
  m.hostMpi.softwareOverhead = 0.70_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.20_us;  // cross-CMG ring bus
  m.hostMpi.crossSocketHop = 0.20_us;
  // 48c x 2.0 GHz x 32 DP flops/cycle (2x 512-bit SVE FMA).
  m.hostPeakFp64Gflops = 3072.0;
  return m;
}

Machine makeEpycMilanNode() {
  Machine m;
  m.info = SystemInfo{"EPYC-Milan-node", 0, "reference",
                      "AMD EPYC 7763 (2S)", ""};
  m.env = SoftwareEnv{"gcc/12.2", "", "openmpi/4.1.4"};
  m.seed = 0xe9c70001u;
  // Two sockets, NPS4: eight NUMA domains of 16 cores, 2-way SMT.
  for (int s = 0; s < 2; ++s) {
    const SocketId socket = m.topology.addSocket(m.info.cpuModel);
    for (int d = 0; d < 4; ++d) {
      const NumaId numa = m.topology.addNumaDomain(socket);
      m.topology.addCores(numa, 16, /*smtThreads=*/2);
    }
  }
  m.topology.connectSockets(SocketId{0}, SocketId{1}, LinkType::UPI,
                            0.12_us, Bandwidth::gbps(50.0));
  applyHostMemoryCalibration(
      m, HostMemoryTargets{24.0, 350.0, 409.6, "409.6", 1.0,
                           /*cvSingle=*/0.005, /*cvAll=*/0.01});
  m.hostMemory.smtFactor = 0.98;
  m.cacheHierarchy = epycCacheHierarchy(8, 32.0, 2.45);
  m.hostMpi.softwareOverhead = 0.30_us;
  m.hostMpi.sameNumaHop = 0.05_us;
  m.hostMpi.crossNumaHop = 0.12_us;
  m.hostMpi.crossSocketHop = 0.35_us;
  // 2 x 64c x 2.45 GHz x 16 DP flops/cycle.
  m.hostPeakFp64Gflops = 5018.0;
  return m;
}

Machine makeAmpereAltraNode() {
  Machine m;
  m.info = SystemInfo{"Altra-node", 0, "reference",
                      "Ampere Altra Q80-30 (2S)", ""};
  m.env = SoftwareEnv{"gcc/12.2", "", "openmpi/4.1.4"};
  m.seed = 0xa17a0001u;
  for (int s = 0; s < 2; ++s) {
    const SocketId socket = m.topology.addSocket(m.info.cpuModel);
    const NumaId numa = m.topology.addNumaDomain(socket);
    m.topology.addCores(numa, 80, /*smtThreads=*/1);  // no SMT on N1
  }
  m.topology.connectSockets(SocketId{0}, SocketId{1}, LinkType::UPI,
                            0.15_us, Bandwidth::gbps(40.0));
  applyHostMemoryCalibration(
      m, HostMemoryTargets{18.0, 300.0, 409.6, "409.6", 1.0,
                           /*cvSingle=*/0.006, /*cvAll=*/0.012});
  m.cacheHierarchy = altraCacheHierarchy(/*coresPerSocket=*/80);
  m.hostMpi.softwareOverhead = 0.42_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.08_us;
  m.hostMpi.crossSocketHop = 0.45_us;
  // 2 x 80c x 3.0 GHz x 4 DP flops/cycle (2x 128-bit NEON FMA).
  m.hostPeakFp64Gflops = 1920.0;
  return m;
}

const std::vector<Machine>& extraMachines() {
  static const std::vector<Machine> machines = [] {
    std::vector<Machine> all;
    all.push_back(makeA64fxNode());
    all.push_back(makeEpycMilanNode());
    all.push_back(makeAmpereAltraNode());
    return all;
  }();
  return machines;
}

}  // namespace nodebench::machines
