#pragma once
/// \file mpi_stacks.hpp
/// \brief Alternative MPI implementation profiles — the paper's fourth
/// future-work item ("prior work has identified substantial latency
/// differences on the same systems between MPI implementations [26]; it
/// may be worth measuring under a variety of configurations").
///
/// A variant scales the software-side primitives of the machine's MPI
/// model: host per-message overhead, device-path base cost, and the
/// eager threshold. Scales are drawn from the relative differences
/// Khorassani et al. report between SpectrumMPI, OpenMPI+UCX and
/// MVAPICH2-GDR on Summit/Sierra-class systems.

#include <string>
#include <vector>

#include "machines/machine.hpp"

namespace nodebench::machines {

struct MpiStackVariant {
  std::string name;
  double hostOverheadScale = 1.0;
  double deviceBaseScale = 1.0;
  double eagerThresholdScale = 1.0;

  [[nodiscard]] bool isDefault() const {
    return hostOverheadScale == 1.0 && deviceBaseScale == 1.0 &&
           eagerThresholdScale == 1.0;
  }
};

/// The stacks worth comparing on this machine, default first. Accelerator
/// machines get GPU-aware alternatives; CPU machines get a generic
/// vendor-vs-open-source pairing.
[[nodiscard]] std::vector<MpiStackVariant> alternativeStacks(
    const Machine& m);

/// A copy of the machine with the variant's scales applied to its MPI
/// parameters (topology and all other calibration untouched).
[[nodiscard]] Machine withMpiStack(const Machine& m,
                                   const MpiStackVariant& variant);

}  // namespace nodebench::machines
