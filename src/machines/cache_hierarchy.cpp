#include "machines/cache_hierarchy.hpp"

#include <cmath>

namespace nodebench::machines {

namespace {

/// Cycle count at a nominal clock, expressed as a latency.
Duration cycles(double n, double clockGHz) {
  return Duration::nanoseconds(n / clockGHz);
}

/// Fractional-MiB capacities (35.75 MiB L3, ...) expressed in whole KiB.
ByteCount mibFrac(double mib) {
  return ByteCount::kib(static_cast<std::uint64_t>(std::llround(mib * 1024.0)));
}

CacheLevel level(std::string name, ByteCount capacity, Duration latency,
                 double perCoreGBps, int sharedByCores,
                 ByteCount lineSize = ByteCount::bytes(64)) {
  CacheLevel l;
  l.name = std::move(name);
  l.capacity = capacity;
  l.lineSize = lineSize;
  l.loadToUseLatency = latency;
  l.perCoreBandwidth = Bandwidth::gbps(perCoreGBps);
  l.sharedByCores = sharedByCores;
  return l;
}

}  // namespace

CacheHierarchy skylakeServerCacheHierarchy(int coresPerSocket,
                                           double l3MibPerSocket,
                                           double clockGHz) {
  CacheHierarchy h;
  // 4-cycle L1d, ~14-cycle L2, ~50-70-cycle non-inclusive L3 (mesh
  // average); per-core sustained read bandwidths from published
  // Skylake-SP/Cascade Lake single-core ladder measurements.
  h.levels.push_back(level("L1d", ByteCount::kib(32), cycles(4.0, clockGHz),
                           /*perCoreGBps=*/200.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L2", ByteCount::mib(1), cycles(14.0, clockGHz),
                           /*perCoreGBps=*/90.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L3", mibFrac(l3MibPerSocket),
                           cycles(60.0, clockGHz),
                           /*perCoreGBps=*/32.0, coresPerSocket));
  h.memoryLatency = Duration::nanoseconds(85.0);
  h.coreClockGHz = clockGHz;
  return h;
}

CacheHierarchy knlCacheHierarchy(int cores, double clockGHz) {
  CacheHierarchy h;
  // KNL's small OoO core: 4-cycle L1d, ~17-cycle tile L2. MCDRAM in
  // quad-cache mode is a direct-mapped memory-side cache: ~170 ns
  // load-to-use, and a full miss pays the tag check before DDR4, which
  // is why memoryLatency exceeds flat-mode DDR (~140 ns) numbers.
  h.levels.push_back(level("L1d", ByteCount::kib(32), cycles(4.0, clockGHz),
                           /*perCoreGBps=*/110.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L2", ByteCount::mib(1), cycles(17.0, clockGHz),
                           /*perCoreGBps=*/55.0, /*sharedByCores=*/2));
  h.levels.push_back(level("MCDRAM", ByteCount::gib(16),
                           Duration::nanoseconds(170.0),
                           /*perCoreGBps=*/14.0, cores));
  h.memoryLatency = Duration::nanoseconds(230.0);
  h.coreClockGHz = clockGHz;
  return h;
}

CacheHierarchy power9CacheHierarchy(int coresPerSocket, double clockGHz) {
  CacheHierarchy h;
  // SMT4 core pairs share an L2 slice; the 10 MiB-per-pair eDRAM L3 is
  // NUCA but chip-visible, so it is modeled as one shared pool.
  const double l3Mib = 10.0 * coresPerSocket / 2.0;
  h.levels.push_back(level("L1d", ByteCount::kib(32), cycles(4.0, clockGHz),
                           /*perCoreGBps=*/150.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L2", ByteCount::kib(512), cycles(12.0, clockGHz),
                           /*perCoreGBps=*/75.0, /*sharedByCores=*/2,
                           ByteCount::bytes(128)));
  h.levels.push_back(level("L3", mibFrac(l3Mib), cycles(55.0, clockGHz),
                           /*perCoreGBps=*/35.0, coresPerSocket,
                           ByteCount::bytes(128)));
  h.memoryLatency = Duration::nanoseconds(130.0);
  h.coreClockGHz = clockGHz;
  return h;
}

CacheHierarchy epycCacheHierarchy(int coresPerCcx, double l3MibPerCcx,
                                  double clockGHz) {
  CacheHierarchy h;
  // Zen 2/3: 32 KiB L1d, 512 KiB private L2, victim L3 per core complex.
  h.levels.push_back(level("L1d", ByteCount::kib(32), cycles(4.0, clockGHz),
                           /*perCoreGBps=*/180.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L2", ByteCount::kib(512), cycles(12.0, clockGHz),
                           /*perCoreGBps=*/85.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L3", mibFrac(l3MibPerCcx),
                           cycles(46.0, clockGHz),
                           /*perCoreGBps=*/38.0, coresPerCcx));
  h.memoryLatency = Duration::nanoseconds(100.0);
  h.coreClockGHz = clockGHz;
  return h;
}

CacheHierarchy a64fxCacheHierarchy() {
  CacheHierarchy h;
  const double clockGHz = 2.0;
  // 64 KiB L1d with 256-byte lines feeding 512-bit SVE pipes; 8 MiB L2
  // per 12-core CMG; no L3 — HBM2 sits directly behind L2.
  h.levels.push_back(level("L1d", ByteCount::kib(64), cycles(5.0, clockGHz),
                           /*perCoreGBps=*/230.0, /*sharedByCores=*/1,
                           ByteCount::bytes(256)));
  h.levels.push_back(level("L2", ByteCount::mib(8), cycles(40.0, clockGHz),
                           /*perCoreGBps=*/115.0, /*sharedByCores=*/12,
                           ByteCount::bytes(256)));
  h.memoryLatency = Duration::nanoseconds(125.0);
  h.coreClockGHz = clockGHz;
  return h;
}

CacheHierarchy altraCacheHierarchy(int coresPerSocket) {
  CacheHierarchy h;
  const double clockGHz = 3.0;
  h.levels.push_back(level("L1d", ByteCount::kib(64), cycles(4.0, clockGHz),
                           /*perCoreGBps=*/90.0, /*sharedByCores=*/1));
  h.levels.push_back(level("L2", ByteCount::mib(1), cycles(11.0, clockGHz),
                           /*perCoreGBps=*/45.0, /*sharedByCores=*/1));
  h.levels.push_back(level("SLC", ByteCount::mib(32), cycles(90.0, clockGHz),
                           /*perCoreGBps=*/24.0, coresPerSocket));
  h.memoryLatency = Duration::nanoseconds(130.0);
  h.coreClockGHz = clockGHz;
  return h;
}

}  // namespace nodebench::machines
