#pragma once
/// \file machine_json.hpp
/// \brief JSON export of a machine description — the machine-readable
/// companion to the human-oriented machine card, for downstream tooling
/// (dashboards, parameter diffing, external model fitting).

#include <string>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// Serializes identity, topology counts, software environment and every
/// calibrated primitive of the machine as a JSON object.
[[nodiscard]] std::string machineJson(const Machine& m);

}  // namespace nodebench::machines
