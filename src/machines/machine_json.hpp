#pragma once
/// \file machine_json.hpp
/// \brief JSON export of a machine description — the machine-readable
/// companion to the human-oriented machine card, for downstream tooling
/// (dashboards, parameter diffing, external model fitting) — plus the
/// strict parse path for the cache-hierarchy section, which is the first
/// part of the card external tooling is expected to edit and feed back.

#include <string>
#include <string_view>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// Version of the machine-JSON document layout. History:
///  1 — emit-only card (identity, topology counts, calibrated primitives).
///  2 — adds the "cacheHierarchy" section and this version marker.
inline constexpr int kMachineJsonSchemaVersion = 2;

/// Serializes identity, topology counts, software environment and every
/// calibrated primitive of the machine as a JSON object.
[[nodiscard]] std::string machineJson(const Machine& m);

/// Canonical JSON rendering of one cache hierarchy (the exact bytes
/// `machineJson` embeds under "cacheHierarchy"). An empty hierarchy
/// renders as an empty-levels object.
[[nodiscard]] std::string cacheHierarchyJson(const CacheHierarchy& h);

/// Strictly parses a "cacheHierarchy" sub-document: every field of every
/// level is required, unknown fields are rejected, and byte counts must
/// be non-negative integers. Throws Error with a diagnostic on any
/// violation. The inverse of cacheHierarchyJson.
[[nodiscard]] CacheHierarchy cacheHierarchyFromJson(std::string_view json);

/// Extracts the cache hierarchy from a full machine-JSON document:
/// checks "schemaVersion" (absent means version 1: no hierarchy), then
/// strictly parses the "cacheHierarchy" section if present. Returns an
/// empty hierarchy for version-1 documents or version-2 documents
/// without the section.
[[nodiscard]] CacheHierarchy machineCacheHierarchyFromJson(
    std::string_view machineJsonText);

}  // namespace nodebench::machines
