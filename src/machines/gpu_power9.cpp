/// \file gpu_power9.cpp
/// \brief IBM Power9 + NVIDIA V100 systems of Table 3: Summit (ORNL,
/// rank 5, 6 GPUs/node), Sierra (LLNL, rank 6, 4 GPUs/node) and Lassen
/// (LLNL, rank 36, 4 GPUs/node). Figure 2 node shape.
///
/// Calibration sources:
///  Table 5 (device BabelStream GB/s; MPI us):
///   system  device bw       H2H   D2D A          D2D B
///   Summit  786.43+-0.11    0.34  18.10+-0.22    19.30+-0.15
///   Sierra  861.40+-0.65    0.38  18.72+-0.12    19.76+-0.37
///   Lassen  861.03+-0.53    0.37  18.68+-0.20    19.72+-0.13
///  Table 6 (Comm|Scope; us / GB/s):
///   system  launch  wait  h2d lat  h2d bw  d2d A  d2d B
///   Summit  4.84    4.31  7.82     44.88   24.97  27.44
///   Sierra  4.13    5.59  7.27     63.40   23.91  27.70
///   Lassen  4.56    5.52  7.76     63.34   24.56  27.69
///
/// The ~18 us device MPI latency is SpectrumMPI staging device buffers
/// through the host: a large baseOneWay. The class B minus class A gap
/// (1.20 us on Summit, 1.04 us on Sierra/Lassen) is topological — the
/// cross-socket route costs two host NVLink hops (0.55 us each) plus the
/// X-Bus hop, minus the 0.30 us direct NVLink hop. Solving gives an X-Bus
/// latency of 0.40 us (Summit) and 0.24 us (Sierra/Lassen).
///
/// The H2D bandwidth contrast inside the V100 family is structural:
/// Summit shares its per-socket NVLink bricks among three GPUs (2 bricks
/// per link, ~45 GB/s measured) while Sierra/Lassen give each of their
/// two GPUs three bricks (~63 GB/s measured).

#include "machines/builders.hpp"

#include "machines/cache_hierarchy.hpp"
#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;

namespace {

Machine power9Base(SystemInfo info, SoftwareEnv env, int gpusPerSocket,
                   Duration xbusLatency, std::uint64_t seed) {
  Machine m;
  m.topology = power9Node("IBM Power9", gpusPerSocket, xbusLatency);
  m.info = std::move(info);
  m.env = std::move(env);
  m.seed = seed;
  m.device.emplace();
  m.device->peakFp64Gflops = 7800.0;  // V100 FP64
  // 2 x 22c x 3.07 GHz x 8 DP flops/cycle.
  m.hostPeakFp64Gflops = 1080.0;
  // Host memory is not reported for accelerator systems in the paper;
  // representative Power9 values keep host-side examples meaningful.
  applyHostMemoryCalibration(
      m, HostMemoryTargets{12.0, 245.0, 340.0, "340 (repr.)", 1.0});
  // Power9 as deployed: 22 cores/socket at a 3.07 GHz nominal clock.
  m.cacheHierarchy = power9CacheHierarchy(/*coresPerSocket=*/22, 3.07);
  return m;
}

}  // namespace

Machine makeSummit() {
  Machine m = power9Base(
      SystemInfo{"Summit", 5, "ORNL", "IBM Power9", "NVIDIA GV100"},
      SoftwareEnv{"xl/16.1.1-10", "cuda/11.0.3",
                  "spectrum-mpi/10.4.0.3-20210112"},
      /*gpusPerSocket=*/3, /*xbusLatency=*/0.40_us, /*seed=*/0x50330001u);
  // Host MPI: 0.34 us on-socket => 0.28 + 0.06. The paper's unusually
  // large sigma (0.07 on a 0.34 mean) is kept as a 20% cv.
  m.hostMpi.softwareOverhead = 0.28_us;
  m.hostMpi.sameNumaHop = 0.06_us;
  m.hostMpi.crossNumaHop = 0.06_us;
  m.hostMpi.crossSocketHop = 0.30_us;
  m.hostMpi.cv = 0.20;
  applyCommScopeCalibration(
      m, CommScopeTargets{4.84, 4.31, 7.82, 44.88,
                          {24.97, 27.44, std::nullopt, std::nullopt},
                          /*cvLaunch=*/0.002, /*cvWait=*/0.0023,
                          /*cvXferLat=*/0.009, /*cvXferBw=*/0.0002,
                          /*cvD2D=*/0.0064});
  applyDeviceStreamCalibration(m, 786.43, 900.0, "900 [1]", /*cvBw=*/0.00014);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/18.10, /*cv=*/0.012);
  return m;
}

Machine makeSierra() {
  Machine m = power9Base(
      SystemInfo{"Sierra", 6, "LLNL", "IBM Power9", "NVIDIA GV100"},
      SoftwareEnv{"gcc/8.3.1", "cuda/10.1.243", "spectrum-mpi/rolling-release"},
      /*gpusPerSocket=*/2, /*xbusLatency=*/0.24_us, /*seed=*/0x51e20001u);
  // Host MPI: 0.38 us on-socket => 0.32 + 0.06.
  m.hostMpi.softwareOverhead = 0.32_us;
  m.hostMpi.sameNumaHop = 0.06_us;
  m.hostMpi.crossNumaHop = 0.06_us;
  m.hostMpi.crossSocketHop = 0.30_us;
  m.hostMpi.cv = 0.026;
  applyCommScopeCalibration(
      m, CommScopeTargets{4.13, 5.59, 7.27, 63.40,
                          {23.91, 27.70, std::nullopt, std::nullopt},
                          /*cvLaunch=*/0.0024, /*cvWait=*/0.0036,
                          /*cvXferLat=*/0.032, /*cvXferBw=*/0.0002,
                          /*cvD2D=*/0.0067});
  applyDeviceStreamCalibration(m, 861.40, 900.0, "900 [1]", /*cvBw=*/0.00075);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/18.72, /*cv=*/0.0064);
  return m;
}

Machine makeLassen() {
  Machine m = power9Base(
      SystemInfo{"Lassen", 36, "LLNL", "IBM Power9", "NVIDIA V100"},
      SoftwareEnv{"gcc/7.3.1", "cuda/10.1.243", "spectrum-mpi/rolling-release"},
      /*gpusPerSocket=*/2, /*xbusLatency=*/0.24_us, /*seed=*/0x1a530001u);
  // Host MPI: 0.37 us on-socket => 0.31 + 0.06.
  m.hostMpi.softwareOverhead = 0.31_us;
  m.hostMpi.sameNumaHop = 0.06_us;
  m.hostMpi.crossNumaHop = 0.06_us;
  m.hostMpi.crossSocketHop = 0.30_us;
  m.hostMpi.cv = 0.008;
  applyCommScopeCalibration(
      m, CommScopeTargets{4.56, 5.52, 7.76, 63.34,
                          {24.56, 27.69, std::nullopt, std::nullopt},
                          /*cvLaunch=*/0.001, /*cvWait=*/0.0018,
                          /*cvXferLat=*/0.041, /*cvXferBw=*/0.0003,
                          /*cvD2D=*/0.0114});
  applyDeviceStreamCalibration(m, 861.03, 900.0, "900 [1]", /*cvBw=*/0.00062);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/18.68, /*cv=*/0.0107);
  return m;
}

}  // namespace nodebench::machines
