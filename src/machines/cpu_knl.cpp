/// \file cpu_knl.cpp
/// \brief Self-hosted Intel Xeon Phi (Knights Landing) systems of Table 2:
/// Trinity (LANL, KNL 7250) and Theta (ANL, KNL 7230).
///
/// Calibration sources (Table 4):
///   system   single        all            peak      on-socket   on-node
///   Trinity  12.36+-0.16   347.28+-5.76   >450 [34] 0.67+-0.01  0.99+-0.01
///   Theta    18.76+-0.58   119.72+-0.54   >450 [34] 5.95+-0.01  6.25+-0.05
///
/// Both KNLs run in "quad cache" mode: MCDRAM as a memory-side cache whose
/// management overhead we model as a 1.15x slowdown factor (the ablation
/// bench `bench_ablation_knl_modes` removes it to emulate flat mode).
/// Theta's anomalously low all-thread bandwidth — which the paper itself
/// calls "suspiciously low" and cannot fully explain — is calibrated
/// as-measured rather than explained away.
///
/// MPI model inversion: the paper measures "on-socket" between cores 0 and
/// 1 (which share a mesh tile: distance 0) and "on-node" between cores 0
/// and N-1 (the far corner of the mesh). One-way latency =
/// softwareOverhead + meshBase + meshPerHop * tileDistance, so:
///   Trinity: tile distance 9  => perHop = (0.99-0.67)/9  = 35.6 ns
///   Theta:   tile distance 10 => perHop = (6.25-5.95)/10 = 30.0 ns
/// Theta's ~6 us software overhead reflects its much older cray-mpich
/// stack; the paper reports the ALCF alternative benchmark still saw ~5 us.

#include "machines/builders.hpp"

#include "machines/cache_hierarchy.hpp"
#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;

Machine makeTrinity() {
  Machine m;
  m.info = SystemInfo{"Trinity", 29, "LANL", "Intel Xeon Phi 7250", ""};
  m.env = SoftwareEnv{"intel/2022.0.2", "", "cray-mpich/7.7.20"};
  // 68 cores = 34 tiles; a 5-column mesh puts the last tile at Manhattan
  // distance 9 from tile 0.
  m.topology = knlNode(m.info.cpuModel, /*cores=*/68, /*meshCols=*/5);
  m.seed = 0x7e100001u;
  applyHostMemoryCalibration(
      m, HostMemoryTargets{12.36, 347.28, 450.0, "> 450 [34]",
                           /*cacheModeOverhead=*/1.15,
                           /*cvSingle=*/0.013, /*cvAll=*/0.017});
  m.hostMemory.smtFactor = 1.0;  // KNL tolerates 4-way SMT without loss
  m.cacheHierarchy = knlCacheHierarchy(/*cores=*/68, /*clockGHz=*/1.4);
  m.hostMpi.softwareOverhead = 0.62_us;
  m.hostMpi.meshBase = 0.05_us;
  m.hostMpi.meshPerHop = Duration::nanoseconds(320.0 / 9.0);
  m.hostMpi.cv = 0.013;
  // 68c x 1.4 GHz x 32 DP flops/cycle (dual AVX-512 VPUs).
  m.hostPeakFp64Gflops = 3046.0;
  return m;
}

Machine makeTheta() {
  Machine m;
  m.info = SystemInfo{"Theta", 94, "ANL", "Intel Xeon Phi 7230", ""};
  m.env = SoftwareEnv{"intel/19.1.0.166", "", "cray-mpich/7.7.14"};
  // 64 cores = 32 tiles; a 4-column mesh puts the last tile at Manhattan
  // distance 10 from tile 0.
  m.topology = knlNode(m.info.cpuModel, /*cores=*/64, /*meshCols=*/4);
  m.seed = 0x7e700001u;
  applyHostMemoryCalibration(
      m, HostMemoryTargets{18.76, 119.72, 450.0, "> 450 [34]",
                           /*cacheModeOverhead=*/1.15,
                           /*cvSingle=*/0.031, /*cvAll=*/0.0045});
  m.hostMemory.smtFactor = 1.0;
  m.cacheHierarchy = knlCacheHierarchy(/*cores=*/64, /*clockGHz=*/1.3);
  m.hostMpi.softwareOverhead = 5.90_us;
  m.hostMpi.meshBase = 0.05_us;
  m.hostMpi.meshPerHop = Duration::nanoseconds(30.0);
  m.hostMpi.cv = 0.005;
  // 64c x 1.3 GHz x 32 DP flops/cycle.
  m.hostPeakFp64Gflops = 2662.0;
  return m;
}

}  // namespace nodebench::machines
