#pragma once
/// \file calibration.hpp
/// \brief Solvers that derive primitive machine parameters from the
/// paper's reported measurements by inverting the benchmark models.
///
/// Each machine builder states the paper's Table 4/5/6 targets and calls
/// these helpers; the helpers compute the *primitive* parameters (link
/// bandwidths, DMA setup costs, HBM rates, ...) such that re-running the
/// full simulated benchmark pipeline reproduces the targets. This keeps
/// every magic number in the builders traceable to a specific table cell.

#include <array>
#include <optional>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// Table 4 targets for one CPU system.
struct HostMemoryTargets {
  double singleGBps;  ///< "Single" column (best bound single thread).
  double allGBps;     ///< "All" column (best bound full team).
  double peakGBps;    ///< Theoretical peak (0 when only a bound is known).
  std::string peakNote;
  double cacheModeOverhead = 1.0;  ///< KNL quad-cache management factor.
  double cvSingle = 0.01;
  double cvAll = 0.02;
};

/// Sets `m.hostMemory` so that the BabelStream host model's best
/// single-thread / all-thread results equal the targets.
/// Model inversion: the best op is Dot (no store, so counted == actual
/// traffic) and the bound team covers every NUMA domain, hence
///   perCoreBw = single * cacheOverhead
///   perNumaSaturation = all * cacheOverhead / numaDomains.
void applyHostMemoryCalibration(Machine& m, const HostMemoryTargets& t);

/// Table 6 targets for one GPU system (microseconds / GB/s).
struct CommScopeTargets {
  double launchUs;
  double waitUs;
  double h2dLatencyUs;   ///< (H->D + D->H)/2 latency at 128 B.
  double h2dBandwidthGBps;  ///< (H->D + D->H)/2 bandwidth at 1 GiB.
  /// D2D latency per link class A..D at 128 B; nullopt for classes the
  /// machine does not have.
  std::array<std::optional<double>, 4> d2dLatencyUs{};
  double cvLaunch = 0.004;
  double cvWait = 0.004;
  double cvXferLat = 0.006;
  double cvXferBw = 0.0005;
  double cvD2D = 0.008;
};

/// Sets launch/wait, solves the memcpy call overhead + DMA setup costs and
/// the host<->GPU link bandwidth so that the simulated Comm|Scope
/// benchmarks reproduce the targets, and stores per-class D2D residuals.
/// Preconditions: m.device is set, topology has >= 1 GPU, and the class-A
/// (or the machine's first present class) D2D target is provided.
void applyCommScopeCalibration(Machine& m, const CommScopeTargets& t);

/// Table 5 "Memory Bandwidth / Device" target: solves the achievable HBM
/// bandwidth so that the simulated device BabelStream (best op = Triad at
/// a 1 GiB vector, including launch + sync overhead per iteration) reports
/// `reportedGBps`. Requires kernelLaunch/syncWait to be set first.
void applyDeviceStreamCalibration(Machine& m, double reportedGBps,
                                  double peakGBps, std::string peakNote,
                                  double cvBw);

/// Table 5 device-to-device MPI target for the machine's class-A pair:
/// solves DeviceMpiParams::baseOneWay = targetUs - routeLatency(classA).
void applyDeviceMpiCalibration(Machine& m, double classATargetUs, double cv);

}  // namespace nodebench::machines
