/// \file cpu_xeon.cpp
/// \brief Dual-socket Intel Xeon systems of Table 2: Sawtooth (INL),
/// Eagle (NREL) and Manzano (SNL).
///
/// Calibration sources (all from Table 4 of the paper):
///   system    single        all            peak     on-socket  on-node
///   Sawtooth  13.06+-0.35   238.70+-8.39   281.50   0.48+-0.01 0.48+-0.01
///   Eagle     13.45+-0.03   208.24+-0.92   255.97   0.17+-0.00 0.38+-0.01
///   Manzano   15.27+-0.05   234.86+-0.12   281.50   0.32+-0.00 0.56+-0.01
///
/// MPI model inversion: measured one-way latency = softwareOverhead + hop.
/// We attribute a small fixed wire time to the same-NUMA hop and solve the
/// software overhead from the on-socket number; the cross-socket hop then
/// absorbs the on-node minus on-socket difference. Sawtooth's equal
/// on-socket/on-node numbers (a property of its Intel MPI configuration)
/// therefore yield an equal-cost cross-socket hop.

#include "machines/builders.hpp"

#include "machines/cache_hierarchy.hpp"
#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;

namespace {

Machine xeonBase(SystemInfo info, SoftwareEnv env, int coresPerSocket,
                 std::uint64_t seed) {
  Machine m;
  m.topology = xeonDualSocketNode(info.cpuModel, coresPerSocket);
  m.info = std::move(info);
  m.env = std::move(env);
  m.seed = seed;
  // Two-way hyperthreading on stream kernels costs a little throughput,
  // so the best Table 1 row on Xeons is the one-thread-per-core spread
  // configuration, as observed in practice.
  m.hostMemory.smtFactor = 0.97;
  return m;
}

}  // namespace

Machine makeSawtooth() {
  Machine m = xeonBase(
      SystemInfo{"Sawtooth", 109, "INL", "Intel Xeon Platinum 8268", ""},
      SoftwareEnv{"intel/19.0.5", "", "intel-mpi/2019.0.117"},
      /*coresPerSocket=*/24, /*seed=*/0x5a700001u);
  applyHostMemoryCalibration(
      m, HostMemoryTargets{13.06, 238.70, 281.50, "281.50 [13]", 1.0,
                           /*cvSingle=*/0.027, /*cvAll=*/0.035});
  // Xeon Platinum 8268: 24c Cascade Lake, 35.75 MiB L3/socket, 2.9 GHz.
  m.cacheHierarchy = skylakeServerCacheHierarchy(24, 35.75, 2.9);
  m.hostMpi.softwareOverhead = 0.43_us;   // 0.48 - sameNumaHop
  m.hostMpi.sameNumaHop = 0.05_us;
  m.hostMpi.crossNumaHop = 0.05_us;
  m.hostMpi.crossSocketHop = 0.05_us;     // on-node == on-socket on Sawtooth
  m.hostMpi.cv = 0.021;
  // 2 x 24c x 2.9 GHz x 32 DP flops/cycle (AVX-512, 2 FMA units).
  m.hostPeakFp64Gflops = 4454.0;
  return m;
}

Machine makeEagle() {
  Machine m = xeonBase(
      SystemInfo{"Eagle", 127, "NREL", "Intel Xeon Gold 6154", ""},
      SoftwareEnv{"gcc/8.4.0", "", "openmpi/4.1.0"},
      /*coresPerSocket=*/18, /*seed=*/0xea600001u);
  applyHostMemoryCalibration(
      m, HostMemoryTargets{13.45, 208.24, 255.97, "255.97 [12]", 1.0,
                           /*cvSingle=*/0.0022, /*cvAll=*/0.0044});
  // Xeon Gold 6154: 18c Skylake-SP, 24.75 MiB L3/socket, 3.0 GHz.
  m.cacheHierarchy = skylakeServerCacheHierarchy(18, 24.75, 3.0);
  m.hostMpi.softwareOverhead = 0.15_us;   // 0.17 - sameNumaHop
  m.hostMpi.sameNumaHop = 0.02_us;
  m.hostMpi.crossNumaHop = 0.02_us;
  m.hostMpi.crossSocketHop = 0.23_us;     // 0.38 - softwareOverhead
  m.hostMpi.cv = 0.015;
  // 2 x 18c x 3.0 GHz x 32 DP flops/cycle.
  m.hostPeakFp64Gflops = 3456.0;
  return m;
}

Machine makeManzano() {
  Machine m = xeonBase(
      SystemInfo{"Manzano", 141, "SNL", "Intel Xeon Platinum 8268", ""},
      SoftwareEnv{"intel/16.0", "", "openmpi/1.10"},
      /*coresPerSocket=*/24, /*seed=*/0x3a200001u);
  applyHostMemoryCalibration(
      m, HostMemoryTargets{15.27, 234.86, 281.50, "281.50 [13]", 1.0,
                           /*cvSingle=*/0.0033, /*cvAll=*/0.0006});
  m.cacheHierarchy = skylakeServerCacheHierarchy(24, 35.75, 2.9);
  m.hostMpi.softwareOverhead = 0.29_us;   // 0.32 - sameNumaHop
  m.hostMpi.sameNumaHop = 0.03_us;
  m.hostMpi.crossNumaHop = 0.03_us;
  m.hostMpi.crossSocketHop = 0.27_us;     // 0.56 - softwareOverhead
  m.hostMpi.cv = 0.012;
  m.hostPeakFp64Gflops = 4454.0;  // same CPUs as Sawtooth
  return m;
}

}  // namespace nodebench::machines
