#pragma once
/// \file cache_hierarchy.hpp
/// \brief Factory helpers that attach a CacheHierarchy to each machine
/// family. One helper per silicon family; the builders pass the handful
/// of per-SKU numbers (core count, L3 slice size, clock) and the helper
/// fills in the family-invariant structure.
///
/// All quantities are public-spec or published-microbenchmark numbers
/// for the same silicon (Intel/AMD/IBM/Fujitsu datasheets; the
/// Broadwell/Cascade Lake cache study of Alappat et al. for the Xeon
/// latency ladder shape). None of them is calibrated against the paper:
/// the paper reports only DRAM-sized working sets, and the conformance
/// suite proves those stay byte-identical with the hierarchy attached
/// (see docs/MODELING.md, "Cache ladder").

#include "machines/machine.hpp"

namespace nodebench::machines {

/// Skylake-SP / Cascade Lake server core (Sawtooth, Eagle, Manzano):
/// 32 KiB private L1d, 1 MiB private L2, non-inclusive shared L3 of
/// 1.375 MiB per core slice.
[[nodiscard]] CacheHierarchy skylakeServerCacheHierarchy(int coresPerSocket,
                                                         double l3MibPerSocket,
                                                         double clockGHz);

/// Knights Landing (Trinity, Theta): 32 KiB private L1d, 1 MiB L2 per
/// two-core tile, and the 16 GiB MCDRAM in quad-cache mode modeled as a
/// memory-side cache level shared by the whole chip. DDR4 sits behind
/// the MCDRAM tag check, which is why the DRAM latency exceeds flat-mode
/// DDR numbers.
[[nodiscard]] CacheHierarchy knlCacheHierarchy(int cores, double clockGHz);

/// IBM Power9 (Summit, Sierra, Lassen): 32 KiB L1d, 512 KiB L2 per
/// two-core pair, 10 MiB eDRAM L3 region per pair (modeled chip-wide as
/// one shared pool, matching its NUCA all-to-chip visibility).
[[nodiscard]] CacheHierarchy power9CacheHierarchy(int coresPerSocket,
                                                  double clockGHz);

/// AMD Zen 2/3 EPYC (Perlmutter, Polaris, Frontier-class hosts, Milan
/// reference node): 32 KiB L1d, 512 KiB private L2, and an L3 complex of
/// `l3MibPerCcx` shared by `coresPerCcx` cores.
[[nodiscard]] CacheHierarchy epycCacheHierarchy(int coresPerCcx,
                                                double l3MibPerCcx,
                                                double clockGHz);

/// Fujitsu A64FX (reference node): 64 KiB L1d, 8 MiB L2 per 12-core
/// CMG, no L3, HBM2 main memory.
[[nodiscard]] CacheHierarchy a64fxCacheHierarchy();

/// Ampere Altra Q80-30 (reference node): Neoverse-N1 64 KiB L1d, 1 MiB
/// private L2, 32 MiB system-level cache per socket.
[[nodiscard]] CacheHierarchy altraCacheHierarchy(int coresPerSocket);

}  // namespace nodebench::machines
