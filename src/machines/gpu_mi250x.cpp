/// \file gpu_mi250x.cpp
/// \brief AMD MI250X systems of Table 3: Frontier (ORNL, rank 1),
/// RZVernal (LLNL, rank 116) and Tioga (LLNL, rank 132). Figure 1 node
/// shape.
///
/// Calibration sources:
///  Table 5 (device BabelStream GB/s; MPI us):
///   system    device bw        H2H   D2D A  D2D B  D2D C  D2D D
///   Frontier  1336.35+-1.11    0.45  0.44   0.44   0.44   0.44
///   RZVernal  1291.38+-0.77    0.49  0.50   0.50   0.50   0.49
///   Tioga     1336.81+-0.97    0.49  0.50   0.50   0.50   0.49
///  Table 6 (Comm|Scope; us / GB/s):
///   system    launch  wait  h2d lat  h2d bw  d2d A  d2d B  d2d C  d2d D
///   Frontier  1.51    0.14  12.91    24.87   12.02  12.56  12.68  12.02
///   RZVernal  2.16    0.12  12.20    24.88    9.85  12.58  12.45  10.21
///   Tioga     2.15    0.12  12.19    24.88    9.85  12.59  12.46  10.12
///
/// Notes reproduced from the paper: BabelStream only exercises one of the
/// two GCDs, which is why the reported bandwidth is under half of the
/// 3276.8 GB/s the package advertises (the per-GCD peak is 1600 GB/s).
/// Device MPI latency is sub-microsecond because cray-mpich uses GPU RMA
/// over the same Infinity Fabric as host traffic; all GPU pairs measure
/// as roughly equidistant, including class D pairs that route through the
/// host — hence a near-zero baseOneWay and a flat class profile.

#include "machines/builders.hpp"

#include "machines/cache_hierarchy.hpp"
#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;

namespace {

Machine mi250xBase(SystemInfo info, SoftwareEnv env, std::uint64_t seed) {
  Machine m;
  m.topology = mi250xNode("AMD EPYC 7A53");
  m.info = std::move(info);
  m.env = std::move(env);
  m.seed = seed;
  m.device.emplace();
  // One GCD: 47.9 DP TFLOP/s per MI250X package / 2 (vector rate).
  m.device->peakFp64Gflops = 23950.0;
  // Representative Trento host rate: 64c x 2.0 GHz x 16 DP flops/cycle.
  m.hostPeakFp64Gflops = 2048.0;
  // Host memory is not reported for accelerator systems in the paper
  // (its Section 4 explains why); these are representative values for a
  // Trento-class EPYC so that host-side examples remain meaningful.
  applyHostMemoryCalibration(
      m, HostMemoryTargets{14.0, 160.0, 204.8, "204.8 (repr.)", 1.0});
  // Trento (Zen 3, "optimized 3rd-gen EPYC"): 32 MiB L3 per 8-core CCX.
  m.cacheHierarchy = epycCacheHierarchy(8, 32.0, 2.0);
  return m;
}

}  // namespace

Machine makeFrontier() {
  Machine m = mi250xBase(
      SystemInfo{"Frontier", 1, "ORNL", "AMD EPYC", "AMD MI250X"},
      SoftwareEnv{"amd-mixed/5.3.0", "amd-mixed/5.3.0", "cray-mpich/8.1.23"},
      /*seed=*/0xf2040001u);
  // Host MPI: 0.45 us on-socket => softwareOverhead 0.37 + sameNumaHop 0.08.
  m.hostMpi.softwareOverhead = 0.37_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.12_us;
  m.hostMpi.crossSocketHop = 0.20_us;  // single-socket node; unused
  m.hostMpi.cv = 0.022;
  applyCommScopeCalibration(
      m, CommScopeTargets{1.51, 0.14, 12.91, 24.87,
                          {12.02, 12.56, 12.68, 12.02},
                          /*cvLaunch=*/0.003, /*cvWait=*/0.004,
                          /*cvXferLat=*/0.0016, /*cvXferBw=*/0.0004,
                          /*cvD2D=*/0.005});
  applyDeviceStreamCalibration(m, 1336.35, 1600.0, "1600 [4]",
                               /*cvBw=*/0.00083);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/0.44, /*cv=*/0.012);
  return m;
}

Machine makeRZVernal() {
  Machine m = mi250xBase(
      SystemInfo{"RZVernal", 116, "LLNL", "AMD EPYC", "AMD MI250X"},
      SoftwareEnv{"amd/5.6.0", "amd/5.6.0", "cray-mpich/8.1.26"},
      /*seed=*/0x72a40001u);
  // Host MPI: 0.49 us on-socket => 0.41 + 0.08.
  m.hostMpi.softwareOverhead = 0.41_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.12_us;
  m.hostMpi.crossSocketHop = 0.20_us;
  m.hostMpi.cv = 0.008;
  applyCommScopeCalibration(
      m, CommScopeTargets{2.16, 0.12, 12.20, 24.88,
                          {9.85, 12.58, 12.45, 10.21},
                          /*cvLaunch=*/0.005, /*cvWait=*/0.004,
                          /*cvXferLat=*/0.006, /*cvXferBw=*/0.0004,
                          /*cvD2D=*/0.0015});
  applyDeviceStreamCalibration(m, 1291.38, 1600.0, "1600 [4]",
                               /*cvBw=*/0.0006);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/0.50, /*cv=*/0.014);
  return m;
}

Machine makeTioga() {
  Machine m = mi250xBase(
      SystemInfo{"Tioga", 132, "LLNL", "AMD EPYC", "AMD MI250X"},
      SoftwareEnv{"amd/5.6.0", "amd/5.6.0", "cray-mpich/8.1.26"},
      /*seed=*/0x710aa001u);
  m.hostMpi.softwareOverhead = 0.41_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.12_us;
  m.hostMpi.crossSocketHop = 0.20_us;
  m.hostMpi.cv = 0.006;
  applyCommScopeCalibration(
      m, CommScopeTargets{2.15, 0.12, 12.19, 24.88,
                          {9.85, 12.59, 12.46, 10.12},
                          /*cvLaunch=*/0.005, /*cvWait=*/0.004,
                          /*cvXferLat=*/0.0033, /*cvXferBw=*/0.0004,
                          /*cvD2D=*/0.0016});
  applyDeviceStreamCalibration(m, 1336.81, 1600.0, "1600 [4]",
                               /*cvBw=*/0.0007);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/0.50, /*cv=*/0.010);
  return m;
}

}  // namespace nodebench::machines
