#pragma once
/// \file extra_machines.hpp
/// \brief Non-DOE reference machines — the paper's third future-work item
/// ("we did not report results from any AMD or Arm CPU systems, because
/// the US DOE does not have any within the Top 150. Comparing results
/// between Intel, AMD and Arm CPU systems would be of interest").
///
/// These models are *representative*, built from public microbenchmark
/// literature rather than the paper's tables, and are kept out of the
/// main registry so every Table 1-9 artifact remains exactly the paper's
/// fourteen-system scope.

#include <vector>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// Fugaku-class node: Fujitsu A64FX (Arm SVE), 48 compute cores in four
/// CMGs with HBM2 — rank 2 of the June 2023 list.
[[nodiscard]] Machine makeA64fxNode();

/// Dual-socket AMD EPYC 7763 (Milan) node, the mainstream AMD CPU
/// design point of the era.
[[nodiscard]] Machine makeEpycMilanNode();

/// Dual-socket Ampere Altra Q80-30 node, the commodity Arm design point.
[[nodiscard]] Machine makeAmpereAltraNode();

/// All extra machines (Arm + AMD comparators), not part of allMachines().
[[nodiscard]] const std::vector<Machine>& extraMachines();

}  // namespace nodebench::machines
