#pragma once
/// \file machine_card.hpp
/// \brief Human-readable "machine card": every identity field, topology
/// figure and calibrated primitive of one machine in a single dump —
/// the documentation companion to the calibration comments in the
/// builders. Exposed on the CLI as `nodebench card <machine>`.

#include <string>

#include "machines/machine.hpp"

namespace nodebench::machines {

[[nodiscard]] std::string machineCard(const Machine& m);

}  // namespace nodebench::machines
