#include "machines/machine_card.hpp"

#include <cstdarg>
#include <cstdio>

namespace nodebench::machines {

namespace {

void line(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string machineCard(const Machine& m) {
  std::string out;
  line(out, "=== %s ===", m.info.name.c_str());
  line(out, "Top500 rank %d, %s", m.info.top500Rank,
       m.info.location.c_str());
  line(out, "CPU: %s%s%s", m.info.cpuModel.c_str(),
       m.accelerated() ? ", accelerator: " : "",
       m.info.acceleratorModel.c_str());
  line(out, "Software: compiler %s, MPI %s%s%s", m.env.compiler.c_str(),
       m.env.mpi.c_str(),
       m.env.deviceLibrary.empty() ? "" : ", device lib ",
       m.env.deviceLibrary.c_str());
  line(out, "Topology: %d socket(s), %d NUMA domain(s), %d cores (%d hw "
            "threads), %d GPU(s)",
       m.topology.socketCount(), m.topology.numaCount(), m.coreCount(),
       m.hardwareThreadCount(), m.topology.gpuCount());

  const HostMemoryParams& hm = m.hostMemory;
  line(out, "Host memory model:");
  line(out, "  per-core bw        %8.2f GB/s", hm.perCoreBw.inGBps());
  line(out, "  per-NUMA saturation%8.2f GB/s",
       hm.perNumaSaturation.inGBps());
  line(out, "  peak               %s", hm.peakNote.c_str());
  line(out, "  cache-mode factor  %8.2f   smt factor %.2f  unbound %.2f",
       hm.cacheModeOverhead, hm.smtFactor, hm.unboundFactor);
  if (m.hostPeakFp64Gflops > 0.0) {
    line(out, "  peak FP64          %8.0f GFLOP/s (balance %.1f flops/byte)",
         m.hostPeakFp64Gflops,
         m.hostPeakFp64Gflops /
             (hm.perNumaSaturation.inGBps() *
              static_cast<double>(m.topology.numaCount()) /
              hm.cacheModeOverhead));
  }

  const HostMpiParams& mp = m.hostMpi;
  line(out, "Host MPI model:");
  line(out, "  software overhead  %8.3f us", mp.softwareOverhead.us());
  if (m.topology.core(topo::CoreId{0}).mesh.has_value()) {
    line(out, "  mesh base/per-hop  %8.3f / %.4f us", mp.meshBase.us(),
         mp.meshPerHop.us());
  } else {
    line(out, "  hops same-NUMA/cross-NUMA/cross-socket  %.3f / %.3f / "
              "%.3f us",
         mp.sameNumaHop.us(), mp.crossNumaHop.us(), mp.crossSocketHop.us());
  }
  line(out, "  eager<=%llu B at %.1f GB/s, rendezvous at %.1f GB/s",
       static_cast<unsigned long long>(mp.eagerThreshold.count()),
       mp.eagerBandwidth.inGBps(), mp.rendezvousBandwidth.inGBps());

  if (m.device) {
    const DeviceParams& d = *m.device;
    line(out, "Device model (per visible device):");
    line(out, "  HBM achievable     %8.2f GB/s (peak %s)", d.hbmBw.inGBps(),
         d.hbmPeakNote.c_str());
    line(out, "  kernel launch      %8.3f us, sync wait %.3f us",
         d.kernelLaunch.us(), d.syncWait.us());
    line(out, "  memcpy call        %8.3f us, H2D DMA setup %.3f us, D2D "
              "DMA setup %.3f us",
         d.memcpyCallOverhead.us(), d.h2dDmaSetup.us(), d.d2dDmaSetup.us());
    line(out, "  D2D class residuals A/B/C/D  %.3f / %.3f / %.3f / %.3f us",
         d.d2dClassResidual[0].us(), d.d2dClassResidual[1].us(),
         d.d2dClassResidual[2].us(), d.d2dClassResidual[3].us());
    if (d.peakFp64Gflops > 0.0) {
      line(out, "  peak FP64          %8.0f GFLOP/s (balance %.1f "
                "flops/byte)",
           d.peakFp64Gflops, d.peakFp64Gflops / d.hbmBw.inGBps());
    }
    line(out, "  device MPI base    %8.3f us one-way",
         m.deviceMpi->baseOneWay.us());
  }
  return out;
}

}  // namespace nodebench::machines
