#pragma once
/// \file validate.hpp
/// \brief Consistency validation of a Machine description — primarily for
/// user-built custom machines (see examples/custom_machine.cpp), where a
/// forgotten link or flavour produces confusing downstream failures.

#include <string>
#include <vector>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// One validation finding. `field` names the offending Machine member
/// (e.g. "hostMpi.cv") so a failed ensureValid() pinpoints what to fix
/// rather than making the user re-derive it from prose.
struct ValidationIssue {
  enum class Severity { Error, Warning };
  Severity severity = Severity::Error;
  std::string field;
  std::string message;
};

/// Checks structural and parameter consistency:
///  errors — empty name, no cores, accelerated flags disagreeing with the
///  topology/params, GPUs without host links, missing interconnect
///  flavour, non-positive performance primitives, cv out of range;
///  warnings — missing peak values, unconnected multi-socket nodes,
///  zero-FLOPS machines (balance analysis unavailable).
[[nodiscard]] std::vector<ValidationIssue> validate(const Machine& m);

/// True when validate() reports no errors (warnings allowed).
[[nodiscard]] bool isValid(const Machine& m);

/// Throws PreconditionError listing every error if the machine is
/// invalid. Intended at API boundaries that accept user machines.
void ensureValid(const Machine& m);

}  // namespace nodebench::machines
