#pragma once
/// \file builders.hpp
/// \brief Factory functions, one per studied system. Each builder
/// documents how its calibration constants were derived from the paper's
/// tables. Grouped by node architecture:
///  - cpu_xeon.cpp:   Sawtooth, Eagle, Manzano (dual-socket Intel Xeon)
///  - cpu_knl.cpp:    Trinity, Theta (Intel Xeon Phi / Knights Landing)
///  - gpu_power9.cpp: Summit, Sierra, Lassen (IBM Power9 + NVIDIA V100)
///  - gpu_a100.cpp:   Perlmutter, Polaris (AMD EPYC + NVIDIA A100)
///  - gpu_mi250x.cpp: Frontier, RZVernal, Tioga (AMD EPYC + AMD MI250X)

#include "machines/machine.hpp"

namespace nodebench::machines {

// Table 2 systems (non-accelerator).
[[nodiscard]] Machine makeTrinity();
[[nodiscard]] Machine makeTheta();
[[nodiscard]] Machine makeSawtooth();
[[nodiscard]] Machine makeEagle();
[[nodiscard]] Machine makeManzano();

// Table 3 systems (accelerator).
[[nodiscard]] Machine makeFrontier();
[[nodiscard]] Machine makeSummit();
[[nodiscard]] Machine makeSierra();
[[nodiscard]] Machine makePerlmutter();
[[nodiscard]] Machine makePolaris();
[[nodiscard]] Machine makeLassen();
[[nodiscard]] Machine makeRZVernal();
[[nodiscard]] Machine makeTioga();

}  // namespace nodebench::machines
