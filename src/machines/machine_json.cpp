#include "machines/machine_json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <initializer_list>

#include "core/json_value.hpp"

namespace nodebench::machines {

namespace {

std::string esc(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
    }
    out += ch;
  }
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string machineJson(const Machine& m) {
  std::string j = "{\n";
  j += "  \"schemaVersion\": " + std::to_string(kMachineJsonSchemaVersion) +
       ",\n";
  j += "  \"name\": " + esc(m.info.name) + ",\n";
  j += "  \"top500Rank\": " + std::to_string(m.info.top500Rank) + ",\n";
  j += "  \"location\": " + esc(m.info.location) + ",\n";
  j += "  \"cpu\": " + esc(m.info.cpuModel) + ",\n";
  j += "  \"accelerator\": " + esc(m.info.acceleratorModel) + ",\n";
  j += "  \"software\": {\"compiler\": " + esc(m.env.compiler) +
       ", \"deviceLibrary\": " + esc(m.env.deviceLibrary) +
       ", \"mpi\": " + esc(m.env.mpi) + "},\n";
  j += "  \"topology\": {\"sockets\": " +
       std::to_string(m.topology.socketCount()) +
       ", \"numaDomains\": " + std::to_string(m.topology.numaCount()) +
       ", \"cores\": " + std::to_string(m.coreCount()) +
       ", \"hardwareThreads\": " + std::to_string(m.hardwareThreadCount()) +
       ", \"gpus\": " + std::to_string(m.topology.gpuCount()) + "},\n";
  j += "  \"hostMemory\": {\"perCoreGBps\": " +
       num(m.hostMemory.perCoreBw.inGBps()) +
       ", \"perNumaSaturationGBps\": " +
       num(m.hostMemory.perNumaSaturation.inGBps()) +
       ", \"cacheModeOverhead\": " + num(m.hostMemory.cacheModeOverhead) +
       ", \"smtFactor\": " + num(m.hostMemory.smtFactor) +
       ", \"peakNote\": " + esc(m.hostMemory.peakNote) + "},\n";
  if (!m.cacheHierarchy.empty()) {
    j += "  \"cacheHierarchy\": " + cacheHierarchyJson(m.cacheHierarchy) +
         ",\n";
  }
  j += "  \"hostMpi\": {\"softwareOverheadUs\": " +
       num(m.hostMpi.softwareOverhead.us()) +
       ", \"sameNumaHopUs\": " + num(m.hostMpi.sameNumaHop.us()) +
       ", \"crossNumaHopUs\": " + num(m.hostMpi.crossNumaHop.us()) +
       ", \"crossSocketHopUs\": " + num(m.hostMpi.crossSocketHop.us()) +
       ", \"eagerThresholdBytes\": " +
       std::to_string(m.hostMpi.eagerThreshold.count()) +
       ", \"cv\": " + num(m.hostMpi.cv) + "},\n";
  j += "  \"hostPeakFp64Gflops\": " + num(m.hostPeakFp64Gflops);
  if (m.device) {
    const DeviceParams& d = *m.device;
    j += ",\n  \"device\": {\"hbmGBps\": " + num(d.hbmBw.inGBps()) +
         ", \"hbmPeakNote\": " + esc(d.hbmPeakNote) +
         ", \"kernelLaunchUs\": " + num(d.kernelLaunch.us()) +
         ", \"syncWaitUs\": " + num(d.syncWait.us()) +
         ", \"memcpyCallOverheadUs\": " + num(d.memcpyCallOverhead.us()) +
         ", \"h2dDmaSetupUs\": " + num(d.h2dDmaSetup.us()) +
         ", \"d2dDmaSetupUs\": " + num(d.d2dDmaSetup.us()) +
         ", \"peakFp64Gflops\": " + num(d.peakFp64Gflops) +
         ", \"d2dClassResidualUs\": [" + num(d.d2dClassResidual[0].us()) +
         ", " + num(d.d2dClassResidual[1].us()) + ", " +
         num(d.d2dClassResidual[2].us()) + ", " +
         num(d.d2dClassResidual[3].us()) + "]}";
    j += ",\n  \"deviceMpi\": {\"baseOneWayUs\": " +
         num(m.deviceMpi->baseOneWay.us()) +
         ", \"cv\": " + num(m.deviceMpi->cv) + "}";
  }
  j += "\n}\n";
  return j;
}

std::string cacheHierarchyJson(const CacheHierarchy& h) {
  std::string j = "{\"memoryLatencyNs\": " + num(h.memoryLatency.ns()) +
                  ", \"coreClockGHz\": " + num(h.coreClockGHz) +
                  ", \"levels\": [";
  for (std::size_t i = 0; i < h.levels.size(); ++i) {
    const CacheLevel& l = h.levels[i];
    j += (i == 0 ? "\n" : ",\n");
    j += "    {\"name\": " + esc(l.name) +
         ", \"capacityBytes\": " + std::to_string(l.capacity.count()) +
         ", \"lineSizeBytes\": " + std::to_string(l.lineSize.count()) +
         ", \"loadToUseNs\": " + num(l.loadToUseLatency.ns()) +
         ", \"perCoreGBps\": " + num(l.perCoreBandwidth.inGBps()) +
         ", \"sharedByCores\": " + std::to_string(l.sharedByCores) + "}";
  }
  j += "]}";
  return j;
}

namespace {

/// Strict-decoding helpers. Every rejection names the offending field so
/// a hand-edited card fails with an actionable diagnostic (and so the
/// fuzzer exercises distinct messages, not one catch-all).

[[noreturn]] void reject(const std::string& what) {
  throw Error("cacheHierarchy: " + what);
}

void requireKnownFields(const JsonValue& obj,
                        std::initializer_list<std::string_view> known,
                        const std::string& where) {
  for (const auto& [key, value] : obj.asObject()) {
    (void)value;
    bool ok = false;
    for (std::string_view k : known) {
      ok = ok || key == k;
    }
    if (!ok) {
      reject("unknown field '" + key + "' in " + where);
    }
  }
}

const JsonValue& requireField(const JsonValue& obj, std::string_view key,
                              const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    reject("missing field '" + std::string(key) + "' in " + where);
  }
  return *v;
}

double requireFiniteNumber(const JsonValue& v, const std::string& where) {
  const double d = v.asNumber();
  if (!std::isfinite(d)) {
    reject(where + " must be finite");
  }
  return d;
}

/// Byte counts and core counts must arrive as exact non-negative
/// integers; doubles above 2^53 silently lose integer precision, so the
/// bound doubles as an overflow guard.
std::uint64_t requireCount(const JsonValue& v, const std::string& where) {
  const double d = requireFiniteNumber(v, where);
  if (d < 0.0 || d > 9007199254740992.0 || d != std::floor(d)) {
    reject(where + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

/// A pathological document must fail with a diagnostic, not allocate an
/// absurd ladder; real hierarchies have 2-4 levels.
constexpr std::size_t kMaxCacheLevels = 16;

CacheHierarchy hierarchyFromValue(const JsonValue& v) {
  if (!v.isObject()) {
    reject("the cacheHierarchy section must be an object");
  }
  requireKnownFields(v, {"memoryLatencyNs", "coreClockGHz", "levels"},
                     "cacheHierarchy");
  CacheHierarchy h;
  h.memoryLatency = Duration::nanoseconds(requireFiniteNumber(
      requireField(v, "memoryLatencyNs", "cacheHierarchy"), "memoryLatencyNs"));
  h.coreClockGHz = requireFiniteNumber(
      requireField(v, "coreClockGHz", "cacheHierarchy"), "coreClockGHz");
  const JsonValue& levels = requireField(v, "levels", "cacheHierarchy");
  if (!levels.isArray()) {
    reject("'levels' must be an array");
  }
  if (levels.asArray().size() > kMaxCacheLevels) {
    reject("more than " + std::to_string(kMaxCacheLevels) + " cache levels");
  }
  for (std::size_t i = 0; i < levels.asArray().size(); ++i) {
    const JsonValue& lv = levels.asArray()[i];
    const std::string where = "levels[" + std::to_string(i) + "]";
    if (!lv.isObject()) {
      reject(where + " must be an object");
    }
    requireKnownFields(lv,
                       {"name", "capacityBytes", "lineSizeBytes",
                        "loadToUseNs", "perCoreGBps", "sharedByCores"},
                       where);
    CacheLevel l;
    l.name = requireField(lv, "name", where).asString();
    l.capacity = ByteCount::bytes(
        requireCount(requireField(lv, "capacityBytes", where),
                     where + ".capacityBytes"));
    l.lineSize = ByteCount::bytes(
        requireCount(requireField(lv, "lineSizeBytes", where),
                     where + ".lineSizeBytes"));
    l.loadToUseLatency = Duration::nanoseconds(requireFiniteNumber(
        requireField(lv, "loadToUseNs", where), where + ".loadToUseNs"));
    l.perCoreBandwidth = Bandwidth::gbps(requireFiniteNumber(
        requireField(lv, "perCoreGBps", where), where + ".perCoreGBps"));
    const std::uint64_t shared = requireCount(
        requireField(lv, "sharedByCores", where), where + ".sharedByCores");
    if (shared > 1000000) {
      reject(where + ".sharedByCores is implausibly large");
    }
    l.sharedByCores = static_cast<int>(shared);
    h.levels.push_back(std::move(l));
  }
  return h;
}

}  // namespace

CacheHierarchy cacheHierarchyFromJson(std::string_view json) {
  return hierarchyFromValue(JsonValue::parse(json));
}

CacheHierarchy machineCacheHierarchyFromJson(std::string_view machineJsonText) {
  const JsonValue doc = JsonValue::parse(machineJsonText);
  if (!doc.isObject()) {
    reject("a machine-JSON document must be an object");
  }
  const JsonValue* version = doc.find("schemaVersion");
  if (version == nullptr) {
    // Version-1 documents predate both the marker and the hierarchy.
    return {};
  }
  const std::uint64_t v = requireCount(*version, "schemaVersion");
  if (v < 1 || v > static_cast<std::uint64_t>(kMachineJsonSchemaVersion)) {
    reject("unsupported schemaVersion " + std::to_string(v));
  }
  const JsonValue* section = doc.find("cacheHierarchy");
  return section == nullptr ? CacheHierarchy{} : hierarchyFromValue(*section);
}

}  // namespace nodebench::machines
