#include "machines/machine_json.hpp"

#include <cstdio>

namespace nodebench::machines {

namespace {

std::string esc(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
    }
    out += ch;
  }
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string machineJson(const Machine& m) {
  std::string j = "{\n";
  j += "  \"name\": " + esc(m.info.name) + ",\n";
  j += "  \"top500Rank\": " + std::to_string(m.info.top500Rank) + ",\n";
  j += "  \"location\": " + esc(m.info.location) + ",\n";
  j += "  \"cpu\": " + esc(m.info.cpuModel) + ",\n";
  j += "  \"accelerator\": " + esc(m.info.acceleratorModel) + ",\n";
  j += "  \"software\": {\"compiler\": " + esc(m.env.compiler) +
       ", \"deviceLibrary\": " + esc(m.env.deviceLibrary) +
       ", \"mpi\": " + esc(m.env.mpi) + "},\n";
  j += "  \"topology\": {\"sockets\": " +
       std::to_string(m.topology.socketCount()) +
       ", \"numaDomains\": " + std::to_string(m.topology.numaCount()) +
       ", \"cores\": " + std::to_string(m.coreCount()) +
       ", \"hardwareThreads\": " + std::to_string(m.hardwareThreadCount()) +
       ", \"gpus\": " + std::to_string(m.topology.gpuCount()) + "},\n";
  j += "  \"hostMemory\": {\"perCoreGBps\": " +
       num(m.hostMemory.perCoreBw.inGBps()) +
       ", \"perNumaSaturationGBps\": " +
       num(m.hostMemory.perNumaSaturation.inGBps()) +
       ", \"cacheModeOverhead\": " + num(m.hostMemory.cacheModeOverhead) +
       ", \"smtFactor\": " + num(m.hostMemory.smtFactor) +
       ", \"peakNote\": " + esc(m.hostMemory.peakNote) + "},\n";
  j += "  \"hostMpi\": {\"softwareOverheadUs\": " +
       num(m.hostMpi.softwareOverhead.us()) +
       ", \"sameNumaHopUs\": " + num(m.hostMpi.sameNumaHop.us()) +
       ", \"crossNumaHopUs\": " + num(m.hostMpi.crossNumaHop.us()) +
       ", \"crossSocketHopUs\": " + num(m.hostMpi.crossSocketHop.us()) +
       ", \"eagerThresholdBytes\": " +
       std::to_string(m.hostMpi.eagerThreshold.count()) +
       ", \"cv\": " + num(m.hostMpi.cv) + "},\n";
  j += "  \"hostPeakFp64Gflops\": " + num(m.hostPeakFp64Gflops);
  if (m.device) {
    const DeviceParams& d = *m.device;
    j += ",\n  \"device\": {\"hbmGBps\": " + num(d.hbmBw.inGBps()) +
         ", \"hbmPeakNote\": " + esc(d.hbmPeakNote) +
         ", \"kernelLaunchUs\": " + num(d.kernelLaunch.us()) +
         ", \"syncWaitUs\": " + num(d.syncWait.us()) +
         ", \"memcpyCallOverheadUs\": " + num(d.memcpyCallOverhead.us()) +
         ", \"h2dDmaSetupUs\": " + num(d.h2dDmaSetup.us()) +
         ", \"d2dDmaSetupUs\": " + num(d.d2dDmaSetup.us()) +
         ", \"peakFp64Gflops\": " + num(d.peakFp64Gflops) +
         ", \"d2dClassResidualUs\": [" + num(d.d2dClassResidual[0].us()) +
         ", " + num(d.d2dClassResidual[1].us()) + ", " +
         num(d.d2dClassResidual[2].us()) + ", " +
         num(d.d2dClassResidual[3].us()) + "]}";
    j += ",\n  \"deviceMpi\": {\"baseOneWayUs\": " +
         num(m.deviceMpi->baseOneWay.us()) +
         ", \"cv\": " + num(m.deviceMpi->cv) + "}";
  }
  j += "\n}\n";
  return j;
}

}  // namespace nodebench::machines
