#include "machines/validate.hpp"

namespace nodebench::machines {

std::vector<ValidationIssue> validate(const Machine& m) {
  std::vector<ValidationIssue> issues;
  const auto error = [&](std::string field, std::string msg) {
    issues.push_back({ValidationIssue::Severity::Error, std::move(field),
                      std::move(msg)});
  };
  const auto warning = [&](std::string field, std::string msg) {
    issues.push_back({ValidationIssue::Severity::Warning, std::move(field),
                      std::move(msg)});
  };

  if (m.info.name.empty()) {
    error("info.name", "machine has no name");
  }
  if (m.topology.coreCount() == 0) {
    error("topology.cores", "topology has no cores");
  }
  if (m.topology.socketCount() == 0) {
    error("topology.sockets", "topology has no sockets");
  }

  // Accelerator consistency.
  const bool hasGpus = m.topology.gpuCount() > 0;
  if (m.info.accelerated() != hasGpus) {
    error("info.acceleratorModel",
          "acceleratorModel and topology GPU count disagree");
  }
  if (hasGpus != m.device.has_value()) {
    error("device",
          "device parameters must exist iff the topology has GPUs");
  }
  if (hasGpus != m.deviceMpi.has_value()) {
    error("deviceMpi",
          "device MPI parameters must exist iff the topology has GPUs");
  }
  if (hasGpus &&
      m.topology.gpuFlavor() == topo::GpuInterconnectFlavor::None) {
    error("topology.gpuFlavor",
          "GPU topology needs an interconnect flavour for link classes");
  }
  for (int g = 0; g < m.topology.gpuCount(); ++g) {
    const topo::GpuId id{g};
    try {
      (void)m.topology.hostGpuLink(m.topology.gpu(id).socket, id);
    } catch (const NotFoundError&) {
      error("topology.hostGpuLinks",
            "GPU " + std::to_string(g) + " has no link to its host socket");
    }
  }

  // Multi-socket nodes need an inter-socket link for routed traffic.
  if (m.topology.socketCount() >= 2) {
    try {
      (void)m.topology.socketLink(topo::SocketId{0}, topo::SocketId{1});
    } catch (const NotFoundError&) {
      warning("topology.socketLinks",
              "sockets 0 and 1 have no inter-socket link");
    }
  }

  // Host parameters.
  if (m.hostMemory.perCoreBw.inGBps() <= 0.0) {
    error("hostMemory.perCoreBw", "perCoreBw must be positive");
  }
  if (m.hostMemory.perNumaSaturation.inGBps() <= 0.0) {
    error("hostMemory.perNumaSaturation",
          "perNumaSaturation must be positive");
  }
  if (m.hostMemory.cacheModeOverhead < 1.0) {
    error("hostMemory.cacheModeOverhead", "cacheModeOverhead must be >= 1");
  }
  if (m.hostMpi.softwareOverhead <= Duration::zero()) {
    error("hostMpi.softwareOverhead", "MPI softwareOverhead must be positive");
  }
  if (m.hostMpi.eagerBandwidth.inGBps() <= 0.0 ||
      m.hostMpi.rendezvousBandwidth.inGBps() <= 0.0) {
    error("hostMpi.eagerBandwidth/rendezvousBandwidth",
          "MPI copy bandwidths must be positive");
  }
  if (m.hostMpi.cv < 0.0 || m.hostMpi.cv >= 0.5) {
    error("hostMpi.cv", "hostMpi.cv must be in [0, 0.5)");
  }
  if (m.hostMemory.peak.inGBps() <= 0.0) {
    warning("hostMemory.peak",
            "host peak bandwidth unset (Table-4-style output incomplete)");
  }
  if (m.hostPeakFp64Gflops <= 0.0) {
    warning("hostPeakFp64Gflops",
            "host peak FLOPS unset (machine-balance analysis unavailable)");
  }

  // Cache hierarchy. An empty hierarchy is valid (legacy machines); a
  // populated one must be a strictly ordered ladder or the memlab
  // families and the memsim refinement would resolve working sets
  // against nonsense. Every diagnostic names the offending level.
  if (!m.cacheHierarchy.empty()) {
    const CacheHierarchy& ch = m.cacheHierarchy;
    const int cores = m.coreCount();
    for (std::size_t i = 0; i < ch.levels.size(); ++i) {
      const CacheLevel& l = ch.levels[i];
      const std::string at =
          "cacheHierarchy.levels[" + std::to_string(i) + "]";
      const std::string name = l.name.empty() ? at : l.name;
      if (l.name.empty()) {
        error(at + ".name", "cache level has no name");
      }
      if (l.capacity.count() == 0) {
        error(at + ".capacity", name + " capacity must be positive");
      }
      if (l.lineSize.count() == 0) {
        error(at + ".lineSize", name + " line size must be positive");
      }
      if (l.loadToUseLatency <= Duration::zero()) {
        error(at + ".loadToUseLatency",
              name + " load-to-use latency must be positive");
      }
      if (l.perCoreBandwidth.inGBps() <= 0.0) {
        error(at + ".perCoreBandwidth",
              name + " per-core bandwidth must be positive");
      }
      if (l.sharedByCores < 1) {
        error(at + ".sharedByCores",
              name + " sharedByCores must be at least 1");
      } else if (cores > 0 && l.sharedByCores > cores) {
        error(at + ".sharedByCores",
              name + " is shared by " + std::to_string(l.sharedByCores) +
                  " cores but the node only has " + std::to_string(cores));
      }
      if (i > 0) {
        const CacheLevel& inner = ch.levels[i - 1];
        if (l.capacity <= inner.capacity) {
          error(at + ".capacity",
                name + " capacity must exceed " + inner.name + "'s");
        }
        if (l.loadToUseLatency <= inner.loadToUseLatency) {
          error(at + ".loadToUseLatency",
                name + " latency must exceed " + inner.name + "'s");
        }
        if (l.perCoreBandwidth > inner.perCoreBandwidth) {
          error(at + ".perCoreBandwidth",
                name + " per-core bandwidth must not exceed " + inner.name +
                    "'s");
        }
      }
    }
    if (ch.memoryLatency <= ch.levels.back().loadToUseLatency) {
      error("cacheHierarchy.memoryLatency",
            "memory latency must exceed the outermost cache level's");
    }
    if (ch.coreClockGHz <= 0.0) {
      error("cacheHierarchy.coreClockGHz",
            "coreClockGHz must be positive when a hierarchy is present");
    }
  }

  // Device parameters.
  if (m.device) {
    const DeviceParams& d = *m.device;
    if (d.hbmBw.inGBps() <= 0.0) {
      error("device.hbmBw", "device hbmBw must be positive");
    }
    if (d.kernelLaunch <= Duration::zero() ||
        d.syncWait <= Duration::zero()) {
      error("device.kernelLaunch/syncWait",
            "kernelLaunch and syncWait must be positive");
    }
    if (d.memcpyCallOverhead <= Duration::zero() ||
        d.h2dDmaSetup <= Duration::zero() ||
        d.d2dDmaSetup <= Duration::zero()) {
      error("device.memcpyCallOverhead/h2dDmaSetup/d2dDmaSetup",
            "memcpy overhead terms must be positive");
    }
    if (d.hbmPeak.inGBps() > 0.0 && d.hbmPeak < d.hbmBw) {
      error("device.hbmPeak",
            "achievable HBM bandwidth exceeds its theoretical peak");
    }
    if (d.peakFp64Gflops <= 0.0) {
      warning("device.peakFp64Gflops",
              "device peak FLOPS unset (balance analysis unavailable)");
    }
  }
  if (m.deviceMpi && m.deviceMpi->baseOneWay < Duration::zero()) {
    error("deviceMpi.baseOneWay", "deviceMpi.baseOneWay must be non-negative");
  }
  return issues;
}

bool isValid(const Machine& m) {
  for (const ValidationIssue& issue : validate(m)) {
    if (issue.severity == ValidationIssue::Severity::Error) {
      return false;
    }
  }
  return true;
}

void ensureValid(const Machine& m) {
  std::string errors;
  for (const ValidationIssue& issue : validate(m)) {
    if (issue.severity == ValidationIssue::Severity::Error) {
      errors += (errors.empty() ? "" : "; ") + issue.field + ": " +
                issue.message;
    }
  }
  if (!errors.empty()) {
    throw PreconditionError("invalid machine '" + m.info.name +
                            "': " + errors);
  }
}

}  // namespace nodebench::machines
