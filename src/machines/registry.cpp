#include "machines/registry.hpp"

#include <algorithm>

#include "core/strings.hpp"
#include "machines/builders.hpp"
#include "machines/validate.hpp"

namespace nodebench::machines {

const std::vector<Machine>& allMachines() {
  static const std::vector<Machine> machines = [] {
    std::vector<Machine> all;
    all.reserve(13);
    // Top500 rank order (Tables 2 and 3 merged).
    all.push_back(makeFrontier());    // 1
    all.push_back(makeSummit());      // 5
    all.push_back(makeSierra());      // 6
    all.push_back(makePerlmutter());  // 8
    all.push_back(makePolaris());     // 19
    all.push_back(makeTrinity());     // 29
    all.push_back(makeLassen());      // 36
    all.push_back(makeTheta());       // 94
    all.push_back(makeSawtooth());    // 109
    all.push_back(makeRZVernal());    // 116
    all.push_back(makeEagle());       // 127
    all.push_back(makeTioga());       // 132
    all.push_back(makeManzano());     // 141
    // Fail fast with the full issue list at the registry boundary: a
    // malformed builder (or a future JSON-loaded machine) should surface
    // here, not as a confusing contract failure deep in a benchmark.
    for (const Machine& m : all) {
      ensureValid(m);
    }
    return all;
  }();
  return machines;
}

std::vector<const Machine*> cpuMachines() {
  std::vector<const Machine*> out;
  for (const Machine& m : allMachines()) {
    if (!m.accelerated()) {
      out.push_back(&m);
    }
  }
  return out;
}

std::vector<const Machine*> gpuMachines() {
  std::vector<const Machine*> out;
  for (const Machine& m : allMachines()) {
    if (m.accelerated()) {
      out.push_back(&m);
    }
  }
  return out;
}

const Machine& byName(std::string_view name) {
  for (const Machine& m : allMachines()) {
    if (iequals(m.info.name, name)) {
      return m;
    }
  }
  throw NotFoundError("unknown machine: " + std::string(name));
}

std::vector<AcceleratorGroup> acceleratorGroups() {
  // Paper's Table 7 rows: V100 (Summit, Sierra, Lassen), A100
  // (Perlmutter, Polaris), MI250X (Frontier, RZVernal, Tioga). The paper
  // lists Summit/Sierra under "GV100" and Lassen under "V100" in Table 3
  // but groups all three as V100 in Table 7.
  std::vector<AcceleratorGroup> groups;
  groups.push_back(AcceleratorGroup{
      "V100", {&byName("Summit"), &byName("Sierra"), &byName("Lassen")}});
  groups.push_back(
      AcceleratorGroup{"A100", {&byName("Perlmutter"), &byName("Polaris")}});
  groups.push_back(AcceleratorGroup{
      "MI250X", {&byName("Frontier"), &byName("RZVernal"), &byName("Tioga")}});
  return groups;
}

}  // namespace nodebench::machines
