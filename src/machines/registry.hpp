#pragma once
/// \file registry.hpp
/// \brief Registry of the thirteen studied DOE systems.

#include <string_view>
#include <vector>

#include "machines/machine.hpp"

namespace nodebench::machines {

/// All systems of the study, ordered by Top500 rank (Tables 2+3 merged).
[[nodiscard]] const std::vector<Machine>& allMachines();

/// The five non-accelerator systems of Table 2, by rank.
[[nodiscard]] std::vector<const Machine*> cpuMachines();

/// The eight accelerator systems of Table 3, by rank.
[[nodiscard]] std::vector<const Machine*> gpuMachines();

/// Looks a machine up by (case-insensitive) name.
/// Throws NotFoundError for unknown names.
[[nodiscard]] const Machine& byName(std::string_view name);

/// Accelerator model groups used by Table 7, in the paper's row order:
/// V100, A100, MI250X. Each group lists pointers into allMachines().
struct AcceleratorGroup {
  std::string name;
  std::vector<const Machine*> members;
};
[[nodiscard]] std::vector<AcceleratorGroup> acceleratorGroups();

}  // namespace nodebench::machines
