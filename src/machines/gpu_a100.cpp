/// \file gpu_a100.cpp
/// \brief AMD EPYC + NVIDIA A100 systems of Table 3: Perlmutter (NERSC,
/// rank 8, EPYC 7763) and Polaris (ANL, rank 19, EPYC 7532). Figure 3
/// node shape: four A100s connected all-to-all by NVLink3 (every pair is
/// link class A).
///
/// Calibration sources:
///  Table 5 (device BabelStream GB/s; MPI us):
///   system      device bw        H2H          D2D A
///   Perlmutter  1363.74+-0.23    0.46+-0.06   13.50+-0.13
///   Polaris     1362.75+-0.17    0.21+-0.00   10.42+-0.03
///  Table 6 (Comm|Scope; us / GB/s):
///   system      launch  wait  h2d lat  h2d bw  d2d A
///   Perlmutter  1.77    0.98  4.24     24.74   14.74+-0.41
///   Polaris     1.83    1.32  5.33     23.71   32.84+-0.30
///
/// The paper highlights the 14.74 vs 32.84 us Comm|Scope D2D difference
/// between these two otherwise identical GPU configurations and
/// attributes it to system software (CUDA driver version). In our model
/// that is precisely a difference in the solved d2dDmaSetup parameter —
/// ~12.7 us on Perlmutter vs ~30.2 us on Polaris — with identical
/// topological routes. The ablation bench `bench_ablation_d2d_mechanism`
/// decomposes this.
///
/// Perlmutter note carried from the paper: only the majority 40 GB-HBM
/// A100 nodes are modelled.

#include "machines/builders.hpp"

#include "machines/cache_hierarchy.hpp"
#include "machines/calibration.hpp"
#include "machines/node_shapes.hpp"

namespace nodebench::machines {

using namespace nodebench::literals;

Machine makePerlmutter() {
  Machine m;
  m.topology = a100Node("AMD EPYC 7763", /*coresPerSocket=*/64);
  m.info = SystemInfo{"Perlmutter", 8, "NERSC", "AMD EPYC 7763",
                      "NVIDIA A100"};
  m.env = SoftwareEnv{"gcc/11.2.0", "cuda/11.7", "cray-mpich/8.1.25"};
  m.seed = 0x9e2a0001u;
  m.device.emplace();
  m.device->peakFp64Gflops = 9700.0;  // A100 FP64 (non-tensor)
  // EPYC 7763: 64c x 2.45 GHz x 16 DP flops/cycle.
  m.hostPeakFp64Gflops = 2509.0;
  applyHostMemoryCalibration(
      m, HostMemoryTargets{14.0, 165.0, 204.8, "204.8 (repr.)", 1.0});
  // EPYC 7763 (Milan/Zen 3): 32 MiB L3 per 8-core CCX.
  m.cacheHierarchy = epycCacheHierarchy(8, 32.0, 2.45);
  // Host MPI: 0.46 us on-socket => 0.38 + 0.08.
  m.hostMpi.softwareOverhead = 0.38_us;
  m.hostMpi.sameNumaHop = 0.08_us;
  m.hostMpi.crossNumaHop = 0.12_us;
  m.hostMpi.crossSocketHop = 0.20_us;  // single-socket node; unused
  m.hostMpi.cv = 0.13;
  applyCommScopeCalibration(
      m, CommScopeTargets{1.77, 0.98, 4.24, 24.74,
                          {14.74, std::nullopt, std::nullopt, std::nullopt},
                          /*cvLaunch=*/0.0056, /*cvWait=*/0.004,
                          /*cvXferLat=*/0.0024, /*cvXferBw=*/0.0002,
                          /*cvD2D=*/0.0278});
  applyDeviceStreamCalibration(m, 1363.74, 1555.2, "1555.2 [3]",
                               /*cvBw=*/0.00017);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/13.50, /*cv=*/0.0096);
  return m;
}

Machine makePolaris() {
  Machine m;
  m.topology = a100Node("AMD EPYC 7532", /*coresPerSocket=*/32);
  m.info = SystemInfo{"Polaris", 19, "ANL", "AMD EPYC 7532", "NVIDIA A100"};
  m.env = SoftwareEnv{"nvhpc/21.9", "cuda/11.4", "cray-mpich/8.1.16"};
  m.seed = 0x90a10001u;
  m.device.emplace();
  m.device->peakFp64Gflops = 9700.0;
  // EPYC 7532: 32c x 2.4 GHz x 16 DP flops/cycle.
  m.hostPeakFp64Gflops = 1229.0;
  applyHostMemoryCalibration(
      m, HostMemoryTargets{14.0, 150.0, 204.8, "204.8 (repr.)", 1.0});
  // EPYC 7532 (Rome/Zen 2): 16 MiB L3 per 4-core CCX.
  m.cacheHierarchy = epycCacheHierarchy(4, 16.0, 2.4);
  // Host MPI: 0.21 us on-socket => 0.16 + 0.05.
  m.hostMpi.softwareOverhead = 0.16_us;
  m.hostMpi.sameNumaHop = 0.05_us;
  m.hostMpi.crossNumaHop = 0.10_us;
  m.hostMpi.crossSocketHop = 0.20_us;
  m.hostMpi.cv = 0.005;
  applyCommScopeCalibration(
      m, CommScopeTargets{1.83, 1.32, 5.33, 23.71,
                          {32.84, std::nullopt, std::nullopt, std::nullopt},
                          /*cvLaunch=*/0.0022, /*cvWait=*/0.0076,
                          /*cvXferLat=*/0.0038, /*cvXferBw=*/0.0002,
                          /*cvD2D=*/0.0091});
  applyDeviceStreamCalibration(m, 1362.75, 1555.2, "1555.2 [3]",
                               /*cvBw=*/0.00012);
  applyDeviceMpiCalibration(m, /*classATargetUs=*/10.42, /*cv=*/0.0029);
  return m;
}

}  // namespace nodebench::machines
