/// \file main.cpp
/// \brief `nodebench` command-line tool.
///
/// Subcommands:
///   list                          system inventory (Tables 2+3)
///   topo <machine> [--dot]        node diagram / DOT export (Figures 1-3)
///   table <n|all> [--runs N]      regenerate paper table n (1..9)
///   stream <machine> [--device d] BabelStream on one machine
///   latency <machine> [--pair P] [--size B]   osu_latency (P: on-socket,
///                                 on-node, A, B, C, D)
///   commscope <machine>           Comm|Scope suite on one machine
///   trace [machine] [--out F]     tracing demo (Chrome trace + metrics)
///   native [--threads N]          real BabelStream + ping-pong on this host
///
/// `table`, `export` and the single-machine bench subcommands also accept
/// `--trace FILE` (Chrome trace_event JSON, loadable in Perfetto) and
/// `--metrics` (aggregated counters/histograms appendix on stdout).

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "campaign/io.hpp"
#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "commscope/commscope.hpp"
#include "core/cancel.hpp"
#include "core/error.hpp"
#include "faults/fault_plan.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/machine_card.hpp"
#include "machines/machine_json.hpp"
#include "machines/registry.hpp"
#include "native/pingpong_native.hpp"
#include "native/stream_native.hpp"
#include "netsim/network.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/balance.hpp"
#include "report/export.hpp"
#include "report/figures.hpp"
#include "report/memlab_report.hpp"
#include "report/tables.hpp"
#include "serve/server.hpp"
#include "stats/compare.hpp"
#include "stats/merge.hpp"
#include "stats/store.hpp"
#include "supervise/heartbeat.hpp"
#include "supervise/journal.hpp"
#include "supervise/supervisor.hpp"
#include "topo/dot.hpp"
#include "trace/sink.hpp"
#include "trace/trace.hpp"

namespace {

using namespace nodebench;

int usage() {
  std::cout <<
      "usage: nodebench <command> [args]\n"
      "  list                      system inventory (Tables 2+3)\n"
      "  topo <machine> [--dot]    node diagram (Figures 1-3) / DOT export\n"
      "  table <1..9|all> [--runs N] [--jobs N] [--faults F]  regenerate a"
      " paper table\n"
      "  sweep [--runs N] [--jobs N] [--faults F]  working-set BabelStream\n"
      "          triad bandwidth across the cache ladder (L1 -> DRAM),\n"
      "          machine-comparison table + ascii knee chart\n"
      "  chase [--runs N] [--jobs N] [--faults F]  pointer-chase\n"
      "          dependent-load latency ladder (ns/access and clk/op per\n"
      "          working set); both are `table sweep`/`table chase`\n"
      "          aliases, so every table campaign flag (--journal,\n"
      "          --resume, --store, --shard, ...) composes\n"
      "  stream <machine> [--device N]  BabelStream (simulated)\n"
      "  latency <machine> [--pair on-socket|on-node|A|B|C|D] [--size B]\n"
      "  commscope <machine>       Comm|Scope suite (simulated)\n"
      "  trace [machine] [--out F]  tracing demo: ping-pong + GPU +\n"
      "                            lossy inter-node legs -> Chrome JSON\n"
      "  card <machine> [--json]   calibrated parameter card\n"
      "  diff <machine> <machine>  side-by-side comparison\n"
      "  balance                   machine-balance (flops/byte) table\n"
      "  export --dir D [--runs N] [--jobs N] [--faults F]  write tables as"
      " CSV + Markdown\n"
      "  faults <plan.json> [--runs N] [--jobs N]  fault-injection demo:\n"
      "                            tables + diagnostics under the plan\n"
      "  native [--threads N]      real measurements on this host\n"
      "  table/stream/latency/commscope/export/faults also accept\n"
      "  --trace FILE (Chrome trace JSON) and --metrics (summary)\n"
      "  table/export also accept --journal FILE [--resume]: crash-safe\n"
      "  campaigns (journal completed cells; resume replays them)\n"
      "  table/export also accept --store FILE: record every cell's raw\n"
      "  per-repetition samples for compare/gate (with --resume, the\n"
      "  store is reattached and already-stored cells are skipped)\n"
      "  compare <baseline.store> <candidate.store> [--jobs N]\n"
      "          [--alpha A] [--threshold PCT]  per-cell statistical\n"
      "          regression/improvement report (bootstrap CIs, Welch t,\n"
      "          Mann-Whitney U, effect sizes)\n"
      "  gate <baseline.store> <candidate.store> [--jobs N] [--alpha A]\n"
      "          [--threshold PCT]  CI gate: exit 3 when any cell shows a\n"
      "          statistically significant, material regression\n"
      "  table/export also accept --shard i/N (requires --journal):\n"
      "  measure only shard i's deterministic slice of the cell grid\n"
      "  shard <1..9|all> --shards N --journal BASE [--store BASE]\n"
      "          [--runs N] [--jobs N] [--faults F] [--resume]\n"
      "          [--merge-out F] [--merge-store-out F]  fork N worker\n"
      "          processes, each measuring shard i/N into\n"
      "          BASE.shard<i>of<N>; exits 43 when a worker was\n"
      "          interrupted (rerun with --resume to finish)\n"
      "  merge --out F [--stores S]... [--store-out F] <journals...>\n"
      "          validate a complete shard set and write the merged\n"
      "          journal (and store) byte-identical to a single-process\n"
      "          --jobs 1 run; refuses mismatched/overlapping/incomplete\n"
      "          shard sets, naming the offending shard\n"
      "  merge also accepts --allow-partial [--gap-out F]\n"
      "          [--supervisor-journal F]: merge an incomplete shard set,\n"
      "          writing a gap manifest naming every missing shard/cell\n"
      "          (annotated from the supervisor's quarantine record) and\n"
      "          exiting 44 — a smaller table is never silent\n"
      "  supervise <1..9|all> --shards N --journal BASE [--store BASE]\n"
      "          [--workers N] [--runs N] [--jobs N] [--faults F]\n"
      "          [--max-attempts K] [--backoff-base-ms B] [--backoff-cap-ms C]\n"
      "          [--heartbeat-interval-ms H] [--heartbeat-timeout-ms T]\n"
      "          [--attempt-timeout-ms W] [--resume] [--merge-out F]\n"
      "          [--merge-store-out F] [--gap-out F]  fault-tolerant\n"
      "          lease-based campaign coordinator: workers pull shard\n"
      "          leases, heartbeat, and journal; dead/wedged workers are\n"
      "          reassigned with deterministic backoff and resume from\n"
      "          their crash-safe journals; after K failures a shard is\n"
      "          quarantined and the merge degrades to --allow-partial\n"
      "          (exit 44, gap manifest); the supervisor itself survives\n"
      "          SIGKILL via its own journal + --resume\n"
      "  serve --socket PATH|--port N [--state-dir D] [--resume]\n"
      "          [--queue-depth N] [--tenant-queue N] [--tenant-inflight N]\n"
      "          [--executors N] [--io-threads N] [--memo-max-entries N]\n"
      "          crash-tolerant\n"
      "          measurement daemon: POST campaign specs to /requests,\n"
      "          GET /requests/<id> and /healthz; SIGTERM drains\n"
      "          gracefully, restart --resume completes interrupted work\n"
      "  journaled table/export runs stop cleanly on SIGINT/SIGTERM: the\n"
      "  in-flight cell finishes and is journalled, the process exits " +
          std::to_string(kInterruptedExitCode) +
      ",\n  and --resume continues byte-identically\n";
  return 2;
}

std::optional<std::string> flagValue(std::vector<std::string>& args,
                                     const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

/// Validated "--flag N" with N a positive integer; throws Error (caught
/// by main's top-level handler, exit code 1) on anything else, rather
/// than letting stoi's silent acceptance of "0" or "8x" configure a
/// nonsense harness.
std::optional<int> positiveFlagValue(std::vector<std::string>& args,
                                     const std::string& flag) {
  const auto raw = flagValue(args, flag);
  if (!raw) {
    // flagValue never matches a trailing flag (it needs a value after
    // it); don't let a dangling "--runs" be silently ignored.
    if (std::find(args.begin(), args.end(), flag) != args.end()) {
      throw Error(flag + " expects a value");
    }
    return std::nullopt;
  }
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(*raw, &used);
  } catch (const std::exception&) {
    throw Error(flag + " expects a positive integer, got '" + *raw + "'");
  }
  if (used != raw->size() || value < 1) {
    throw Error(flag + " expects a positive integer, got '" + *raw + "'");
  }
  return value;
}

/// Validated "--flag N" with N a non-negative integer — for flags where
/// 0 is meaningful (a shard index); same error discipline as
/// positiveFlagValue.
std::optional<int> nonNegativeFlagValue(std::vector<std::string>& args,
                                        const std::string& flag) {
  const auto raw = flagValue(args, flag);
  if (!raw) {
    if (std::find(args.begin(), args.end(), flag) != args.end()) {
      throw Error(flag + " expects a value");
    }
    return std::nullopt;
  }
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(*raw, &used);
  } catch (const std::exception&) {
    throw Error(flag + " expects a non-negative integer, got '" + *raw +
                "'");
  }
  if (used != raw->size() || value < 0) {
    throw Error(flag + " expects a non-negative integer, got '" + *raw +
                "'");
  }
  return value;
}

/// Validated "--flag X" with X a positive finite number ("2.5", "0.01");
/// same error discipline as positiveFlagValue.
std::optional<double> positiveDoubleFlagValue(std::vector<std::string>& args,
                                              const std::string& flag) {
  const auto raw = flagValue(args, flag);
  if (!raw) {
    if (std::find(args.begin(), args.end(), flag) != args.end()) {
      throw Error(flag + " expects a value");
    }
    return std::nullopt;
  }
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(*raw, &used);
  } catch (const std::exception&) {
    throw Error(flag + " expects a positive number, got '" + *raw + "'");
  }
  if (used != raw->size() || !(value > 0.0) || !std::isfinite(value)) {
    throw Error(flag + " expects a positive number, got '" + *raw + "'");
  }
  return value;
}

bool flagPresent(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

/// Called after all flag parsing: anything left that looks like a flag is
/// either unknown or a duplicate (each flag parser erases the occurrence
/// it consumed, so a second "--runs 9" survives to here). Silently
/// ignoring it would run a configuration the user did not ask for.
void rejectLeftoverFlags(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      throw Error("unknown or duplicate flag: " + arg);
    }
  }
}

/// Process-wide cancellation token for one-shot journaled runs; set from
/// the signal handler (CancelToken::set is async-signal-safe).
CancelToken& interruptToken() {
  static CancelToken token;
  return token;
}

void onInterruptSignal(int /*signo*/) {
  interruptToken().set(CancelReason::Interrupt);
}

/// Installed only for `--journal` runs: without a journal there is
/// nothing to hand to --resume, so the default die-on-signal behaviour
/// is the right one. With one, the harness finishes the in-flight cell,
/// journals it, and the run exits kInterruptedExitCode (43) — distinct
/// from plain failure, so scripts know to rerun with --resume.
void installInterruptHandlers() {
  (void)std::signal(SIGINT, onInterruptSignal);
  (void)std::signal(SIGTERM, onInterruptSignal);
}

/// Parses `--journal FILE` / `--resume` / `--crash-after-cell N` (the
/// last a hidden crash-injection test hook) and opens the campaign
/// journal. Must run after every other option lands in `opt`, because
/// the journal header fingerprints the final configuration. All journal
/// chatter goes to stderr so stdout stays byte-identical to a
/// journal-less run.
std::unique_ptr<campaign::Journal> openJournal(std::vector<std::string>& args,
                                               report::TableOptions& opt) {
  const auto path = flagValue(args, "--journal");
  const bool resume = flagPresent(args, "--resume");
  const auto crashAfter = positiveFlagValue(args, "--crash-after-cell");
  if (!path) {
    if (std::find(args.begin(), args.end(), "--journal") != args.end()) {
      throw Error("--journal expects a value");
    }
    if (resume) {
      throw Error("--resume requires --journal FILE");
    }
    if (crashAfter) {
      throw Error("--crash-after-cell requires --journal FILE");
    }
    return nullptr;
  }
  const campaign::CampaignConfig cfg = report::campaignConfig(opt);
  std::unique_ptr<campaign::Journal> journal;
  if (resume) {
    journal = campaign::Journal::resume(*path, cfg);
    for (const std::string& warning : journal->warnings()) {
      std::cerr << "nodebench: warning: " << warning << "\n";
    }
    std::cerr << "nodebench: resuming campaign from " << *path << " ("
              << journal->cellRecordCount() << " cell(s) already measured)\n";
  } else {
    journal = campaign::Journal::create(*path, cfg);
  }
  if (crashAfter) {
    journal->setCrashAfterAppends(*crashAfter);
  }
  opt.journal = journal.get();
  return journal;
}

/// Parses `--store FILE` and opens the statistical results store. Like
/// openJournal, must run after every other option lands in `opt` (the
/// store header fingerprints the final configuration). `resume` is the
/// journal's --resume (peeked before openJournal consumes it): a resumed
/// campaign reattaches its store — after validating the fingerprint —
/// instead of refusing to overwrite it. Store chatter goes to stderr so
/// stdout stays byte-identical to a store-less run.
std::unique_ptr<stats::ResultStore> openStore(std::vector<std::string>& args,
                                              report::TableOptions& opt,
                                              bool resume) {
  const auto path = flagValue(args, "--store");
  if (!path) {
    if (std::find(args.begin(), args.end(), "--store") != args.end()) {
      throw Error("--store expects a value");
    }
    return nullptr;
  }
  auto store =
      stats::ResultStore::attach(*path, report::campaignConfig(opt), resume);
  if (resume && store->recordCount() > 0) {
    std::cerr << "nodebench: reattaching results store " << *path << " ("
              << store->recordCount() << " record(s) already stored)\n";
  }
  opt.store = store.get();
  return store;
}

/// Parses `--shard i/N` and builds the shard plan. Must run *before*
/// openJournal (the journal header fingerprints the shard spec) and
/// requires --journal — an unjournalled shard run would produce nothing
/// `nodebench merge` could consume, which is never what the user meant.
std::unique_ptr<campaign::ShardPlan> openShardPlan(
    std::vector<std::string>& args, report::TableOptions& opt) {
  const auto spec = flagValue(args, "--shard");
  if (!spec) {
    if (std::find(args.begin(), args.end(), "--shard") != args.end()) {
      throw Error("--shard expects a value (i/N)");
    }
    return nullptr;
  }
  auto plan =
      std::make_unique<campaign::ShardPlan>(campaign::parseShardSpec(*spec));
  opt.shard = plan.get();
  return plan;
}

/// Parsed `--trace FILE` / `--metrics` flags plus the live trace session
/// they open. The session is heap-held (Session is pinned: it registers
/// itself in a process-wide slot) and null when neither flag is given, so
/// untraced runs stay byte-identical to the pre-trace harness.
struct TraceRequest {
  std::string outPath;  ///< Chrome JSON destination; empty = none.
  bool metrics = false;
  std::unique_ptr<trace::Session> session;
};

TraceRequest traceRequest(std::vector<std::string>& args) {
  TraceRequest req;
  if (const auto out = flagValue(args, "--trace")) {
    req.outPath = *out;
  }
  req.metrics = flagPresent(args, "--metrics");
  if (!req.outPath.empty() || req.metrics) {
    req.session = std::make_unique<trace::Session>();
  }
  return req;
}

/// Exports the session once every recording scope has closed: writes the
/// Chrome trace file (if requested) and prints the metrics appendix (if
/// requested). No-op without a session.
void finishTrace(const TraceRequest& req) {
  if (!req.session) {
    return;
  }
  if (!req.outPath.empty()) {
    std::ofstream out(req.outPath, std::ios::binary);
    if (!out) {
      throw Error("cannot open trace output file: " + req.outPath);
    }
    out << trace::chromeJson(*req.session);
    if (!out) {
      throw Error("failed writing trace output file: " + req.outPath);
    }
    std::cout << "wrote " << req.outPath << "\n";
  }
  if (req.metrics) {
    std::cout << trace::metricsSummary(*req.session);
  }
}

int cmdList() {
  std::cout << report::buildTable2().renderAscii() << '\n'
            << report::buildTable3().renderAscii();
  return 0;
}

int cmdTopo(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  const bool dot = flagPresent(args, "--dot");
  const machines::Machine& m = machines::byName(args[0]);
  if (dot) {
    std::cout << topo::toDot(m.topology, m.info.name);
  } else {
    std::cout << report::nodeDiagram(m) << '\n'
              << report::linkClassLegend(m);
  }
  return 0;
}

int cmdTable(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  report::TableOptions opt;
  std::optional<faults::FaultPlan> plan;
  if (const auto planPath = flagValue(args, "--faults")) {
    plan = faults::FaultPlan::load(*planPath);
    opt.faults = &*plan;
  }
  if (args.empty()) {
    return usage();
  }
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    opt.binaryRuns = *runs;
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    opt.jobs = *jobs;
  }
  // Hidden test hook (like --crash-after-cell): slow every cell so the
  // crash suite can land signals mid-campaign deterministically. Not
  // part of the campaign fingerprint — it changes timing, not results.
  if (const auto delay = positiveFlagValue(args, "--test-cell-delay-ms")) {
    opt.testCellDelayMs = *delay;
  }
  // Supervised-worker liveness: beat a heartbeat file for the campaign's
  // duration (see supervise/heartbeat.hpp). Timing-only — never part of
  // the fingerprint, never visible on stdout.
  const auto heartbeatFile = flagValue(args, "--heartbeat");
  if (!heartbeatFile &&
      std::find(args.begin(), args.end(), "--heartbeat") != args.end()) {
    throw Error("--heartbeat expects a value");
  }
  std::uint32_t heartbeatIntervalMs = 100;
  if (const auto v = positiveFlagValue(args, "--heartbeat-interval-ms")) {
    heartbeatIntervalMs = static_cast<std::uint32_t>(*v);
  }
  // Hidden chaos hooks for the supervise suite: stop heartbeating after
  // N beats (a wedged worker), or fail outright after the journal opens
  // (a poisoned shard).
  const auto stallAfter =
      positiveFlagValue(args, "--test-heartbeat-stall-after");
  if (stallAfter && !heartbeatFile) {
    throw Error("--test-heartbeat-stall-after requires --heartbeat FILE");
  }
  const bool testFailRun = flagPresent(args, "--test-fail-run");
  const std::unique_ptr<campaign::ShardPlan> shardPlan =
      openShardPlan(args, opt);
  // Peek --resume before openJournal consumes it: the store reattach
  // decision follows the journal's.
  const bool resume =
      std::find(args.begin(), args.end(), "--resume") != args.end();
  const std::unique_ptr<campaign::Journal> journal = openJournal(args, opt);
  if (shardPlan && !journal) {
    throw Error("--shard requires --journal FILE (the shard journal is "
                "what `nodebench merge` consumes)");
  }
  const std::unique_ptr<stats::ResultStore> store =
      openStore(args, opt, resume);
  if (journal) {
    installInterruptHandlers();
    opt.cancel = &interruptToken();
  }
  std::unique_ptr<supervise::HeartbeatWriter> heartbeat;
  if (heartbeatFile) {
    heartbeat = std::make_unique<supervise::HeartbeatWriter>(
        *heartbeatFile, heartbeatIntervalMs,
        stallAfter ? static_cast<std::uint64_t>(*stallAfter) : 0);
  }
  rejectLeftoverFlags(args);
  const std::string which = args[0];
  if (testFailRun) {
    // Fires after the journal/store exist, so the supervisor's retry has
    // real artifacts to resume — exactly what a mid-campaign crash
    // leaves behind.
    throw Error("test failure injected by --test-fail-run");
  }
  std::vector<report::CellIncident> incidents;
  const auto emit = [&](int n) {
    switch (n) {
      case 1: std::cout << report::buildTable1().renderAscii(); break;
      case 2: std::cout << report::buildTable2().renderAscii(); break;
      case 3: std::cout << report::buildTable3().renderAscii(); break;
      case 4: {
        const auto rows = report::computeTable4(opt, &incidents);
        std::cout << report::renderTable4(rows, &incidents).renderAscii();
        break;
      }
      case 5: {
        const auto rows = report::computeTable5(opt, &incidents);
        std::cout << report::renderTable5(rows, &incidents).renderAscii();
        break;
      }
      case 6: {
        const auto rows = report::computeTable6(opt, &incidents);
        std::cout << report::renderTable6(rows, &incidents).renderAscii();
        break;
      }
      case 7: {
        const auto t5 = report::computeTable5(opt, &incidents);
        const auto t6 = report::computeTable6(opt, &incidents);
        std::cout << report::buildTable7(t5, t6, &incidents).renderAscii();
        break;
      }
      case 8: std::cout << report::buildTable8().renderAscii(); break;
      case 9: std::cout << report::buildTable9().renderAscii(); break;
      default: throw Error("table number must be 1..9");
    }
    std::cout << '\n';
  };
  // The memlab families ride the same harness as the numbered tables, so
  // `table sweep` / `table chase` are what shard and supervise workers
  // exec; the top-level `nodebench sweep` / `nodebench chase` commands
  // are aliases onto this path.
  const auto emitFamily = [&](const std::string& family) {
    if (family == "sweep") {
      const auto rows = report::computeSweep(opt, &incidents);
      std::cout << report::renderSweep(rows, &incidents).renderAscii();
      if (const std::string chart = report::renderSweepChart(rows);
          !chart.empty()) {
        std::cout << '\n' << chart;
      }
    } else {
      const auto rows = report::computeChase(opt, &incidents);
      std::cout << report::renderChaseNs(rows, &incidents).renderAscii()
                << '\n'
                << report::renderChaseClk(rows, &incidents).renderAscii();
      if (const std::string chart = report::renderChaseChart(rows);
          !chart.empty()) {
        std::cout << '\n' << chart;
      }
    }
    std::cout << '\n';
  };
  if (which == "all") {
    for (int n = 1; n <= 9; ++n) {
      emit(n);
    }
  } else if (which == "sweep" || which == "chase") {
    emitFamily(which);
  } else {
    emit(std::stoi(which));
  }
  // Fault-free runs collect no incidents, so stdout stays byte-identical
  // to the pre-resilience harness.
  const std::string diagnostics = report::renderDiagnostics(incidents);
  if (!diagnostics.empty()) {
    std::cout << diagnostics;
  }
  finishTrace(tr);
  return 0;
}

void printStream(const babelstream::RunResult& result) {
  for (const auto& op : result.ops) {
    std::printf("  %-6s %10.2f +- %.2f GB/s\n",
                std::string(babelstream::streamOpName(op.op)).c_str(),
                op.bandwidthGBps.mean, op.bandwidthGBps.stddev);
  }
  std::printf("  best: %s (%s)\n",
              std::string(babelstream::streamOpName(result.best().op)).c_str(),
              result.best().bandwidthGBps.toString().c_str());
}

int cmdStream(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  babelstream::DriverConfig cfg;
  {
    const trace::Scope traceScope(m.info.name + "/babelstream");
    if (m.accelerated()) {
      int device = 0;
      if (const auto d = flagValue(args, "--device")) {
        device = std::stoi(*d);
      }
      cfg.arrayBytes = ByteCount::gib(1);
      babelstream::SimDeviceBackend backend(m, device);
      std::cout << "BabelStream (device backend) on " << m.info.name << ":\n";
      printStream(babelstream::run(backend, cfg));
    } else {
      const ompenv::OmpConfig omp{m.coreCount(), ompenv::ProcBind::Spread,
                                  ompenv::Places::Cores};
      babelstream::SimOmpBackend backend(m, omp);
      std::cout << "BabelStream (OpenMP backend, " << omp.toString()
                << ") on " << m.info.name << ":\n";
      printStream(babelstream::run(backend, cfg));
    }
  }
  finishTrace(tr);
  return 0;
}

int cmdLatency(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  std::string pair = "on-socket";
  if (const auto p = flagValue(args, "--pair")) {
    pair = *p;
  }
  osu::LatencyConfig cfg;
  if (const auto s = flagValue(args, "--size")) {
    cfg.messageSize = ByteCount::bytes(std::stoull(*s));
  }

  std::optional<osu::PlacementPair> ranks;
  auto kind = mpisim::BufferSpace::Kind::Host;
  if (pair == "on-socket") {
    ranks = osu::onSocketPair(m);
  } else if (pair == "on-node") {
    ranks = osu::onNodePair(m);
  } else if (pair.size() == 1 && pair[0] >= 'A' && pair[0] <= 'D') {
    ranks = osu::devicePair(m, static_cast<topo::LinkClass>(pair[0] - 'A'));
    kind = mpisim::BufferSpace::Kind::Device;
  } else {
    throw Error("unknown --pair value: " + pair);
  }

  {
    const trace::Scope traceScope(m.info.name + "/osu_latency");
    const osu::LatencyBenchmark bench(m, ranks->first, ranks->second, kind);
    const auto result = bench.measure(cfg);
    std::printf("osu_latency on %s (%s, %llu B): %s us\n",
                m.info.name.c_str(), pair.c_str(),
                static_cast<unsigned long long>(cfg.messageSize.count()),
                result.latencyUs.toString().c_str());
  }
  finishTrace(tr);
  return 0;
}

int cmdCommScope(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  {
    const trace::Scope traceScope(m.info.name + "/commscope");
    commscope::CommScope scope(m);
    const commscope::Config cfg;
    const auto all = scope.measureAll(cfg);
    std::printf("Comm|Scope on %s:\n", m.info.name.c_str());
    std::printf("  kernel launch : %s us\n", all.launchUs.toString().c_str());
    std::printf("  sync wait     : %s us\n", all.waitUs.toString().c_str());
    std::printf("  H<->D latency : %s us\n",
                all.hostDeviceLatencyUs.toString().c_str());
    std::printf("  H<->D bw      : %s GB/s\n",
                all.hostDeviceBandwidthGBps.toString().c_str());
    for (int c = 0; c < 4; ++c) {
      if (all.d2dLatencyUs[c]) {
        std::printf("  D2D class %c   : %s us\n", static_cast<char>('A' + c),
                    all.d2dLatencyUs[c]->toString().c_str());
      }
    }
  }
  finishTrace(tr);
  return 0;
}

int cmdDiff(std::vector<std::string> args) {
  if (args.size() < 2) {
    return usage();
  }
  const machines::Machine& a = machines::byName(args[0]);
  const machines::Machine& b = machines::byName(args[1]);

  Table t({"Quantity", a.info.name, b.info.name, "ratio"});
  t.setTitle("Side-by-side: " + a.info.name + " vs " + b.info.name);
  const auto row = [&](const std::string& label, double va, double vb,
                       int precision = 2) {
    t.addRow({label, formatFixed(va, precision), formatFixed(vb, precision),
              formatFixed(vb != 0.0 ? va / vb : 0.0, 2)});
  };

  const auto streamOf = [](const machines::Machine& m) {
    babelstream::DriverConfig cfg;
    cfg.binaryRuns = 20;
    if (m.accelerated()) {
      cfg.arrayBytes = ByteCount::gib(1);
      babelstream::SimDeviceBackend backend(m, 0);
      return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
    }
    babelstream::SimOmpBackend backend(
        m, ompenv::OmpConfig{m.coreCount(), ompenv::ProcBind::Spread,
                             ompenv::Places::Cores});
    return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
  };
  const auto hostLatOf = [](const machines::Machine& m) {
    const auto [x, y] = osu::onSocketPair(m);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = 20;
    return osu::LatencyBenchmark(m, x, y, mpisim::BufferSpace::Kind::Host)
        .measure(cfg)
        .latencyUs.mean;
  };

  row("stream bandwidth (GB/s)", streamOf(a), streamOf(b), 1);
  row("host MPI latency (us)", hostLatOf(a), hostLatOf(b));
  if (a.accelerated() && b.accelerated()) {
    const auto devLatOf = [](const machines::Machine& m) {
      const auto [x, y] = osu::devicePair(m, topo::LinkClass::A);
      osu::LatencyConfig cfg;
      cfg.binaryRuns = 20;
      return osu::LatencyBenchmark(m, x, y,
                                   mpisim::BufferSpace::Kind::Device)
          .measure(cfg)
          .latencyUs.mean;
    };
    row("device MPI latency A (us)", devLatOf(a), devLatOf(b));
    commscope::Config cfg;
    cfg.binaryRuns = 20;
    commscope::CommScope sa(a);
    commscope::CommScope sb(b);
    row("kernel launch (us)", sa.kernelLaunchUs(cfg).mean,
        sb.kernelLaunchUs(cfg).mean);
    row("sync wait (us)", sa.syncWaitUs(cfg).mean,
        sb.syncWaitUs(cfg).mean);
    row("H<->D latency (us)", sa.hostDeviceLatencyUs(cfg).mean,
        sb.hostDeviceLatencyUs(cfg).mean);
    row("H<->D bandwidth (GB/s)", sa.hostDeviceBandwidthGBps(cfg).mean,
        sb.hostDeviceBandwidthGBps(cfg).mean);
  }
  std::cout << t.renderAscii();
  return 0;
}

int cmdCard(std::vector<std::string> args) {
  const bool json = flagPresent(args, "--json");
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  std::cout << (json ? machines::machineJson(m) : machines::machineCard(m));
  return 0;
}

int cmdBalance() {
  std::cout << report::renderBalance(report::computeBalance()).renderAscii();
  return 0;
}

int cmdExport(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  report::TableOptions opt;
  std::optional<faults::FaultPlan> plan;
  if (const auto planPath = flagValue(args, "--faults")) {
    plan = faults::FaultPlan::load(*planPath);
    opt.faults = &*plan;
  }
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    opt.binaryRuns = *runs;
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    opt.jobs = *jobs;
  }
  std::string dir = "nodebench-export";
  if (const auto d = flagValue(args, "--dir")) {
    dir = *d;
  }
  const std::unique_ptr<campaign::ShardPlan> shardPlan =
      openShardPlan(args, opt);
  const bool resume =
      std::find(args.begin(), args.end(), "--resume") != args.end();
  const std::unique_ptr<campaign::Journal> journal = openJournal(args, opt);
  if (shardPlan && !journal) {
    throw Error("--shard requires --journal FILE (the shard journal is "
                "what `nodebench merge` consumes)");
  }
  const std::unique_ptr<stats::ResultStore> store =
      openStore(args, opt, resume);
  if (journal) {
    installInterruptHandlers();
    opt.cancel = &interruptToken();
  }
  rejectLeftoverFlags(args);
  const auto manifest = report::exportAllTables(dir, opt);
  for (const auto& path : manifest.written) {
    std::cout << "wrote " << path.string() << "\n";
  }
  finishTrace(tr);
  return 0;
}

/// `nodebench faults <plan.json>`: end-to-end fault-injection demo. Runs
/// the measurement tables under the plan (affected cells degrade to
/// "n/a", recovered ones report their retries in the diagnostics
/// appendix), then an inter-node measurement whose packet-loss /
/// brownout parameters come from the same plan, reporting the
/// retransmit count the transport recovery performed.
int cmdFaults(std::vector<std::string> args) {
  const TraceRequest tr = traceRequest(args);
  if (args.empty()) {
    return usage();
  }
  report::TableOptions opt;
  opt.binaryRuns = 25;  // demo default; --runs restores full methodology
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    opt.binaryRuns = *runs;
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    opt.jobs = *jobs;
  }
  const faults::FaultPlan plan = faults::FaultPlan::load(args[0]);
  opt.faults = &plan;
  std::cout << plan.summary() << '\n';

  std::vector<report::CellIncident> incidents;
  const auto t4 = report::computeTable4(opt, &incidents);
  const auto t5 = report::computeTable5(opt, &incidents);
  const auto t6 = report::computeTable6(opt, &incidents);
  std::cout << report::renderTable4(t4, &incidents).renderAscii() << '\n'
            << report::renderTable5(t5, &incidents).renderAscii() << '\n'
            << report::renderTable6(t6, &incidents).renderAscii() << '\n'
            << report::buildTable7(t5, t6, &incidents).renderAscii() << '\n';
  const std::string diagnostics = report::renderDiagnostics(incidents);
  std::cout << (diagnostics.empty() ? "No incidents: every cell measured "
                                      "on its first attempt.\n"
                                    : diagnostics);

  // Inter-node leg on the first machine the plan touches (any machine if
  // the plan is global-only).
  const machines::Machine* target = nullptr;
  for (const machines::Machine& m : machines::allMachines()) {
    if (plan.touches(m.info.name)) {
      target = &m;
      break;
    }
  }
  if (target != nullptr) {
    const trace::Scope traceScope(target->info.name + "/internode");
    netsim::InterNodeConfig ncfg;
    ncfg.binaryRuns = opt.binaryRuns;
    mpisim::InterNodeParams network = netsim::networkFor(*target);
    plan.applyToNetwork(target->info.name, network);
    ncfg.network = network;
    // Generous virtual-time ceiling: a wedged simulated run aborts with a
    // TimeoutError instead of hanging the demo.
    ncfg.watchdog = Duration::seconds(10.0);
    const auto inter = netsim::measureInterNode(*target, ncfg);
    std::printf(
        "\nInter-node ping-pong on %s under the plan (8 B): %s us, "
        "%llu retransmit(s)\n",
        target->info.name.c_str(), inter.latencyUs.toString().c_str(),
        static_cast<unsigned long long>(inter.retransmits));
  }
  finishTrace(tr);
  return 0;
}

/// `nodebench trace [machine]`: tracing demo. Runs three instrumented
/// legs on one machine — an intra-node osu_latency ping-pong, a GPU
/// launch/copy/sync sequence (accelerated systems), and an inter-node
/// ping-pong with forced 2% packet loss so the trace shows loss/
/// retransmit recovery — then writes the Chrome trace JSON (open in
/// Perfetto: https://ui.perfetto.dev) and prints the metrics summary.
int cmdTrace(std::vector<std::string> args) {
  std::string outPath = "nodebench-trace.json";
  if (const auto out = flagValue(args, "--out")) {
    outPath = *out;
  }
  const machines::Machine& m =
      machines::byName(args.empty() ? "Frontier" : args[0]);
  trace::Session session;

  {
    const trace::Scope traceScope(m.info.name + "/pingpong");
    const auto [a, b] = osu::onSocketPair(m);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = 25;
    const osu::LatencyBenchmark bench(m, a, b,
                                      mpisim::BufferSpace::Kind::Host);
    const auto result = bench.measure(cfg);
    std::printf("osu_latency on %s (on-socket, 8 B): %s us\n",
                m.info.name.c_str(), result.latencyUs.toString().c_str());
  }

  if (m.accelerated()) {
    const trace::Scope traceScope(m.info.name + "/gpu");
    gpusim::GpuRuntime rt(m);
    const auto stream = rt.defaultStream(0);
    const auto host = rt.allocPinnedHost(ByteCount::mib(64));
    const auto dev = rt.allocDevice(0, ByteCount::mib(64));
    rt.memcpyAsync(stream, dev, host, ByteCount::mib(64));
    rt.launchKernel(stream, Duration::microseconds(25.0));
    rt.memcpyAsync(stream, host, dev, ByteCount::mib(64));
    rt.streamSynchronize(stream);
    std::printf("GPU H2D + kernel + D2H on %s: %.3f us\n",
                m.info.name.c_str(), rt.hostNow().us());
  }

  {
    const trace::Scope traceScope(m.info.name + "/internode");
    netsim::InterNodeConfig ncfg;
    ncfg.binaryRuns = 25;
    mpisim::InterNodeParams network = netsim::networkFor(m);
    network.packetLossRate = 0.02;  // force visible loss/retransmit events
    ncfg.network = network;
    ncfg.watchdog = Duration::seconds(10.0);
    const auto inter = netsim::measureInterNode(m, ncfg);
    std::printf(
        "Inter-node ping-pong on %s (8 B, 2%% forced loss): %s us, "
        "%llu retransmit(s)\n",
        m.info.name.c_str(), inter.latencyUs.toString().c_str(),
        static_cast<unsigned long long>(inter.retransmits));
  }

  std::ofstream out(outPath, std::ios::binary);
  if (!out) {
    throw Error("cannot open trace output file: " + outPath);
  }
  out << trace::chromeJson(session);
  if (!out) {
    throw Error("failed writing trace output file: " + outPath);
  }
  std::cout << "wrote " << outPath
            << " (open in Perfetto: https://ui.perfetto.dev)\n";
  std::cout << trace::metricsSummary(session);
  return 0;
}

/// `nodebench compare` / `nodebench gate`: statistical regression
/// detection between two results stores (see stats/compare.hpp). The
/// gate variant prints a terse line per regression and exits with
/// stats::kGateRegressionExitCode when any cell shows a statistically
/// significant, material regression — CI-pipeline-friendly.
int cmdCompare(std::vector<std::string> args, bool gate) {
  stats::CompareOptions copt;
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    copt.jobs = *jobs;
  }
  if (const auto threshold = positiveDoubleFlagValue(args, "--threshold")) {
    copt.thresholdPct = *threshold;
  }
  if (const auto alpha = positiveDoubleFlagValue(args, "--alpha")) {
    if (*alpha >= 1.0) {
      throw Error("--alpha expects a significance level in (0, 1)");
    }
    copt.alpha = *alpha;
  }
  rejectLeftoverFlags(args);
  if (args.size() != 2) {
    return usage();
  }
  const stats::StoreContents baseline = stats::ResultStore::load(args[0]);
  const stats::StoreContents candidate = stats::ResultStore::load(args[1]);
  const stats::CompareReport report =
      stats::compareStores(baseline, candidate, copt);
  if (gate) {
    std::cout << stats::renderGate(report);
    return stats::gateExit(report);
  }
  std::cout << stats::renderCompare(report);
  return 0;
}

/// Reads + merges a complete shard journal set (and, optionally, the
/// matching stores) and writes the merged artifacts. Shared by
/// `nodebench merge` and the driver's --merge-out. Outputs are refused
/// when they already exist — a merge is a derived artifact, and silently
/// clobbering a previous one is how stale baselines are born.
int runMerge(const std::vector<std::string>& journalPaths,
             const std::string& outPath,
             const std::vector<std::string>& storePaths,
             const std::optional<std::string>& storeOutPath,
             const campaign::MergeOptions& mopt = {},
             const std::optional<std::string>& gapOutPath = std::nullopt) {
  struct stat st {};
  if (::stat(outPath.c_str(), &st) == 0) {
    throw Error("merge output already exists: " + outPath +
                " (remove it first, or merge to a different path)");
  }
  if (storeOutPath && ::stat(storeOutPath->c_str(), &st) == 0) {
    throw Error("merge output already exists: " + *storeOutPath +
                " (remove it first, or merge to a different path)");
  }
  std::vector<campaign::ShardInput> inputs;
  inputs.reserve(journalPaths.size());
  for (const std::string& path : journalPaths) {
    inputs.push_back(campaign::readShardInput(path));
  }
  const campaign::MergedCampaign merged =
      campaign::mergeShardJournals(inputs, mopt);
  campaign::io::atomicWrite(outPath, merged.journalBytes, "merge");
  std::cout << "merged " << inputs.size() << " shard journal(s) -> "
            << outPath << " ("
            << merged.grid.size() - merged.missingCells.size()
            << " cell record(s))\n";
  if (storeOutPath) {
    std::vector<stats::ShardStoreInput> stores;
    stores.reserve(storePaths.size());
    for (const std::string& path : storePaths) {
      stores.push_back(stats::loadShardStoreInput(path));
    }
    const std::vector<std::uint8_t> bytes =
        stats::mergeShardStores(stores, merged);
    campaign::io::atomicWrite(*storeOutPath, bytes, "merge");
    std::cout << "merged " << stores.size() << " shard store(s) -> "
              << *storeOutPath << "\n";
  }
  if (!merged.partial) {
    return 0;
  }
  // Partial: a smaller table is never silent. The gap manifest names
  // every missing shard and cell, and the exit code is distinct.
  const std::string gapPath =
      gapOutPath ? *gapOutPath : outPath + ".gaps.json";
  const std::string manifest = campaign::renderGapManifest(merged);
  campaign::io::atomicWrite(
      gapPath,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(manifest.data()),
          manifest.size()),
      "gap manifest");
  std::cerr << "nodebench merge: PARTIAL merge: "
            << merged.missingCells.size() << " cell(s) from "
            << merged.missingShards.size()
            << " missing shard(s); gap manifest at " << gapPath << "\n";
  return supervise::kPartialCampaignExitCode;
}

/// Reads a supervisor journal and returns its quarantine record (shard,
/// attempts, last incident per poisoned shard) so a hand-driven
/// `merge --allow-partial` names *why* each shard is missing, exactly as
/// the supervisor's own degrade path does.
std::vector<campaign::ShardGap> quarantineFromSupervisorJournal(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot read supervisor journal: " + path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto decoded = supervise::SupervisorJournal::decode(bytes);
  std::map<std::uint32_t, campaign::ShardGap> gaps;
  for (const supervise::SupervisorEvent& event : decoded.events) {
    if (event.kind == supervise::EventKind::ShardPoisoned) {
      campaign::ShardGap gap;
      gap.shard = event.shard;
      gap.attempts = event.attempt;
      gap.lastIncident = event.detail;
      gaps[event.shard] = std::move(gap);
    }
  }
  std::vector<campaign::ShardGap> out;
  out.reserve(gaps.size());
  for (auto& [shard, gap] : gaps) {
    out.push_back(std::move(gap));
  }
  return out;
}

/// `nodebench merge`: validate a complete shard set and rebuild the
/// single-process artifact (see campaign/shard.hpp for the refusal
/// contract).
int cmdMerge(std::vector<std::string> args) {
  const auto out = flagValue(args, "--out");
  if (!out) {
    if (std::find(args.begin(), args.end(), "--out") != args.end()) {
      throw Error("--out expects a value");
    }
    throw Error("merge requires --out FILE (the merged journal path)");
  }
  const auto storeOut = flagValue(args, "--store-out");
  if (!storeOut &&
      std::find(args.begin(), args.end(), "--store-out") != args.end()) {
    throw Error("--store-out expects a value");
  }
  std::vector<std::string> storePaths;
  while (const auto s = flagValue(args, "--stores")) {
    storePaths.push_back(*s);
  }
  if (std::find(args.begin(), args.end(), "--stores") != args.end()) {
    throw Error("--stores expects a value");
  }
  campaign::MergeOptions mopt;
  mopt.allowPartial = flagPresent(args, "--allow-partial");
  const auto gapOut = flagValue(args, "--gap-out");
  if (!gapOut &&
      std::find(args.begin(), args.end(), "--gap-out") != args.end()) {
    throw Error("--gap-out expects a value");
  }
  const auto supJournal = flagValue(args, "--supervisor-journal");
  if (!supJournal && std::find(args.begin(), args.end(),
                               "--supervisor-journal") != args.end()) {
    throw Error("--supervisor-journal expects a value");
  }
  rejectLeftoverFlags(args);
  if (args.empty()) {
    return usage();
  }
  if (storeOut && storePaths.empty()) {
    throw Error("--store-out requires the shard stores (--stores FILE, "
                "once per shard)");
  }
  if (!storePaths.empty() && !storeOut) {
    throw Error("--stores requires --store-out FILE (the merged store "
                "path)");
  }
  if (gapOut && !mopt.allowPartial) {
    throw Error("--gap-out requires --allow-partial (a strict merge can "
                "have no gaps)");
  }
  if (supJournal && !mopt.allowPartial) {
    throw Error("--supervisor-journal requires --allow-partial (the "
                "quarantine record only annotates gaps)");
  }
  if (supJournal) {
    mopt.quarantined = quarantineFromSupervisorJournal(*supJournal);
  }
  return runMerge(args, *out, storePaths, storeOut, mopt, gapOut);
}

/// `nodebench shard`: the multi-process campaign driver. Forks N worker
/// processes — fork happens before any threads exist in this process —
/// each exec'ing this same binary as `table <which> --shard i/N` with a
/// shard-suffixed journal (and store). Worker stdout is discarded (the
/// deliverable is the shard artifacts); stderr is inherited so journal
/// chatter and errors stay visible.
int cmdShard(std::vector<std::string> args) {
  const auto shards = positiveFlagValue(args, "--shards");
  if (!shards) {
    throw Error("shard requires --shards N (the worker-process count)");
  }
  if (static_cast<std::uint32_t>(*shards) > campaign::kMaxShardCount) {
    throw Error("--shards must be at most " +
                std::to_string(campaign::kMaxShardCount));
  }
  const auto count = static_cast<std::uint32_t>(*shards);
  const auto journalBase = flagValue(args, "--journal");
  if (!journalBase) {
    if (std::find(args.begin(), args.end(), "--journal") != args.end()) {
      throw Error("--journal expects a value");
    }
    throw Error("shard requires --journal BASE (worker journals land at "
                "BASE.shard<i>of<N>)");
  }
  const auto storeBase = flagValue(args, "--store");
  if (!storeBase &&
      std::find(args.begin(), args.end(), "--store") != args.end()) {
    throw Error("--store expects a value");
  }
  const auto runs = positiveFlagValue(args, "--runs");
  const auto jobs = positiveFlagValue(args, "--jobs");
  const auto faults = flagValue(args, "--faults");
  const auto delay = positiveFlagValue(args, "--test-cell-delay-ms");
  const bool resume = flagPresent(args, "--resume");
  const auto mergeOut = flagValue(args, "--merge-out");
  const auto mergeStoreOut = flagValue(args, "--merge-store-out");
  rejectLeftoverFlags(args);
  if (args.size() != 1) {
    return usage();
  }
  const std::string which = args[0];
  if (mergeStoreOut && !storeBase) {
    throw Error("--merge-store-out requires --store BASE (the workers "
                "must write shard stores to merge)");
  }
  if (mergeStoreOut && !mergeOut) {
    throw Error("--merge-store-out requires --merge-out FILE");
  }

  std::vector<std::string> journalPaths(count);
  std::vector<std::string> storePaths;
  std::vector<pid_t> pids(count, -1);
  for (std::uint32_t i = 0; i < count; ++i) {
    const campaign::ShardSpec spec{i, count};
    journalPaths[i] = campaign::shardPath(*journalBase, spec);
    if (storeBase) {
      storePaths.push_back(campaign::shardPath(*storeBase, spec));
    }
    std::vector<std::string> workerArgs = {
        "nodebench",          "table", which, "--shard",
        campaign::shardSpecText(spec), "--journal", journalPaths[i]};
    if (storeBase) {
      workerArgs.push_back("--store");
      workerArgs.push_back(storePaths[i]);
    }
    if (runs) {
      workerArgs.push_back("--runs");
      workerArgs.push_back(std::to_string(*runs));
    }
    if (jobs) {
      workerArgs.push_back("--jobs");
      workerArgs.push_back(std::to_string(*jobs));
    }
    if (faults) {
      workerArgs.push_back("--faults");
      workerArgs.push_back(*faults);
    }
    if (delay) {
      workerArgs.push_back("--test-cell-delay-ms");
      workerArgs.push_back(std::to_string(*delay));
    }
    // A worker resumes only when its own journal already exists: on the
    // first --resume after a partial campaign, finished shards replay,
    // never-started shards begin fresh.
    struct stat st {};
    if (resume && ::stat(journalPaths[i].c_str(), &st) == 0) {
      workerArgs.push_back("--resume");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw Error(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Worker: discard stdout (tables are rebuilt by the merge), keep
      // stderr, become `nodebench table ... --shard i/N`.
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
      }
      std::vector<char*> argvC;
      argvC.reserve(workerArgs.size() + 1);
      for (std::string& s : workerArgs) {
        argvC.push_back(s.data());
      }
      argvC.push_back(nullptr);
      ::execv("/proc/self/exe", argvC.data());
      std::fprintf(stderr, "nodebench shard: exec failed: %s\n",
                   std::strerror(errno));
      std::_Exit(127);
    }
    pids[i] = pid;
    std::cerr << "nodebench shard: worker " << campaign::shardSpecText(spec)
              << " (pid " << pid << ") -> " << journalPaths[i] << "\n";
  }

  bool interrupted = false;
  bool failed = false;
  for (std::uint32_t i = 0; i < count; ++i) {
    int status = 0;
    if (::waitpid(pids[i], &status, 0) < 0) {
      throw Error(std::string("waitpid failed: ") + std::strerror(errno));
    }
    const std::string name =
        campaign::shardSpecText(campaign::ShardSpec{i, count});
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) {
        continue;
      }
      if (code == kInterruptedExitCode) {
        std::cerr << "nodebench shard: worker " << name
                  << " was interrupted (its journal is intact)\n";
        interrupted = true;
        continue;
      }
      std::cerr << "nodebench shard: worker " << name
                << " failed with exit code " << code << "\n";
      failed = true;
    } else if (WIFSIGNALED(status)) {
      std::cerr << "nodebench shard: worker " << name << " was killed by "
                << "signal " << WTERMSIG(status)
                << " (rerun with --resume to finish its slice)\n";
      interrupted = true;
    }
  }
  if (failed) {
    throw Error("one or more shard workers failed; see messages above");
  }
  if (interrupted) {
    std::cerr << "nodebench shard: campaign incomplete; rerun the same "
                 "command with --resume to finish, then merge\n";
    return kInterruptedExitCode;
  }
  if (mergeOut) {
    return runMerge(journalPaths, *mergeOut, storePaths, mergeStoreOut);
  }
  {
    std::cout << "sharded campaign complete: " << count
              << " journal(s) at " << *journalBase << ".shard*of" << count
              << "; combine with `nodebench merge`\n";
  }
  return 0;
}

/// Stop flag for `nodebench supervise`: the signal handler only sets
/// it; the supervisor's event loop polls it and drains (SIGTERM to
/// workers, exit 43, journal intact for --resume).
volatile std::sig_atomic_t g_superviseStopFlag = 0;

void onSuperviseSignal(int /*signo*/) { g_superviseStopFlag = 1; }

/// `nodebench supervise`: the fault-tolerant lease-based campaign
/// coordinator (see supervise/supervisor.hpp for the protocol).
int cmdSupervise(std::vector<std::string> args) {
  supervise::SuperviseOptions sopt;
  if (const auto shards = positiveFlagValue(args, "--shards")) {
    sopt.shards = static_cast<std::uint32_t>(*shards);
  } else {
    throw Error("supervise requires --shards N (the shard count)");
  }
  if (const auto workers = positiveFlagValue(args, "--workers")) {
    sopt.workers = static_cast<std::uint32_t>(*workers);
  }
  if (const auto journal = flagValue(args, "--journal")) {
    sopt.journalBase = *journal;
  } else {
    if (std::find(args.begin(), args.end(), "--journal") != args.end()) {
      throw Error("--journal expects a value");
    }
    throw Error("supervise requires --journal BASE (worker journals land "
                "at BASE.shard<i>of<N>)");
  }
  if (const auto store = flagValue(args, "--store")) {
    sopt.storeBase = *store;
  } else if (std::find(args.begin(), args.end(), "--store") != args.end()) {
    throw Error("--store expects a value");
  }
  if (const auto path = flagValue(args, "--supervisor-journal")) {
    sopt.supervisorJournalPath = *path;
  } else if (std::find(args.begin(), args.end(), "--supervisor-journal") !=
             args.end()) {
    throw Error("--supervisor-journal expects a value");
  }
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    sopt.runs = static_cast<std::uint32_t>(*runs);
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    sopt.jobs = static_cast<std::uint32_t>(*jobs);
  }
  if (const auto faults = flagValue(args, "--faults")) {
    sopt.faultsPath = *faults;
  } else if (std::find(args.begin(), args.end(), "--faults") != args.end()) {
    throw Error("--faults expects a value");
  }
  if (const auto v = positiveFlagValue(args, "--max-attempts")) {
    sopt.maxAttempts = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--backoff-base-ms")) {
    sopt.backoff.baseMs = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--backoff-cap-ms")) {
    sopt.backoff.capMs = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--heartbeat-interval-ms")) {
    sopt.heartbeatIntervalMs = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--heartbeat-timeout-ms")) {
    sopt.heartbeatTimeoutMs = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--attempt-timeout-ms")) {
    sopt.attemptTimeoutMs = static_cast<std::uint32_t>(*v);
  }
  sopt.resume = flagPresent(args, "--resume");
  if (const auto out = flagValue(args, "--merge-out")) {
    sopt.mergeOut = *out;
  } else if (std::find(args.begin(), args.end(), "--merge-out") !=
             args.end()) {
    throw Error("--merge-out expects a value");
  }
  if (const auto out = flagValue(args, "--merge-store-out")) {
    sopt.mergeStoreOut = *out;
  } else if (std::find(args.begin(), args.end(), "--merge-store-out") !=
             args.end()) {
    throw Error("--merge-store-out expects a value");
  }
  if (const auto out = flagValue(args, "--gap-out")) {
    sopt.gapOut = *out;
  } else if (std::find(args.begin(), args.end(), "--gap-out") !=
             args.end()) {
    throw Error("--gap-out expects a value");
  }
  if (const auto v = positiveFlagValue(args, "--test-cell-delay-ms")) {
    sopt.testCellDelayMs = static_cast<std::uint32_t>(*v);
  }
  // Hidden chaos hooks (see SuperviseOptions): deterministically poison
  // or stall one shard so the suite can prove quarantine + reassignment.
  if (const auto v = nonNegativeFlagValue(args, "--test-poison-shard")) {
    sopt.testPoisonShard = *v;
  }
  if (const auto v = nonNegativeFlagValue(args, "--test-stall-shard")) {
    sopt.testStallShard = *v;
  }
  rejectLeftoverFlags(args);
  if (args.size() != 1) {
    return usage();
  }
  sopt.table = args[0];

  g_superviseStopFlag = 0;
  sopt.stopFlag = &g_superviseStopFlag;
  (void)std::signal(SIGINT, onSuperviseSignal);
  (void)std::signal(SIGTERM, onSuperviseSignal);
  const supervise::SuperviseResult result = supervise::runSupervise(sopt);
  if (result.exitCode == kInterruptedExitCode) {
    std::cerr << "nodebench supervise: campaign interrupted; rerun the "
                 "same command with --resume to finish\n";
  }
  return result.exitCode;
}

/// Drain flag for `nodebench serve`: the signal handler only sets it;
/// the main thread polls and runs the actual (not async-signal-safe)
/// drain sequence.
volatile std::sig_atomic_t g_serveDrainFlag = 0;

void onServeSignal(int /*signo*/) { g_serveDrainFlag = 1; }

/// `nodebench serve`: the crash-tolerant measurement daemon (see
/// serve/server.hpp for the architecture and robustness contract).
int cmdServe(std::vector<std::string> args) {
  serve::ServerOptions sopt;
  if (const auto socket = flagValue(args, "--socket")) {
    sopt.socketPath = *socket;
  } else if (std::find(args.begin(), args.end(), "--socket") != args.end()) {
    throw Error("--socket expects a value");
  }
  if (const auto port = flagValue(args, "--port")) {
    // 0 is meaningful (ephemeral port, reported after bind), so this
    // cannot reuse positiveFlagValue.
    std::size_t used = 0;
    int value = -1;
    try {
      value = std::stoi(*port, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != port->size() || value < 0 || value > 65535) {
      throw Error("--port expects a port number 0..65535, got '" + *port +
                  "'");
    }
    sopt.port = value;
  } else if (std::find(args.begin(), args.end(), "--port") != args.end()) {
    throw Error("--port expects a value");
  }
  if (const auto dir = flagValue(args, "--state-dir")) {
    sopt.stateDir = *dir;
  } else if (std::find(args.begin(), args.end(), "--state-dir") !=
             args.end()) {
    throw Error("--state-dir expects a value");
  }
  if (const auto v = positiveFlagValue(args, "--queue-depth")) {
    sopt.limits.maxQueueDepth = static_cast<std::size_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--tenant-queue")) {
    sopt.limits.maxQueuedPerTenant = static_cast<std::size_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--tenant-inflight")) {
    sopt.limits.maxInflightPerTenant = static_cast<std::size_t>(*v);
  }
  if (const auto v = positiveFlagValue(args, "--executors")) {
    sopt.executorThreads = *v;
  }
  if (const auto v = positiveFlagValue(args, "--io-threads")) {
    sopt.ioThreads = *v;
  }
  if (const auto v = positiveFlagValue(args, "--memo-max-entries")) {
    sopt.memoMaxEntries = static_cast<std::size_t>(*v);
  }
  sopt.resume = flagPresent(args, "--resume");
  sopt.allowDebugHooks = flagPresent(args, "--test-hooks");
  rejectLeftoverFlags(args);
  if (!args.empty()) {
    return usage();
  }

  const std::string socketPath = sopt.socketPath;
  serve::Server server(std::move(sopt));
  server.start();
  if (!socketPath.empty()) {
    std::cout << "nodebench serve: listening on unix:" << socketPath
              << std::endl;
  } else {
    std::cout << "nodebench serve: listening on 127.0.0.1:"
              << server.boundPort() << std::endl;
  }

  g_serveDrainFlag = 0;
  (void)std::signal(SIGINT, onServeSignal);
  (void)std::signal(SIGTERM, onServeSignal);
  while (g_serveDrainFlag == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "nodebench serve: drain requested; finishing in-flight "
               "work\n";
  server.requestDrain();
  server.waitUntilStopped();
  std::cerr << "nodebench serve: drained\n";
  return 0;
}

int cmdNative(std::vector<std::string> args) {
  int threads = 0;
  if (const auto t = flagValue(args, "--threads")) {
    threads = std::stoi(*t);
  }
  native::NativeStreamBackend backend(threads);
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::mib(64);
  cfg.binaryRuns = 5;  // real runs are slow; this is a demo measurement
  std::cout << "Native BabelStream on this host (" << backend.name()
            << "):\n";
  printStream(babelstream::run(backend, cfg));

  native::NativePingPongConfig pcfg;
  pcfg.cores = {{0, 1}};
  const Duration lat = native::nativePingPongOneWay(pcfg);
  std::printf("Native shared-memory ping-pong (cores 0,1, 8 B): %.3f us\n",
              lat.us());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      return usage();
    }
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "list") {
      return cmdList();
    }
    if (cmd == "topo") {
      return cmdTopo(std::move(args));
    }
    if (cmd == "table") {
      return cmdTable(std::move(args));
    }
    if (cmd == "sweep" || cmd == "chase") {
      // Aliases for `table sweep` / `table chase`: the memlab families
      // share the table harness (and thus every campaign flag).
      args.insert(args.begin(), cmd);
      return cmdTable(std::move(args));
    }
    if (cmd == "stream") {
      return cmdStream(std::move(args));
    }
    if (cmd == "latency") {
      return cmdLatency(std::move(args));
    }
    if (cmd == "commscope") {
      return cmdCommScope(std::move(args));
    }
    if (cmd == "card") {
      return cmdCard(std::move(args));
    }
    if (cmd == "diff") {
      return cmdDiff(std::move(args));
    }
    if (cmd == "balance") {
      return cmdBalance();
    }
    if (cmd == "export") {
      return cmdExport(std::move(args));
    }
    if (cmd == "faults") {
      return cmdFaults(std::move(args));
    }
    if (cmd == "trace") {
      return cmdTrace(std::move(args));
    }
    if (cmd == "native") {
      return cmdNative(std::move(args));
    }
    if (cmd == "compare") {
      return cmdCompare(std::move(args), /*gate=*/false);
    }
    if (cmd == "gate") {
      return cmdCompare(std::move(args), /*gate=*/true);
    }
    if (cmd == "serve") {
      return cmdServe(std::move(args));
    }
    if (cmd == "shard") {
      return cmdShard(std::move(args));
    }
    if (cmd == "merge") {
      return cmdMerge(std::move(args));
    }
    if (cmd == "supervise") {
      return cmdSupervise(std::move(args));
    }
    return usage();
  } catch (const CancelledError& e) {
    std::cerr << "nodebench: " << e.what()
              << "; the journal is intact — rerun with --resume to finish\n";
    return kInterruptedExitCode;
  } catch (const std::exception& e) {
    std::cerr << "nodebench: error: " << e.what() << '\n';
    return 1;
  }
}
