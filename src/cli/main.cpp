/// \file main.cpp
/// \brief `nodebench` command-line tool.
///
/// Subcommands:
///   list                          system inventory (Tables 2+3)
///   topo <machine> [--dot]        node diagram / DOT export (Figures 1-3)
///   table <n|all> [--runs N]      regenerate paper table n (1..9)
///   stream <machine> [--device d] BabelStream on one machine
///   latency <machine> [--pair P] [--size B]   osu_latency (P: on-socket,
///                                 on-node, A, B, C, D)
///   commscope <machine>           Comm|Scope suite on one machine
///   native [--threads N]          real BabelStream + ping-pong on this host

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "commscope/commscope.hpp"
#include "core/error.hpp"
#include "machines/machine_card.hpp"
#include "machines/machine_json.hpp"
#include "machines/registry.hpp"
#include "native/pingpong_native.hpp"
#include "native/stream_native.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/balance.hpp"
#include "report/export.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"
#include "topo/dot.hpp"

namespace {

using namespace nodebench;

int usage() {
  std::cout <<
      "usage: nodebench <command> [args]\n"
      "  list                      system inventory (Tables 2+3)\n"
      "  topo <machine> [--dot]    node diagram (Figures 1-3) / DOT export\n"
      "  table <1..9|all> [--runs N] [--jobs N]  regenerate a paper table\n"
      "  stream <machine> [--device N]  BabelStream (simulated)\n"
      "  latency <machine> [--pair on-socket|on-node|A|B|C|D] [--size B]\n"
      "  commscope <machine>       Comm|Scope suite (simulated)\n"
      "  card <machine> [--json]   calibrated parameter card\n"
      "  diff <machine> <machine>  side-by-side comparison\n"
      "  balance                   machine-balance (flops/byte) table\n"
      "  export --dir D [--runs N] [--jobs N]  write tables as CSV + Markdown\n"
      "  native [--threads N]      real measurements on this host\n";
  return 2;
}

std::optional<std::string> flagValue(std::vector<std::string>& args,
                                     const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

/// Validated "--flag N" with N a positive integer; throws Error (caught
/// by main's top-level handler, exit code 1) on anything else, rather
/// than letting stoi's silent acceptance of "0" or "8x" configure a
/// nonsense harness.
std::optional<int> positiveFlagValue(std::vector<std::string>& args,
                                     const std::string& flag) {
  const auto raw = flagValue(args, flag);
  if (!raw) {
    // flagValue never matches a trailing flag (it needs a value after
    // it); don't let a dangling "--runs" be silently ignored.
    if (std::find(args.begin(), args.end(), flag) != args.end()) {
      throw Error(flag + " expects a value");
    }
    return std::nullopt;
  }
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(*raw, &used);
  } catch (const std::exception&) {
    throw Error(flag + " expects a positive integer, got '" + *raw + "'");
  }
  if (used != raw->size() || value < 1) {
    throw Error(flag + " expects a positive integer, got '" + *raw + "'");
  }
  return value;
}

bool flagPresent(std::vector<std::string>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

int cmdList() {
  std::cout << report::buildTable2().renderAscii() << '\n'
            << report::buildTable3().renderAscii();
  return 0;
}

int cmdTopo(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  const bool dot = flagPresent(args, "--dot");
  const machines::Machine& m = machines::byName(args[0]);
  if (dot) {
    std::cout << topo::toDot(m.topology, m.info.name);
  } else {
    std::cout << report::nodeDiagram(m) << '\n'
              << report::linkClassLegend(m);
  }
  return 0;
}

int cmdTable(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  report::TableOptions opt;
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    opt.binaryRuns = *runs;
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    opt.jobs = *jobs;
  }
  const std::string which = args[0];
  const auto emit = [&](int n) {
    switch (n) {
      case 1: std::cout << report::buildTable1().renderAscii(); break;
      case 2: std::cout << report::buildTable2().renderAscii(); break;
      case 3: std::cout << report::buildTable3().renderAscii(); break;
      case 4:
        std::cout << report::renderTable4(report::computeTable4(opt))
                         .renderAscii();
        break;
      case 5:
        std::cout << report::renderTable5(report::computeTable5(opt))
                         .renderAscii();
        break;
      case 6:
        std::cout << report::renderTable6(report::computeTable6(opt))
                         .renderAscii();
        break;
      case 7:
        std::cout << report::buildTable7(report::computeTable5(opt),
                                         report::computeTable6(opt))
                         .renderAscii();
        break;
      case 8: std::cout << report::buildTable8().renderAscii(); break;
      case 9: std::cout << report::buildTable9().renderAscii(); break;
      default: throw Error("table number must be 1..9");
    }
    std::cout << '\n';
  };
  if (which == "all") {
    for (int n = 1; n <= 9; ++n) {
      emit(n);
    }
  } else {
    emit(std::stoi(which));
  }
  return 0;
}

void printStream(const babelstream::RunResult& result) {
  for (const auto& op : result.ops) {
    std::printf("  %-6s %10.2f +- %.2f GB/s\n",
                std::string(babelstream::streamOpName(op.op)).c_str(),
                op.bandwidthGBps.mean, op.bandwidthGBps.stddev);
  }
  std::printf("  best: %s (%s)\n",
              std::string(babelstream::streamOpName(result.best().op)).c_str(),
              result.best().bandwidthGBps.toString().c_str());
}

int cmdStream(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  babelstream::DriverConfig cfg;
  if (m.accelerated()) {
    int device = 0;
    if (const auto d = flagValue(args, "--device")) {
      device = std::stoi(*d);
    }
    cfg.arrayBytes = ByteCount::gib(1);
    babelstream::SimDeviceBackend backend(m, device);
    std::cout << "BabelStream (device backend) on " << m.info.name << ":\n";
    printStream(babelstream::run(backend, cfg));
  } else {
    const ompenv::OmpConfig omp{m.coreCount(), ompenv::ProcBind::Spread,
                                ompenv::Places::Cores};
    babelstream::SimOmpBackend backend(m, omp);
    std::cout << "BabelStream (OpenMP backend, " << omp.toString() << ") on "
              << m.info.name << ":\n";
    printStream(babelstream::run(backend, cfg));
  }
  return 0;
}

int cmdLatency(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  std::string pair = "on-socket";
  if (const auto p = flagValue(args, "--pair")) {
    pair = *p;
  }
  osu::LatencyConfig cfg;
  if (const auto s = flagValue(args, "--size")) {
    cfg.messageSize = ByteCount::bytes(std::stoull(*s));
  }

  std::optional<osu::PlacementPair> ranks;
  auto kind = mpisim::BufferSpace::Kind::Host;
  if (pair == "on-socket") {
    ranks = osu::onSocketPair(m);
  } else if (pair == "on-node") {
    ranks = osu::onNodePair(m);
  } else if (pair.size() == 1 && pair[0] >= 'A' && pair[0] <= 'D') {
    ranks = osu::devicePair(m, static_cast<topo::LinkClass>(pair[0] - 'A'));
    kind = mpisim::BufferSpace::Kind::Device;
  } else {
    throw Error("unknown --pair value: " + pair);
  }

  const osu::LatencyBenchmark bench(m, ranks->first, ranks->second, kind);
  const auto result = bench.measure(cfg);
  std::printf("osu_latency on %s (%s, %llu B): %s us\n", m.info.name.c_str(),
              pair.c_str(),
              static_cast<unsigned long long>(cfg.messageSize.count()),
              result.latencyUs.toString().c_str());
  return 0;
}

int cmdCommScope(std::vector<std::string> args) {
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  commscope::CommScope scope(m);
  const commscope::Config cfg;
  const auto all = scope.measureAll(cfg);
  std::printf("Comm|Scope on %s:\n", m.info.name.c_str());
  std::printf("  kernel launch : %s us\n", all.launchUs.toString().c_str());
  std::printf("  sync wait     : %s us\n", all.waitUs.toString().c_str());
  std::printf("  H<->D latency : %s us\n",
              all.hostDeviceLatencyUs.toString().c_str());
  std::printf("  H<->D bw      : %s GB/s\n",
              all.hostDeviceBandwidthGBps.toString().c_str());
  for (int c = 0; c < 4; ++c) {
    if (all.d2dLatencyUs[c]) {
      std::printf("  D2D class %c   : %s us\n", static_cast<char>('A' + c),
                  all.d2dLatencyUs[c]->toString().c_str());
    }
  }
  return 0;
}

int cmdDiff(std::vector<std::string> args) {
  if (args.size() < 2) {
    return usage();
  }
  const machines::Machine& a = machines::byName(args[0]);
  const machines::Machine& b = machines::byName(args[1]);

  Table t({"Quantity", a.info.name, b.info.name, "ratio"});
  t.setTitle("Side-by-side: " + a.info.name + " vs " + b.info.name);
  const auto row = [&](const std::string& label, double va, double vb,
                       int precision = 2) {
    t.addRow({label, formatFixed(va, precision), formatFixed(vb, precision),
              formatFixed(vb != 0.0 ? va / vb : 0.0, 2)});
  };

  const auto streamOf = [](const machines::Machine& m) {
    babelstream::DriverConfig cfg;
    cfg.binaryRuns = 20;
    if (m.accelerated()) {
      cfg.arrayBytes = ByteCount::gib(1);
      babelstream::SimDeviceBackend backend(m, 0);
      return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
    }
    babelstream::SimOmpBackend backend(
        m, ompenv::OmpConfig{m.coreCount(), ompenv::ProcBind::Spread,
                             ompenv::Places::Cores});
    return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
  };
  const auto hostLatOf = [](const machines::Machine& m) {
    const auto [x, y] = osu::onSocketPair(m);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = 20;
    return osu::LatencyBenchmark(m, x, y, mpisim::BufferSpace::Kind::Host)
        .measure(cfg)
        .latencyUs.mean;
  };

  row("stream bandwidth (GB/s)", streamOf(a), streamOf(b), 1);
  row("host MPI latency (us)", hostLatOf(a), hostLatOf(b));
  if (a.accelerated() && b.accelerated()) {
    const auto devLatOf = [](const machines::Machine& m) {
      const auto [x, y] = osu::devicePair(m, topo::LinkClass::A);
      osu::LatencyConfig cfg;
      cfg.binaryRuns = 20;
      return osu::LatencyBenchmark(m, x, y,
                                   mpisim::BufferSpace::Kind::Device)
          .measure(cfg)
          .latencyUs.mean;
    };
    row("device MPI latency A (us)", devLatOf(a), devLatOf(b));
    commscope::Config cfg;
    cfg.binaryRuns = 20;
    commscope::CommScope sa(a);
    commscope::CommScope sb(b);
    row("kernel launch (us)", sa.kernelLaunchUs(cfg).mean,
        sb.kernelLaunchUs(cfg).mean);
    row("sync wait (us)", sa.syncWaitUs(cfg).mean,
        sb.syncWaitUs(cfg).mean);
    row("H<->D latency (us)", sa.hostDeviceLatencyUs(cfg).mean,
        sb.hostDeviceLatencyUs(cfg).mean);
    row("H<->D bandwidth (GB/s)", sa.hostDeviceBandwidthGBps(cfg).mean,
        sb.hostDeviceBandwidthGBps(cfg).mean);
  }
  std::cout << t.renderAscii();
  return 0;
}

int cmdCard(std::vector<std::string> args) {
  const bool json = flagPresent(args, "--json");
  if (args.empty()) {
    return usage();
  }
  const machines::Machine& m = machines::byName(args[0]);
  std::cout << (json ? machines::machineJson(m) : machines::machineCard(m));
  return 0;
}

int cmdBalance() {
  std::cout << report::renderBalance(report::computeBalance()).renderAscii();
  return 0;
}

int cmdExport(std::vector<std::string> args) {
  report::TableOptions opt;
  if (const auto runs = positiveFlagValue(args, "--runs")) {
    opt.binaryRuns = *runs;
  }
  if (const auto jobs = positiveFlagValue(args, "--jobs")) {
    opt.jobs = *jobs;
  }
  std::string dir = "nodebench-export";
  if (const auto d = flagValue(args, "--dir")) {
    dir = *d;
  }
  const auto manifest = report::exportAllTables(dir, opt);
  for (const auto& path : manifest.written) {
    std::cout << "wrote " << path.string() << "\n";
  }
  return 0;
}

int cmdNative(std::vector<std::string> args) {
  int threads = 0;
  if (const auto t = flagValue(args, "--threads")) {
    threads = std::stoi(*t);
  }
  native::NativeStreamBackend backend(threads);
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::mib(64);
  cfg.binaryRuns = 5;  // real runs are slow; this is a demo measurement
  std::cout << "Native BabelStream on this host (" << backend.name()
            << "):\n";
  printStream(babelstream::run(backend, cfg));

  native::NativePingPongConfig pcfg;
  pcfg.cores = {{0, 1}};
  const Duration lat = native::nativePingPongOneWay(pcfg);
  std::printf("Native shared-memory ping-pong (cores 0,1, 8 B): %.3f us\n",
              lat.us());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      return usage();
    }
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "list") {
      return cmdList();
    }
    if (cmd == "topo") {
      return cmdTopo(std::move(args));
    }
    if (cmd == "table") {
      return cmdTable(std::move(args));
    }
    if (cmd == "stream") {
      return cmdStream(std::move(args));
    }
    if (cmd == "latency") {
      return cmdLatency(std::move(args));
    }
    if (cmd == "commscope") {
      return cmdCommScope(std::move(args));
    }
    if (cmd == "card") {
      return cmdCard(std::move(args));
    }
    if (cmd == "diff") {
      return cmdDiff(std::move(args));
    }
    if (cmd == "balance") {
      return cmdBalance();
    }
    if (cmd == "export") {
      return cmdExport(std::move(args));
    }
    if (cmd == "native") {
      return cmdNative(std::move(args));
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "nodebench: error: " << e.what() << '\n';
    return 1;
  }
}
