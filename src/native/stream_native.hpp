#pragma once
/// \file stream_native.hpp
/// \brief BabelStream backend that really measures the build host: the
/// same five kernels over real arrays on a persistent thread team.
///
/// This backend demonstrates that the benchmark instruments are genuine
/// measurement code — the driver, op definitions and reporting rules used
/// for the simulated DOE machines run unchanged against real memory.

#include <memory>
#include <vector>

#include "babelstream/backend.hpp"
#include "native/thread_team.hpp"

namespace nodebench::native {

class NativeStreamBackend final : public babelstream::Backend {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit NativeStreamBackend(int threads = 0, bool pinToCores = true);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Duration iterationTime(babelstream::StreamOp op,
                                       ByteCount arrayBytes) override;
  [[nodiscard]] double noiseCv() const override { return 0.0; }

  /// Checksum consumed by tests (also defeats dead-code elimination).
  [[nodiscard]] double sink() const { return sink_; }

 private:
  void ensureCapacity(std::size_t doubles);

  ThreadTeam team_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> c_;
  std::vector<double> partials_;
  double sink_ = 0.0;
};

}  // namespace nodebench::native
