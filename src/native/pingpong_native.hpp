#pragma once
/// \file pingpong_native.hpp
/// \brief Real shared-memory ping-pong between two pinned threads: the
/// native analogue of the OSU latency measurement.
///
/// Two threads alternate ownership of a cache line through a pair of
/// atomics; `bytes` of payload are copied each direction through a shared
/// buffer, so small sizes measure coherence latency and large sizes
/// approach the copy bandwidth — the same curve shape osu_latency shows.

#include <optional>
#include <utility>

#include "core/units.hpp"

namespace nodebench::native {

struct NativePingPongConfig {
  ByteCount messageSize = ByteCount::bytes(8);
  int iterations = 1000;
  int warmupIterations = 100;
  /// Logical CPUs to pin the two threads to (Linux only); unpinned when
  /// unset.
  std::optional<std::pair<int, int>> cores;
};

/// Average one-way latency (round trip / 2) over the iterations.
[[nodiscard]] Duration nativePingPongOneWay(const NativePingPongConfig&);

}  // namespace nodebench::native
