#include "native/stream_native.hpp"

#include <chrono>
#include <thread>

namespace nodebench::native {

using babelstream::StreamOp;

namespace {

constexpr double kScalar = 0.4;  // BabelStream's startScalar

int resolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

NativeStreamBackend::NativeStreamBackend(int threads, bool pinToCores)
    : team_(resolveThreads(threads), pinToCores) {
  partials_.assign(static_cast<std::size_t>(team_.size()), 0.0);
}

std::string NativeStreamBackend::name() const {
  return "native(" + std::to_string(team_.size()) + " threads)";
}

void NativeStreamBackend::ensureCapacity(std::size_t doubles) {
  if (a_.size() == doubles) {
    return;
  }
  a_.assign(doubles, 0.1);
  b_.assign(doubles, 0.2);
  c_.assign(doubles, 0.0);
}

Duration NativeStreamBackend::iterationTime(StreamOp op,
                                            ByteCount arrayBytes) {
  NB_EXPECTS(arrayBytes.count() >= sizeof(double));
  const std::size_t n = arrayBytes.count() / sizeof(double);
  ensureCapacity(n);

  const int nthreads = team_.size();
  double* a = a_.data();
  double* b = b_.data();
  double* c = c_.data();
  double* partials = partials_.data();

  const auto chunk = [n, nthreads](int tid) {
    const std::size_t per = (n + static_cast<std::size_t>(nthreads) - 1) /
                            static_cast<std::size_t>(nthreads);
    const std::size_t lo = per * static_cast<std::size_t>(tid);
    const std::size_t hi = std::min(n, lo + per);
    return std::pair{lo, hi};
  };

  const auto start = std::chrono::steady_clock::now();
  switch (op) {
    case StreamOp::Copy:
      team_.parallel([&](int tid) {
        const auto [lo, hi] = chunk(tid);
        for (std::size_t i = lo; i < hi; ++i) {
          c[i] = a[i];
        }
      });
      break;
    case StreamOp::Mul:
      team_.parallel([&](int tid) {
        const auto [lo, hi] = chunk(tid);
        for (std::size_t i = lo; i < hi; ++i) {
          b[i] = kScalar * c[i];
        }
      });
      break;
    case StreamOp::Add:
      team_.parallel([&](int tid) {
        const auto [lo, hi] = chunk(tid);
        for (std::size_t i = lo; i < hi; ++i) {
          c[i] = a[i] + b[i];
        }
      });
      break;
    case StreamOp::Triad:
      team_.parallel([&](int tid) {
        const auto [lo, hi] = chunk(tid);
        for (std::size_t i = lo; i < hi; ++i) {
          a[i] = b[i] + kScalar * c[i];
        }
      });
      break;
    case StreamOp::Dot:
      team_.parallel([&](int tid) {
        const auto [lo, hi] = chunk(tid);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          sum += a[i] * b[i];
        }
        partials[tid] = sum;
      });
      for (int t = 0; t < nthreads; ++t) {
        sink_ += partials[t];
      }
      break;
  }
  const auto stop = std::chrono::steady_clock::now();
  sink_ += c_[0] + a_[n / 2];

  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return Duration::nanoseconds(static_cast<double>(ns.count()));
}

}  // namespace nodebench::native
