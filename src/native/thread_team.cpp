#include "native/thread_team.hpp"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace nodebench::native {

namespace {

void pinCurrentThread([[maybe_unused]] int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) %
              static_cast<unsigned>(
                  std::max(1u, std::thread::hardware_concurrency())),
          &set);
  // Best-effort: pinning failure (e.g. restricted cpuset) is not fatal
  // for a benchmark harness.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
}

}  // namespace

ThreadTeam::ThreadTeam(int size, bool pinToCores) {
  NB_EXPECTS(size >= 1);
  workers_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    workers_.emplace_back([this, i, pinToCores] {
      if (pinToCores) {
        pinCurrentThread(i);
      }
      workerLoop(i);
    });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cvStart_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadTeam::parallel(const std::function<void(int)>& fn) {
  NB_EXPECTS(fn != nullptr);
  std::unique_lock lock(mu_);
  task_ = &fn;
  remaining_ = size();
  ++generation_;
  cvStart_.notify_all();
  cvDone_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void ThreadTeam::workerLoop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock lock(mu_);
      cvStart_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) {
        cvDone_.notify_all();
      }
    }
  }
}

}  // namespace nodebench::native
