#pragma once
/// \file thread_team.hpp
/// \brief A persistent OpenMP-style thread team: spawn once, run many
/// parallel regions without per-region thread creation cost.
///
/// Used by the native STREAM backend so that per-iteration timing measures
/// memory traffic, not std::thread startup.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace nodebench::native {

class ThreadTeam {
 public:
  /// Spawns `size` worker threads. With `pinToCores`, worker i is pinned
  /// to logical CPU i (Linux only; silently unpinned elsewhere).
  explicit ThreadTeam(int size, bool pinToCores = false);

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;
  ~ThreadTeam();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(threadIndex)` on every worker and returns when all finish.
  void parallel(const std::function<void(int)>& fn);

 private:
  void workerLoop(int index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cvStart_;
  std::condition_variable cvDone_;
  const std::function<void(int)>* task_ = nullptr;  // guarded by mu_
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
};

}  // namespace nodebench::native
