#include "native/pingpong_native.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/error.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace nodebench::native {

namespace {

void pinTo([[maybe_unused]] int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
}

/// One direction's channel: a sequence flag plus a payload buffer, padded
/// to keep the flag and payload of the two directions off each other's
/// cache lines.
struct alignas(64) Channel {
  std::atomic<std::uint64_t> seq{0};
  char pad[56];
};

/// Bounded busy-wait, then yield. Pure spinning is fastest when both
/// threads own a core, but on an oversubscribed (or single-core) host two
/// spinners deadlock into scheduler timeslices; yielding caps the damage.
void waitForSeq(const std::atomic<std::uint64_t>& seq, std::uint64_t value) {
  for (int spins = 0; seq.load(std::memory_order_acquire) < value; ++spins) {
    if (spins >= 4096) {
      std::this_thread::yield();
    }
  }
}

}  // namespace

Duration nativePingPongOneWay(const NativePingPongConfig& cfg) {
  NB_EXPECTS(cfg.iterations > 0);
  NB_EXPECTS(cfg.warmupIterations >= 0);

  const std::size_t payload = cfg.messageSize.count();
  std::vector<char> bufAtoB(std::max<std::size_t>(payload, 1));
  std::vector<char> bufBtoA(std::max<std::size_t>(payload, 1));
  std::vector<char> scratchA(std::max<std::size_t>(payload, 1), 1);
  std::vector<char> scratchB(std::max<std::size_t>(payload, 1), 2);

  Channel toB;
  Channel toA;
  const int total = cfg.warmupIterations + cfg.iterations;
  std::chrono::steady_clock::time_point t0;
  std::chrono::steady_clock::time_point t1;

  std::thread ponger([&] {
    if (cfg.cores) {
      pinTo(cfg.cores->second);
    }
    for (int i = 1; i <= total; ++i) {
      waitForSeq(toB.seq, static_cast<std::uint64_t>(i));
      if (payload > 0) {
        std::memcpy(scratchB.data(), bufAtoB.data(), payload);
        std::memcpy(bufBtoA.data(), scratchB.data(), payload);
      }
      toA.seq.store(static_cast<std::uint64_t>(i), std::memory_order_release);
    }
  });

  if (cfg.cores) {
    pinTo(cfg.cores->first);
  }
  for (int i = 1; i <= total; ++i) {
    if (i == cfg.warmupIterations + 1) {
      t0 = std::chrono::steady_clock::now();
    }
    if (payload > 0) {
      std::memcpy(bufAtoB.data(), scratchA.data(), payload);
    }
    toB.seq.store(static_cast<std::uint64_t>(i), std::memory_order_release);
    waitForSeq(toA.seq, static_cast<std::uint64_t>(i));
    if (payload > 0) {
      std::memcpy(scratchA.data(), bufBtoA.data(), payload);
    }
  }
  t1 = std::chrono::steady_clock::now();
  ponger.join();

  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0);
  return Duration::nanoseconds(static_cast<double>(ns.count()) /
                               (2.0 * cfg.iterations));
}

}  // namespace nodebench::native
