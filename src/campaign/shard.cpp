#include "campaign/shard.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

namespace nodebench::campaign {

namespace {

/// Defensive cap on manifest grids: the full registry's grid is well
/// under a hundred cells, so anything near this limit is corruption, not
/// an allocation request.
constexpr std::uint32_t kMaxManifestCells = 1u << 16;
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uintmax_t kMaxShardFileBytes = 256ull << 20;

std::string gridKey(std::string_view machine, std::string_view cell) {
  std::string key;
  key.reserve(machine.size() + 1 + cell.size());
  key.append(machine);
  key.push_back('\x1f');  // unit separator: cannot appear in valid UTF-8 names
  key.append(cell);
  return key;
}

}  // namespace

ShardSpec parseShardSpec(const std::string& text) {
  const auto fail = [&] {
    throw Error("--shard expects 'i/N' with 0 <= i < N <= " +
                std::to_string(kMaxShardCount) + ", got '" + text + "'");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    fail();
  }
  const auto parseU32 = [&](const std::string& part) {
    if (part.empty() || part.size() > 9 ||
        !std::all_of(part.begin(), part.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      fail();
    }
    return static_cast<std::uint32_t>(std::stoul(part));
  };
  ShardSpec spec;
  spec.index = parseU32(text.substr(0, slash));
  spec.count = parseU32(text.substr(slash + 1));
  if (spec.count == 0 || spec.count > kMaxShardCount ||
      spec.index >= spec.count) {
    fail();
  }
  return spec;
}

std::string shardSpecText(const ShardSpec& spec) {
  if (spec.count == 0) {
    return "unsharded";
  }
  return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

ShardRange shardRangeFor(std::size_t total, const ShardSpec& spec) {
  NB_EXPECTS(spec.count >= 1);
  NB_EXPECTS(spec.index < spec.count);
  const std::size_t base = total / spec.count;
  const std::size_t rem = total % spec.count;
  ShardRange range;
  range.begin = spec.index * base + std::min<std::size_t>(spec.index, rem);
  range.end = range.begin + base + (spec.index < rem ? 1 : 0);
  return range;
}

bool isShardManifest(const CellRecord& record) {
  return record.machine.empty();
}

std::vector<std::uint8_t> encodeManifestPayload(const TableManifest& manifest) {
  NB_EXPECTS(manifest.cells.size() <= kMaxManifestCells);
  NB_EXPECTS(manifest.assigned.begin <= manifest.assigned.end);
  NB_EXPECTS(manifest.assigned.end <= manifest.cells.size());
  PayloadWriter w;
  w.putU32(kManifestVersion);
  w.putU32(manifest.spec.index);
  w.putU32(manifest.spec.count);
  w.putString(manifest.label);
  w.putU32(static_cast<std::uint32_t>(manifest.cells.size()));
  for (const GridCell& cell : manifest.cells) {
    w.putString(cell.machine);
    w.putString(cell.cell);
  }
  w.putU32(static_cast<std::uint32_t>(manifest.assigned.begin));
  w.putU32(static_cast<std::uint32_t>(manifest.assigned.end));
  return w.bytes();
}

TableManifest decodeManifestPayload(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  const std::uint32_t version = r.u32();
  if (version != kManifestVersion) {
    throw JournalCorruptError("unsupported shard manifest version " +
                              std::to_string(version));
  }
  TableManifest out;
  out.spec.index = r.u32();
  out.spec.count = r.u32();
  if (out.spec.count == 0 || out.spec.count > kMaxShardCount ||
      out.spec.index >= out.spec.count) {
    throw JournalCorruptError("shard manifest carries an invalid shard spec " +
                              std::to_string(out.spec.index) + "/" +
                              std::to_string(out.spec.count));
  }
  out.label = r.string();
  const std::uint32_t cellCount = r.u32();
  if (cellCount > kMaxManifestCells) {
    throw JournalCorruptError("shard manifest cell count " +
                              std::to_string(cellCount) + " exceeds the " +
                              std::to_string(kMaxManifestCells) + " limit");
  }
  out.cells.reserve(cellCount);
  for (std::uint32_t i = 0; i < cellCount; ++i) {
    GridCell cell;
    cell.machine = r.string();
    cell.cell = r.string();
    if (cell.machine.empty()) {
      throw JournalCorruptError(
          "shard manifest grid cell carries an empty machine name");
    }
    out.cells.push_back(std::move(cell));
  }
  out.assigned.begin = r.u32();
  out.assigned.end = r.u32();
  if (out.assigned.begin > out.assigned.end ||
      out.assigned.end > out.cells.size()) {
    throw JournalCorruptError("shard manifest assigned range [" +
                              std::to_string(out.assigned.begin) + ", " +
                              std::to_string(out.assigned.end) +
                              ") exceeds its " + std::to_string(cellCount) +
                              "-cell grid");
  }
  if (!r.atEnd()) {
    throw JournalCorruptError("shard manifest carries trailing bytes");
  }
  return out;
}

CellRecord manifestRecord(const TableManifest& manifest) {
  CellRecord record;
  record.machine = "";  // the manifest sentinel: no real cell has one
  record.cell = manifest.label;
  record.attempts = 0;
  record.failed = false;
  record.payload = encodeManifestPayload(manifest);
  return record;
}

// --- ShardPlan ---------------------------------------------------------------

ShardPlan::ShardPlan(const ShardSpec& spec) : spec_(spec) {
  NB_EXPECTS(spec.count >= 1);
  NB_EXPECTS(spec.index < spec.count);
  NB_EXPECTS(spec.count <= kMaxShardCount);
}

void ShardPlan::registerTable(const std::string& label,
                              std::vector<GridCell> cells, Journal* journal) {
  NB_EXPECTS_MSG(cells.size() <= kMaxManifestCells,
                 "table grid exceeds the shard manifest cell limit");
  TableManifest manifest;
  manifest.label = label;
  manifest.spec = spec_;
  manifest.cells = std::move(cells);
  manifest.assigned = shardRangeFor(manifest.cells.size(), spec_);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = tables_.find(label);
    if (it != tables_.end()) {
      if (!(it->second == manifest)) {
        throw Error("shard plan already registered table '" + label +
                    "' with a different grid (nodebench bug: table "
                    "enumeration must be deterministic)");
      }
      return;  // `table all` recomputes Tables 5/6 for Table 7
    }
  }

  if (journal != nullptr) {
    if (const CellRecord* existing = journal->find("", label)) {
      // --resume: the manifest landed on the first run. The fingerprint
      // header cannot see a machine-subset change, so the grid itself is
      // re-verified here.
      TableManifest recorded = decodeManifestPayload(existing->payload);
      if (!(recorded == manifest)) {
        throw Error(
            "cannot resume shard journal: the recorded manifest for '" +
            label + "' does not match this run's grid (was the machine "
            "subset or the registry changed?); rerun with the original "
            "parameters or start a fresh shard journal");
      }
    } else {
      journal->append(manifestRecord(manifest));
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = manifest.assigned.begin; i < manifest.assigned.end;
       ++i) {
    assignedKeys_.insert(
        gridKey(manifest.cells[i].machine, manifest.cells[i].cell));
  }
  tables_.emplace(label, std::move(manifest));
}

bool ShardPlan::assigned(std::string_view machine,
                         std::string_view cell) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return assignedKeys_.find(gridKey(machine, cell)) != assignedKeys_.end();
}

// --- merge -------------------------------------------------------------------

ShardInput readShardInput(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw Error("cannot open shard journal: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw Error("cannot stat shard journal: " + path);
  }
  if (static_cast<std::uintmax_t>(size) > kMaxShardFileBytes) {
    throw ShardMergeError("shard journal " + path + " is implausibly large (" +
                          std::to_string(size) + " bytes)");
  }
  ShardInput input;
  input.name = path;
  input.bytes.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(input.bytes.data()), size)) {
    throw Error("failed reading shard journal: " + path);
  }
  return input;
}

std::string shardPath(const std::string& base, const ShardSpec& spec) {
  return base + ".shard" + std::to_string(spec.index) + "of" +
         std::to_string(spec.count);
}

namespace {

struct DecodedShard {
  std::string name;
  Journal::Decoded decoded;
  std::vector<TableManifest> manifests;  ///< file order
  std::vector<const CellRecord*> cells;  ///< file order, manifests stripped
};

}  // namespace

MergedCampaign mergeShardJournals(const std::vector<ShardInput>& shards,
                                  const MergeOptions& options) {
  if (shards.empty()) {
    throw ShardMergeError("merge needs at least one shard journal");
  }

  // Decode every input. A shard that resumes cleanly is the bar: torn
  // tails are refused (resume that shard first), as is anything that is
  // not a shard journal at all.
  std::vector<DecodedShard> decoded(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    DecodedShard& d = decoded[i];
    d.name = shards[i].name;
    try {
      d.decoded = Journal::decode(shards[i].bytes);
    } catch (const JournalCorruptError& e) {
      throw ShardMergeError("cannot merge " + d.name + ": " + e.what());
    }
    if (d.decoded.validBytes < shards[i].bytes.size()) {
      throw ShardMergeError(
          "cannot merge " + d.name + ": the shard journal has a torn tail (" +
          (d.decoded.warnings.empty() ? std::string("trailing bytes")
                                      : d.decoded.warnings.front()) +
          "); resume that shard with --resume to finish it first");
    }
    if (d.decoded.config.shardCount == 0) {
      throw ShardMergeError("cannot merge " + d.name +
                            ": not a shard journal (it was recorded without "
                            "--shard)");
    }
  }

  // One shard count, every index exactly once.
  const std::uint32_t count = decoded.front().decoded.config.shardCount;
  std::vector<const DecodedShard*> byIndex(count, nullptr);
  for (const DecodedShard& d : decoded) {
    const CampaignConfig& cfg = d.decoded.config;
    if (cfg.shardCount != count) {
      throw ShardMergeError(
          "cannot merge: " + decoded.front().name + " was recorded as one of " +
          std::to_string(count) + " shard(s) but " + d.name + " as one of " +
          std::to_string(cfg.shardCount));
    }
    const DecodedShard*& slot = byIndex[cfg.shardIndex];
    if (slot != nullptr) {
      throw ShardMergeError("cannot merge: shard " +
                            shardSpecText({cfg.shardIndex, count}) +
                            " appears twice (" + slot->name + " and " + d.name +
                            ")");
    }
    slot = &d;
  }
  // Quarantine records attach structured blame to a gap; one that names a
  // shard the set does not have is a caller bug, refused in any mode.
  const auto quarantineFor = [&](std::uint32_t shard) -> const ShardGap* {
    for (const ShardGap& gap : options.quarantined) {
      if (gap.shard == shard) {
        return &gap;
      }
    }
    return nullptr;
  };
  for (const ShardGap& gap : options.quarantined) {
    if (gap.shard >= count) {
      throw ShardMergeError(
          "cannot merge: the quarantine list names shard " +
          std::to_string(gap.shard) + " but the shard set has only " +
          std::to_string(count) + " shard(s)");
    }
  }

  std::vector<ShardGap> missingShards;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] != nullptr) {
      continue;
    }
    const ShardGap* quarantine = quarantineFor(i);
    if (!options.allowPartial) {
      std::string message =
          "cannot merge: shard " + shardSpecText({i, count}) +
          " is missing from the merge set (" + std::to_string(shards.size()) +
          " of " + std::to_string(count) + " shard journal(s) given)";
      if (quarantine != nullptr) {
        message += "; it was quarantined after " +
                   std::to_string(quarantine->attempts) +
                   " failed attempt(s), last incident: " +
                   quarantine->lastIncident;
      }
      throw ShardMergeError(message);
    }
    ShardGap gap;
    gap.shard = i;
    if (quarantine != nullptr) {
      gap.attempts = quarantine->attempts;
      gap.lastIncident = quarantine->lastIncident;
    }
    missingShards.push_back(std::move(gap));
  }

  // One configuration fingerprint. Shard index differs by construction;
  // everything else (registry, fault plan, seed, --runs, sizes) must
  // match, and the diagnostic names both the parameter and the shard.
  // The reference is the lowest-indexed *present* shard (shard 0 except
  // under --allow-partial when it is a gap).
  std::uint32_t firstPresent = 0;
  while (byIndex[firstPresent] == nullptr) {
    ++firstPresent;  // at least one shard is present: shards is non-empty
  }
  CampaignConfig reference = byIndex[firstPresent]->decoded.config;
  reference.shardIndex = 0;
  for (std::uint32_t i = firstPresent + 1; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    CampaignConfig normalized = byIndex[i]->decoded.config;
    normalized.shardIndex = 0;
    const std::string mismatch = describeConfigMismatch(reference, normalized);
    if (!mismatch.empty()) {
      throw ShardMergeError("cannot merge: shard " +
                            shardSpecText({i, count}) + " (" +
                            byIndex[i]->name + ") was recorded under a "
                            "different configuration than " +
                            byIndex[firstPresent]->name + ": " + mismatch);
    }
  }

  // Split manifests from cell records, per shard, preserving file order.
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    auto& d = const_cast<DecodedShard&>(*byIndex[i]);
    for (const CellRecord& record : d.decoded.records) {
      if (!isShardManifest(record)) {
        d.cells.push_back(&record);
        continue;
      }
      try {
        TableManifest manifest = decodeManifestPayload(record.payload);
        if (manifest.label != record.cell) {
          throw JournalCorruptError("shard manifest label '" + manifest.label +
                                    "' disagrees with its record key '" +
                                    record.cell + "'");
        }
        if (!(manifest.spec ==
              ShardSpec{d.decoded.config.shardIndex, count})) {
          throw JournalCorruptError(
              "shard manifest spec " + shardSpecText(manifest.spec) +
              " disagrees with the journal header's " +
              shardSpecText({d.decoded.config.shardIndex, count}));
        }
        for (const TableManifest& prior : d.manifests) {
          if (prior.label == manifest.label) {
            throw JournalCorruptError("duplicate shard manifest for '" +
                                      manifest.label + "'");
          }
        }
        d.manifests.push_back(std::move(manifest));
      } catch (const JournalCorruptError& e) {
        throw ShardMergeError("cannot merge " + d.name + ": " + e.what());
      }
    }
  }

  // Every shard must have registered the same tables, in the same order,
  // over the same grids, and declare exactly its canonical slice — a
  // forged or drifted range is how overlaps and gaps would smuggle in.
  // Strict merges compare everyone against the first shard; partial
  // merges take the present shard with the *most* manifests as the grid
  // reference (a gap shard registered nothing) and require every other
  // present shard's manifest list to be a prefix of it.
  const DecodedShard* referenceShard = byIndex[firstPresent];
  if (options.allowPartial) {
    for (std::uint32_t i = firstPresent + 1; i < count; ++i) {
      if (byIndex[i] != nullptr &&
          byIndex[i]->manifests.size() > referenceShard->manifests.size()) {
        referenceShard = byIndex[i];
      }
    }
    if (referenceShard->manifests.empty()) {
      throw ShardMergeError(
          "cannot merge: no present shard registered a table manifest, so "
          "the campaign grid is unknown — nothing to merge, even partially");
    }
  }
  const DecodedShard& first = *referenceShard;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr || byIndex[i] == referenceShard) {
      continue;
    }
    const DecodedShard& d = *byIndex[i];
    if (d.manifests.size() != first.manifests.size() &&
        !(options.allowPartial &&
          d.manifests.size() < first.manifests.size())) {
      throw ShardMergeError(
          "cannot merge: " + first.name + " registered " +
          std::to_string(first.manifests.size()) + " table manifest(s) but " +
          d.name + " registered " + std::to_string(d.manifests.size()) +
          " — the shards measured different campaigns");
    }
    for (std::size_t t = 0; t < d.manifests.size(); ++t) {
      if (d.manifests[t].label != first.manifests[t].label) {
        throw ShardMergeError("cannot merge: " + first.name +
                              " registered table '" +
                              first.manifests[t].label + "' where " + d.name +
                              " registered '" + d.manifests[t].label + "'");
      }
      if (d.manifests[t].cells != first.manifests[t].cells) {
        throw ShardMergeError(
            "cannot merge: the '" + d.manifests[t].label + "' grid in " +
            d.name + " does not match the one in " + first.name +
            " (different machine subset or registry?)");
      }
    }
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    const DecodedShard& d = *byIndex[i];
    for (const TableManifest& manifest : d.manifests) {
      const ShardRange canonical =
          shardRangeFor(manifest.cells.size(), {i, count});
      if (!(manifest.assigned == canonical)) {
        throw ShardMergeError(
            "cannot merge: shard " + shardSpecText({i, count}) + " (" +
            d.name + ") declares cells [" +
            std::to_string(manifest.assigned.begin) + ", " +
            std::to_string(manifest.assigned.end) + ") of '" + manifest.label +
            "' but the canonical partition assigns it [" +
            std::to_string(canonical.begin) + ", " +
            std::to_string(canonical.end) +
            ") — overlapping or gapped shard ranges cannot be merged");
      }
    }
  }

  // The global grid: tables concatenated in registration order, which is
  // exactly the record order of a single-process --jobs 1 run.
  MergedCampaign out;
  out.config = reference;
  out.config.shardIndex = 0;
  out.config.shardCount = 0;
  out.config.jobs = 1;
  out.shardCount = count;
  out.missingShards = std::move(missingShards);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] != nullptr) {
      out.presentShards.push_back(i);
    }
  }
  std::map<std::string, std::size_t, std::less<>> gridIndex;
  for (const TableManifest& manifest : first.manifests) {
    for (std::size_t j = 0; j < manifest.cells.size(); ++j) {
      const GridCell& cell = manifest.cells[j];
      std::string key = gridKey(cell.machine, cell.cell);
      if (!gridIndex.emplace(std::move(key), out.grid.size()).second) {
        throw ShardMergeError("cannot merge: the campaign grid lists cell (" +
                              cell.machine + ", " + cell.cell + ") twice");
      }
      // Owner: the shard whose canonical slice of this table contains j.
      std::uint32_t owner = 0;
      for (std::uint32_t s = 0; s < count; ++s) {
        const ShardRange r = shardRangeFor(manifest.cells.size(), {s, count});
        if (j >= r.begin && j < r.end) {
          owner = s;
          break;
        }
      }
      out.grid.push_back(cell);
      out.ownerShard.push_back(owner);
    }
  }

  // Index every shard's cell records and prove coverage is exact:
  // each record names a grid cell its shard owns, no duplicates, and
  // every owned cell is present.
  std::vector<std::map<std::string, const CellRecord*, std::less<>>> records(
      count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (byIndex[i] == nullptr) {
      continue;
    }
    const DecodedShard& d = *byIndex[i];
    for (const CellRecord* record : d.cells) {
      std::string key = gridKey(record->machine, record->cell);
      const auto git = gridIndex.find(key);
      if (git == gridIndex.end()) {
        throw ShardMergeError("cannot merge: " + d.name +
                              " contains a record for (" + record->machine +
                              ", " + record->cell +
                              ") which is not in the campaign grid");
      }
      const std::uint32_t owner = out.ownerShard[git->second];
      if (owner != i) {
        throw ShardMergeError(
            "cannot merge: cell (" + record->machine + ", " + record->cell +
            ") is assigned to shard " + shardSpecText({owner, count}) +
            " but was recorded by shard " + shardSpecText({i, count}) + " (" +
            d.name + ") — overlapping shard journals cannot be merged");
      }
      if (!records[i].emplace(std::move(key), record).second) {
        throw ShardMergeError("cannot merge: " + d.name +
                              " records cell (" + record->machine + ", " +
                              record->cell + ") twice");
      }
    }
  }
  for (std::size_t g = 0; g < out.grid.size(); ++g) {
    const std::uint32_t owner = out.ownerShard[g];
    const std::string key = gridKey(out.grid[g].machine, out.grid[g].cell);
    if (byIndex[owner] == nullptr ||
        records[owner].find(key) == records[owner].end()) {
      if (options.allowPartial) {
        // A gap, not a refusal: the cell is enumerated, never silently
        // dropped. Covers both an absent shard and a present-but-
        // incomplete journal (a salvaged attempt).
        out.missingCells.push_back(g);
        continue;
      }
      throw ShardMergeError(
          "cannot merge: shard " + shardSpecText({owner, count}) + " (" +
          byIndex[owner]->name + ") has not measured its assigned cell (" +
          out.grid[g].machine + ", " + out.grid[g].cell +
          "); resume that shard with --resume to finish it first");
    }
  }
  out.partial = !out.missingShards.empty() || !out.missingCells.empty();

  // Emit the merged journal: normalized header, then every record in
  // grid-enumeration order — the byte order a single-process --jobs 1
  // run writes. Missing cells (partial mode only) are skipped here and
  // enumerated in the gap manifest instead.
  std::size_t nextMissing = 0;
  out.journalBytes = Journal::encodeHeader(out.config);
  for (std::size_t g = 0; g < out.grid.size(); ++g) {
    if (nextMissing < out.missingCells.size() &&
        out.missingCells[nextMissing] == g) {
      ++nextMissing;
      continue;
    }
    const std::string key = gridKey(out.grid[g].machine, out.grid[g].cell);
    const CellRecord* record = records[out.ownerShard[g]].at(key);
    const std::vector<std::uint8_t> framed = Journal::encodeRecord(*record);
    out.journalBytes.insert(out.journalBytes.end(), framed.begin(),
                            framed.end());
  }
  return out;
}

std::string renderGapManifest(const MergedCampaign& merged) {
  // Minimal stable JSON: sorted arrays, no timestamps, two-space indent —
  // reruns of the same partial campaign produce byte-identical manifests.
  const auto escape = [](std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            out += "\\u00";
            out.push_back(kHex[(c >> 4) & 0xf]);
            out.push_back(kHex[c & 0xf]);
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
    return out;
  };

  std::string json = "{\n";
  json += "  \"schema\": \"nodebench-gap-manifest-v1\",\n";
  json += "  \"shards\": " + std::to_string(merged.shardCount) + ",\n";
  json += "  \"present_shards\": [";
  for (std::size_t i = 0; i < merged.presentShards.size(); ++i) {
    json += (i ? ", " : "") + std::to_string(merged.presentShards[i]);
  }
  json += "],\n";
  json += "  \"missing_shards\": [";
  for (std::size_t i = 0; i < merged.missingShards.size(); ++i) {
    const ShardGap& gap = merged.missingShards[i];
    json += i ? ",\n    " : "\n    ";
    json += "{\"shard\": " + std::to_string(gap.shard) +
            ", \"attempts\": " + std::to_string(gap.attempts) +
            ", \"last_incident\": " + escape(gap.lastIncident) + "}";
  }
  json += merged.missingShards.empty() ? "],\n" : "\n  ],\n";
  json += "  \"total_cells\": " + std::to_string(merged.grid.size()) + ",\n";
  json += "  \"present_cells\": " +
          std::to_string(merged.grid.size() - merged.missingCells.size()) +
          ",\n";
  json += "  \"missing_cells\": [";
  for (std::size_t i = 0; i < merged.missingCells.size(); ++i) {
    const std::size_t g = merged.missingCells[i];
    json += i ? ",\n    " : "\n    ";
    json += "{\"machine\": " + escape(merged.grid[g].machine) +
            ", \"cell\": " + escape(merged.grid[g].cell) +
            ", \"shard\": " + std::to_string(merged.ownerShard[g]) + "}";
  }
  json += merged.missingCells.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  return json;
}

}  // namespace nodebench::campaign
