#pragma once
/// \file journal.hpp
/// \brief Crash-safe measurement journal: the durability layer of a
/// benchmark campaign.
///
/// The paper's methodology ("run each benchmark binary 100 times,
/// aggregate mean ± stddev") makes a full table run expensive; before
/// this layer, a crash, OOM-kill or Ctrl-C anywhere in a multi-machine
/// run discarded every completed cell. The journal makes campaigns
/// durable and resumable:
///
///  - **Append-only record log.** One record per *completed* cell
///    measurement (success or exhausted-retries failure), CRC32 +
///    length-prefixed so a reader can always tell a valid prefix from a
///    torn tail.
///  - **Schema-versioned header** carrying the campaign configuration
///    fingerprint: machine-registry hash, fault-plan hash, seed,
///    `--runs`/`--jobs` and the array/message-size knobs. Resuming under
///    a different configuration is refused with a diagnostic naming the
///    mismatched parameter — silently mixing configurations is exactly
///    the reproducibility failure the journal exists to prevent.
///  - **Atomic creation** (write temp, fsync, rename) and per-record
///    fsync on append, so a kill at any byte boundary leaves a file the
///    reader recovers from: the valid record prefix replays, the torn
///    tail is truncated with a warning (never an abort).
///  - **Deterministic replay.** Record payloads store result values as
///    exact IEEE-754 bit patterns, so a resumed campaign's tables are
///    byte-identical to an uninterrupted run at any `--jobs` value.
///
/// The journal trusts nothing it reads back: record lengths, string
/// sizes and UTF-8 validity are all bounds-checked (the decoder is a
/// fuzz target, see tests/fuzz/), and header corruption raises
/// `JournalCorruptError` rather than guessing.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace nodebench::campaign {

/// Thrown when a journal file is unusable (bad magic, unsupported
/// schema version, corrupt header). Record-level corruption is *not* an
/// error — it is recovered by torn-tail truncation.
class JournalCorruptError : public Error {
 public:
  using Error::Error;
};

/// Thrown when `--resume` finds a journal recorded under a different
/// campaign configuration; what() names the mismatched parameter.
class JournalConfigMismatchError : public Error {
 public:
  using Error::Error;
};

/// Little-endian byte serializer for record payloads. Cells encode
/// their result values through this so replay restores bit-exact
/// doubles (byte-identical tables are the whole point).
class PayloadWriter {
 public:
  void putU32(std::uint32_t value);
  void putU64(std::uint64_t value);
  void putF64(double value);  ///< Exact bit pattern, not text.
  void putString(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a payload. Every accessor throws
/// JournalCorruptError on overrun or oversized strings — payloads come
/// from disk and are untrusted even after their CRC passed.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string string();
  /// Raw byte run of exactly `len` bytes (an opaque nested blob).
  [[nodiscard]] std::vector<std::uint8_t> blob(std::uint32_t len);
  [[nodiscard]] bool atEnd() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Summary round-trip helpers shared by every journalled cell.
void putSummary(PayloadWriter& w, const Summary& s);
[[nodiscard]] Summary readSummary(PayloadReader& r);

/// The configuration fingerprint a journal header carries. Two campaign
/// runs are resume-compatible iff every field except `jobs` matches —
/// `jobs` is provenance only, because harness output is byte-identical
/// at any worker count (DESIGN.md §7), so resuming at a different
/// `--jobs` is safe and explicitly supported.
struct CampaignConfig {
  std::uint64_t registryHash = 0;   ///< campaign::registryHash()
  std::uint64_t faultPlanHash = 0;  ///< campaign::faultPlanHash(); 0 = none
  std::uint64_t seed = 0;           ///< Fault-plan seed; 0 without a plan.
  std::uint32_t runs = 100;         ///< --runs (binary runs per cell).
  std::uint32_t jobs = 0;           ///< --jobs at recording time (informational).
  std::uint32_t cellRetries = 2;
  std::uint64_t cpuArrayBytes = 0;
  std::uint64_t gpuArrayBytes = 0;
  std::uint64_t mpiMessageSize = 0;
  /// Shard identity (`--shard i/N`); count == 0 = unsharded. Encoded as
  /// an optional header extension only when sharded, so unsharded
  /// journals stay byte-identical to the pre-shard format. Resuming a
  /// shard journal under a different spec is refused like any other
  /// fingerprint mismatch.
  std::uint32_t shardIndex = 0;
  std::uint32_t shardCount = 0;
};

/// "" when compatible, else a diagnostic naming the first mismatched
/// parameter and both values (the `--resume` refusal message).
[[nodiscard]] std::string describeConfigMismatch(const CampaignConfig& recorded,
                                                 const CampaignConfig& current);

/// One journalled cell outcome. `payload` is the cell-specific value
/// blob (empty for failed cells, which only carry their incident).
struct CellRecord {
  std::string machine;
  std::string cell;
  std::uint32_t attempts = 0;
  bool failed = false;
  std::string error;  ///< Last attempt's error text ("" when clean).
  std::vector<std::uint8_t> payload;
};

/// The journal proper. Thread-safe: the parallel harness appends and
/// looks up records concurrently from worker threads.
class Journal {
 public:
  /// Starts a fresh journal at `path` via write-temp/fsync/rename.
  /// Refuses to overwrite an existing file — resuming must be an
  /// explicit decision (`--resume`), not an accident.
  [[nodiscard]] static std::unique_ptr<Journal> create(
      const std::string& path, const CampaignConfig& config);

  /// Reopens an existing journal for resumption: replays the valid
  /// record prefix, truncates a torn tail (recorded in `warnings()`),
  /// and throws JournalConfigMismatchError when the recorded
  /// configuration is incompatible with `current`.
  [[nodiscard]] static std::unique_ptr<Journal> resume(
      const std::string& path, const CampaignConfig& current);

  /// Pure in-memory decode — the fuzz-target entry point and the core
  /// of resume(). `validBytes` reports the length of the valid prefix
  /// (file content beyond it is a torn tail).
  struct Decoded {
    CampaignConfig config;
    std::vector<CellRecord> records;
    std::size_t validBytes = 0;
    std::vector<std::string> warnings;
  };
  [[nodiscard]] static Decoded decode(std::span<const std::uint8_t> bytes);

  /// Serialized forms (exposed for tests and the fuzz corpus).
  [[nodiscard]] static std::vector<std::uint8_t> encodeHeader(
      const CampaignConfig& config);
  [[nodiscard]] static std::vector<std::uint8_t> encodeRecord(
      const CellRecord& record);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The completed-cell record for (machine, cell), or nullptr when the
  /// cell still needs measuring.
  [[nodiscard]] const CellRecord* find(std::string_view machine,
                                       std::string_view cell) const;

  /// Appends one completed cell: CRC-framed write + fsync, then the
  /// in-memory index. Idempotent — a key that is already journalled
  /// (e.g. `table all` computing Table 5 twice) is not re-appended.
  void append(CellRecord record);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }
  [[nodiscard]] std::size_t recordCount() const;
  /// Records with a non-empty machine name — i.e. measured cells,
  /// excluding shard manifests (the honest "N cell(s) already measured"
  /// count for resume messages).
  [[nodiscard]] std::size_t cellRecordCount() const;
  [[nodiscard]] std::size_t appendedThisProcess() const;
  [[nodiscard]] const std::vector<std::string>& warnings() const {
    return warnings_;
  }

  /// Crash-injection test hook (`table --crash-after-cell N`): after the
  /// Nth append of this process the journal fsyncs and terminates the
  /// process immediately (exit code 42), simulating an operator kill at
  /// an arbitrary campaign point.
  void setCrashAfterAppends(int n) { crashAfter_ = n; }
  static constexpr int kCrashExitCode = 42;

 private:
  Journal() = default;

  std::string path_;
  int fd_ = -1;
  CampaignConfig config_;
  std::map<std::string, CellRecord, std::less<>> records_;
  std::vector<std::string> warnings_;
  int crashAfter_ = -1;
  std::size_t appended_ = 0;
  mutable std::mutex mu_;
};

}  // namespace nodebench::campaign
