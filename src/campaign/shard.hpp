#pragma once
/// \file shard.hpp
/// \brief Distributed sharded campaigns: deterministic grid partitioning,
/// shard manifests, and the fingerprint-validated merge.
///
/// A campaign is a (machine x cell) grid; `--shard i/N` assigns shard `i`
/// a deterministic contiguous slice of every table's grid so N worker
/// *processes* (the `nodebench shard` driver, or hand-launched workers on
/// different hosts) can split one campaign. Each shard writes its own
/// journal + results store whose headers carry the shard spec in the
/// configuration fingerprint, and records a **shard manifest** per table
/// — the ordered cell grid plus this shard's assigned range — because the
/// merge step cannot re-derive the grid from bytes alone (it depends on
/// the machine subset and per-machine link classes).
///
/// `mergeShardJournals` then rebuilds the single-process artifact: it
/// validates every shard against one fingerprint (refusing on mismatch,
/// naming the parameter and the shard), proves the shard set is complete
/// and non-overlapping (exactly indices 0..N-1, identical manifests,
/// every record inside its shard's canonical range, every assigned cell
/// present), and emits a merged journal byte-identical to what a
/// single-process `--jobs 1` run of the same campaign would have written.
/// The determinism contract already proven for `--jobs` (DESIGN.md §7)
/// is what makes that byte-identity possible: cells are independent, so
/// which *process* measures one cannot change its bytes.

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/journal.hpp"
#include "core/error.hpp"

namespace nodebench::campaign {

/// Thrown when a shard set cannot be merged: mismatched fingerprints,
/// missing/duplicate shards, overlapping or incomplete cell coverage,
/// torn tails. what() always names the offending shard (and, for
/// fingerprint mismatches, the parameter).
class ShardMergeError : public Error {
 public:
  using Error::Error;
};

/// One shard's identity: `index` of `count` total. count == 0 means
/// "unsharded" (the CampaignConfig default).
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 0;

  [[nodiscard]] bool operator==(const ShardSpec& o) const {
    return index == o.index && count == o.count;
  }
};

/// Hard ceiling on --shard N: far above any useful process fan-out, low
/// enough that a corrupt header cannot demand a billion-entry merge.
inline constexpr std::uint32_t kMaxShardCount = 4096;

/// Parses "i/N" (e.g. "2/8", 0-based index). Throws Error on anything
/// else: i >= N, N == 0, N > kMaxShardCount, trailing garbage.
[[nodiscard]] ShardSpec parseShardSpec(const std::string& text);

/// "i/N", or "unsharded" when count == 0 — the vocabulary mismatch
/// diagnostics use.
[[nodiscard]] std::string shardSpecText(const ShardSpec& spec);

/// One cell of a table's measurement grid, in enumeration order.
struct GridCell {
  std::string machine;
  std::string cell;

  [[nodiscard]] bool operator==(const GridCell& o) const {
    return machine == o.machine && cell == o.cell;
  }
};

/// Half-open index range [begin, end) into a table's grid.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] bool operator==(const ShardRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// The canonical contiguous partition: shard i of N gets
/// floor(total/N) cells plus one more when i < total % N, so the slices
/// tile [0, total) exactly and sizes differ by at most one (the uneven
/// tail). Deterministic — both the planner and the merge validator
/// compute it, so a forged manifest range is detectable.
[[nodiscard]] ShardRange shardRangeFor(std::size_t total, const ShardSpec& spec);

/// A shard manifest: one table's full ordered grid plus the writing
/// shard's assigned slice. Journalled as a special record (machine == ""
/// — impossible for a real cell) before the table's fan-out, so the
/// merge can rebuild the global enumeration order.
struct TableManifest {
  std::string label;  ///< "table 4" / "table 5" / "table 6"
  ShardSpec spec;
  std::vector<GridCell> cells;  ///< full grid, enumeration order
  ShardRange assigned;          ///< this shard's slice of `cells`

  [[nodiscard]] bool operator==(const TableManifest& o) const {
    return label == o.label && spec == o.spec && cells == o.cells &&
           assigned == o.assigned;
  }
};

/// True for the manifest pseudo-records (machine == ""): real cells
/// always carry a registry machine name.
[[nodiscard]] bool isShardManifest(const CellRecord& record);

/// Manifest payload round-trip. The decoder treats the payload as
/// untrusted bytes (it is a fuzz surface through `nodebench merge`) and
/// throws JournalCorruptError on any structural violation.
[[nodiscard]] std::vector<std::uint8_t> encodeManifestPayload(
    const TableManifest& manifest);
[[nodiscard]] TableManifest decodeManifestPayload(
    std::span<const std::uint8_t> payload);

/// The manifest as the CellRecord the journal stores it in.
[[nodiscard]] CellRecord manifestRecord(const TableManifest& manifest);

/// Per-process shard plan, owned by the CLI and consulted by the report
/// harness: `registerTable` is called once per table before its fan-out
/// (journalling the manifest, or verifying an existing one on resume);
/// `assigned` is the per-cell skip check the workers query. Thread-safe:
/// registration happens between fan-outs but workers query concurrently.
class ShardPlan {
 public:
  explicit ShardPlan(const ShardSpec& spec);

  /// Registers `cells` as table `label`'s grid. Appends the manifest
  /// record to `journal` (idempotent; nullptr journal skips persistence),
  /// or — when the journal already holds one, i.e. --resume — verifies
  /// it matches this run's grid and throws Error naming the label when it
  /// does not (a machine-subset change the fingerprint cannot see).
  /// Re-registering the same label with the same cells is a no-op
  /// (`table all` computes Tables 5/6 twice for Table 7).
  void registerTable(const std::string& label, std::vector<GridCell> cells,
                     Journal* journal);

  /// Whether this shard measures (machine, cell). Cells of a table that
  /// was never registered are not assigned (defensive: the harness always
  /// registers before fanning out).
  [[nodiscard]] bool assigned(std::string_view machine,
                              std::string_view cell) const;

  [[nodiscard]] const ShardSpec& spec() const { return spec_; }

 private:
  ShardSpec spec_;
  mutable std::mutex mu_;
  std::map<std::string, TableManifest> tables_;
  std::set<std::string, std::less<>> assignedKeys_;
};

/// One shard's journal file image, plus a name for diagnostics (the file
/// path at the CLI, a synthetic label in tests and the fuzz target).
struct ShardInput {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

/// Reads a shard journal file with the decoder's size cap. Throws Error
/// when the file is missing/unreadable, naming the path.
[[nodiscard]] ShardInput readShardInput(const std::string& path);

/// Structured diagnostics for one absent shard — the CellIncident of the
/// merge layer. The supervisor fills `attempts`/`lastIncident` from its
/// quarantine record; a hand-run partial merge that simply lacks a file
/// gets the default incident text.
struct ShardGap {
  std::uint32_t shard = 0;    ///< the missing shard's index
  std::uint32_t attempts = 0; ///< failed attempts (0 when unknown)
  std::string lastIncident = "shard journal missing from the merge set";

  [[nodiscard]] bool operator==(const ShardGap& o) const {
    return shard == o.shard && attempts == o.attempts &&
           lastIncident == o.lastIncident;
  }
};

/// Merge policy knobs. `allowPartial` permits absent shard indices (a
/// gap, never a refusal); `quarantined` attaches the supervisor's
/// attempt counts and last incidents to those gaps so every diagnostic
/// and the gap manifest can name *why* a shard is missing. Naming a
/// shard index outside [0, N) is refused even in partial mode.
struct MergeOptions {
  bool allowPartial = false;
  std::vector<ShardGap> quarantined;
};

/// The validated, merged campaign. `journalBytes` is the merged journal
/// file image: the normalized header (shard spec cleared, jobs
/// canonicalized to 1 — the reference single-process run) followed by
/// every cell record in global grid-enumeration order, manifests
/// stripped. Byte-identical to an uninterrupted single-process
/// `--jobs 1 --journal` run of the same campaign — except under
/// `allowPartial` with gaps, where missing cells are skipped (never
/// silently: they are enumerated in `missingCells` and the gap
/// manifest).
struct MergedCampaign {
  CampaignConfig config;  ///< normalized: unsharded, jobs == 1
  std::uint32_t shardCount = 0;  ///< worker count of the merged set
  std::vector<GridCell> grid;  ///< global enumeration order (tables concatenated)
  std::vector<std::uint32_t> ownerShard;  ///< grid[i] measured by shard ownerShard[i]
  std::vector<std::uint8_t> journalBytes;

  bool partial = false;  ///< true iff any shard or cell is missing
  std::vector<std::uint32_t> presentShards;   ///< sorted indices with journals
  std::vector<ShardGap> missingShards;        ///< sorted by shard index
  std::vector<std::size_t> missingCells;      ///< grid indices without records
};

/// Validates and merges a shard set. See ShardMergeError for the refusal
/// contract; every diagnostic names the offending shard. With
/// `options.allowPartial`, absent shards and their cells become gaps
/// instead of refusals; every *present* shard is still validated as
/// strictly as ever (fingerprints, canonical ranges, ownership,
/// duplicates), and an all-shards-present partial merge emits bytes
/// identical to the strict merge.
[[nodiscard]] MergedCampaign mergeShardJournals(
    const std::vector<ShardInput>& shards, const MergeOptions& options = {});

/// Renders the gap manifest: a stable JSON document
/// (`nodebench-gap-manifest-v1`) enumerating the present shards, every
/// missing shard with its attempt count and last incident, and every
/// missing (machine, cell) with its owning shard. Written next to a
/// partial merge so a smaller table is always accompanied by an explicit
/// statement of what is absent and why.
[[nodiscard]] std::string renderGapManifest(const MergedCampaign& merged);

/// The conventional worker journal/store path of shard i of N:
/// "<base>.shard<i>of<N>" — what the `nodebench shard` driver passes its
/// workers and what the demo scripts glob for.
[[nodiscard]] std::string shardPath(const std::string& base,
                                    const ShardSpec& spec);

}  // namespace nodebench::campaign
