#pragma once
/// \file fingerprint.hpp
/// \brief Configuration fingerprints for resume-compatibility checks.
///
/// A journal records what the campaign *was measuring* (the machine
/// registry) and *under which perturbations* (the fault plan). Resuming
/// against a different registry or plan would splice records from two
/// different experiments into one table — the fingerprints make that a
/// fail-fast diagnostic instead of a silent reproducibility bug.

#include <cstdint>

namespace nodebench::faults {
class FaultPlan;
}

namespace nodebench::campaign {

/// Stable FNV-1a fingerprint of the built-in machine registry: every
/// machine's identity (name, rank, seed) and node shape (core/GPU
/// counts) in registry order. Changes whenever a machine is added,
/// removed, reordered or re-calibrated at the identity level.
[[nodiscard]] std::uint64_t registryHash();

/// Fingerprint of a fault plan: seed plus every spec field in plan
/// order. `nullptr` (no --faults) hashes to 0 so fault-free journals are
/// mutually compatible.
[[nodiscard]] std::uint64_t faultPlanHash(const faults::FaultPlan* plan);

}  // namespace nodebench::campaign
