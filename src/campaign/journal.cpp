#include "campaign/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/io.hpp"
#include "campaign/shard.hpp"
#include "core/checksum.hpp"
#include "core/utf8.hpp"
#include "trace/trace.hpp"

namespace nodebench::campaign {

namespace {

constexpr char kMagic[4] = {'N', 'B', 'C', 'J'};
constexpr std::uint32_t kSchemaVersion = 1;
constexpr const char* kWhat = "journal";  ///< io:: error-text label.

/// Defensive decode limits: a record longer than any legitimate cell
/// payload, a string longer than any machine/cell/error text, or a
/// journal larger than any real campaign is treated as corruption, not
/// an allocation request.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;
constexpr std::uint32_t kMaxStringBytes = 1u << 16;
constexpr std::uintmax_t kMaxJournalBytes = 256ull << 20;

std::string errnoText() { return std::strerror(errno); }

std::string utf8Checked(std::string value, const char* what) {
  if (!validUtf8(value)) {
    throw JournalCorruptError(std::string("journal record carries invalid "
                                          "UTF-8 in its ") +
                              what + " field");
  }
  return value;
}

std::string recordKey(std::string_view machine, std::string_view cell) {
  std::string key;
  key.reserve(machine.size() + 1 + cell.size());
  key.append(machine);
  key.push_back('\x1f');  // unit separator: cannot appear in valid UTF-8 names
  key.append(cell);
  return key;
}

/// One length-prefixed CRC-framed chunk: [u32 len][u32 crc][payload].
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xffu));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t readU32At(std::span<const std::uint8_t> bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// --- PayloadWriter / PayloadReader ------------------------------------------

void PayloadWriter::putU32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xffu));
  }
}

void PayloadWriter::putU64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xffu));
  }
}

void PayloadWriter::putF64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  putU64(bits);
}

void PayloadWriter::putString(std::string_view s) {
  NB_EXPECTS(s.size() <= kMaxStringBytes);
  putU32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw JournalCorruptError("journal payload truncated: wanted " +
                              std::to_string(n) + " byte(s) at offset " +
                              std::to_string(pos_));
  }
}

std::uint32_t PayloadReader::u32() {
  need(4);
  const std::uint32_t v = readU32At(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::string PayloadReader::string() {
  const std::uint32_t len = u32();
  if (len > kMaxStringBytes) {
    throw JournalCorruptError("journal string length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(kMaxStringBytes) + "-byte limit");
  }
  need(len);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::vector<std::uint8_t> PayloadReader::blob(std::uint32_t len) {
  need(len);
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

void putSummary(PayloadWriter& w, const Summary& s) {
  w.putU64(static_cast<std::uint64_t>(s.count));
  w.putF64(s.mean);
  w.putF64(s.stddev);
  w.putF64(s.min);
  w.putF64(s.max);
}

Summary readSummary(PayloadReader& r) {
  Summary s;
  s.count = static_cast<std::size_t>(r.u64());
  s.mean = r.f64();
  s.stddev = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  return s;
}

// --- CampaignConfig ----------------------------------------------------------

std::string describeConfigMismatch(const CampaignConfig& recorded,
                                   const CampaignConfig& current) {
  const auto diff = [](const std::string& param, const std::string& was,
                       const std::string& now) {
    return "journal configuration mismatch: " + param +
           " was " + was + " when the journal was recorded but is " + now +
           " in this run; rerun with the original parameters or start a "
           "fresh journal";
  };
  if (recorded.registryHash != current.registryHash) {
    return diff("the machine registry", hex(recorded.registryHash),
                hex(current.registryHash));
  }
  if (recorded.faultPlanHash != current.faultPlanHash) {
    return diff("the fault plan (--faults)", hex(recorded.faultPlanHash),
                hex(current.faultPlanHash));
  }
  if (recorded.seed != current.seed) {
    return diff("the fault-plan seed", std::to_string(recorded.seed),
                std::to_string(current.seed));
  }
  if (recorded.runs != current.runs) {
    return diff("--runs", std::to_string(recorded.runs),
                std::to_string(current.runs));
  }
  if (recorded.cellRetries != current.cellRetries) {
    return diff("the cell retry budget", std::to_string(recorded.cellRetries),
                std::to_string(current.cellRetries));
  }
  if (recorded.cpuArrayBytes != current.cpuArrayBytes) {
    return diff("the CPU array size (bytes)",
                std::to_string(recorded.cpuArrayBytes),
                std::to_string(current.cpuArrayBytes));
  }
  if (recorded.gpuArrayBytes != current.gpuArrayBytes) {
    return diff("the GPU array size (bytes)",
                std::to_string(recorded.gpuArrayBytes),
                std::to_string(current.gpuArrayBytes));
  }
  if (recorded.mpiMessageSize != current.mpiMessageSize) {
    return diff("the MPI message size (bytes)",
                std::to_string(recorded.mpiMessageSize),
                std::to_string(current.mpiMessageSize));
  }
  const auto shardText = [](const CampaignConfig& c) {
    if (c.shardCount == 0) {
      return std::string("unsharded");
    }
    return std::to_string(c.shardIndex) + "/" + std::to_string(c.shardCount);
  };
  if (recorded.shardIndex != current.shardIndex ||
      recorded.shardCount != current.shardCount) {
    return diff("the shard spec (--shard)", shardText(recorded),
                shardText(current));
  }
  // Note: `jobs` is deliberately not compared — output is byte-identical
  // at any worker count, so resuming at a different --jobs is safe.
  return {};
}

// --- encode / decode ---------------------------------------------------------

std::vector<std::uint8_t> Journal::encodeHeader(const CampaignConfig& config) {
  PayloadWriter w;
  w.putU64(config.registryHash);
  w.putU64(config.faultPlanHash);
  w.putU64(config.seed);
  w.putU32(config.runs);
  w.putU32(config.jobs);
  w.putU32(config.cellRetries);
  w.putU64(config.cpuArrayBytes);
  w.putU64(config.gpuArrayBytes);
  w.putU64(config.mpiMessageSize);
  if (config.shardCount != 0) {
    // Optional shard extension: written only when sharded so unsharded
    // journals stay byte-identical to the pre-shard format (and a merged
    // journal stays comparable to a single-process run's bytes).
    w.putU32(config.shardIndex);
    w.putU32(config.shardCount);
  }

  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((kSchemaVersion >> (8 * i)) & 0xffu));
  }
  const auto framed = frame(w.bytes());
  out.insert(out.end(), framed.begin(), framed.end());
  return out;
}

std::vector<std::uint8_t> Journal::encodeRecord(const CellRecord& record) {
  PayloadWriter w;
  w.putString(record.machine);
  w.putString(record.cell);
  w.putU32(record.attempts);
  w.putU32(record.failed ? 1 : 0);
  w.putString(record.error);
  w.putU32(static_cast<std::uint32_t>(record.payload.size()));
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.insert(bytes.end(), record.payload.begin(), record.payload.end());
  return frame(bytes);
}

Journal::Decoded Journal::decode(std::span<const std::uint8_t> bytes) {
  Decoded out;
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw JournalCorruptError(
        "not a nodebench campaign journal (bad magic bytes)");
  }
  const std::uint32_t version = readU32At(bytes, 4);
  if (version != kSchemaVersion) {
    throw JournalCorruptError("unsupported journal schema version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kSchemaVersion) + ")");
  }
  std::size_t pos = 8;

  // Header frame: mandatory; corruption here is unrecoverable because
  // without the configuration fingerprint, replayed records could not be
  // trusted to match this run.
  if (bytes.size() - pos < 8) {
    throw JournalCorruptError("journal header truncated");
  }
  const std::uint32_t headerLen = readU32At(bytes, pos);
  const std::uint32_t headerCrc = readU32At(bytes, pos + 4);
  if (headerLen > kMaxRecordBytes || bytes.size() - pos - 8 < headerLen) {
    throw JournalCorruptError("journal header truncated");
  }
  const auto headerPayload = bytes.subspan(pos + 8, headerLen);
  if (crc32(headerPayload) != headerCrc) {
    throw JournalCorruptError("journal header checksum mismatch");
  }
  {
    PayloadReader r(headerPayload);
    out.config.registryHash = r.u64();
    out.config.faultPlanHash = r.u64();
    out.config.seed = r.u64();
    out.config.runs = r.u32();
    out.config.jobs = r.u32();
    out.config.cellRetries = r.u32();
    out.config.cpuArrayBytes = r.u64();
    out.config.gpuArrayBytes = r.u64();
    out.config.mpiMessageSize = r.u64();
    if (!r.atEnd()) {
      // Shard extension (present only on --shard journals).
      out.config.shardIndex = r.u32();
      out.config.shardCount = r.u32();
      if (out.config.shardCount == 0 ||
          out.config.shardCount > kMaxShardCount ||
          out.config.shardIndex >= out.config.shardCount) {
        throw JournalCorruptError(
            "journal header carries an invalid shard spec " +
            std::to_string(out.config.shardIndex) + "/" +
            std::to_string(out.config.shardCount));
      }
    }
    if (!r.atEnd()) {
      throw JournalCorruptError("journal header carries unexpected bytes");
    }
  }
  pos += 8 + headerLen;
  out.validBytes = pos;

  // Record frames: the valid prefix replays; the first invalid frame
  // marks a torn tail (a kill mid-append) and everything from there on
  // is dropped with a warning.
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    const auto tornTail = [&](const std::string& why) {
      out.warnings.push_back(
          "torn tail truncated: " + why + "; dropped " +
          std::to_string(bytes.size() - pos) + " trailing byte(s), kept " +
          std::to_string(out.records.size()) + " valid record(s)");
    };
    if (remaining < 8) {
      tornTail("incomplete record frame");
      break;
    }
    const std::uint32_t len = readU32At(bytes, pos);
    const std::uint32_t crc = readU32At(bytes, pos + 4);
    if (len > kMaxRecordBytes) {
      tornTail("record length " + std::to_string(len) + " exceeds the " +
               std::to_string(kMaxRecordBytes) + "-byte limit");
      break;
    }
    if (remaining - 8 < len) {
      tornTail("record extends past end of file");
      break;
    }
    const auto payload = bytes.subspan(pos + 8, len);
    if (crc32(payload) != crc) {
      tornTail("record checksum mismatch");
      break;
    }
    try {
      PayloadReader r(payload);
      CellRecord record;
      record.machine = utf8Checked(r.string(), "machine");
      record.cell = utf8Checked(r.string(), "cell");
      record.attempts = r.u32();
      const std::uint32_t failed = r.u32();
      if (failed > 1) {
        throw JournalCorruptError("journal record 'failed' flag out of range");
      }
      record.failed = failed == 1;
      record.error = utf8Checked(r.string(), "error");
      const std::uint32_t blobLen = r.u32();
      record.payload = r.blob(blobLen);
      if (!r.atEnd()) {
        throw JournalCorruptError("journal record carries trailing bytes");
      }
      out.records.push_back(std::move(record));
    } catch (const JournalCorruptError& e) {
      tornTail(e.what());
      break;
    }
    pos += 8 + len;
    out.validBytes = pos;
  }
  return out;
}

// --- Journal lifecycle -------------------------------------------------------

namespace {

std::vector<std::uint8_t> readFileCapped(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw Error("cannot open journal file: " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    throw Error("cannot stat journal file: " + path);
  }
  if (static_cast<std::uintmax_t>(size) > kMaxJournalBytes) {
    throw JournalCorruptError("journal file " + path + " is implausibly "
                              "large (" + std::to_string(size) + " bytes)");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw Error("failed reading journal file: " + path);
  }
  return bytes;
}

void traceJournalEvent(trace::Category category, std::uint64_t bytes) {
  if (trace::TraceBuffer* tb = trace::current()) {
    trace::Event e;
    e.category = category;
    e.actorKind = trace::ActorKind::Campaign;
    e.actor = 0;
    e.bytes = bytes;
    tb->event(e);
    tb->count(category == trace::Category::JournalAppend
                  ? "campaign.records appended"
                  : "campaign.records replayed");
  }
}

}  // namespace

std::unique_ptr<Journal> Journal::create(const std::string& path,
                                         const CampaignConfig& config) {
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    throw Error("journal file already exists: " + path +
                " (pass --resume to continue the recorded campaign, or "
                "remove the file to start fresh)");
  }
  io::atomicWrite(path, encodeHeader(config), kWhat);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen journal for appending: " + path + ": " +
                errnoText());
  }
  auto journal = std::unique_ptr<Journal>(new Journal());
  journal->path_ = path;
  journal->fd_ = fd;
  journal->config_ = config;
  return journal;
}

std::unique_ptr<Journal> Journal::resume(const std::string& path,
                                         const CampaignConfig& current) {
  const std::vector<std::uint8_t> bytes = readFileCapped(path);
  Decoded decoded = decode(bytes);
  const std::string mismatch =
      describeConfigMismatch(decoded.config, current);
  if (!mismatch.empty()) {
    throw JournalConfigMismatchError("cannot resume " + path + ": " +
                                     mismatch);
  }
  if (decoded.validBytes < bytes.size()) {
    // Torn tail: atomically rewrite the valid prefix so the append
    // stream continues from a clean boundary.
    io::atomicWrite(path, std::span(bytes).first(decoded.validBytes), kWhat);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw Error("cannot reopen journal for appending: " + path + ": " +
                errnoText());
  }
  auto journal = std::unique_ptr<Journal>(new Journal());
  journal->path_ = path;
  journal->fd_ = fd;
  journal->config_ = decoded.config;
  journal->warnings_ = std::move(decoded.warnings);
  for (CellRecord& record : decoded.records) {
    std::string key = recordKey(record.machine, record.cell);
    journal->records_.emplace(std::move(key), std::move(record));
  }
  return journal;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

const CellRecord* Journal::find(std::string_view machine,
                                std::string_view cell) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(recordKey(machine, cell));
  if (it == records_.end()) {
    return nullptr;
  }
  traceJournalEvent(trace::Category::JournalReplay,
                    it->second.payload.size());
  // Records are never mutated or erased after insertion, so the pointer
  // stays valid outside the lock (std::map nodes are address-stable).
  return &it->second;
}

void Journal::append(CellRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string key = recordKey(record.machine, record.cell);
  if (records_.find(key) != records_.end()) {
    return;  // idempotent: `table all` recomputes Tables 5/6 for Table 7
  }
  const std::vector<std::uint8_t> framed = encodeRecord(record);
  io::appendDurable(fd_, framed, path_, kWhat);
  traceJournalEvent(trace::Category::JournalAppend, framed.size());
  const bool isCell = !record.machine.empty();
  records_.emplace(std::move(key), std::move(record));
  if (!isCell) {
    // Shard manifests (machine == "") are bookkeeping, not measurements:
    // they neither count toward --crash-after-cell nor toward
    // appendedThisProcess(), so "crash after N cells" still means cells.
    return;
  }
  ++appended_;
  if (crashAfter_ >= 0 &&
      appended_ >= static_cast<std::size_t>(crashAfter_)) {
    // Crash-injection hook: simulate an operator kill / OOM at an
    // arbitrary campaign point. The record just written is durable
    // (fsync above); everything in flight is lost, as in a real crash.
    std::_Exit(kCrashExitCode);
  }
}

std::size_t Journal::recordCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t Journal::cellRecordCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, record] : records_) {
    if (!record.machine.empty()) {
      ++n;
    }
  }
  return n;
}

std::size_t Journal::appendedThisProcess() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

}  // namespace nodebench::campaign
