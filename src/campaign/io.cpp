#include "campaign/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "core/error.hpp"

namespace nodebench::campaign::io {

namespace {

std::string errnoText() { return std::strerror(errno); }

/// Armed-fault state. A single global slot is enough: the shim is a
/// test hook, and tests arm one fault at a time. The countdown is atomic
/// so harness worker threads can race through writeAll safely.
struct FaultSlot {
  std::atomic<bool> armed{false};
  std::atomic<int> remaining{0};
  std::atomic<int> fired{0};
  IoOp op = IoOp::Write;
  int errnoValue = EIO;
};

FaultSlot& faultSlot() {
  static FaultSlot slot;
  return slot;
}

/// True when the armed fault matches `op` and its countdown expires on
/// this call; the caller must then fail with the injected errno.
bool faultFires(IoOp op) {
  FaultSlot& slot = faultSlot();
  if (!slot.armed.load(std::memory_order_acquire) || slot.op != op) {
    return false;
  }
  if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) != 0) {
    return false;
  }
  slot.armed.store(false, std::memory_order_release);
  slot.fired.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

}  // namespace

void setIoFailure(IoOp op, int afterCalls, int errnoValue) {
  FaultSlot& slot = faultSlot();
  slot.armed.store(false, std::memory_order_release);
  slot.op = op;
  slot.errnoValue = errnoValue;
  slot.remaining.store(afterCalls, std::memory_order_release);
  slot.fired.store(0, std::memory_order_release);
  slot.armed.store(true, std::memory_order_release);
}

void clearIoFailure() {
  faultSlot().armed.store(false, std::memory_order_release);
}

int ioFailuresFired() {
  return faultSlot().fired.load(std::memory_order_acquire);
}

void writeAll(int fd, std::span<const std::uint8_t> bytes,
              const std::string& path, const char* what) {
  if (faultFires(IoOp::PartialWrite)) {
    // Worst-case torn write: half the frame reaches the file, then the
    // device fails. appendDurable's rollback must erase the fragment.
    const std::size_t half = bytes.size() / 2;
    std::size_t off = 0;
    while (off < half) {
      const ssize_t n = ::write(fd, bytes.data() + off, half - off);
      if (n < 0) {
        break;  // the injected error below still describes the failure
      }
      off += static_cast<std::size_t>(n);
    }
    errno = faultSlot().errnoValue;
    throw Error(std::string(what) + " write failed: " + path + ": " +
                errnoText());
  }
  if (faultFires(IoOp::Write)) {
    errno = faultSlot().errnoValue;
    throw Error(std::string(what) + " write failed: " + path + ": " +
                errnoText());
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error(std::string(what) + " write failed: " + path + ": " +
                  errnoText());
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsyncOrThrow(int fd, const std::string& path, const char* what) {
  if (faultFires(IoOp::Fsync)) {
    errno = faultSlot().errnoValue;
    throw Error(std::string(what) + " fsync failed: " + path + ": " +
                errnoText());
  }
  if (::fsync(fd) != 0) {
    throw Error(std::string(what) + " fsync failed: " + path + ": " +
                errnoText());
  }
}

void syncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

void atomicWrite(const std::string& path, std::span<const std::uint8_t> content,
                 const char* what) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error(std::string("cannot create ") + what + " temp file: " + tmp +
                ": " + errnoText());
  }
  try {
    writeAll(fd, content, tmp, what);
    fsyncOrThrow(fd, tmp, what);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errnoText();
    ::unlink(tmp.c_str());
    throw Error(std::string("cannot rename ") + what +
                " temp file into place: " + path + ": " + why);
  }
  syncParentDir(path);
}

void appendDurable(int fd, std::span<const std::uint8_t> bytes,
                   const std::string& path, const char* what) {
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    throw Error(std::string(what) + " append failed: " + path +
                ": cannot seek to end: " + errnoText());
  }
  try {
    writeAll(fd, bytes, path, what);
    fsyncOrThrow(fd, path, what);
  } catch (const Error& e) {
    // Roll the file back to its pre-append length so no torn frame
    // survives the failure; the in-memory index was not updated either,
    // so the writer and the file stay consistent.
    if (::ftruncate(fd, end) != 0) {
      throw Error(std::string(e.what()) +
                  "; rollback truncate also failed: " + errnoText() +
                  " (the file may carry a torn trailing frame)");
    }
    (void)::fsync(fd);
    throw;
  }
}

}  // namespace nodebench::campaign::io
