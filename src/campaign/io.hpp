#pragma once
/// \file io.hpp
/// \brief Durable file I/O shared by the campaign journal, the results
/// store and the serve daemon's state directory.
///
/// Before this file, journal.cpp and store.cpp each carried their own
/// copies of write-fully / fsync-or-throw / atomic-replace. Centralizing
/// them buys two robustness properties both writers need:
///
///  - **Append rollback.** `appendDurable` remembers the file's end
///    offset before writing and, when the write or fsync fails midway
///    (ENOSPC, EIO), truncates the file back to that offset before
///    rethrowing. A failed append therefore *never* leaves a torn frame
///    behind: the journal needs no torn-tail recovery on the next resume
///    and the strict store decoder keeps accepting the file.
///  - **I/O fault injection.** A test-only shim (`setIoFailure`) makes
///    the Nth subsequent write or fsync fail with a chosen errno —
///    optionally after a partial write, the worst case rollback must
///    handle — so the ENOSPC/EIO paths are testable without filling a
///    disk. The shim sits beside the `--crash-after-cell` hook in the
///    robustness toolbox; production builds never arm it.
///
/// Every function takes a `what` label ("journal", "store", "serve
/// state") so error texts keep naming the subsystem that failed.

#include <cstdint>
#include <span>
#include <string>

namespace nodebench::campaign::io {

/// Writes all of `bytes` at the current offset, retrying short writes
/// and EINTR. Throws Error("<what> write failed: <path>: <errno text>").
void writeAll(int fd, std::span<const std::uint8_t> bytes,
              const std::string& path, const char* what);

/// fsync or Error("<what> fsync failed: ...").
void fsyncOrThrow(int fd, const std::string& path, const char* what);

/// Best-effort fsync of `path`'s parent directory — required for a
/// rename into that directory to be durable on POSIX filesystems.
void syncParentDir(const std::string& path);

/// Atomically replaces `path` with `content` (write temp, fsync, rename,
/// sync parent dir). The temp file is unlinked on failure.
void atomicWrite(const std::string& path, std::span<const std::uint8_t> content,
                 const char* what);

/// Durable append with rollback: seeks to the end, writes `bytes`,
/// fsyncs. If any step fails the file is truncated back to its
/// pre-append length before the error propagates, so the on-disk record
/// stream is never left with a torn frame. (If even the rollback
/// truncate fails the error says so — the caller then knows the tail is
/// suspect and the torn-tail recovery path applies.)
void appendDurable(int fd, std::span<const std::uint8_t> bytes,
                   const std::string& path, const char* what);

// --- test-only fault injection ----------------------------------------------

/// Which syscall the armed fault fires on.
enum class IoOp : int {
  Write = 0,  ///< ::write fails (no bytes reach the file).
  PartialWrite = 1,  ///< ::write lands half the bytes, then fails.
  Fsync = 2,  ///< The write lands fully, then ::fsync fails.
};

/// Arms the shim: the (`afterCalls` + 1)-th subsequent matching syscall
/// issued through this layer fails with `errnoValue` (e.g. ENOSPC, EIO).
/// The shim disarms itself after firing once. Test-only; not reentrant
/// with concurrent arming (but safe against concurrent I/O).
void setIoFailure(IoOp op, int afterCalls, int errnoValue);

/// Disarms the shim (idempotent).
void clearIoFailure();

/// Number of times an armed fault has fired since the last arm/clear
/// (tests assert the fault actually triggered).
[[nodiscard]] int ioFailuresFired();

}  // namespace nodebench::campaign::io
