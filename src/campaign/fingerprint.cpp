#include "campaign/fingerprint.hpp"

#include "core/checksum.hpp"
#include "faults/fault_plan.hpp"
#include "machines/registry.hpp"

namespace nodebench::campaign {

std::uint64_t registryHash() {
  std::uint64_t h = Fnv1a::init();
  for (const machines::Machine& m : machines::allMachines()) {
    h = Fnv1a::mix(h, m.info.name);
    h = Fnv1a::mix(h, static_cast<std::uint64_t>(m.info.top500Rank));
    h = Fnv1a::mix(h, m.seed);
    h = Fnv1a::mix(h, static_cast<std::uint64_t>(m.coreCount()));
    h = Fnv1a::mix(h, static_cast<std::uint64_t>(m.topology.gpuCount()));
  }
  return h;
}

std::uint64_t faultPlanHash(const faults::FaultPlan* plan) {
  if (plan == nullptr) {
    return 0;
  }
  std::uint64_t h = Fnv1a::init();
  h = Fnv1a::mix(h, plan->seed);
  for (const faults::FaultSpec& spec : plan->faults) {
    h = Fnv1a::mix(h, static_cast<std::uint64_t>(spec.type));
    h = Fnv1a::mix(h, spec.machine);
    h = Fnv1a::mix(h, spec.link);
    h = Fnv1a::mix(h, spec.bandwidthFactor);
    h = Fnv1a::mix(h, spec.addedLatency.us());
    h = Fnv1a::mix(h, spec.cvFactor);
    h = Fnv1a::mix(h, spec.slowdown);
    h = Fnv1a::mix(h, spec.rate);
  }
  return h;
}

}  // namespace nodebench::campaign
