#pragma once
/// \file ascii_chart.hpp
/// \brief Terminal line charts for benchmark series — the figure-grade
/// companion to the tables (log-x latency/bandwidth curves render the
/// way the microbenchmark literature plots them).

#include <string>
#include <vector>

#include "core/error.hpp"

namespace nodebench::report {

/// One named series of (x, y) points. All series of a chart share the x
/// values.
struct Series {
  std::string name;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 64;    ///< Plot columns.
  int height = 16;   ///< Plot rows.
  bool logX = true;  ///< Size axes are log2 in this domain.
  bool logY = false;
  std::string xLabel;
  std::string yLabel;
};

/// Renders an ASCII line chart: one glyph per series ('*', 'o', '+', 'x',
/// ...), y-axis ticks on the left, x ticks underneath, legend at the
/// bottom. Preconditions: at least one series, all series the same
/// length as xs, at least two points, positive values on log axes.
[[nodiscard]] std::string renderChart(const std::vector<double>& xs,
                                      const std::vector<Series>& series,
                                      const ChartOptions& options);

/// Compact single-line sparkline of one series (8-level blocks rendered
/// in ASCII as " .:-=+*#").
[[nodiscard]] std::string sparkline(const std::vector<double>& ys);

}  // namespace nodebench::report
