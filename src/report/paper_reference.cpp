#include "report/paper_reference.hpp"

#include <string>

#include "core/error.hpp"

namespace nodebench::report::paper {

namespace {
constexpr std::optional<Value> none = std::nullopt;
}

const std::array<Cpu4Ref, 5>& table4() {
  static const std::array<Cpu4Ref, 5> rows{{
      {"Trinity", {12.36, 0.16}, {347.28, 5.76}, {0.67, 0.01}, {0.99, 0.01}},
      {"Theta", {18.76, 0.58}, {119.72, 0.54}, {5.95, 0.01}, {6.25, 0.05}},
      {"Sawtooth", {13.06, 0.35}, {238.70, 8.39}, {0.48, 0.01}, {0.48, 0.01}},
      {"Eagle", {13.45, 0.03}, {208.24, 0.92}, {0.17, 0.00}, {0.38, 0.01}},
      {"Manzano", {15.27, 0.05}, {234.86, 0.12}, {0.32, 0.00}, {0.56, 0.01}},
  }};
  return rows;
}

const std::array<Gpu5Ref, 8>& table5() {
  static const std::array<Gpu5Ref, 8> rows{{
      {"Frontier",
       {1336.35, 1.11},
       {0.45, 0.01},
       {Value{0.44, 0.00}, Value{0.44, 0.00}, Value{0.44, 0.00},
        Value{0.44, 0.00}}},
      {"Summit",
       {786.43, 0.11},
       {0.34, 0.07},
       {Value{18.10, 0.22}, Value{19.30, 0.15}, none, none}},
      {"Sierra",
       {861.40, 0.65},
       {0.38, 0.01},
       {Value{18.72, 0.12}, Value{19.76, 0.37}, none, none}},
      {"Perlmutter",
       {1363.74, 0.23},
       {0.46, 0.06},
       {Value{13.50, 0.13}, none, none, none}},
      {"Polaris",
       {1362.75, 0.17},
       {0.21, 0.00},
       {Value{10.42, 0.03}, none, none, none}},
      {"Lassen",
       {861.03, 0.53},
       {0.37, 0.00},
       {Value{18.68, 0.20}, Value{19.72, 0.13}, none, none}},
      {"RZVernal",
       {1291.38, 0.77},
       {0.49, 0.00},
       {Value{0.50, 0.01}, Value{0.50, 0.01}, Value{0.50, 0.00},
        Value{0.49, 0.01}}},
      {"Tioga",
       {1336.81, 0.97},
       {0.49, 0.00},
       {Value{0.50, 0.00}, Value{0.50, 0.00}, Value{0.50, 0.00},
        Value{0.49, 0.01}}},
  }};
  return rows;
}

const std::array<Gpu6Ref, 8>& table6() {
  static const std::array<Gpu6Ref, 8> rows{{
      {"Frontier",
       {1.51, 0.00},
       {0.14, 0.00},
       {12.91, 0.02},
       {24.87, 0.01},
       {Value{12.02, 0.05}, Value{12.56, 0.03}, Value{12.68, 0.02},
        Value{12.02, 0.10}}},
      {"Summit",
       {4.84, 0.01},
       {4.31, 0.01},
       {7.82, 0.07},
       {44.88, 0.00},
       {Value{24.97, 0.16}, Value{27.44, 0.14}, none, none}},
      {"Sierra",
       {4.13, 0.01},
       {5.59, 0.02},
       {7.27, 0.23},
       {63.40, 0.01},
       {Value{23.91, 0.16}, Value{27.70, 0.12}, none, none}},
      {"Perlmutter",
       {1.77, 0.01},
       {0.98, 0.00},
       {4.24, 0.01},
       {24.74, 0.00},
       {Value{14.74, 0.41}, none, none, none}},
      {"Polaris",
       {1.83, 0.00},
       {1.32, 0.01},
       {5.33, 0.02},
       {23.71, 0.00},
       {Value{32.84, 0.30}, none, none, none}},
      {"Lassen",
       {4.56, 0.00},
       {5.52, 0.01},
       {7.76, 0.32},
       {63.34, 0.02},
       {Value{24.56, 0.28}, Value{27.69, 0.10}, none, none}},
      {"RZVernal",
       {2.16, 0.01},
       {0.12, 0.00},
       {12.20, 0.07},
       {24.88, 0.00},
       {Value{9.85, 0.01}, Value{12.58, 0.00}, Value{12.45, 0.02},
        Value{10.21, 0.01}}},
      {"Tioga",
       {2.15, 0.01},
       {0.12, 0.00},
       {12.19, 0.04},
       {24.88, 0.00},
       {Value{9.85, 0.02}, Value{12.59, 0.01}, Value{12.46, 0.01},
        Value{10.12, 0.02}}},
  }};
  return rows;
}

namespace {

template <typename Rows>
const auto& findRow(const Rows& rows, std::string_view name,
                    const char* table) {
  for (const auto& row : rows) {
    if (row.name == name) {
      return row;
    }
  }
  throw NotFoundError(std::string("no ") + table + " reference row for " +
                      std::string(name));
}

}  // namespace

const Cpu4Ref& table4Row(std::string_view name) {
  return findRow(table4(), name, "Table 4");
}
const Gpu5Ref& table5Row(std::string_view name) {
  return findRow(table5(), name, "Table 5");
}
const Gpu6Ref& table6Row(std::string_view name) {
  return findRow(table6(), name, "Table 6");
}

}  // namespace nodebench::report::paper
