#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace nodebench::report {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '@', '%', '&', '~'};

double transform(double v, bool log) {
  if (!log) {
    return v;
  }
  NB_EXPECTS_MSG(v > 0.0, "log axis requires positive values");
  return std::log2(v);
}

std::string tick(double v) {
  char buf[32];
  if (v != 0.0 && (std::abs(v) >= 10000.0 || std::abs(v) < 0.01)) {
    std::snprintf(buf, sizeof(buf), "%.2g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string renderChart(const std::vector<double>& xs,
                        const std::vector<Series>& series,
                        const ChartOptions& opt) {
  NB_EXPECTS(!series.empty());
  NB_EXPECTS(xs.size() >= 2);
  NB_EXPECTS(opt.width >= 16 && opt.height >= 4);
  for (const Series& s : series) {
    NB_EXPECTS_MSG(s.y.size() == xs.size(),
                   "series length must match the x axis");
  }

  double xLo = transform(xs.front(), opt.logX);
  double xHi = transform(xs.back(), opt.logX);
  NB_EXPECTS_MSG(xHi > xLo, "x axis must be increasing");
  double yLo = transform(series[0].y[0], opt.logY);
  double yHi = yLo;
  for (const Series& s : series) {
    for (double v : s.y) {
      const double t = transform(v, opt.logY);
      yLo = std::min(yLo, t);
      yHi = std::max(yHi, t);
    }
  }
  if (yHi == yLo) {
    yHi = yLo + 1.0;  // flat series still renders
  }

  // Grid of glyphs; row 0 is the top.
  std::vector<std::string> grid(opt.height, std::string(opt.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double fx = (transform(xs[i], opt.logX) - xLo) / (xHi - xLo);
      const double fy =
          (transform(series[si].y[i], opt.logY) - yLo) / (yHi - yLo);
      const int col = std::min(opt.width - 1,
                               static_cast<int>(fx * (opt.width - 1) + 0.5));
      const int row =
          opt.height - 1 -
          std::min(opt.height - 1,
                   static_cast<int>(fy * (opt.height - 1) + 0.5));
      grid[row][col] = glyph;
    }
  }

  // Assemble with a y-axis gutter.
  std::string out;
  if (!opt.yLabel.empty()) {
    out += "  " + opt.yLabel + "\n";
  }
  const auto yAt = [&](int row) {
    const double f =
        static_cast<double>(opt.height - 1 - row) / (opt.height - 1);
    const double t = yLo + f * (yHi - yLo);
    return opt.logY ? std::exp2(t) : t;
  };
  for (int row = 0; row < opt.height; ++row) {
    char gutter[16];
    if (row == 0 || row == opt.height / 2 || row == opt.height - 1) {
      std::snprintf(gutter, sizeof(gutter), "%9s |", tick(yAt(row)).c_str());
    } else {
      std::snprintf(gutter, sizeof(gutter), "%9s |", "");
    }
    out += gutter;
    out += grid[row];
    out += '\n';
  }
  out += std::string(10, ' ') + '+' + std::string(opt.width, '-') + '\n';
  char xticks[160];
  std::snprintf(xticks, sizeof(xticks), "%10s %-*s%s\n", " ",
                opt.width - static_cast<int>(tick(xs.back()).size()),
                tick(xs.front()).c_str(), tick(xs.back()).c_str());
  out += xticks;
  if (!opt.xLabel.empty()) {
    out += std::string(10, ' ') + opt.xLabel + '\n';
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "  ";
    out += kGlyphs[si % sizeof(kGlyphs)];
    out += " = " + series[si].name + '\n';
  }
  return out;
}

std::string sparkline(const std::vector<double>& ys) {
  NB_EXPECTS(!ys.empty());
  static constexpr char kLevels[] = " .:-=+*#";
  const double lo = *std::min_element(ys.begin(), ys.end());
  const double hi = *std::max_element(ys.begin(), ys.end());
  std::string out;
  out.reserve(ys.size());
  for (double v : ys) {
    const double f = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    out += kLevels[static_cast<int>(f * 7.0 + 0.5)];
  }
  return out;
}

}  // namespace nodebench::report
