#pragma once
/// \file roofline.hpp
/// \brief Roofline evaluation over the calibrated machine models:
/// attainable performance as a function of arithmetic intensity,
/// `min(peak, intensity * bandwidth)` — the standard way to read the
/// balance numbers of `balance.hpp` as kernel-level guidance.

#include <vector>

#include "core/table.hpp"
#include "machines/machine.hpp"

namespace nodebench::report {

struct RooflinePoint {
  double intensityFlopsPerByte = 0.0;
  double gflops = 0.0;
  bool memoryBound = true;
};

/// Attainable GFLOP/s at one arithmetic intensity on the host (all NUMA
/// domains saturated) or on one device. Preconditions: intensity > 0 and
/// the corresponding peak-FLOPS field is set; device side requires an
/// accelerator machine.
[[nodiscard]] RooflinePoint rooflineAt(const machines::Machine& m,
                                       bool deviceSide, double intensity);

/// Log2 sweep of intensities in [minIntensity, maxIntensity].
[[nodiscard]] std::vector<RooflinePoint> rooflineSweep(
    const machines::Machine& m, bool deviceSide, double minIntensity,
    double maxIntensity);

/// The ridge point (intensity where the kernel turns compute-bound):
/// peak / bandwidth — identical to the balance metric.
[[nodiscard]] double ridgeIntensity(const machines::Machine& m,
                                    bool deviceSide);

/// Side-by-side roofline table of several machines at common intensities.
[[nodiscard]] Table renderRooflines(
    const std::vector<const machines::Machine*>& machines, bool deviceSide,
    const std::vector<double>& intensities);

}  // namespace nodebench::report
