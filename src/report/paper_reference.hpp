#pragma once
/// \file paper_reference.hpp
/// \brief The paper's published measurements (Tables 4-7), used by the
/// golden tests and by the bench harnesses' "paper vs measured" columns.
///
/// Values transcribed from Siefert et al., "Latency and Bandwidth
/// Microbenchmarks of US DOE Systems in the June 2023 Top500 List",
/// SC-W 2023, Tables 4, 5 and 6.

#include <array>
#include <optional>
#include <string_view>

namespace nodebench::report::paper {

/// mean ± sd pair as printed in the paper.
struct Value {
  double mean = 0.0;
  double sd = 0.0;
};

/// Table 4 row (non-accelerator systems).
struct Cpu4Ref {
  std::string_view name;
  Value singleGBps;
  Value allGBps;
  Value onSocketUs;
  Value onNodeUs;
};

/// Table 5 row (accelerator systems).
struct Gpu5Ref {
  std::string_view name;
  Value deviceGBps;
  Value hostToHostUs;
  std::array<std::optional<Value>, 4> d2dUs;  ///< classes A..D
};

/// Table 6 row (Comm|Scope).
struct Gpu6Ref {
  std::string_view name;
  Value launchUs;
  Value waitUs;
  Value hostDeviceLatencyUs;
  Value hostDeviceBandwidthGBps;
  std::array<std::optional<Value>, 4> d2dUs;  ///< classes A..D
};

[[nodiscard]] const std::array<Cpu4Ref, 5>& table4();
[[nodiscard]] const std::array<Gpu5Ref, 8>& table5();
[[nodiscard]] const std::array<Gpu6Ref, 8>& table6();

/// Looks up a row by machine name; throws NotFoundError when absent.
[[nodiscard]] const Cpu4Ref& table4Row(std::string_view name);
[[nodiscard]] const Gpu5Ref& table5Row(std::string_view name);
[[nodiscard]] const Gpu6Ref& table6Row(std::string_view name);

}  // namespace nodebench::report::paper
