#pragma once
/// \file memlab_report.hpp
/// \brief Machine-comparison reports for the memlab benchmark families:
/// the working-set bandwidth sweep (`nodebench sweep`) and the
/// pointer-chase latency ladder (`nodebench chase`).
///
/// Both families run under the shared cell harness (cell_runner.hpp) with
/// one cell per (machine, working-set) grid point, so every TableOptions
/// knob — --jobs, --faults, --journal/--resume, --store, --shard, serve
/// campaigns — composes exactly as it does for the paper tables. The
/// renderers produce a comparison table (rows = working sets, columns =
/// machines) plus an ascii line chart whose steps are the cache-ladder
/// knees.

#include <string>
#include <vector>

#include "core/table.hpp"
#include "memlab/chase.hpp"
#include "memlab/sweep.hpp"
#include "report/tables.hpp"

namespace nodebench::report {

/// Harness cell names for one grid point, keyed by the family axis (the
/// working set in bytes) — stable identifiers shared by fault plans,
/// journals, stores and shard manifests.
[[nodiscard]] std::string sweepCellName(ByteCount workingSet);
[[nodiscard]] std::string chaseCellName(ByteCount workingSet);

// --- Working-set bandwidth sweep --------------------------------------------
struct SweepRow {
  const machines::Machine* machine = nullptr;
  std::vector<memlab::SweepPoint> points;  ///< One per grid size, in order.
};
/// Runs the sweep over every registry machine (or the opt.machines
/// subset); opt.binaryRuns feeds the per-point driver. The grid itself is
/// the family's fixed geometric ladder (memlab::sweepGrid defaults).
[[nodiscard]] std::vector<SweepRow> computeSweep(
    const TableOptions& opt, std::vector<CellIncident>* incidents = nullptr);
/// Comparison table: mean triad GB/s per (working set, machine).
[[nodiscard]] Table renderSweep(
    const std::vector<SweepRow>& rows,
    const std::vector<CellIncident>* incidents = nullptr);
/// Log-log ascii chart of the same data, one series per machine; returns
/// "" when no machine has a complete all-positive curve to plot.
[[nodiscard]] std::string renderSweepChart(const std::vector<SweepRow>& rows);

// --- Pointer-chase latency ladder -------------------------------------------
struct ChaseRow {
  const machines::Machine* machine = nullptr;
  std::vector<memlab::ChasePoint> points;  ///< One per grid size, in order.
};
[[nodiscard]] std::vector<ChaseRow> computeChase(
    const TableOptions& opt, std::vector<CellIncident>* incidents = nullptr);
/// Comparison tables: mean ns-per-access, and mean clk-per-op.
[[nodiscard]] Table renderChaseNs(
    const std::vector<ChaseRow>& rows,
    const std::vector<CellIncident>* incidents = nullptr);
[[nodiscard]] Table renderChaseClk(
    const std::vector<ChaseRow>& rows,
    const std::vector<CellIncident>* incidents = nullptr);
/// Log-log ascii chart of ns-per-access, one series per machine.
[[nodiscard]] std::string renderChaseChart(const std::vector<ChaseRow>& rows);

}  // namespace nodebench::report
