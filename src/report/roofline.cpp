#include "report/roofline.hpp"

#include <algorithm>

namespace nodebench::report {

using machines::Machine;

namespace {

struct Sides {
  double peakGflops;
  double bandwidthGBps;
};

Sides sidesOf(const Machine& m, bool deviceSide) {
  if (deviceSide) {
    NB_EXPECTS_MSG(m.accelerated(), "device roofline on a CPU-only system");
    NB_EXPECTS_MSG(m.device->peakFp64Gflops > 0.0,
                   "device peak FLOPS not set");
    return {m.device->peakFp64Gflops, m.device->hbmBw.inGBps()};
  }
  NB_EXPECTS_MSG(m.hostPeakFp64Gflops > 0.0, "host peak FLOPS not set");
  const double bw = m.hostMemory.perNumaSaturation.inGBps() *
                    static_cast<double>(m.topology.numaCount()) /
                    m.hostMemory.cacheModeOverhead;
  return {m.hostPeakFp64Gflops, bw};
}

}  // namespace

RooflinePoint rooflineAt(const Machine& m, bool deviceSide,
                         double intensity) {
  NB_EXPECTS(intensity > 0.0);
  const Sides s = sidesOf(m, deviceSide);
  RooflinePoint p;
  p.intensityFlopsPerByte = intensity;
  const double memoryRoof = intensity * s.bandwidthGBps;
  p.gflops = std::min(s.peakGflops, memoryRoof);
  p.memoryBound = memoryRoof < s.peakGflops;
  return p;
}

std::vector<RooflinePoint> rooflineSweep(const Machine& m, bool deviceSide,
                                         double minIntensity,
                                         double maxIntensity) {
  NB_EXPECTS(minIntensity > 0.0 && minIntensity <= maxIntensity);
  std::vector<RooflinePoint> out;
  for (double ai = minIntensity; ai <= maxIntensity * 1.0000001;
       ai *= 2.0) {
    out.push_back(rooflineAt(m, deviceSide, ai));
  }
  return out;
}

double ridgeIntensity(const Machine& m, bool deviceSide) {
  const Sides s = sidesOf(m, deviceSide);
  return s.peakGflops / s.bandwidthGBps;
}

Table renderRooflines(const std::vector<const Machine*>& machines,
                      bool deviceSide,
                      const std::vector<double>& intensities) {
  NB_EXPECTS(!machines.empty());
  NB_EXPECTS(!intensities.empty());
  std::vector<std::string> headers{"Intensity (flops/B)"};
  for (const Machine* m : machines) {
    headers.push_back(m->info.name + " (GFLOP/s)");
  }
  Table t(std::move(headers));
  t.setTitle(std::string("Attainable FP64 performance, ") +
             (deviceSide ? "device" : "host") + " roofline");
  for (const double ai : intensities) {
    std::vector<std::string> row{formatFixed(ai, 3)};
    for (const Machine* m : machines) {
      const RooflinePoint p = rooflineAt(*m, deviceSide, ai);
      row.push_back(formatFixed(p.gflops, 0) +
                    (p.memoryBound ? "" : " *"));
    }
    t.addRow(row);
  }
  t.setCaption("* = compute-bound (past the ridge point)");
  return t;
}

}  // namespace nodebench::report
