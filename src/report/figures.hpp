#pragma once
/// \file figures.hpp
/// \brief ASCII reproductions of the paper's node diagrams (Figures 1-3),
/// generated from the machine topology (not hand-written text), plus DOT
/// export via topo::toDot.

#include <string>

#include "machines/machine.hpp"

namespace nodebench::report {

/// Node diagram for any machine; dispatches on the GPU interconnect
/// flavour (Figure 1 for MI250X machines, Figure 2 for Power9+V100,
/// Figure 3 for the A100 machines, a socket/core sketch for CPU-only
/// systems).
[[nodiscard]] std::string nodeDiagram(const machines::Machine& m);

/// Legend: every GPU pair grouped by link class with the physical link
/// description (the arrows of Figures 1-3).
[[nodiscard]] std::string linkClassLegend(const machines::Machine& m);

}  // namespace nodebench::report
