#include "report/export.hpp"

#include <fstream>

#include "core/error.hpp"
#include "report/balance.hpp"

namespace nodebench::report {

namespace {

void writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open " + path.string() + " for writing");
  }
  out << text;
  if (!out) {
    throw Error("failed writing " + path.string());
  }
}

}  // namespace

std::vector<std::filesystem::path> exportTable(
    const Table& table, const std::filesystem::path& dir,
    const std::string& stem) {
  NB_EXPECTS(!stem.empty());
  std::filesystem::create_directories(dir);
  const std::filesystem::path csv = dir / (stem + ".csv");
  const std::filesystem::path md = dir / (stem + ".md");
  const std::filesystem::path json = dir / (stem + ".json");
  writeFile(csv, table.renderCsv());
  writeFile(md, table.renderMarkdown());
  writeFile(json, table.renderJson());
  return {csv, md, json};
}

ExportManifest exportAllTables(const std::filesystem::path& dir,
                               const TableOptions& options) {
  ExportManifest manifest;
  const auto add = [&](const Table& t, const std::string& stem) {
    for (auto& path : exportTable(t, dir, stem)) {
      manifest.written.push_back(std::move(path));
    }
  };
  std::vector<CellIncident> incidents;
  add(buildTable1(), "table1_omp_combinations");
  add(buildTable2(), "table2_cpu_systems");
  add(buildTable3(), "table3_gpu_systems");
  add(renderTable4(computeTable4(options, &incidents), &incidents),
      "table4_cpu_results");
  const auto t5 = computeTable5(options, &incidents);
  const auto t6 = computeTable6(options, &incidents);
  add(renderTable5(t5, &incidents), "table5_gpu_results");
  add(renderTable6(t6, &incidents), "table6_commscope_results");
  add(buildTable7(t5, t6, &incidents), "table7_accelerator_ranges");
  add(buildTable8(), "table8_cpu_software");
  add(buildTable9(), "table9_gpu_software");
  add(renderBalance(computeBalance()), "machine_balance");
  // Resilience diagnostics ride along only when something actually
  // retried or failed — a fault-free export stays byte-identical.
  const std::string diagnostics = renderDiagnostics(incidents);
  if (!diagnostics.empty()) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = dir / "diagnostics.txt";
    writeFile(path, diagnostics);
    manifest.written.push_back(path);
  }
  return manifest;
}

}  // namespace nodebench::report
