#pragma once
/// \file export.hpp
/// \brief Writes every reproduced table to disk (CSV and Markdown) — the
/// artifact-style output a downstream user would commit next to their
/// own measurements. Exposed on the CLI as `nodebench export --dir D`.

#include <filesystem>
#include <vector>

#include "report/tables.hpp"

namespace nodebench::report {

struct ExportManifest {
  std::vector<std::filesystem::path> written;
};

/// Regenerates Tables 1-9 (plus the machine-balance table) and writes
/// `<dir>/table<N>.{csv,md,json}`. Creates `dir` if needed.
/// Throws nodebench::Error on I/O failure.
ExportManifest exportAllTables(const std::filesystem::path& dir,
                               const TableOptions& options);

/// Writes one table as CSV, Markdown and JSON under `dir` with the
/// given file stem; returns the three paths.
std::vector<std::filesystem::path> exportTable(
    const Table& table, const std::filesystem::path& dir,
    const std::string& stem);

}  // namespace nodebench::report
