#pragma once
/// \file tables.hpp
/// \brief Regenerates every table of the paper from the simulated
/// benchmark pipeline.
///
/// `compute*` functions run the benchmarks and return structured rows
/// (consumed by the golden tests and Table 7); `render*` / `build*`
/// functions format them in the paper's layout.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "core/cancel.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "machines/machine.hpp"

namespace nodebench::faults {
class FaultPlan;
}  // namespace nodebench::faults

namespace nodebench::stats {
class ResultStore;
}  // namespace nodebench::stats

namespace nodebench::campaign {
class ShardPlan;
}  // namespace nodebench::campaign

namespace nodebench::report {

/// Shared knobs of the table harnesses. The defaults reproduce the
/// paper's methodology (100 binary runs, >=128 MiB CPU vectors, 1 GiB GPU
/// vectors); tests lower binaryRuns for speed.
struct TableOptions {
  int binaryRuns = 100;
  ByteCount cpuArrayBytes = ByteCount::mib(128);
  ByteCount gpuArrayBytes = ByteCount::gib(1);
  ByteCount mpiMessageSize = ByteCount::bytes(8);
  /// Worker count for the (machine x cell) fan-out; <= 0 selects the
  /// hardware concurrency, 1 runs the cells sequentially. Output is
  /// byte-identical for every value (see DESIGN.md "Parallel harness &
  /// determinism").
  int jobs = 0;
  /// Optional fault plan applied to every measurement (see
  /// faults/fault_plan.hpp). nullptr runs the fair-weather harness with
  /// output byte-identical to a build without the faults library. The
  /// plan must outlive the compute call.
  const faults::FaultPlan* faults = nullptr;
  /// Extra measurement attempts after a failed one before a cell degrades
  /// to "n/a". Retries re-derive their noise seeds deterministically, so
  /// recovered cells are still byte-identical across --jobs values.
  int cellRetries = 2;
  /// Optional crash-safe measurement journal (see campaign/journal.hpp).
  /// When set, every completed cell is persisted before the harness moves
  /// on, and already-journalled cells are replayed bit-exactly instead of
  /// re-measured — so a resumed campaign's tables are byte-identical to
  /// an uninterrupted run. The journal must outlive the compute call.
  campaign::Journal* journal = nullptr;
  /// Optional statistical results store (see stats/store.hpp). When set,
  /// every successful cell's full per-repetition sample vector is
  /// persisted for later `nodebench compare`/`gate` runs. A cell already
  /// present in the store is not re-recorded; a cell the store lacks is
  /// re-*measured* even when the journal could replay its summary —
  /// replayed payloads carry no raw samples, and re-measurement is
  /// bit-identical by the determinism contract. The store must outlive
  /// the compute call.
  stats::ResultStore* store = nullptr;
  /// Optional cooperative cancellation (see core/cancel.hpp): when the
  /// token is set, cells that have not started yet are skipped, cells
  /// already measuring finish and are journalled, and the compute call
  /// then throws CancelledError instead of returning partial rows.
  /// Serves the CLI's SIGINT/SIGTERM handling and the serve daemon's
  /// watchdog/drain. The token must outlive the compute call.
  const CancelToken* cancel = nullptr;
  /// Optional machine-name subset (registry names, exact match): cells
  /// of machines not in the list are neither measured nor rendered. A
  /// serve campaign spec's "machines" field lands here; nullptr measures
  /// the full registry (the CLI default). Must outlive the compute call.
  const std::vector<std::string>* machines = nullptr;
  /// Capped exponential backoff between cell retry attempts, for
  /// transient failures that need time to clear (serve sets these; the
  /// CLI default of 0 retries immediately, the historical behaviour).
  /// Attempt k (k >= 1) sleeps min(retryBackoffMaxMs, retryBackoffBaseMs
  /// << (k - 1)) milliseconds first. Wall-clock only: measured values
  /// are unaffected, so output stays byte-identical.
  int retryBackoffBaseMs = 0;
  int retryBackoffMaxMs = 1000;
  /// Test-only hook (the serve kill/watchdog suites): every cell
  /// measurement sleeps this long before starting, making "the daemon is
  /// mid-request" a deterministic state to hit from the outside. 0 in
  /// production.
  int testCellDelayMs = 0;
  /// Optional shard plan (`--shard i/N`, see campaign/shard.hpp). When
  /// set, each table registers its full cell grid with the plan before
  /// fanning out (journalling the shard manifest) and only the cells of
  /// this shard's slice are measured — the rest are skipped entirely
  /// (no journal record, no incident, zeroed row fields). The merged
  /// artifact is rebuilt by `nodebench merge`. Must outlive the compute
  /// call.
  campaign::ShardPlan* shard = nullptr;
};

/// The campaign-configuration fingerprint of a set of table options: what
/// a journal header records and what `--resume` checks compatibility
/// against. Lives in report (not campaign) because campaign sits below
/// report in the dependency order.
[[nodiscard]] campaign::CampaignConfig campaignConfig(const TableOptions& opt);

/// Outcome of one measured (machine x cell) task under the resilient
/// harness. The compute functions report an incident only for cells that
/// needed more than one attempt or failed outright; failed cells render
/// as "n/a" and every incident feeds the diagnostics appendix.
struct CellIncident {
  std::string machine;
  std::string cell;
  int attempts = 0;
  bool failed = false;
  std::string error;  ///< Error text of the last failing attempt.
};

/// Human-readable diagnostics appendix for the incidents a table run
/// collected. Returns "" when `incidents` is empty, so fault-free runs
/// emit nothing.
[[nodiscard]] std::string renderDiagnostics(
    const std::vector<CellIncident>& incidents);

// --- Table 1: OpenMP environment combinations ------------------------------
[[nodiscard]] Table buildTable1();

// --- Tables 2 / 3: system inventories ---------------------------------------
[[nodiscard]] Table buildTable2();
[[nodiscard]] Table buildTable3();

// --- Table 4: CPU systems ----------------------------------------------------
struct Cpu4Row {
  const machines::Machine* machine = nullptr;
  Summary singleGBps;  ///< Best bound single-thread BabelStream.
  Summary allGBps;     ///< Best full-team BabelStream over Table 1 rows.
  Summary onSocketUs;
  Summary onNodeUs;
};
[[nodiscard]] std::vector<Cpu4Row> computeTable4(
    const TableOptions& opt, std::vector<CellIncident>* incidents = nullptr);
[[nodiscard]] Table renderTable4(
    const std::vector<Cpu4Row>& rows,
    const std::vector<CellIncident>* incidents = nullptr);

// --- Table 5: GPU systems (BabelStream + OSU) -------------------------------
struct Gpu5Row {
  const machines::Machine* machine = nullptr;
  Summary deviceGBps;
  Summary hostToHostUs;
  std::array<std::optional<Summary>, 4> deviceToDeviceUs;  ///< classes A..D
};
[[nodiscard]] std::vector<Gpu5Row> computeTable5(
    const TableOptions& opt, std::vector<CellIncident>* incidents = nullptr);
[[nodiscard]] Table renderTable5(
    const std::vector<Gpu5Row>& rows,
    const std::vector<CellIncident>* incidents = nullptr);

// --- Table 6: GPU systems (Comm|Scope) ---------------------------------------
struct Gpu6Row {
  const machines::Machine* machine = nullptr;
  Summary launchUs;
  Summary waitUs;
  Summary hostDeviceLatencyUs;
  Summary hostDeviceBandwidthGBps;
  std::array<std::optional<Summary>, 4> d2dLatencyUs;  ///< classes A..D
};
[[nodiscard]] std::vector<Gpu6Row> computeTable6(
    const TableOptions& opt, std::vector<CellIncident>* incidents = nullptr);
[[nodiscard]] Table renderTable6(
    const std::vector<Gpu6Row>& rows,
    const std::vector<CellIncident>* incidents = nullptr);

// --- Table 7: per-accelerator min-max summary --------------------------------
/// When `incidents` is given, cells that failed in the Table 5/6 runs are
/// excluded from the min-max ranges instead of polluting them with their
/// zero-initialised placeholders.
[[nodiscard]] Table buildTable7(
    const std::vector<Gpu5Row>& t5, const std::vector<Gpu6Row>& t6,
    const std::vector<CellIncident>* incidents = nullptr);

// --- Tables 8 / 9: software environments --------------------------------------
[[nodiscard]] Table buildTable8();
[[nodiscard]] Table buildTable9();

/// Helper shared with the Table 1 sweep bench: best bound single-thread
/// and best overall full-team bandwidth across the Table 1 environment
/// combinations, plus the per-combination detail.
struct OmpSweepEntry {
  std::string config;
  Summary bestOpGBps;
  std::string bestOpName;
  /// Raw per-binary-run draws of the best op; populated only when a
  /// sample capture (core/samples.hpp) was active around the sweep.
  std::vector<double> samples;
};
struct OmpSweepResult {
  std::vector<OmpSweepEntry> entries;  ///< One per Table 1 row, in order.
  Summary bestSingle;
  Summary bestAll;
  std::vector<double> bestSingleSamples;  ///< Raw draws behind bestSingle.
  std::vector<double> bestAllSamples;     ///< Raw draws behind bestAll.
};
/// `seedSalt` perturbs the per-binary noise streams (0 reproduces the
/// historical sweep bit-for-bit); the harness passes a deterministic
/// per-attempt salt on retries.
[[nodiscard]] OmpSweepResult ompSweep(const machines::Machine& m,
                                      const TableOptions& opt,
                                      std::uint64_t seedSalt = 0);

}  // namespace nodebench::report
