#include "report/tables.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "campaign/fingerprint.hpp"
#include "campaign/shard.hpp"
#include "commscope/commscope.hpp"
#include "core/parallel.hpp"
#include "core/samples.hpp"
#include "faults/fault_plan.hpp"
#include "machines/registry.hpp"
#include "ompenv/omp_config.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/cell_runner.hpp"
#include "stats/store.hpp"
#include "trace/trace.hpp"

namespace nodebench::report {

using machines::Machine;
using topo::LinkClass;

// The shared cell harness (extracted to cell_runner.hpp so the memlab
// families reuse it); tables.cpp predates the split, so pull the names
// back in unqualified.
using cellrun::cellFailed;
using cellrun::collectIncidents;
using cellrun::filteredMachines;
using cellrun::loadOptSummary;
using cellrun::loadSummary;
using cellrun::MeasuredMachines;
using cellrun::naOr;
using cellrun::runCell;
using cellrun::sampleRecord;
using cellrun::saveOptSummary;
using cellrun::saveSummary;
using cellrun::throwIfCancelled;

namespace {

// Canonical cell names: shared by the retry harness (incident records,
// flaky-cell draws) and the renderers (n/a lookup). Changing one changes
// the fault plans that can target it.
constexpr const char* kCellHostBandwidth = "host bandwidth";
constexpr const char* kCellOnSocket = "on-socket latency";
constexpr const char* kCellOnNode = "on-node latency";
constexpr const char* kCellDeviceBandwidth = "device bandwidth";
constexpr const char* kCellHostToHost = "host-to-host latency";
constexpr const char* kCellLaunch = "kernel launch";
constexpr const char* kCellWait = "sync wait";
constexpr const char* kCellHdLatency = "H<->D latency";
constexpr const char* kCellHdBandwidth = "H<->D bandwidth";

// The OSU (Table 5) and Comm|Scope (Table 6) D2D cells measure different
// things, so they get distinct names — an incident in one must not mark
// the other as failed.
std::string d2dMpiCellName(LinkClass c) {
  return std::string("D2D MPI latency class ") +
         static_cast<char>('A' + static_cast<int>(c));
}

std::string d2dCopyCellName(LinkClass c) {
  return std::string("D2D copy latency class ") +
         static_cast<char>('A' + static_cast<int>(c));
}

}  // namespace

campaign::CampaignConfig campaignConfig(const TableOptions& opt) {
  campaign::CampaignConfig cfg;
  cfg.registryHash = campaign::registryHash();
  cfg.faultPlanHash = campaign::faultPlanHash(opt.faults);
  cfg.seed = opt.faults != nullptr ? opt.faults->seed : 0;
  cfg.runs = static_cast<std::uint32_t>(opt.binaryRuns);
  cfg.jobs = static_cast<std::uint32_t>(std::max(0, opt.jobs));
  cfg.cellRetries = static_cast<std::uint32_t>(std::max(0, opt.cellRetries));
  cfg.cpuArrayBytes = opt.cpuArrayBytes.count();
  cfg.gpuArrayBytes = opt.gpuArrayBytes.count();
  cfg.mpiMessageSize = opt.mpiMessageSize.count();
  if (opt.shard != nullptr) {
    cfg.shardIndex = opt.shard->spec().index;
    cfg.shardCount = opt.shard->spec().count;
  }
  return cfg;
}

std::string renderDiagnostics(const std::vector<CellIncident>& incidents) {
  if (incidents.empty()) {
    return {};
  }
  std::ostringstream out;
  out << "Diagnostics appendix (" << incidents.size()
      << (incidents.size() == 1 ? " incident" : " incidents") << ")\n";
  for (const CellIncident& i : incidents) {
    out << "  " << i.machine << " / " << i.cell << ": ";
    if (i.failed) {
      out << "n/a after " << i.attempts
          << (i.attempts == 1 ? " attempt" : " attempts") << ": " << i.error;
    } else {
      out << "recovered on attempt " << i.attempts << " (last error: "
          << i.error << ")";
    }
    out << "\n";
  }
  return out.str();
}

Table buildTable1() {
  Table t({"OMP_NUM_THREADS", "OMP_PROC_BIND", "OMP_PLACES"});
  t.setTitle("Table 1: OpenMP environment combinations for host bandwidth");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  // Rendered symbolically, exactly as the paper's table shows them.
  const auto row = [&](const char* n, const char* b, const char* p) {
    t.addRow({n, b, p});
  };
  row("1", "not set", "not set");
  row("1", "\"true\"", "not set");
  t.addSeparator();
  row("#cores", "not set", "not set");
  row("#cores", "\"true\"", "not set");
  row("#cores", "\"spread\"", "\"cores\"");
  row("#threads", "not set", "not set");
  row("#threads", "\"true\"", "not set");
  row("#threads", "\"close\"", "\"threads\"");
  return t;
}

Table buildTable2() {
  Table t({"Rank/Name", "Location", "CPU"});
  t.setTitle("Table 2: US DOE non-accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel});
  }
  return t;
}

Table buildTable3() {
  Table t({"Rank/Name", "Location", "CPU", "Accelerator"});
  t.setTitle("Table 3: US DOE accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel, m->info.acceleratorModel});
  }
  return t;
}

OmpSweepResult ompSweep(const Machine& m, const TableOptions& opt,
                        std::uint64_t seedSalt) {
  OmpSweepResult out;
  const auto configs =
      ompenv::table1Combinations(m.coreCount(), m.hardwareThreadCount());
  // Fan the independent environment combinations out over the harness
  // workers, then reduce sequentially in Table 1 order so the
  // strictly-greater / first-wins tie-break matches the sequential sweep.
  // When the caller has a sample capture active (a --store run), each
  // configuration installs its own nested capture so the winning op's
  // raw draws can be attributed per entry. The nested capture shadows the
  // cell-level one for its lifetime; without an active capture the sweep
  // skips the bookkeeping entirely.
  const bool capturing = activeSampleCapture() != nullptr;
  out.entries = par::parallelMap(
      configs,
      [&](const ompenv::OmpConfig& cfg) {
        std::optional<SampleCapture> cap;
        if (capturing) {
          cap.emplace();
        }
        babelstream::SimOmpBackend backend(m, cfg);
        babelstream::DriverConfig dcfg;
        dcfg.arrayBytes = opt.cpuArrayBytes;
        dcfg.binaryRuns = opt.binaryRuns;
        dcfg.seed ^= m.seed ^ seedSalt;
        const auto result = babelstream::run(backend, dcfg);
        const auto& best = result.best();
        std::string bestOp(babelstream::streamOpName(best.op));
        OmpSweepEntry entry{cfg.toString(), best.bandwidthGBps, bestOp, {}};
        if (cap) {
          entry.samples = cap->take(bestOp);
        }
        return entry;
      },
      opt.jobs);
  bool haveSingle = false;
  bool haveAll = false;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Summary& gbps = out.entries[i].bestOpGBps;
    const bool single = configs[i].numThreads.value_or(2) == 1;
    if (single) {
      if (!haveSingle || gbps.mean > out.bestSingle.mean) {
        out.bestSingle = gbps;
        out.bestSingleSamples = out.entries[i].samples;
        haveSingle = true;
      }
    } else {
      if (!haveAll || gbps.mean > out.bestAll.mean) {
        out.bestAll = gbps;
        out.bestAllSamples = out.entries[i].samples;
        haveAll = true;
      }
    }
  }
  NB_ENSURES(haveSingle && haveAll);
  return out;
}

std::vector<Cpu4Row> computeTable4(const TableOptions& opt,
                                   std::vector<CellIncident>* incidents) {
  const auto ms = filteredMachines(machines::cpuMachines(), opt);
  const MeasuredMachines measured(ms, opt.faults);
  std::vector<Cpu4Row> rows(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
  }
  if (opt.shard != nullptr) {
    // The grid in task-enumeration order — the record order a --jobs 1
    // journal run writes, which is what the merge reconstructs.
    std::vector<campaign::GridCell> grid;
    grid.reserve(ms.size() * 3);
    for (const Machine* m : ms) {
      grid.push_back({m->info.name, kCellHostBandwidth});
      grid.push_back({m->info.name, kCellOnSocket});
      grid.push_back({m->info.name, kCellOnNode});
    }
    opt.shard->registerTable("table 4", std::move(grid), opt.journal);
  }
  // Three independent cells per machine; each task writes distinct fields
  // of its pre-allocated row (and its own incident slot). The sweep runs
  // its configs inline here (nested sections stay sequential) — the
  // machine fan-out already feeds every worker.
  std::vector<CellIncident> slots(ms.size() * 3);
  par::parallelForEach(
      slots.size(),
      [&](std::size_t task) {
        const Machine& m = measured.at(ms, task / 3);
        Cpu4Row& row = rows[task / 3];
        osu::LatencyConfig lcfg;
        lcfg.messageSize = opt.mpiMessageSize;
        lcfg.binaryRuns = opt.binaryRuns;
        switch (task % 3) {
          case 0: {
            // The sweep's winning sample vectors, stashed by the body for
            // the storeSave below (the host bandwidth cell is the one cell
            // that yields two store records).
            std::vector<double> singleSamples;
            std::vector<double> allSamples;
            runCell(opt, m, kCellHostBandwidth, slots[task],
                    [&](std::uint64_t salt) {
                      OmpSweepResult sweep = ompSweep(m, opt, salt);
                      row.singleGBps = sweep.bestSingle;
                      row.allGBps = sweep.bestAll;
                      singleSamples = std::move(sweep.bestSingleSamples);
                      allSamples = std::move(sweep.bestAllSamples);
                    },
                    [&](campaign::PayloadWriter& w) {
                      campaign::putSummary(w, row.singleGBps);
                      campaign::putSummary(w, row.allGBps);
                    },
                    [&](campaign::PayloadReader& r) {
                      row.singleGBps = campaign::readSummary(r);
                      row.allGBps = campaign::readSummary(r);
                    },
                    [&](SampleCapture&) {
                      opt.store->append(sampleRecord(
                          slots[task], "single-thread bandwidth", "GB/s",
                          stats::Better::Higher, row.singleGBps,
                          std::move(singleSamples)));
                      opt.store->append(sampleRecord(
                          slots[task], "full-team bandwidth", "GB/s",
                          stats::Better::Higher, row.allGBps,
                          std::move(allSamples)));
                    });
            break;
          }
          case 1:
            runCell(opt, m, kCellOnSocket, slots[task],
                    [&](std::uint64_t salt) {
                      osu::LatencyConfig cfg = lcfg;
                      cfg.seed ^= salt;
                      const auto [sockA, sockB] = osu::onSocketPair(m);
                      row.onSocketUs =
                          osu::LatencyBenchmark(m, sockA, sockB,
                                                mpisim::BufferSpace::Kind::Host)
                              .measure(cfg)
                              .latencyUs;
                    },
                    saveSummary(row.onSocketUs), loadSummary(row.onSocketUs),
                    [&](SampleCapture& cap) {
                      opt.store->append(sampleRecord(
                          slots[task], "latency", "us", stats::Better::Lower,
                          row.onSocketUs,
                          cap.take(osu::kLatencySampleChannel)));
                    });
            break;
          case 2:
            runCell(opt, m, kCellOnNode, slots[task],
                    [&](std::uint64_t salt) {
                      osu::LatencyConfig cfg = lcfg;
                      cfg.seed ^= salt;
                      const auto [nodeA, nodeB] = osu::onNodePair(m);
                      row.onNodeUs =
                          osu::LatencyBenchmark(m, nodeA, nodeB,
                                                mpisim::BufferSpace::Kind::Host)
                              .measure(cfg)
                              .latencyUs;
                    },
                    saveSummary(row.onNodeUs), loadSummary(row.onNodeUs),
                    [&](SampleCapture& cap) {
                      opt.store->append(sampleRecord(
                          slots[task], "latency", "us", stats::Better::Lower,
                          row.onNodeUs,
                          cap.take(osu::kLatencySampleChannel)));
                    });
            break;
          default:
            break;
        }
      },
      opt.jobs);
  throwIfCancelled(opt);
  collectIncidents(std::move(slots), incidents);
  return rows;
}

namespace {

std::string rankName(const Machine& m) {
  return std::to_string(m.info.top500Rank) + ". " + m.info.name;
}

std::string cellOrEmpty(const std::optional<Summary>& s, int precision = 2) {
  return s ? s->toString(precision) : std::string{};
}

}  // namespace

Table renderTable4(const std::vector<Cpu4Row>& rows,
                   const std::vector<CellIncident>* incidents) {
  Table t({"Rank/Name", "Single (GB/s)", "All (GB/s)", "Peak (GB/s)",
           "On-Socket (us)", "On-Node (us)"});
  t.setTitle("Table 4: CPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Cpu4Row& row : rows) {
    const std::string& name = row.machine->info.name;
    const bool bwFailed = cellFailed(incidents, name, kCellHostBandwidth);
    t.addRow({rankName(*row.machine),
              naOr(bwFailed, row.singleGBps.toString()),
              naOr(bwFailed, row.allGBps.toString()),
              row.machine->hostMemory.peakNote,
              naOr(cellFailed(incidents, name, kCellOnSocket),
                   row.onSocketUs.toString()),
              naOr(cellFailed(incidents, name, kCellOnNode),
                   row.onNodeUs.toString())});
  }
  return t;
}

namespace {

/// One (machine, cell) work item of the GPU-table fan-outs. `linkClass`
/// is meaningful only for the per-class D2D cells.
struct GpuCellTask {
  std::size_t machineIdx = 0;
  int kind = 0;
  LinkClass linkClass = LinkClass::None;
};

}  // namespace

std::vector<Gpu5Row> computeTable5(const TableOptions& opt,
                                   std::vector<CellIncident>* incidents) {
  const auto ms = filteredMachines(machines::gpuMachines(), opt);
  const MeasuredMachines measured(ms, opt.faults);
  std::vector<Gpu5Row> rows(ms.size());

  // Enumerate the (machine x cell) grid up front; the present link
  // classes differ per machine, so the task list is ragged. The grid is
  // always the *registry* machine's — a fault plan never changes the
  // table's shape, only which cells degrade to "n/a". Enumeration also
  // primes each topology's route cache before the fan-out.
  enum { kBabelstream = 0, kHostLatency = 1, kDeviceLatency = 2 };
  std::vector<GpuCellTask> tasks;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    tasks.push_back({i, kBabelstream, LinkClass::None});
    tasks.push_back({i, kHostLatency, LinkClass::None});
    for (const LinkClass c : ms[i]->topology.presentGpuLinkClasses()) {
      tasks.push_back({i, kDeviceLatency, c});
    }
  }

  if (opt.shard != nullptr) {
    std::vector<campaign::GridCell> grid;
    grid.reserve(tasks.size());
    for (const GpuCellTask& task : tasks) {
      const std::string& machine = ms[task.machineIdx]->info.name;
      switch (task.kind) {
        case kBabelstream:
          grid.push_back({machine, kCellDeviceBandwidth});
          break;
        case kHostLatency:
          grid.push_back({machine, kCellHostToHost});
          break;
        default:
          grid.push_back({machine, d2dMpiCellName(task.linkClass)});
          break;
      }
    }
    opt.shard->registerTable("table 5", std::move(grid), opt.journal);
  }

  std::vector<CellIncident> slots(tasks.size());
  par::parallelForEach(
      tasks.size(),
      [&](std::size_t t) {
        const GpuCellTask& task = tasks[t];
        const Machine& m = measured.at(ms, task.machineIdx);
        Gpu5Row& row = rows[task.machineIdx];
        osu::LatencyConfig lcfg;
        lcfg.messageSize = opt.mpiMessageSize;
        lcfg.binaryRuns = opt.binaryRuns;
        switch (task.kind) {
          case kBabelstream: {
            // Winning STREAM op, stashed by the body so storeSave can pull
            // that op's raw-sample channel.
            std::string bestOp;
            runCell(opt, m, kCellDeviceBandwidth, slots[t],
                    [&](std::uint64_t salt) {
                      babelstream::SimDeviceBackend backend(m, /*device=*/0);
                      babelstream::DriverConfig dcfg;
                      dcfg.arrayBytes = opt.gpuArrayBytes;
                      dcfg.binaryRuns = opt.binaryRuns;
                      dcfg.seed ^= m.seed ^ salt;
                      const babelstream::RunResult result =
                          babelstream::run(backend, dcfg);
                      const auto& best = result.best();
                      row.deviceGBps = best.bandwidthGBps;
                      bestOp = std::string(babelstream::streamOpName(best.op));
                    },
                    saveSummary(row.deviceGBps), loadSummary(row.deviceGBps),
                    [&](SampleCapture& cap) {
                      opt.store->append(sampleRecord(
                          slots[t], "bandwidth", "GB/s", stats::Better::Higher,
                          row.deviceGBps, cap.take(bestOp)));
                    });
            break;
          }
          case kHostLatency:
            runCell(opt, m, kCellHostToHost, slots[t],
                    [&](std::uint64_t salt) {
                      osu::LatencyConfig cfg = lcfg;
                      cfg.seed ^= salt;
                      const auto [hostA, hostB] = osu::onSocketPair(m);
                      row.hostToHostUs =
                          osu::LatencyBenchmark(m, hostA, hostB,
                                                mpisim::BufferSpace::Kind::Host)
                              .measure(cfg)
                              .latencyUs;
                    },
                    saveSummary(row.hostToHostUs),
                    loadSummary(row.hostToHostUs),
                    [&](SampleCapture& cap) {
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          row.hostToHostUs,
                          cap.take(osu::kLatencySampleChannel)));
                    });
            break;
          case kDeviceLatency: {
            auto& d2dSlot =
                row.deviceToDeviceUs[static_cast<int>(task.linkClass)];
            runCell(opt, m, d2dMpiCellName(task.linkClass), slots[t],
                    [&](std::uint64_t salt) {
                      osu::LatencyConfig cfg = lcfg;
                      cfg.seed ^= salt;
                      const auto [devA, devB] =
                          osu::devicePair(m, task.linkClass);
                      d2dSlot =
                          osu::LatencyBenchmark(
                              m, devA, devB,
                              mpisim::BufferSpace::Kind::Device)
                              .measure(cfg)
                              .latencyUs;
                    },
                    saveOptSummary(d2dSlot), loadOptSummary(d2dSlot),
                    [&](SampleCapture& cap) {
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          *d2dSlot, cap.take(osu::kLatencySampleChannel)));
                    });
            break;
          }
          default:
            break;
        }
      },
      opt.jobs);
  throwIfCancelled(opt);
  collectIncidents(std::move(slots), incidents);
  return rows;
}

Table renderTable5(const std::vector<Gpu5Row>& rows,
                   const std::vector<CellIncident>* incidents) {
  Table t({"Rank/Name", "Device BW (GB/s)", "Peak", "Host-to-Host (us)",
           "D2D A (us)", "D2D B (us)", "D2D C (us)", "D2D D (us)"});
  t.setTitle("Table 5: GPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Gpu5Row& row : rows) {
    const std::string& name = row.machine->info.name;
    // A class absent from the machine stays blank; a class whose
    // measurement failed renders "n/a".
    const auto d2d = [&](int c) {
      return naOr(cellFailed(incidents, name,
                             d2dMpiCellName(static_cast<LinkClass>(c))),
                  cellOrEmpty(row.deviceToDeviceUs[c]));
    };
    t.addRow({rankName(*row.machine),
              naOr(cellFailed(incidents, name, kCellDeviceBandwidth),
                   row.deviceGBps.toString()),
              row.machine->device->hbmPeakNote,
              naOr(cellFailed(incidents, name, kCellHostToHost),
                   row.hostToHostUs.toString()),
              d2d(0), d2d(1), d2d(2), d2d(3)});
  }
  return t;
}

std::vector<Gpu6Row> computeTable6(const TableOptions& opt,
                                   std::vector<CellIncident>* incidents) {
  const auto ms = filteredMachines(machines::gpuMachines(), opt);
  const MeasuredMachines measured(ms, opt.faults);
  std::vector<Gpu6Row> rows(ms.size());

  // Each Comm|Scope quantity is measured by its own scope instance: the
  // truth methods reset the simulated runtime before measuring and the
  // aggregate noise streams are seeded from the cell identity alone, so a
  // per-cell instance reports exactly what the shared-instance
  // measureAll() sequence reported.
  enum {
    kLaunch = 0,
    kWait = 1,
    kHostDeviceLatency = 2,
    kHostDeviceBandwidth = 3,
    kD2dLatency = 4
  };
  std::vector<GpuCellTask> tasks;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    tasks.push_back({i, kLaunch, LinkClass::None});
    tasks.push_back({i, kWait, LinkClass::None});
    tasks.push_back({i, kHostDeviceLatency, LinkClass::None});
    tasks.push_back({i, kHostDeviceBandwidth, LinkClass::None});
    for (const LinkClass c : ms[i]->topology.presentGpuLinkClasses()) {
      tasks.push_back({i, kD2dLatency, c});
    }
  }

  if (opt.shard != nullptr) {
    std::vector<campaign::GridCell> grid;
    grid.reserve(tasks.size());
    for (const GpuCellTask& task : tasks) {
      const std::string& machine = ms[task.machineIdx]->info.name;
      switch (task.kind) {
        case kLaunch:
          grid.push_back({machine, kCellLaunch});
          break;
        case kWait:
          grid.push_back({machine, kCellWait});
          break;
        case kHostDeviceLatency:
          grid.push_back({machine, kCellHdLatency});
          break;
        case kHostDeviceBandwidth:
          grid.push_back({machine, kCellHdBandwidth});
          break;
        default:
          grid.push_back({machine, d2dCopyCellName(task.linkClass)});
          break;
      }
    }
    opt.shard->registerTable("table 6", std::move(grid), opt.journal);
  }

  std::vector<CellIncident> slots(tasks.size());
  par::parallelForEach(
      tasks.size(),
      [&](std::size_t t) {
        const GpuCellTask& task = tasks[t];
        const Machine& m = measured.at(ms, task.machineIdx);
        Gpu6Row& row = rows[task.machineIdx];
        const auto cellName = [&] {
          switch (task.kind) {
            case kLaunch: return std::string(kCellLaunch);
            case kWait: return std::string(kCellWait);
            case kHostDeviceLatency: return std::string(kCellHdLatency);
            case kHostDeviceBandwidth: return std::string(kCellHdBandwidth);
            default: return d2dCopyCellName(task.linkClass);
          }
        };
        runCell(opt, m, cellName(), slots[t],
                [&](std::uint64_t salt) {
                  commscope::CommScope scope(m);
                  commscope::Config cfg;
                  cfg.binaryRuns = opt.binaryRuns;
                  cfg.seed ^= salt;
                  switch (task.kind) {
                    case kLaunch:
                      row.launchUs = scope.kernelLaunchUs(cfg);
                      break;
                    case kWait:
                      row.waitUs = scope.syncWaitUs(cfg);
                      break;
                    case kHostDeviceLatency:
                      row.hostDeviceLatencyUs = scope.hostDeviceLatencyUs(cfg);
                      break;
                    case kHostDeviceBandwidth:
                      row.hostDeviceBandwidthGBps =
                          scope.hostDeviceBandwidthGBps(cfg);
                      break;
                    case kD2dLatency:
                      row.d2dLatencyUs[static_cast<int>(task.linkClass)] =
                          scope.d2dLatencyUs(task.linkClass, cfg);
                      break;
                    default:
                      break;
                  }
                },
                [&](campaign::PayloadWriter& w) {
                  switch (task.kind) {
                    case kLaunch:
                      campaign::putSummary(w, row.launchUs);
                      break;
                    case kWait:
                      campaign::putSummary(w, row.waitUs);
                      break;
                    case kHostDeviceLatency:
                      campaign::putSummary(w, row.hostDeviceLatencyUs);
                      break;
                    case kHostDeviceBandwidth:
                      campaign::putSummary(w, row.hostDeviceBandwidthGBps);
                      break;
                    case kD2dLatency:
                      campaign::putSummary(
                          w,
                          *row.d2dLatencyUs[static_cast<int>(task.linkClass)]);
                      break;
                    default:
                      break;
                  }
                },
                [&](campaign::PayloadReader& r) {
                  switch (task.kind) {
                    case kLaunch:
                      row.launchUs = campaign::readSummary(r);
                      break;
                    case kWait:
                      row.waitUs = campaign::readSummary(r);
                      break;
                    case kHostDeviceLatency:
                      row.hostDeviceLatencyUs = campaign::readSummary(r);
                      break;
                    case kHostDeviceBandwidth:
                      row.hostDeviceBandwidthGBps = campaign::readSummary(r);
                      break;
                    case kD2dLatency:
                      row.d2dLatencyUs[static_cast<int>(task.linkClass)] =
                          campaign::readSummary(r);
                      break;
                    default:
                      break;
                  }
                },
                [&](SampleCapture& cap) {
                  switch (task.kind) {
                    case kLaunch:
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          row.launchUs,
                          cap.take(commscope::kLaunchSampleChannel)));
                      break;
                    case kWait:
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          row.waitUs,
                          cap.take(commscope::kWaitSampleChannel)));
                      break;
                    case kHostDeviceLatency:
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          row.hostDeviceLatencyUs,
                          cap.take(commscope::kHdLatencySampleChannel)));
                      break;
                    case kHostDeviceBandwidth:
                      opt.store->append(sampleRecord(
                          slots[t], "bandwidth", "GB/s", stats::Better::Higher,
                          row.hostDeviceBandwidthGBps,
                          cap.take(commscope::kHdBandwidthSampleChannel)));
                      break;
                    case kD2dLatency:
                      opt.store->append(sampleRecord(
                          slots[t], "latency", "us", stats::Better::Lower,
                          *row.d2dLatencyUs[static_cast<int>(task.linkClass)],
                          cap.take(commscope::kD2dLatencySampleChannel)));
                      break;
                    default:
                      break;
                  }
                });
      },
      opt.jobs);
  throwIfCancelled(opt);
  collectIncidents(std::move(slots), incidents);
  return rows;
}

Table renderTable6(const std::vector<Gpu6Row>& rows,
                   const std::vector<CellIncident>* incidents) {
  Table t({"Rank/Name", "Launch (us)", "Wait (us)", "H<->D Lat (us)",
           "H<->D BW (GB/s)", "D2D A (us)", "D2D B (us)", "D2D C (us)",
           "D2D D (us)"});
  t.setTitle(
      "Table 6: Comm|Scope kernel/wait latencies and transfer costs "
      "(mean +- sigma, 100 runs)");
  for (const Gpu6Row& row : rows) {
    const std::string& name = row.machine->info.name;
    const auto d2d = [&](int c) {
      return naOr(cellFailed(incidents, name,
                             d2dCopyCellName(static_cast<LinkClass>(c))),
                  cellOrEmpty(row.d2dLatencyUs[c]));
    };
    t.addRow({rankName(*row.machine),
              naOr(cellFailed(incidents, name, kCellLaunch),
                   row.launchUs.toString()),
              naOr(cellFailed(incidents, name, kCellWait),
                   row.waitUs.toString()),
              naOr(cellFailed(incidents, name, kCellHdLatency),
                   row.hostDeviceLatencyUs.toString()),
              naOr(cellFailed(incidents, name, kCellHdBandwidth),
                   row.hostDeviceBandwidthGBps.toString()),
              d2d(0), d2d(1), d2d(2), d2d(3)});
  }
  return t;
}

namespace {

/// Min-max of the mean values across a group of machines, rendered
/// "lo-hi" as in Table 7.
class Range {
 public:
  void add(const Summary& s) {
    lo_ = empty_ ? s.mean : std::min(lo_, s.mean);
    hi_ = empty_ ? s.mean : std::max(hi_, s.mean);
    empty_ = false;
  }
  void addIf(const std::optional<Summary>& s) {
    if (s) {
      add(*s);
    }
  }
  [[nodiscard]] std::string str(int precision = 2) const {
    if (empty_) {
      return {};
    }
    return formatFixed(lo_, precision) + "-" + formatFixed(hi_, precision);
  }

 private:
  bool empty_ = true;
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace

Table buildTable7(const std::vector<Gpu5Row>& t5,
                  const std::vector<Gpu6Row>& t6,
                  const std::vector<CellIncident>* incidents) {
  Table t({"Accelerator", "Memory BW", "MPI Lat.", "Kernel Launch",
           "Kernel Wait", "H2D/D2H Lat.", "H2D/D2H BW", "D2D Lat."});
  t.setTitle(
      "Table 7: min-max of mean values across machines, per accelerator");
  for (const auto& group : machines::acceleratorGroups()) {
    Range bw;
    Range mpi;
    Range launch;
    Range wait;
    Range hdLat;
    Range hdBw;
    Range d2d;
    for (const Machine* m : group.members) {
      // Failed cells hold zero-initialised placeholders; keep them out of
      // the min-max ranges.
      const auto ok = [&](const char* cell) {
        return !cellFailed(incidents, m->info.name, cell);
      };
      const std::string mpiClassA = d2dMpiCellName(LinkClass::A);
      const std::string copyClassA = d2dCopyCellName(LinkClass::A);
      for (const Gpu5Row& row : t5) {
        if (row.machine != m) {
          continue;
        }
        if (ok(kCellDeviceBandwidth)) {
          bw.add(row.deviceGBps);
        }
        // The paper's Table 7 ranges cover the class-A (direct-link) pair
        // of each machine: e.g. its V100 MPI range is 18.10-18.72, which
        // excludes the class-B 19.30-19.76 values.
        if (ok(mpiClassA.c_str())) {
          mpi.addIf(row.deviceToDeviceUs[0]);
        }
      }
      for (const Gpu6Row& row : t6) {
        if (row.machine != m) {
          continue;
        }
        if (ok(kCellLaunch)) {
          launch.add(row.launchUs);
        }
        if (ok(kCellWait)) {
          wait.add(row.waitUs);
        }
        if (ok(kCellHdLatency)) {
          hdLat.add(row.hostDeviceLatencyUs);
        }
        if (ok(kCellHdBandwidth)) {
          hdBw.add(row.hostDeviceBandwidthGBps);
        }
        if (ok(copyClassA.c_str())) {
          d2d.addIf(row.d2dLatencyUs[0]);  // class A, as above
        }
      }
    }
    t.addRow({group.name, bw.str(), mpi.str(), launch.str(), wait.str(),
              hdLat.str(), hdBw.str(), d2d.str()});
  }
  return t;
}

Table buildTable8() {
  Table t({"Rank/Name", "Compiler", "MPI"});
  t.setTitle("Table 8: software environment, non-accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({rankName(*m), m->env.compiler, m->env.mpi});
  }
  return t;
}

Table buildTable9() {
  Table t({"Rank/Name", "Compiler", "Device Library", "MPI"});
  t.setTitle("Table 9: software environment, accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow(
        {rankName(*m), m->env.compiler, m->env.deviceLibrary, m->env.mpi});
  }
  return t;
}

}  // namespace nodebench::report
