#include "report/tables.hpp"

#include <algorithm>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "commscope/commscope.hpp"
#include "machines/registry.hpp"
#include "ompenv/omp_config.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace nodebench::report {

using machines::Machine;
using topo::LinkClass;

Table buildTable1() {
  Table t({"OMP_NUM_THREADS", "OMP_PROC_BIND", "OMP_PLACES"});
  t.setTitle("Table 1: OpenMP environment combinations for host bandwidth");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  // Rendered symbolically, exactly as the paper's table shows them.
  const auto row = [&](const char* n, const char* b, const char* p) {
    t.addRow({n, b, p});
  };
  row("1", "not set", "not set");
  row("1", "\"true\"", "not set");
  t.addSeparator();
  row("#cores", "not set", "not set");
  row("#cores", "\"true\"", "not set");
  row("#cores", "\"spread\"", "\"cores\"");
  row("#threads", "not set", "not set");
  row("#threads", "\"true\"", "not set");
  row("#threads", "\"close\"", "\"threads\"");
  return t;
}

Table buildTable2() {
  Table t({"Rank/Name", "Location", "CPU"});
  t.setTitle("Table 2: US DOE non-accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel});
  }
  return t;
}

Table buildTable3() {
  Table t({"Rank/Name", "Location", "CPU", "Accelerator"});
  t.setTitle("Table 3: US DOE accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel, m->info.acceleratorModel});
  }
  return t;
}

OmpSweepResult ompSweep(const Machine& m, const TableOptions& opt) {
  OmpSweepResult out;
  const auto configs =
      ompenv::table1Combinations(m.coreCount(), m.hardwareThreadCount());
  bool haveSingle = false;
  bool haveAll = false;
  for (const ompenv::OmpConfig& cfg : configs) {
    babelstream::SimOmpBackend backend(m, cfg);
    babelstream::DriverConfig dcfg;
    dcfg.arrayBytes = opt.cpuArrayBytes;
    dcfg.binaryRuns = opt.binaryRuns;
    dcfg.seed ^= m.seed;
    const auto result = babelstream::run(backend, dcfg);
    const auto& best = result.best();
    out.entries.push_back(OmpSweepEntry{
        cfg.toString(), best.bandwidthGBps,
        std::string(babelstream::streamOpName(best.op))});
    const bool single = cfg.numThreads.value_or(2) == 1;
    if (single) {
      if (!haveSingle || best.bandwidthGBps.mean > out.bestSingle.mean) {
        out.bestSingle = best.bandwidthGBps;
        haveSingle = true;
      }
    } else {
      if (!haveAll || best.bandwidthGBps.mean > out.bestAll.mean) {
        out.bestAll = best.bandwidthGBps;
        haveAll = true;
      }
    }
  }
  NB_ENSURES(haveSingle && haveAll);
  return out;
}

std::vector<Cpu4Row> computeTable4(const TableOptions& opt) {
  std::vector<Cpu4Row> rows;
  for (const Machine* m : machines::cpuMachines()) {
    Cpu4Row row;
    row.machine = m;
    const OmpSweepResult sweep = ompSweep(*m, opt);
    row.singleGBps = sweep.bestSingle;
    row.allGBps = sweep.bestAll;

    osu::LatencyConfig lcfg;
    lcfg.messageSize = opt.mpiMessageSize;
    lcfg.binaryRuns = opt.binaryRuns;
    const auto [sockA, sockB] = osu::onSocketPair(*m);
    const auto [nodeA, nodeB] = osu::onNodePair(*m);
    row.onSocketUs = osu::LatencyBenchmark(*m, sockA, sockB,
                                           mpisim::BufferSpace::Kind::Host)
                         .measure(lcfg)
                         .latencyUs;
    row.onNodeUs = osu::LatencyBenchmark(*m, nodeA, nodeB,
                                         mpisim::BufferSpace::Kind::Host)
                       .measure(lcfg)
                       .latencyUs;
    rows.push_back(row);
  }
  return rows;
}

namespace {

std::string rankName(const Machine& m) {
  return std::to_string(m.info.top500Rank) + ". " + m.info.name;
}

std::string cellOrEmpty(const std::optional<Summary>& s, int precision = 2) {
  return s ? s->toString(precision) : std::string{};
}

}  // namespace

Table renderTable4(const std::vector<Cpu4Row>& rows) {
  Table t({"Rank/Name", "Single (GB/s)", "All (GB/s)", "Peak (GB/s)",
           "On-Socket (us)", "On-Node (us)"});
  t.setTitle("Table 4: CPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Cpu4Row& row : rows) {
    t.addRow({rankName(*row.machine), row.singleGBps.toString(),
              row.allGBps.toString(), row.machine->hostMemory.peakNote,
              row.onSocketUs.toString(), row.onNodeUs.toString()});
  }
  return t;
}

std::vector<Gpu5Row> computeTable5(const TableOptions& opt) {
  std::vector<Gpu5Row> rows;
  for (const Machine* m : machines::gpuMachines()) {
    Gpu5Row row;
    row.machine = m;

    babelstream::SimDeviceBackend backend(*m, /*device=*/0);
    babelstream::DriverConfig dcfg;
    dcfg.arrayBytes = opt.gpuArrayBytes;
    dcfg.binaryRuns = opt.binaryRuns;
    dcfg.seed ^= m->seed;
    row.deviceGBps = babelstream::run(backend, dcfg).best().bandwidthGBps;

    osu::LatencyConfig lcfg;
    lcfg.messageSize = opt.mpiMessageSize;
    lcfg.binaryRuns = opt.binaryRuns;
    const auto [hostA, hostB] = osu::onSocketPair(*m);
    row.hostToHostUs = osu::LatencyBenchmark(*m, hostA, hostB,
                                             mpisim::BufferSpace::Kind::Host)
                           .measure(lcfg)
                           .latencyUs;

    for (const LinkClass c : m->topology.presentGpuLinkClasses()) {
      const auto [devA, devB] = osu::devicePair(*m, c);
      row.deviceToDeviceUs[static_cast<int>(c)] =
          osu::LatencyBenchmark(*m, devA, devB,
                                mpisim::BufferSpace::Kind::Device)
              .measure(lcfg)
              .latencyUs;
    }
    rows.push_back(row);
  }
  return rows;
}

Table renderTable5(const std::vector<Gpu5Row>& rows) {
  Table t({"Rank/Name", "Device BW (GB/s)", "Peak", "Host-to-Host (us)",
           "D2D A (us)", "D2D B (us)", "D2D C (us)", "D2D D (us)"});
  t.setTitle("Table 5: GPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Gpu5Row& row : rows) {
    t.addRow({rankName(*row.machine), row.deviceGBps.toString(),
              row.machine->device->hbmPeakNote,
              row.hostToHostUs.toString(),
              cellOrEmpty(row.deviceToDeviceUs[0]),
              cellOrEmpty(row.deviceToDeviceUs[1]),
              cellOrEmpty(row.deviceToDeviceUs[2]),
              cellOrEmpty(row.deviceToDeviceUs[3])});
  }
  return t;
}

std::vector<Gpu6Row> computeTable6(const TableOptions& opt) {
  std::vector<Gpu6Row> rows;
  for (const Machine* m : machines::gpuMachines()) {
    commscope::CommScope scope(*m);
    commscope::Config cfg;
    cfg.binaryRuns = opt.binaryRuns;
    const auto all = scope.measureAll(cfg);
    Gpu6Row row;
    row.machine = m;
    row.launchUs = all.launchUs;
    row.waitUs = all.waitUs;
    row.hostDeviceLatencyUs = all.hostDeviceLatencyUs;
    row.hostDeviceBandwidthGBps = all.hostDeviceBandwidthGBps;
    row.d2dLatencyUs = all.d2dLatencyUs;
    rows.push_back(row);
  }
  return rows;
}

Table renderTable6(const std::vector<Gpu6Row>& rows) {
  Table t({"Rank/Name", "Launch (us)", "Wait (us)", "H<->D Lat (us)",
           "H<->D BW (GB/s)", "D2D A (us)", "D2D B (us)", "D2D C (us)",
           "D2D D (us)"});
  t.setTitle(
      "Table 6: Comm|Scope kernel/wait latencies and transfer costs "
      "(mean +- sigma, 100 runs)");
  for (const Gpu6Row& row : rows) {
    t.addRow({rankName(*row.machine), row.launchUs.toString(),
              row.waitUs.toString(), row.hostDeviceLatencyUs.toString(),
              row.hostDeviceBandwidthGBps.toString(),
              cellOrEmpty(row.d2dLatencyUs[0]),
              cellOrEmpty(row.d2dLatencyUs[1]),
              cellOrEmpty(row.d2dLatencyUs[2]),
              cellOrEmpty(row.d2dLatencyUs[3])});
  }
  return t;
}

namespace {

/// Min-max of the mean values across a group of machines, rendered
/// "lo-hi" as in Table 7.
class Range {
 public:
  void add(const Summary& s) {
    lo_ = empty_ ? s.mean : std::min(lo_, s.mean);
    hi_ = empty_ ? s.mean : std::max(hi_, s.mean);
    empty_ = false;
  }
  void addIf(const std::optional<Summary>& s) {
    if (s) {
      add(*s);
    }
  }
  [[nodiscard]] std::string str(int precision = 2) const {
    if (empty_) {
      return {};
    }
    return formatFixed(lo_, precision) + "-" + formatFixed(hi_, precision);
  }

 private:
  bool empty_ = true;
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace

Table buildTable7(const std::vector<Gpu5Row>& t5,
                  const std::vector<Gpu6Row>& t6) {
  Table t({"Accelerator", "Memory BW", "MPI Lat.", "Kernel Launch",
           "Kernel Wait", "H2D/D2H Lat.", "H2D/D2H BW", "D2D Lat."});
  t.setTitle(
      "Table 7: min-max of mean values across machines, per accelerator");
  for (const auto& group : machines::acceleratorGroups()) {
    Range bw;
    Range mpi;
    Range launch;
    Range wait;
    Range hdLat;
    Range hdBw;
    Range d2d;
    for (const Machine* m : group.members) {
      for (const Gpu5Row& row : t5) {
        if (row.machine != m) {
          continue;
        }
        bw.add(row.deviceGBps);
        // The paper's Table 7 ranges cover the class-A (direct-link) pair
        // of each machine: e.g. its V100 MPI range is 18.10-18.72, which
        // excludes the class-B 19.30-19.76 values.
        mpi.addIf(row.deviceToDeviceUs[0]);
      }
      for (const Gpu6Row& row : t6) {
        if (row.machine != m) {
          continue;
        }
        launch.add(row.launchUs);
        wait.add(row.waitUs);
        hdLat.add(row.hostDeviceLatencyUs);
        hdBw.add(row.hostDeviceBandwidthGBps);
        d2d.addIf(row.d2dLatencyUs[0]);  // class A, as above
      }
    }
    t.addRow({group.name, bw.str(), mpi.str(), launch.str(), wait.str(),
              hdLat.str(), hdBw.str(), d2d.str()});
  }
  return t;
}

Table buildTable8() {
  Table t({"Rank/Name", "Compiler", "MPI"});
  t.setTitle("Table 8: software environment, non-accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({rankName(*m), m->env.compiler, m->env.mpi});
  }
  return t;
}

Table buildTable9() {
  Table t({"Rank/Name", "Compiler", "Device Library", "MPI"});
  t.setTitle("Table 9: software environment, accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow(
        {rankName(*m), m->env.compiler, m->env.deviceLibrary, m->env.mpi});
  }
  return t;
}

}  // namespace nodebench::report
