#include "report/tables.hpp"

#include <algorithm>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "commscope/commscope.hpp"
#include "core/parallel.hpp"
#include "machines/registry.hpp"
#include "ompenv/omp_config.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace nodebench::report {

using machines::Machine;
using topo::LinkClass;

Table buildTable1() {
  Table t({"OMP_NUM_THREADS", "OMP_PROC_BIND", "OMP_PLACES"});
  t.setTitle("Table 1: OpenMP environment combinations for host bandwidth");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  // Rendered symbolically, exactly as the paper's table shows them.
  const auto row = [&](const char* n, const char* b, const char* p) {
    t.addRow({n, b, p});
  };
  row("1", "not set", "not set");
  row("1", "\"true\"", "not set");
  t.addSeparator();
  row("#cores", "not set", "not set");
  row("#cores", "\"true\"", "not set");
  row("#cores", "\"spread\"", "\"cores\"");
  row("#threads", "not set", "not set");
  row("#threads", "\"true\"", "not set");
  row("#threads", "\"close\"", "\"threads\"");
  return t;
}

Table buildTable2() {
  Table t({"Rank/Name", "Location", "CPU"});
  t.setTitle("Table 2: US DOE non-accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel});
  }
  return t;
}

Table buildTable3() {
  Table t({"Rank/Name", "Location", "CPU", "Accelerator"});
  t.setTitle("Table 3: US DOE accelerator supercomputers (top 150, June 2023)");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow({std::to_string(m->info.top500Rank) + ". " + m->info.name,
              m->info.location, m->info.cpuModel, m->info.acceleratorModel});
  }
  return t;
}

OmpSweepResult ompSweep(const Machine& m, const TableOptions& opt) {
  OmpSweepResult out;
  const auto configs =
      ompenv::table1Combinations(m.coreCount(), m.hardwareThreadCount());
  // Fan the independent environment combinations out over the harness
  // workers, then reduce sequentially in Table 1 order so the
  // strictly-greater / first-wins tie-break matches the sequential sweep.
  out.entries = par::parallelMap(
      configs,
      [&](const ompenv::OmpConfig& cfg) {
        babelstream::SimOmpBackend backend(m, cfg);
        babelstream::DriverConfig dcfg;
        dcfg.arrayBytes = opt.cpuArrayBytes;
        dcfg.binaryRuns = opt.binaryRuns;
        dcfg.seed ^= m.seed;
        const auto result = babelstream::run(backend, dcfg);
        const auto& best = result.best();
        return OmpSweepEntry{cfg.toString(), best.bandwidthGBps,
                             std::string(babelstream::streamOpName(best.op))};
      },
      opt.jobs);
  bool haveSingle = false;
  bool haveAll = false;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Summary& gbps = out.entries[i].bestOpGBps;
    const bool single = configs[i].numThreads.value_or(2) == 1;
    if (single) {
      if (!haveSingle || gbps.mean > out.bestSingle.mean) {
        out.bestSingle = gbps;
        haveSingle = true;
      }
    } else {
      if (!haveAll || gbps.mean > out.bestAll.mean) {
        out.bestAll = gbps;
        haveAll = true;
      }
    }
  }
  NB_ENSURES(haveSingle && haveAll);
  return out;
}

std::vector<Cpu4Row> computeTable4(const TableOptions& opt) {
  const auto ms = machines::cpuMachines();
  std::vector<Cpu4Row> rows(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
  }
  // Three independent cells per machine; each task writes distinct fields
  // of its pre-allocated row. The sweep runs its configs inline here
  // (nested sections stay sequential) — the machine fan-out already feeds
  // every worker.
  par::parallelForEach(
      ms.size() * 3,
      [&](std::size_t task) {
        const Machine& m = *ms[task / 3];
        Cpu4Row& row = rows[task / 3];
        osu::LatencyConfig lcfg;
        lcfg.messageSize = opt.mpiMessageSize;
        lcfg.binaryRuns = opt.binaryRuns;
        switch (task % 3) {
          case 0: {
            const OmpSweepResult sweep = ompSweep(m, opt);
            row.singleGBps = sweep.bestSingle;
            row.allGBps = sweep.bestAll;
            break;
          }
          case 1: {
            const auto [sockA, sockB] = osu::onSocketPair(m);
            row.onSocketUs =
                osu::LatencyBenchmark(m, sockA, sockB,
                                      mpisim::BufferSpace::Kind::Host)
                    .measure(lcfg)
                    .latencyUs;
            break;
          }
          case 2: {
            const auto [nodeA, nodeB] = osu::onNodePair(m);
            row.onNodeUs =
                osu::LatencyBenchmark(m, nodeA, nodeB,
                                      mpisim::BufferSpace::Kind::Host)
                    .measure(lcfg)
                    .latencyUs;
            break;
          }
          default:
            break;
        }
      },
      opt.jobs);
  return rows;
}

namespace {

std::string rankName(const Machine& m) {
  return std::to_string(m.info.top500Rank) + ". " + m.info.name;
}

std::string cellOrEmpty(const std::optional<Summary>& s, int precision = 2) {
  return s ? s->toString(precision) : std::string{};
}

}  // namespace

Table renderTable4(const std::vector<Cpu4Row>& rows) {
  Table t({"Rank/Name", "Single (GB/s)", "All (GB/s)", "Peak (GB/s)",
           "On-Socket (us)", "On-Node (us)"});
  t.setTitle("Table 4: CPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Cpu4Row& row : rows) {
    t.addRow({rankName(*row.machine), row.singleGBps.toString(),
              row.allGBps.toString(), row.machine->hostMemory.peakNote,
              row.onSocketUs.toString(), row.onNodeUs.toString()});
  }
  return t;
}

namespace {

/// One (machine, cell) work item of the GPU-table fan-outs. `linkClass`
/// is meaningful only for the per-class D2D cells.
struct GpuCellTask {
  std::size_t machineIdx = 0;
  int kind = 0;
  LinkClass linkClass = LinkClass::None;
};

}  // namespace

std::vector<Gpu5Row> computeTable5(const TableOptions& opt) {
  const auto ms = machines::gpuMachines();
  std::vector<Gpu5Row> rows(ms.size());

  // Enumerate the (machine x cell) grid up front; the present link
  // classes differ per machine, so the task list is ragged. Enumeration
  // also primes each topology's route cache before the fan-out.
  enum { kBabelstream = 0, kHostLatency = 1, kDeviceLatency = 2 };
  std::vector<GpuCellTask> tasks;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    tasks.push_back({i, kBabelstream, LinkClass::None});
    tasks.push_back({i, kHostLatency, LinkClass::None});
    for (const LinkClass c : ms[i]->topology.presentGpuLinkClasses()) {
      tasks.push_back({i, kDeviceLatency, c});
    }
  }

  par::parallelForEach(
      tasks.size(),
      [&](std::size_t t) {
        const GpuCellTask& task = tasks[t];
        const Machine& m = *ms[task.machineIdx];
        Gpu5Row& row = rows[task.machineIdx];
        osu::LatencyConfig lcfg;
        lcfg.messageSize = opt.mpiMessageSize;
        lcfg.binaryRuns = opt.binaryRuns;
        switch (task.kind) {
          case kBabelstream: {
            babelstream::SimDeviceBackend backend(m, /*device=*/0);
            babelstream::DriverConfig dcfg;
            dcfg.arrayBytes = opt.gpuArrayBytes;
            dcfg.binaryRuns = opt.binaryRuns;
            dcfg.seed ^= m.seed;
            row.deviceGBps =
                babelstream::run(backend, dcfg).best().bandwidthGBps;
            break;
          }
          case kHostLatency: {
            const auto [hostA, hostB] = osu::onSocketPair(m);
            row.hostToHostUs =
                osu::LatencyBenchmark(m, hostA, hostB,
                                      mpisim::BufferSpace::Kind::Host)
                    .measure(lcfg)
                    .latencyUs;
            break;
          }
          case kDeviceLatency: {
            const auto [devA, devB] = osu::devicePair(m, task.linkClass);
            row.deviceToDeviceUs[static_cast<int>(task.linkClass)] =
                osu::LatencyBenchmark(m, devA, devB,
                                      mpisim::BufferSpace::Kind::Device)
                    .measure(lcfg)
                    .latencyUs;
            break;
          }
          default:
            break;
        }
      },
      opt.jobs);
  return rows;
}

Table renderTable5(const std::vector<Gpu5Row>& rows) {
  Table t({"Rank/Name", "Device BW (GB/s)", "Peak", "Host-to-Host (us)",
           "D2D A (us)", "D2D B (us)", "D2D C (us)", "D2D D (us)"});
  t.setTitle("Table 5: GPU memory bandwidth and MPI latency (mean +- sigma, 100 runs)");
  for (const Gpu5Row& row : rows) {
    t.addRow({rankName(*row.machine), row.deviceGBps.toString(),
              row.machine->device->hbmPeakNote,
              row.hostToHostUs.toString(),
              cellOrEmpty(row.deviceToDeviceUs[0]),
              cellOrEmpty(row.deviceToDeviceUs[1]),
              cellOrEmpty(row.deviceToDeviceUs[2]),
              cellOrEmpty(row.deviceToDeviceUs[3])});
  }
  return t;
}

std::vector<Gpu6Row> computeTable6(const TableOptions& opt) {
  const auto ms = machines::gpuMachines();
  std::vector<Gpu6Row> rows(ms.size());

  // Each Comm|Scope quantity is measured by its own scope instance: the
  // truth methods reset the simulated runtime before measuring and the
  // aggregate noise streams are seeded from the cell identity alone, so a
  // per-cell instance reports exactly what the shared-instance
  // measureAll() sequence reported.
  enum {
    kLaunch = 0,
    kWait = 1,
    kHostDeviceLatency = 2,
    kHostDeviceBandwidth = 3,
    kD2dLatency = 4
  };
  std::vector<GpuCellTask> tasks;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    tasks.push_back({i, kLaunch, LinkClass::None});
    tasks.push_back({i, kWait, LinkClass::None});
    tasks.push_back({i, kHostDeviceLatency, LinkClass::None});
    tasks.push_back({i, kHostDeviceBandwidth, LinkClass::None});
    for (const LinkClass c : ms[i]->topology.presentGpuLinkClasses()) {
      tasks.push_back({i, kD2dLatency, c});
    }
  }

  par::parallelForEach(
      tasks.size(),
      [&](std::size_t t) {
        const GpuCellTask& task = tasks[t];
        Gpu6Row& row = rows[task.machineIdx];
        commscope::CommScope scope(*ms[task.machineIdx]);
        commscope::Config cfg;
        cfg.binaryRuns = opt.binaryRuns;
        switch (task.kind) {
          case kLaunch:
            row.launchUs = scope.kernelLaunchUs(cfg);
            break;
          case kWait:
            row.waitUs = scope.syncWaitUs(cfg);
            break;
          case kHostDeviceLatency:
            row.hostDeviceLatencyUs = scope.hostDeviceLatencyUs(cfg);
            break;
          case kHostDeviceBandwidth:
            row.hostDeviceBandwidthGBps = scope.hostDeviceBandwidthGBps(cfg);
            break;
          case kD2dLatency:
            row.d2dLatencyUs[static_cast<int>(task.linkClass)] =
                scope.d2dLatencyUs(task.linkClass, cfg);
            break;
          default:
            break;
        }
      },
      opt.jobs);
  return rows;
}

Table renderTable6(const std::vector<Gpu6Row>& rows) {
  Table t({"Rank/Name", "Launch (us)", "Wait (us)", "H<->D Lat (us)",
           "H<->D BW (GB/s)", "D2D A (us)", "D2D B (us)", "D2D C (us)",
           "D2D D (us)"});
  t.setTitle(
      "Table 6: Comm|Scope kernel/wait latencies and transfer costs "
      "(mean +- sigma, 100 runs)");
  for (const Gpu6Row& row : rows) {
    t.addRow({rankName(*row.machine), row.launchUs.toString(),
              row.waitUs.toString(), row.hostDeviceLatencyUs.toString(),
              row.hostDeviceBandwidthGBps.toString(),
              cellOrEmpty(row.d2dLatencyUs[0]),
              cellOrEmpty(row.d2dLatencyUs[1]),
              cellOrEmpty(row.d2dLatencyUs[2]),
              cellOrEmpty(row.d2dLatencyUs[3])});
  }
  return t;
}

namespace {

/// Min-max of the mean values across a group of machines, rendered
/// "lo-hi" as in Table 7.
class Range {
 public:
  void add(const Summary& s) {
    lo_ = empty_ ? s.mean : std::min(lo_, s.mean);
    hi_ = empty_ ? s.mean : std::max(hi_, s.mean);
    empty_ = false;
  }
  void addIf(const std::optional<Summary>& s) {
    if (s) {
      add(*s);
    }
  }
  [[nodiscard]] std::string str(int precision = 2) const {
    if (empty_) {
      return {};
    }
    return formatFixed(lo_, precision) + "-" + formatFixed(hi_, precision);
  }

 private:
  bool empty_ = true;
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace

Table buildTable7(const std::vector<Gpu5Row>& t5,
                  const std::vector<Gpu6Row>& t6) {
  Table t({"Accelerator", "Memory BW", "MPI Lat.", "Kernel Launch",
           "Kernel Wait", "H2D/D2H Lat.", "H2D/D2H BW", "D2D Lat."});
  t.setTitle(
      "Table 7: min-max of mean values across machines, per accelerator");
  for (const auto& group : machines::acceleratorGroups()) {
    Range bw;
    Range mpi;
    Range launch;
    Range wait;
    Range hdLat;
    Range hdBw;
    Range d2d;
    for (const Machine* m : group.members) {
      for (const Gpu5Row& row : t5) {
        if (row.machine != m) {
          continue;
        }
        bw.add(row.deviceGBps);
        // The paper's Table 7 ranges cover the class-A (direct-link) pair
        // of each machine: e.g. its V100 MPI range is 18.10-18.72, which
        // excludes the class-B 19.30-19.76 values.
        mpi.addIf(row.deviceToDeviceUs[0]);
      }
      for (const Gpu6Row& row : t6) {
        if (row.machine != m) {
          continue;
        }
        launch.add(row.launchUs);
        wait.add(row.waitUs);
        hdLat.add(row.hostDeviceLatencyUs);
        hdBw.add(row.hostDeviceBandwidthGBps);
        d2d.addIf(row.d2dLatencyUs[0]);  // class A, as above
      }
    }
    t.addRow({group.name, bw.str(), mpi.str(), launch.str(), wait.str(),
              hdLat.str(), hdBw.str(), d2d.str()});
  }
  return t;
}

Table buildTable8() {
  Table t({"Rank/Name", "Compiler", "MPI"});
  t.setTitle("Table 8: software environment, non-accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  for (const Machine* m : machines::cpuMachines()) {
    t.addRow({rankName(*m), m->env.compiler, m->env.mpi});
  }
  return t;
}

Table buildTable9() {
  Table t({"Rank/Name", "Compiler", "Device Library", "MPI"});
  t.setTitle("Table 9: software environment, accelerator machines");
  t.setAlign(1, Align::Left);
  t.setAlign(2, Align::Left);
  t.setAlign(3, Align::Left);
  for (const Machine* m : machines::gpuMachines()) {
    t.addRow(
        {rankName(*m), m->env.compiler, m->env.deviceLibrary, m->env.mpi});
  }
  return t;
}

}  // namespace nodebench::report
