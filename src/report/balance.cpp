#include "report/balance.hpp"

#include "machines/registry.hpp"

namespace nodebench::report {

using machines::Machine;

std::vector<BalanceRow> computeBalance() {
  std::vector<BalanceRow> rows;
  for (const Machine& m : machines::allMachines()) {
    if (m.hostPeakFp64Gflops > 0.0) {
      BalanceRow host;
      host.machine = &m;
      host.deviceSide = false;
      host.peakGflops = m.hostPeakFp64Gflops;
      // Sustained host bandwidth: every NUMA domain saturated, divided by
      // the cache-mode factor (the model's Table 4 "All" value).
      host.streamGBps = m.hostMemory.perNumaSaturation.inGBps() *
                        static_cast<double>(m.topology.numaCount()) /
                        m.hostMemory.cacheModeOverhead;
      rows.push_back(host);
    }
    if (m.device && m.device->peakFp64Gflops > 0.0) {
      BalanceRow dev;
      dev.machine = &m;
      dev.deviceSide = true;
      dev.peakGflops = m.device->peakFp64Gflops;
      dev.streamGBps = m.device->hbmBw.inGBps();
      rows.push_back(dev);
    }
  }
  return rows;
}

Table renderBalance(const std::vector<BalanceRow>& rows) {
  Table t({"System", "Side", "Peak FP64 (GFLOP/s)", "STREAM (GB/s)",
           "Balance (flops/byte)"});
  t.setTitle(
      "Machine balance: arithmetic a kernel needs per byte of traffic to "
      "be compute-bound");
  t.setAlign(1, Align::Left);
  for (const BalanceRow& row : rows) {
    t.addRow({row.machine->info.name, row.deviceSide ? "device" : "host",
              formatFixed(row.peakGflops, 0),
              formatFixed(row.streamGBps, 1),
              formatFixed(row.flopsPerByte(), 1)});
  }
  return t;
}

}  // namespace nodebench::report
