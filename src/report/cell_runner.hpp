#pragma once
/// \file cell_runner.hpp
/// \brief The cell-grained measurement harness shared by every table and
/// benchmark family in `report/`.
///
/// `runCell` composes, in order: cooperative cancellation, shard-slice
/// skip, per-cell trace scope, results-store probe, journal replay, the
/// injectable test delay, and the resilient retry loop with
/// deterministic noise salts — the contract that makes `--jobs`,
/// `--faults`, `--trace`, `--journal --resume`, `--store`, `--shard`,
/// serve and supervise compose for free for any family built on it.
/// Extracted from tables.cpp when the memlab families (sweep, chase)
/// became the second consumer; the semantics here are pinned by the
/// campaign/shard/serve test suites and must not drift per family.

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/shard.hpp"
#include "core/parallel.hpp"
#include "core/samples.hpp"
#include "faults/fault_plan.hpp"
#include "report/tables.hpp"
#include "stats/store.hpp"
#include "trace/trace.hpp"

namespace nodebench::report::cellrun {

/// Runs one cell measurement under the resilient retry policy. Attempt 0
/// runs with salt 0 so fault-free output is byte-identical to the
/// historical harness; each retry re-derives a deterministic salt the
/// body folds into its noise seeds. On exhaustion the slot stays
/// `failed`, the row keeps its zero-initialised value and the renderer
/// degrades the cell to "n/a".
///
/// Under a campaign journal (opt.journal), an already-journalled cell is
/// *replayed* instead of re-measured: `load` restores the row fields from
/// the record's bit-exact payload and the incident slot is restored so
/// the diagnostics appendix matches too. A freshly measured cell is
/// persisted via `save` before the harness moves on — cells are
/// independent (identity-derived seeds), so skipping measured ones cannot
/// shift any other cell's noise streams, which is what makes a resumed
/// campaign byte-identical to an uninterrupted one.
///
/// Under a results store (opt.store), the cell additionally persists its
/// raw per-repetition samples: a SampleCapture is installed around each
/// attempt and `storeSave` turns the captured channels into store
/// records. A cell the store already holds skips that; a cell the store
/// *lacks* is re-measured even when the journal could replay it, because
/// journal payloads carry only summaries — re-measurement reproduces the
/// identical values (identity-derived seeds) and the journal append
/// below stays an idempotent no-op.
template <typename Body, typename Save, typename Load, typename StoreSave>
void runCell(const TableOptions& opt, const machines::Machine& m,
             std::string cell, CellIncident& slot, Body&& body, Save&& save,
             Load&& load, StoreSave&& storeSave) {
  // Cooperative cancellation is cell-grained: a set token skips cells that
  // have not started (this check), cells already past it finish and
  // journal normally, and the compute function throws CancelledError
  // after the fan-out. A skipped slot keeps attempts == 0, so it is
  // neither an incident nor a journal record — a --resume run re-measures
  // exactly the skipped cells and lands byte-identical.
  if (opt.cancel != nullptr && opt.cancel->requested()) {
    return;
  }
  // Shard skip comes before everything else (including the store
  // containsCell probe): a cell outside this shard's slice leaves no
  // journal record, no store record, no incident, and a zeroed row —
  // `nodebench merge` rebuilds the full artifact from the shard set.
  if (opt.shard != nullptr && !opt.shard->assigned(m.info.name, cell)) {
    return;
  }
  slot.machine = m.info.name;
  slot.cell = std::move(cell);
  // One trace scope per cell (covering retries): model objects the body
  // constructs capture this buffer, so a traced table run yields one
  // "<machine>/<cell>" process per measurement in the exported trace.
  // Labels are unique within a table's parallel fan-out, which keeps the
  // export deterministic at any --jobs (no-op without --trace/--metrics).
  trace::Scope traceScope(slot.machine + "/" + slot.cell);
  const bool wantStore =
      opt.store != nullptr && !opt.store->containsCell(slot.machine, slot.cell);
  if (opt.journal != nullptr && !wantStore) {
    if (const campaign::CellRecord* rec =
            opt.journal->find(slot.machine, slot.cell)) {
      slot.attempts = static_cast<int>(rec->attempts);
      slot.failed = rec->failed;
      slot.error = rec->error;
      if (!rec->failed) {
        campaign::PayloadReader r(rec->payload);
        load(r);
      }
      return;
    }
  }
  if (opt.testCellDelayMs > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.testCellDelayMs));
  }
  std::optional<SampleCapture> capture;
  const int maxAttempts = std::max(1, opt.cellRetries + 1);
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    if (attempt > 0 && opt.retryBackoffBaseMs > 0) {
      // Capped exponential backoff before each retry. Wall-clock only:
      // the retry's noise salt below is derived from the attempt index,
      // not from time, so backed-off output matches immediate retries.
      const int shift = std::min(attempt - 1, 20);
      const long delay =
          std::min(static_cast<long>(opt.retryBackoffMaxMs),
                   static_cast<long>(opt.retryBackoffBaseMs) << shift);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    ++slot.attempts;
    try {
      if (wantStore) {
        capture.emplace();  // fresh per attempt: no stale samples on retry
      }
      if (opt.faults != nullptr &&
          opt.faults->shouldFailAttempt(slot.machine, slot.cell, attempt)) {
        throw Error("injected flaky-cell failure (attempt " +
                    std::to_string(attempt + 1) + ")");
      }
      const std::uint64_t salt =
          attempt == 0 ? 0
                       : par::taskSeed(0xfa157a7full,
                                       static_cast<std::uint64_t>(attempt));
      body(salt);
      slot.failed = false;
      break;
    } catch (const std::exception& e) {
      slot.failed = true;
      slot.error = e.what();
    }
  }
  if (wantStore && !slot.failed) {
    storeSave(*capture);
  }
  if (opt.journal != nullptr) {
    campaign::CellRecord rec;
    rec.machine = slot.machine;
    rec.cell = slot.cell;
    rec.attempts = static_cast<std::uint32_t>(slot.attempts);
    rec.failed = slot.failed;
    rec.error = slot.error;
    if (!slot.failed) {
      campaign::PayloadWriter w;
      save(w);
      rec.payload = w.bytes();
    }
    opt.journal->append(std::move(rec));
  }
}

/// Save/load lambda builders for the common one-Summary cell payloads.
inline auto saveSummary(const Summary& s) {
  return [&s](campaign::PayloadWriter& w) { campaign::putSummary(w, s); };
}
inline auto loadSummary(Summary& s) {
  return [&s](campaign::PayloadReader& r) { s = campaign::readSummary(r); };
}
inline auto saveOptSummary(const std::optional<Summary>& s) {
  return [&s](campaign::PayloadWriter& w) { campaign::putSummary(w, *s); };
}
inline auto loadOptSummary(std::optional<Summary>& s) {
  return [&s](campaign::PayloadReader& r) { s = campaign::readSummary(r); };
}

/// Builds one store record from a measured cell. The store encoder
/// enforces samples.size() == summary.count — every channel records
/// exactly one value per binary run, so a full capture always matches.
inline stats::SampleRecord sampleRecord(const CellIncident& slot,
                                        std::string quantity, std::string unit,
                                        stats::Better better,
                                        const Summary& summary,
                                        std::vector<double> samples) {
  stats::SampleRecord rec;
  rec.machine = slot.machine;
  rec.cell = slot.cell;
  rec.quantity = std::move(quantity);
  rec.unit = std::move(unit);
  rec.better = better;
  rec.summary = summary;
  rec.samples = std::move(samples);
  return rec;
}

/// Keeps only the interesting incident slots (retried or failed cells),
/// in task order, appending them to `out` when requested.
inline void collectIncidents(std::vector<CellIncident> slots,
                             std::vector<CellIncident>* out) {
  if (out == nullptr) {
    return;
  }
  for (CellIncident& slot : slots) {
    if (slot.attempts > 1 || slot.failed) {
      out->push_back(std::move(slot));
    }
  }
}

/// Applies the optional TableOptions machine subset to a registry list,
/// preserving registry order. Unknown names simply select nothing here;
/// callers that must reject them (the serve request decoder) validate
/// against the registry up front.
inline std::vector<const machines::Machine*> filteredMachines(
    std::vector<const machines::Machine*> ms, const TableOptions& opt) {
  if (opt.machines == nullptr) {
    return ms;
  }
  std::vector<const machines::Machine*> out;
  for (const machines::Machine* m : ms) {
    if (std::find(opt.machines->begin(), opt.machines->end(), m->info.name) !=
        opt.machines->end()) {
      out.push_back(m);
    }
  }
  return out;
}

/// Post-fan-out cancellation check shared by the compute functions: all
/// in-flight cells have finished and journalled by the time the fan-out
/// returns, so this is the safe point to abandon the partial table.
inline void throwIfCancelled(const TableOptions& opt) {
  if (opt.cancel != nullptr) {
    opt.cancel->throwIfRequested();
  }
}

/// The machines a table run measures: registry pointers verbatim without
/// a fault plan (identity preserved for golden tests and Table 7), or
/// per-machine perturbed copies under one.
class MeasuredMachines {
 public:
  MeasuredMachines(const std::vector<const machines::Machine*>& ms,
                   const faults::FaultPlan* plan) {
    if (plan == nullptr) {
      return;
    }
    faulted_.reserve(ms.size());
    for (const machines::Machine* m : ms) {
      faulted_.push_back(plan->applyToMachine(*m));
    }
  }

  [[nodiscard]] const machines::Machine& at(
      const std::vector<const machines::Machine*>& ms, std::size_t i) const {
    return faulted_.empty() ? *ms[i] : faulted_[i];
  }

 private:
  std::vector<machines::Machine> faulted_;
};

inline bool cellFailed(const std::vector<CellIncident>* incidents,
                       const std::string& machine, const std::string& cell) {
  if (incidents == nullptr) {
    return false;
  }
  return std::any_of(incidents->begin(), incidents->end(),
                     [&](const CellIncident& i) {
                       return i.failed && i.machine == machine &&
                              i.cell == cell;
                     });
}

inline std::string naOr(bool failed, std::string value) {
  return failed ? std::string("n/a") : std::move(value);
}

}  // namespace nodebench::report::cellrun
