#include "report/memlab_report.hpp"

#include <cstdio>
#include <utility>

#include "babelstream/kernels.hpp"
#include "campaign/shard.hpp"
#include "core/parallel.hpp"
#include "core/samples.hpp"
#include "machines/registry.hpp"
#include "report/ascii_chart.hpp"
#include "report/cell_runner.hpp"
#include "stats/store.hpp"

namespace nodebench::report {

using machines::Machine;

namespace {

using cellrun::cellFailed;
using cellrun::collectIncidents;
using cellrun::filteredMachines;
using cellrun::MeasuredMachines;
using cellrun::naOr;
using cellrun::runCell;
using cellrun::sampleRecord;
using cellrun::throwIfCancelled;

std::vector<const Machine*> allMachinePtrs() {
  std::vector<const Machine*> out;
  for (const Machine& m : machines::allMachines()) {
    out.push_back(&m);
  }
  return out;
}

/// "48 KiB" / "3 MiB" label for the comparison-table rows; exact bytes
/// when not a whole binary multiple (the grids only produce whole ones).
std::string sizeLabel(ByteCount b) {
  const std::uint64_t n = b.count();
  if (n % (1024ull * 1024ull) == 0) {
    return std::to_string(n / (1024ull * 1024ull)) + " MiB";
  }
  if (n % 1024ull == 0) {
    return std::to_string(n / 1024ull) + " KiB";
  }
  return std::to_string(n) + " B";
}

std::string fmt(double v, const char* spec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

/// Comparison table shared by the three renderers: rows = grid sizes,
/// columns = machines, failed cells degraded to "n/a".
template <typename Row, typename Value>
Table comparisonTable(const std::vector<Row>& rows, const char* title,
                      const std::vector<CellIncident>* incidents,
                      std::string (*cellName)(ByteCount), Value&& value) {
  std::vector<std::string> headers{"Working set"};
  for (const Row& row : rows) {
    headers.push_back(row.machine->info.name);
  }
  Table t(headers);
  t.setTitle(title);
  t.setAlign(0, Align::Left);
  const std::size_t points = rows.empty() ? 0 : rows.front().points.size();
  for (std::size_t j = 0; j < points; ++j) {
    std::vector<std::string> cells{sizeLabel(rows.front().points[j].workingSet)};
    for (const Row& row : rows) {
      const bool failed =
          cellFailed(incidents, row.machine->info.name,
                     cellName(row.points[j].workingSet));
      cells.push_back(naOr(failed, value(row.points[j])));
    }
    t.addRow(std::move(cells));
  }
  return t;
}

/// One log-log chart series per machine with a complete positive curve
/// (failed cells leave zero-mean points that a log axis cannot place).
template <typename Row, typename Value>
std::string ladderChart(const std::vector<Row>& rows, const char* yLabel,
                        Value&& value) {
  if (rows.empty() || rows.front().points.size() < 2) {
    return {};
  }
  std::vector<double> xs;
  for (const auto& p : rows.front().points) {
    xs.push_back(p.workingSet.asDouble());
  }
  std::vector<Series> series;
  for (const Row& row : rows) {
    Series s{row.machine->info.name, {}};
    bool ok = row.points.size() == xs.size();
    for (const auto& p : row.points) {
      const double y = value(p);
      ok = ok && y > 0.0;
      s.y.push_back(y);
    }
    if (ok) {
      series.push_back(std::move(s));
    }
  }
  if (series.empty()) {
    return {};
  }
  ChartOptions opt;
  opt.logX = true;
  opt.logY = true;
  opt.xLabel = "working set (bytes)";
  opt.yLabel = yLabel;
  return renderChart(xs, series, opt);
}

}  // namespace

std::string sweepCellName(ByteCount workingSet) {
  return "ws " + std::to_string(workingSet.count());
}

std::string chaseCellName(ByteCount workingSet) {
  return "chase " + std::to_string(workingSet.count());
}

std::vector<SweepRow> computeSweep(const TableOptions& opt,
                                   std::vector<CellIncident>* incidents) {
  const auto ms = filteredMachines(allMachinePtrs(), opt);
  const MeasuredMachines measured(ms, opt.faults);
  memlab::SweepConfig base;
  base.binaryRuns = opt.binaryRuns;
  const std::vector<ByteCount> grid = memlab::sweepGrid(base);
  std::vector<SweepRow> rows(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    rows[i].points.resize(grid.size());
  }
  if (opt.shard != nullptr) {
    std::vector<campaign::GridCell> cells;
    cells.reserve(ms.size() * grid.size());
    for (const Machine* m : ms) {
      for (const ByteCount size : grid) {
        cells.push_back({m->info.name, sweepCellName(size * 3ull)});
      }
    }
    opt.shard->registerTable("sweep", std::move(cells), opt.journal);
  }
  std::vector<CellIncident> slots(ms.size() * grid.size());
  par::parallelForEach(
      slots.size(),
      [&](std::size_t task) {
        const std::size_t mi = task / grid.size();
        const std::size_t j = task % grid.size();
        const Machine& m = measured.at(ms, mi);
        memlab::SweepPoint& point = rows[mi].points[j];
        runCell(opt, m, sweepCellName(grid[j] * 3ull), slots[task],
                [&](std::uint64_t salt) {
                  memlab::SweepConfig cfg = base;
                  cfg.seedSalt = salt;
                  point = memlab::measureSweepPoint(m, grid[j], cfg);
                },
                [&](campaign::PayloadWriter& w) {
                  campaign::putSummary(w, point.bandwidthGBps);
                },
                [&](campaign::PayloadReader& r) {
                  point = memlab::SweepPoint{grid[j], grid[j] * 3ull,
                                             campaign::readSummary(r)};
                },
                [&](SampleCapture& cap) {
                  opt.store->append(sampleRecord(
                      slots[task], memlab::kSweepQuantity, "GB/s",
                      stats::Better::Higher, point.bandwidthGBps,
                      cap.take(std::string(babelstream::streamOpName(
                          babelstream::StreamOp::Triad)))));
                });
      },
      opt.jobs);
  throwIfCancelled(opt);
  collectIncidents(std::move(slots), incidents);
  return rows;
}

Table renderSweep(const std::vector<SweepRow>& rows,
                  const std::vector<CellIncident>* incidents) {
  return comparisonTable(
      rows,
      "Working-set sweep: BabelStream triad bandwidth (GB/s, bound full team)",
      incidents, sweepCellName, [](const memlab::SweepPoint& p) {
        return fmt(p.bandwidthGBps.mean, "%.1f");
      });
}

std::string renderSweepChart(const std::vector<SweepRow>& rows) {
  return ladderChart(rows, "GB/s", [](const memlab::SweepPoint& p) {
    return p.bandwidthGBps.mean;
  });
}

std::vector<ChaseRow> computeChase(const TableOptions& opt,
                                   std::vector<CellIncident>* incidents) {
  const auto ms = filteredMachines(allMachinePtrs(), opt);
  const MeasuredMachines measured(ms, opt.faults);
  memlab::ChaseConfig base;
  base.binaryRuns = opt.binaryRuns;
  const std::vector<ByteCount> grid = memlab::chaseGrid(base);
  std::vector<ChaseRow> rows(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    rows[i].machine = ms[i];
    rows[i].points.resize(grid.size());
  }
  if (opt.shard != nullptr) {
    std::vector<campaign::GridCell> cells;
    cells.reserve(ms.size() * grid.size());
    for (const Machine* m : ms) {
      for (const ByteCount size : grid) {
        cells.push_back({m->info.name, chaseCellName(size)});
      }
    }
    opt.shard->registerTable("chase", std::move(cells), opt.journal);
  }
  std::vector<CellIncident> slots(ms.size() * grid.size());
  par::parallelForEach(
      slots.size(),
      [&](std::size_t task) {
        const std::size_t mi = task / grid.size();
        const std::size_t j = task % grid.size();
        const Machine& m = measured.at(ms, mi);
        memlab::ChasePoint& point = rows[mi].points[j];
        runCell(opt, m, chaseCellName(grid[j]), slots[task],
                [&](std::uint64_t salt) {
                  memlab::ChaseConfig cfg = base;
                  cfg.seedSalt = salt;
                  point = memlab::measureChasePoint(m, grid[j], cfg);
                },
                [&](campaign::PayloadWriter& w) {
                  campaign::putSummary(w, point.nsPerAccess);
                  campaign::putSummary(w, point.clkPerOp);
                },
                [&](campaign::PayloadReader& r) {
                  point.workingSet = grid[j];
                  point.nsPerAccess = campaign::readSummary(r);
                  point.clkPerOp = campaign::readSummary(r);
                },
                [&](SampleCapture& cap) {
                  opt.store->append(sampleRecord(
                      slots[task], memlab::kChaseSampleChannel, "ns",
                      stats::Better::Lower, point.nsPerAccess,
                      cap.take(memlab::kChaseSampleChannel)));
                });
      },
      opt.jobs);
  throwIfCancelled(opt);
  collectIncidents(std::move(slots), incidents);
  return rows;
}

Table renderChaseNs(const std::vector<ChaseRow>& rows,
                    const std::vector<CellIncident>* incidents) {
  return comparisonTable(
      rows,
      "Pointer chase: dependent-load latency (ns per access, one pinned core)",
      incidents, chaseCellName, [](const memlab::ChasePoint& p) {
        return fmt(p.nsPerAccess.mean, "%.2f");
      });
}

Table renderChaseClk(const std::vector<ChaseRow>& rows,
                     const std::vector<CellIncident>* incidents) {
  return comparisonTable(
      rows, "Pointer chase: dependent-load latency (core clocks per access)",
      incidents, chaseCellName, [](const memlab::ChasePoint& p) {
        return fmt(p.clkPerOp.mean, "%.1f");
      });
}

std::string renderChaseChart(const std::vector<ChaseRow>& rows) {
  return ladderChart(rows, "ns/access", [](const memlab::ChasePoint& p) {
    return p.nsPerAccess.mean;
  });
}

}  // namespace nodebench::report
