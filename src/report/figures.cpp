#include "report/figures.hpp"

#include <cstdio>

#include "core/error.hpp"
#include "topo/topology.hpp"

namespace nodebench::report {

using machines::Machine;
using topo::GpuId;
using topo::GpuInterconnectFlavor;
using topo::LinkClass;

namespace {

std::string mi250xDiagram(const Machine& m) {
  std::string out;
  out += "  " + m.info.name + " node (" + m.info.cpuModel +
         " + 4x MI250X = 8 GCDs)\n";
  out +=
      "\n"
      "                  +---------------------------+\n"
      "                  |          " +
      m.info.cpuModel +
      "          |\n"
      "                  |   (4 NUMA domains, 64c)   |\n"
      "                  +---------------------------+\n"
      "                   |   |   |   |   |   |   |   |  CPU-GCD Infinity "
      "Fabric\n"
      "   pkg0            pkg1            pkg2            pkg3\n"
      " +------+====+------+  +------+====+------+\n"
      " | GCD0 | x4 | GCD1 |  | GCD2 | x4 | GCD3 |   ==== : quad IF "
      "(class A)\n"
      " +------+====+------+  +------+====+------+\n"
      "    ||      \\ /  ||       ||     \\ /   ||      ||   : dual IF "
      "(class B)\n"
      "    ||      / \\  ||       ||     / \\   ||      |    : single IF "
      "(class C)\n"
      " +------+====+------+  +------+====+------+\n"
      " | GCD4 | x4 | GCD5 |  | GCD6 | x4 | GCD7 |   no direct link: "
      "class D\n"
      " +------+====+------+  +------+====+------+\n";
  return out;
}

std::string power9Diagram(const Machine& m) {
  const int perSocket = m.topology.gpuCount() / 2;
  std::string out;
  out += "  " + m.info.name + " node (2x IBM Power9 + " +
         std::to_string(m.topology.gpuCount()) + "x V100)\n\n";
  if (perSocket == 3) {
    out +=
        " +--------+  NVLink2  +------+=+------+=+------+\n"
        " |        |===========| GPU0 | | GPU1 | | GPU2 |   = : NVLink2\n"
        " | Power9 |           +------+=+------+=+------+       (class A "
        "within socket)\n"
        " | skt 0  |\n"
        " +--------+\n"
        "     ||  X-Bus (cross-socket GPU pairs: class B)\n"
        " +--------+\n"
        " | Power9 |           +------+=+------+=+------+\n"
        " | skt 1  |===========| GPU3 | | GPU4 | | GPU5 |\n"
        " +--------+  NVLink2  +------+=+------+=+------+\n";
  } else {
    out +=
        " +--------+  NVLink2  +------+=====+------+\n"
        " |        |===========| GPU0 |     | GPU1 |   ===== : NVLink2\n"
        " | Power9 |           +------+=====+------+       (class A within "
        "socket)\n"
        " | skt 0  |\n"
        " +--------+\n"
        "     ||  X-Bus (cross-socket GPU pairs: class B)\n"
        " +--------+\n"
        " | Power9 |           +------+=====+------+\n"
        " | skt 1  |===========| GPU2 |     | GPU3 |\n"
        " +--------+  NVLink2  +------+=====+------+\n";
  }
  return out;
}

std::string a100Diagram(const Machine& m) {
  std::string out;
  out += "  " + m.info.name + " node (" + m.info.cpuModel + " + 4x A100)\n";
  out +=
      "\n"
      "        +---------------------------+\n"
      "        |        " +
      m.info.cpuModel +
      "        |\n"
      "        |    (4 NUMA domains)       |\n"
      "        +---------------------------+\n"
      "          |       |       |       |     PCIe4 x16 per GPU\n"
      "       +------+ +------+ +------+ +------+\n"
      "       | GPU0 | | GPU1 | | GPU2 | | GPU3 |\n"
      "       +------+ +------+ +------+ +------+\n"
      "          \\______/|\\______/|\\______/\n"
      "           \\_______|________|______/     NVLink3 all-to-all\n"
      "            (every pair: 4 links, class A)\n";
  return out;
}

std::string cpuDiagram(const Machine& m) {
  std::string out;
  out += "  " + m.info.name + " node (" + m.info.cpuModel + ")\n\n";
  char buf[256];
  if (m.topology.socketCount() == 2) {
    const int perSocket = m.coreCount() / 2;
    std::snprintf(buf, sizeof(buf),
                  " +--------------+   inter-socket    +--------------+\n"
                  " |  socket 0    |===================|  socket 1    |\n"
                  " |  %3d cores   |                   |  %3d cores   |\n"
                  " +--------------+                   +--------------+\n",
                  perSocket, perSocket);
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf),
                  " +--------------------------------------+\n"
                  " |  self-hosted Xeon Phi, %3d cores     |\n"
                  " |  2D mesh of %2d tiles (2 cores/tile)  |\n"
                  " |  MCDRAM in quad-cache mode           |\n"
                  " +--------------------------------------+\n",
                  m.coreCount(), m.coreCount() / 2);
    out += buf;
  }
  return out;
}

}  // namespace

std::string nodeDiagram(const Machine& m) {
  switch (m.topology.gpuFlavor()) {
    case GpuInterconnectFlavor::InfinityFabric:
      return mi250xDiagram(m);
    case GpuInterconnectFlavor::NvlinkPcieMix:
      return power9Diagram(m);
    case GpuInterconnectFlavor::NvlinkAllToAll:
      return a100Diagram(m);
    case GpuInterconnectFlavor::None:
      return cpuDiagram(m);
  }
  throw InvariantError("unhandled flavour");
}

std::string linkClassLegend(const Machine& m) {
  const topo::NodeTopology& topo = m.topology;
  if (topo.gpuFlavor() == GpuInterconnectFlavor::None) {
    return "  (no accelerators)\n";
  }
  std::string out = "  GPU pairs by link class:\n";
  // Fault-injected topologies annotate their downed links; fair-weather
  // machines have none, so their legend text is unchanged.
  for (std::size_t i = 0; i < topo.links().size(); ++i) {
    const topo::Link& link = topo.links()[i];
    if (!link.failed) {
      continue;
    }
    const auto endpoint = [](const topo::Link::Endpoint& e) {
      return std::string(
                 e.kind == topo::Link::EndpointKind::Socket ? "socket"
                                                            : "gpu") +
             std::to_string(e.id);
    };
    out += "    [DOWN] ";
    out += endpoint(link.a);
    out += "<->";
    out += endpoint(link.b);
    out += " (";
    out += topo::linkTypeName(link.type);
    out += ")\n";
  }
  for (const LinkClass c : topo.presentGpuLinkClasses()) {
    out += "    " + std::string(topo::linkClassName(c)) + ": ";
    for (int i = 0; i < topo.gpuCount(); ++i) {
      for (int j = i + 1; j < topo.gpuCount(); ++j) {
        if (topo.gpuPairClass(GpuId{i}, GpuId{j}) == c) {
          out += "(";
          out += std::to_string(i);
          out += ",";
          out += std::to_string(j);
          out += ") ";
        }
      }
    }
    const auto rep = topo.representativePair(c);
    if (rep) {
      if (const topo::Link* link = topo.directGpuLink(rep->first, rep->second)) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), " -- %sx%d, %.2f us, %.0f GB/s",
                      std::string(topo::linkTypeName(link->type)).c_str(),
                      link->count, link->latency.us(),
                      link->bandwidth.inGBps());
        out += buf;
      } else {
        out += " -- routed via host";
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace nodebench::report
