#pragma once
/// \file balance.hpp
/// \brief Machine-balance analysis: peak FLOP rate over sustained STREAM
/// bandwidth, the quantity McCalpin's original STREAM papers tracked and
/// the paper's related-work section recounts ("CPU performance was
/// improving much faster than memory bandwidth"). Computed for both the
/// host and device sides of every studied system.

#include <vector>

#include "core/table.hpp"
#include "machines/machine.hpp"

namespace nodebench::report {

struct BalanceRow {
  const machines::Machine* machine = nullptr;
  bool deviceSide = false;
  double peakGflops = 0.0;
  double streamGBps = 0.0;  ///< Best sustainable STREAM bandwidth (model).
  /// Flops a kernel must perform per byte of memory traffic to stay
  /// compute-bound: peak / bandwidth.
  [[nodiscard]] double flopsPerByte() const {
    return peakGflops / streamGBps;
  }
};

/// One row per host and one per accelerator of each system with known
/// peak FLOPS, using the calibrated models' sustained bandwidths.
[[nodiscard]] std::vector<BalanceRow> computeBalance();

[[nodiscard]] Table renderBalance(const std::vector<BalanceRow>& rows);

}  // namespace nodebench::report
