#include "memlab/chase.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/samples.hpp"
#include "trace/trace.hpp"

namespace nodebench::memlab {

std::vector<ByteCount> chaseGrid(const ChaseConfig& cfg) {
  NB_EXPECTS(cfg.minWorkingSet.count() > 0);
  NB_EXPECTS(cfg.minWorkingSet <= cfg.maxWorkingSet);
  std::vector<ByteCount> grid;
  for (ByteCount size = cfg.minWorkingSet; size <= cfg.maxWorkingSet;
       size = size * 2ull) {
    grid.push_back(size);
  }
  return grid;
}

double chaseNsPerAccessTruth(const machines::Machine& m,
                             ByteCount workingSet) {
  NB_EXPECTS(workingSet.count() > 0);
  const machines::CacheHierarchy& h = m.cacheHierarchy;
  if (h.empty()) {
    throw Error("machine '" + m.info.name +
                "' has no cache hierarchy; the pointer-chase family needs "
                "the ladder");
  }
  const double ws = workingSet.asDouble();
  double ns = h.levels.front().loadToUseLatency.ns();
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const double capacity = h.levels[l].capacity.asDouble();
    const double next = l + 1 < h.levels.size()
                            ? h.levels[l + 1].loadToUseLatency.ns()
                            : h.memoryLatency.ns();
    const double miss = std::max(0.0, 1.0 - capacity / ws);
    ns += miss * (next - h.levels[l].loadToUseLatency.ns());
  }
  return ns;
}

ChasePoint measureChasePoint(const machines::Machine& m, ByteCount workingSet,
                             const ChaseConfig& cfg) {
  NB_EXPECTS(cfg.binaryRuns > 0);
  const double truth = chaseNsPerAccessTruth(m, workingSet);
  const double ghz = m.cacheHierarchy.coreClockGHz;
  // One pinned core: single-thread run-to-run noise, one multiplicative
  // factor per binary run — within-run repeats of the simulated walk are
  // identical, so the run factor carries the entire observed variance.
  const NoiseModel noise(m.hostMemory.cvSingle);
  const std::uint64_t seed =
      par::taskSeed(m.seed ^ 0x636861736532ull, workingSet.count()) ^
      cfg.seedSalt;
  Welford nsAcc;
  Welford clkAcc;
  for (int run = 0; run < cfg.binaryRuns; ++run) {
    Xoshiro256 rng(seed + 0x9e3779b9u * static_cast<std::uint64_t>(run));
    const double ns = truth * noise.sampleFactor(rng);
    nsAcc.add(ns);
    clkAcc.add(ns * ghz);
    recordSample(kChaseSampleChannel, ns);
  }
  if (trace::TraceBuffer* t = trace::current()) {
    t->count("memlab.chase_points");
  }
  return ChasePoint{workingSet, nsAcc.summary(), clkAcc.summary()};
}

}  // namespace nodebench::memlab
