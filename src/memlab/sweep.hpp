#pragma once
/// \file sweep.hpp
/// \brief Working-set bandwidth sweep: BabelStream triad bandwidth across
/// a geometric working-set grid from L1-resident to DRAM-resident sizes.
///
/// Where Table 4 reports two points per machine (single core and full
/// team, both deep in DRAM), this family walks the footprint axis and
/// exposes the knees of the cache ladder the memory model resolves sizes
/// against (memsim::HostMemoryModel + machines::CacheHierarchy): the
/// rendered curve steps down once per cache level, the way memory-
/// hierarchy studies plot STREAM-versus-size. One grid point is one
/// harness cell, so the family composes with journals, stores, shards,
/// fault plans and tracing like any table cell does.

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "machines/machine.hpp"

namespace nodebench::memlab {

struct SweepConfig {
  /// Geometric (power-of-two) grid over the per-array vector size; the
  /// working set of the measured triad kernel is three arrays. 16 KiB
  /// puts the smallest point inside every modeled L1d aggregate; 256 MiB
  /// matches the Table 4 vector size, so the sweep's DRAM plateau is the
  /// same regime the paper's headline numbers live in.
  ByteCount minArrayBytes = ByteCount::kib(16);
  ByteCount maxArrayBytes = ByteCount::mib(256);
  /// Benchmark binary executions aggregated into mean ± sigma per point.
  int binaryRuns = 100;
  /// Retry-attempt salt from the cell harness (0 = attempt 0).
  std::uint64_t seedSalt = 0;
};

/// One measured grid point.
struct SweepPoint {
  ByteCount arrayBytes;   ///< Per-array vector size.
  ByteCount workingSet;   ///< Bytes touched by the triad kernel (3 arrays).
  Summary bandwidthGBps;  ///< Across binary runs.
};

/// The grid the sweep walks: per-array sizes from minArrayBytes to
/// maxArrayBytes inclusive, doubling each step.
[[nodiscard]] std::vector<ByteCount> sweepGrid(const SweepConfig& cfg);

/// Measures one grid point on one machine: full-team bound-spread
/// BabelStream triad at the given per-array size. Noise streams are
/// decorrelated per (machine, size) and perturbed by cfg.seedSalt, so
/// retried cells re-draw while attempt 0 is reproducible.
[[nodiscard]] SweepPoint measureSweepPoint(const machines::Machine& m,
                                           ByteCount arrayBytes,
                                           const SweepConfig& cfg);

/// Store quantity name for the sweep's raw per-run draws (the capture
/// channel itself is the op name, "Triad").
inline constexpr const char* kSweepQuantity = "triad bandwidth";

}  // namespace nodebench::memlab
