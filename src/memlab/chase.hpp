#pragma once
/// \file chase.hpp
/// \brief Pointer-chase latency family: dependent-load ns-per-access and
/// clk-per-op across a geometric working-set grid.
///
/// The classic lat_mem_rd / lmbench experiment: one pinned core walks a
/// random-permutation linked list whose footprint sweeps the cache
/// ladder, and because every load depends on the previous one the
/// measured time per access is pure load-to-use latency — the latency
/// complement to the bandwidth story the paper's Table 4 tells. The
/// analytic model resolves each size against the machine's explicit
/// CacheHierarchy: the fraction of lines that spill past level ℓ pays
/// level ℓ+1's latency, giving the staircase curve the literature plots.
/// One grid point is one harness cell, so journals, stores, shards,
/// faults and tracing compose exactly as for the tables.

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "machines/machine.hpp"

namespace nodebench::memlab {

struct ChaseConfig {
  /// Geometric (power-of-two) working-set grid. 4 KiB sits inside every
  /// modeled L1d; 512 MiB is deep in DRAM on every machine.
  ByteCount minWorkingSet = ByteCount::kib(4);
  ByteCount maxWorkingSet = ByteCount::mib(512);
  /// Benchmark binary executions aggregated into mean ± sigma per point.
  int binaryRuns = 100;
  /// Retry-attempt salt from the cell harness (0 = attempt 0).
  std::uint64_t seedSalt = 0;
};

/// One measured grid point.
struct ChasePoint {
  ByteCount workingSet;
  Summary nsPerAccess;  ///< Dependent-load latency per access.
  Summary clkPerOp;     ///< Same, in core clocks (ns x coreClockGHz).
};

/// The grid the chase walks: working sets from minWorkingSet to
/// maxWorkingSet inclusive, doubling each step.
[[nodiscard]] std::vector<ByteCount> chaseGrid(const ChaseConfig& cfg);

/// The deterministic model truth: expected ns per dependent load for a
/// single pinned core chasing a uniform random permutation of
/// `workingSet` bytes. A single core owns each level's full instance
/// capacity (private levels trivially, shared levels because no other
/// core competes), so with capacities C_1 < ... < C_N and load-to-use
/// latencies t_1 < ... < t_N < t_mem:
///
///   ns(ws) = t_1 + sum_l max(0, 1 - C_l/ws) * (t_{l+1} - t_l)
///
/// — the max(0, 1 - C/ws) term is the fraction of a uniformly-accessed
/// working set that cannot be resident in a C-byte level, which pays the
/// next level's latency instead. Throws Error when the machine carries no
/// cache hierarchy (the family needs the ladder).
[[nodiscard]] double chaseNsPerAccessTruth(const machines::Machine& m,
                                           ByteCount workingSet);

/// Measures one grid point: the model truth above under the machine's
/// single-thread run-to-run noise, one multiplicative factor per binary
/// run (the same noise discipline as the BabelStream driver). Noise
/// streams are decorrelated per (machine, size) and perturbed by
/// cfg.seedSalt.
[[nodiscard]] ChasePoint measureChasePoint(const machines::Machine& m,
                                           ByteCount workingSet,
                                           const ChaseConfig& cfg);

/// Sample-capture channel the per-run ns-per-access draws land on.
inline constexpr const char* kChaseSampleChannel = "ns per access";

}  // namespace nodebench::memlab
