#include "memlab/sweep.hpp"

#include "babelstream/driver.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "core/parallel.hpp"
#include "trace/trace.hpp"

namespace nodebench::memlab {

std::vector<ByteCount> sweepGrid(const SweepConfig& cfg) {
  NB_EXPECTS(cfg.minArrayBytes.count() > 0);
  NB_EXPECTS(cfg.minArrayBytes <= cfg.maxArrayBytes);
  std::vector<ByteCount> grid;
  for (ByteCount size = cfg.minArrayBytes; size <= cfg.maxArrayBytes;
       size = size * 2ull) {
    grid.push_back(size);
  }
  return grid;
}

SweepPoint measureSweepPoint(const machines::Machine& m, ByteCount arrayBytes,
                             const SweepConfig& cfg) {
  NB_EXPECTS(arrayBytes.count() > 0);
  NB_EXPECTS(cfg.binaryRuns > 0);
  // The team every machine saturates with: all cores, bound, spread over
  // core places — the Table 1 combination that wins the "All" column on
  // every modeled system, so the sweep's DRAM plateau equals Table 4.
  ompenv::OmpConfig team;
  team.numThreads = m.coreCount();
  team.procBind = ompenv::ProcBind::Spread;
  team.places = ompenv::Places::Cores;
  babelstream::SimOmpBackend backend(m, team);
  babelstream::DriverConfig dcfg;
  dcfg.arrayBytes = arrayBytes;
  dcfg.binaryRuns = cfg.binaryRuns;
  // Decorrelate grid points: the driver folds only (seed, run, op) into
  // each draw, so without this mix every size would share one noise
  // stream and the rendered curve would wobble in lockstep.
  dcfg.seed ^= par::taskSeed(m.seed ^ 0x6d656d6c6162ull, arrayBytes.count()) ^
               cfg.seedSalt;
  const babelstream::OpResult r =
      babelstream::measureOne(backend, babelstream::StreamOp::Triad, dcfg);
  if (trace::TraceBuffer* t = trace::current()) {
    t->count("memlab.sweep_points");
  }
  return SweepPoint{arrayBytes, arrayBytes * 3ull, r.bandwidthGBps};
}

}  // namespace nodebench::memlab
