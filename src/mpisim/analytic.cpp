#include "mpisim/analytic.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <vector>

#include "trace/trace.hpp"

namespace nodebench::mpisim::analytic {

namespace {

/// -1 = follow the environment default; 0/1 = forced off/on.
std::atomic<int> g_fastPathOverride{-1};

bool envDefault() {
  static const bool enabled = [] {
    const char* e = std::getenv("NODEBENCH_SIMCORE_FASTPATH");
    if (e != nullptr && (std::strcmp(e, "0") == 0 ||
                         std::strcmp(e, "off") == 0 ||
                         std::strcmp(e, "false") == 0)) {
      return false;
    }
    return true;
  }();
  return enabled;
}

/// Mirror of the (file-private) rule in world.cpp: host pairs with host,
/// device pairs with the peer rank's bound device.
BufferSpace mirroredSpace(const BufferSpace& srcSpace,
                          const RankPlacement& peer) {
  if (srcSpace.kind == BufferSpace::Kind::Host) {
    return BufferSpace::host();
  }
  NB_EXPECTS_MSG(peer.gpu.has_value(),
                 "device-space message to a rank without a bound GPU");
  return BufferSpace::onDevice(*peer.gpu);
}

PathTiming directionPath(const machines::Machine& machine,
                         const std::optional<InterNodeParams>& network,
                         const RankPlacement& src, const RankPlacement& dst,
                         const BufferSpace& srcSpace,
                         const BufferSpace& dstSpace) {
  if (src.node != dst.node) {
    NB_EXPECTS_MSG(network.has_value(),
                   "multi-node placements require InterNodeParams");
    return resolveInterNodePath(machine, *network, src, dst, srcSpace,
                                dstSpace);
  }
  return resolvePath(machine, src, dst, srcSpace, dstSpace);
}

/// A blocking send captured at the point its sender suspends. For eager
/// messages the sender never suspends and `arrival` is the payload arrival
/// time; for rendezvous it is the RTS arrival and the sender's continuation
/// runs inside `completeBlocking` (exactly when the CTS unblocks it).
struct Pending {
  bool rendezvous = false;
  Duration arrival = Duration::zero();
};

/// The four-variable recurrence state of a two-rank exchange, mutated with
/// the same floating-point operations, in the same order, as
/// `Communicator::send/recv/isend/wait` under the virtual-time scheduler.
/// Rank clocks `t[r]` mirror `VirtualProcess` clocks; `chan[src]` mirrors
/// `MpiWorld::channelFree(src, dst)` — for two ranks there is exactly one
/// outbound channel per rank (the directed pair channel intra-node, the
/// source node's NIC inter-node), so indexing by source rank is exact.
struct TwoRank {
  PathTiming path[2];  ///< [0] = rank0 -> rank1, [1] = rank1 -> rank0.
  Duration t[2] = {Duration::zero(), Duration::zero()};
  Duration chan[2] = {Duration::zero(), Duration::zero()};
  /// Arrival times of posted-but-unconsumed isend payloads per direction
  /// (mailbox FIFO; the kernels never interleave tag streams within one
  /// direction, so order alone identifies the match).
  std::deque<Duration> inflight[2];

  /// Communicator::send up to the sender's suspension point.
  Pending postBlocking(int src, ByteCount size) {
    const PathTiming& p = path[src];
    t[src] += p.sendOverhead;
    if (size <= p.eagerThreshold) {
      const Duration start = max(t[src], chan[src]);
      Duration transfer = Duration::zero();
      if (size.count() > 0) {
        transfer = p.eagerBandwidth.transferTime(size);
      }
      chan[src] = start + transfer;
      return Pending{false, start + transfer + p.latency};
    }
    return Pending{true, t[src] + p.latency};  // RTS posted; sender blocks.
  }

  /// The matching Communicator::recv — plus, for rendezvous, the sender's
  /// CTS-to-bulk continuation it unblocks.
  void completeBlocking(int dst, const Pending& ps, ByteCount size) {
    const int src = 1 - dst;
    const PathTiming& p = path[src];
    if (!ps.rendezvous) {
      t[dst] = max(t[dst], ps.arrival);
      t[dst] += p.recvOverhead;
      return;
    }
    t[dst] = max(t[dst], ps.arrival);  // RTS in hand
    t[dst] += p.recvOverhead + p.sendOverhead;
    const Duration cts = t[dst] + p.latency;
    t[src] = max(t[src], cts);  // sender resumes on the CTS
    t[src] += p.recvOverhead;
    t[src] = max(t[src], chan[src]);
    t[src] += p.rendezvousBandwidth.transferTime(size);
    chan[src] = t[src];
    const Duration data = t[src] + p.latency;
    t[dst] = max(t[dst], data);
    t[dst] += p.recvOverhead;
  }

  /// Communicator::isend; returns the request's `ready` time and queues
  /// the payload arrival for a later waitRecv.
  Duration postIsend(int src, ByteCount size) {
    const PathTiming& p = path[src];
    t[src] += p.sendOverhead;
    const Duration start = max(t[src], chan[src]);
    Duration ready;
    Duration arrival;
    if (size <= p.eagerThreshold) {
      Duration transfer = Duration::zero();
      if (size.count() > 0) {
        transfer = p.eagerBandwidth.transferTime(size);
      }
      chan[src] = start + transfer;
      arrival = chan[src] + p.latency;
      ready = t[src];
    } else {
      const Duration handshake =
          p.sendOverhead + p.recvOverhead + p.latency * 2.0;
      const Duration transfer = p.rendezvousBandwidth.transferTime(size);
      chan[src] = start + handshake + transfer;
      arrival = chan[src] + p.latency;
      ready = chan[src];
    }
    inflight[src].push_back(arrival);
    return ready;
  }

  /// Communicator::wait on a send request.
  void waitSend(int rank, Duration ready) { t[rank] = max(t[rank], ready); }

  /// Communicator::wait on a receive request (FIFO match).
  void waitRecv(int dst) {
    const int src = 1 - dst;
    NB_EXPECTS_MSG(!inflight[src].empty(),
                   "waitRecv with no posted isend in flight");
    const Duration arrival = inflight[src].front();
    inflight[src].pop_front();
    t[dst] = max(t[dst], arrival);
    t[dst] += path[src].recvOverhead;
  }
};

TwoRank makeTwoRank(const machines::Machine& machine,
                    const RankPlacement& rankA, const RankPlacement& rankB,
                    const BufferSpace& spaceA, const BufferSpace& spaceB,
                    const std::optional<InterNodeParams>& network) {
  const BufferSpace mirrorA = mirroredSpace(spaceA, rankB);
  const BufferSpace mirrorB = mirroredSpace(spaceB, rankA);
  NB_EXPECTS_MSG(mirrorA == spaceB && mirrorB == spaceA,
                 "closed-form composition requires symmetric buffer spaces");
  TwoRank w;
  w.path[0] = directionPath(machine, network, rankA, rankB, spaceA, mirrorA);
  w.path[1] = directionPath(machine, network, rankB, rankA, spaceB, mirrorB);
  return w;
}

}  // namespace

bool fastPathEnabled() {
  const int forced = g_fastPathOverride.load(std::memory_order_relaxed);
  return forced < 0 ? envDefault() : forced != 0;
}

void setFastPathEnabled(bool on) {
  g_fastPathOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool fastPathEligible() {
  return fastPathEnabled() && trace::current() == nullptr;
}

Duration pingPongElapsed(const machines::Machine& machine,
                         const RankPlacement& rankA,
                         const RankPlacement& rankB,
                         const BufferSpace& spaceA, const BufferSpace& spaceB,
                         ByteCount messageSize, int iterations,
                         const std::optional<InterNodeParams>& network) {
  NB_EXPECTS(iterations > 0);
  TwoRank w = makeTwoRank(machine, rankA, rankB, spaceA, spaceB, network);
  for (int i = 0; i < iterations; ++i) {
    const Pending ping = w.postBlocking(0, messageSize);
    w.completeBlocking(1, ping, messageSize);
    const Pending pong = w.postBlocking(1, messageSize);
    w.completeBlocking(0, pong, messageSize);
  }
  return w.t[0];  // rank A started at virtual time zero
}

Duration windowedStreamElapsed(const machines::Machine& machine,
                               const RankPlacement& rankA,
                               const RankPlacement& rankB,
                               const BufferSpace& spaceA,
                               const BufferSpace& spaceB,
                               ByteCount messageSize, int windowSize,
                               int iterations, bool bidirectional,
                               const std::optional<InterNodeParams>& network) {
  NB_EXPECTS(windowSize > 0 && iterations > 0);
  NB_EXPECTS(messageSize.count() > 0);
  const ByteCount ack = ByteCount::bytes(4);
  TwoRank w = makeTwoRank(machine, rankA, rankB, spaceA, spaceB, network);
  std::vector<Duration> readyA;
  std::vector<Duration> readyB;
  for (int it = 0; it < iterations; ++it) {
    // Rank A posts its send window (irecv posts cost nothing).
    readyA.clear();
    for (int wi = 0; wi < windowSize; ++wi) {
      readyA.push_back(w.postIsend(0, messageSize));
    }
    if (bidirectional) {
      readyB.clear();
      for (int wi = 0; wi < windowSize; ++wi) {
        readyB.push_back(w.postIsend(1, messageSize));
      }
    }
    // Rank B's waitAll: its request list holds the irecvs first, then (in
    // bidirectional mode) its isends.
    for (int wi = 0; wi < windowSize; ++wi) {
      w.waitRecv(1);
    }
    if (bidirectional) {
      for (const Duration ready : readyB) {
        w.waitSend(1, ready);
      }
    }
    const Pending ackMsg = w.postBlocking(1, ack);
    // Rank A's waitAll: isends first, then the mirrored irecvs.
    for (const Duration ready : readyA) {
      w.waitSend(0, ready);
    }
    if (bidirectional) {
      for (int wi = 0; wi < windowSize; ++wi) {
        w.waitRecv(0);
      }
    }
    w.completeBlocking(0, ackMsg, ack);
  }
  return w.t[0];  // rank A started at virtual time zero
}

InterNodePairElapsed interNodePairElapsed(const machines::Machine& machine,
                                          const InterNodeParams& network,
                                          bool deviceBuffers,
                                          ByteCount messageSize,
                                          int iterations) {
  NB_EXPECTS(iterations > 0);
  // Mirrors makeTwoNodeWorld(m, /*pairs=*/1, ...): rank 0 on node 0 and
  // rank 1 on node 1, both on core 0 (and GPU 0 in device mode).
  RankPlacement rank0;
  RankPlacement rank1;
  rank1.node = 1;
  BufferSpace data = BufferSpace::host();
  if (deviceBuffers) {
    rank0.gpu = 0;
    rank1.gpu = 0;
    data = BufferSpace::onDevice(0);
  }
  const std::optional<InterNodeParams> net(network);
  TwoRank w = makeTwoRank(machine, rank0, rank1, data, data, net);
  // The barrier exchanges 0-byte host-space messages on the same NIC
  // channels as the data phases, so only the path pair differs.
  const TwoRank hostW = makeTwoRank(machine, rank0, rank1,
                                    BufferSpace::host(), BufferSpace::host(),
                                    net);
  const PathTiming dataPath0 = w.path[0];
  const PathTiming dataPath1 = w.path[1];
  const ByteCount none{0};
  const auto barrier = [&] {
    // Rank 0: recv(1) then send(1); rank 1: send(0) then recv(0).
    w.path[0] = hostW.path[0];
    w.path[1] = hostW.path[1];
    const Pending arrive = w.postBlocking(1, none);
    w.completeBlocking(0, arrive, none);
    const Pending release = w.postBlocking(0, none);
    w.completeBlocking(1, release, none);
    w.path[0] = dataPath0;
    w.path[1] = dataPath1;
  };

  barrier();

  // Phase 1: latency ping-pong (rank 0 is the pinger).
  const Duration latStart = w.t[0];
  for (int i = 0; i < iterations; ++i) {
    const Pending ping = w.postBlocking(0, messageSize);
    w.completeBlocking(1, ping, messageSize);
    const Pending pong = w.postBlocking(1, messageSize);
    w.completeBlocking(0, pong, messageSize);
  }
  const Duration latencyElapsed = w.t[0] - latStart;

  barrier();

  // Phase 2: windowed 64 KiB stream closed by a 4-byte ack per window.
  constexpr int kWindow = 32;
  const ByteCount streamSize = ByteCount::kib(64);
  const ByteCount ack = ByteCount::bytes(4);
  const Duration bwStart = w.t[0];
  std::vector<Duration> readyA;
  for (int it = 0; it < iterations / 10 + 1; ++it) {
    readyA.clear();
    for (int wi = 0; wi < kWindow; ++wi) {
      readyA.push_back(w.postIsend(0, streamSize));
    }
    for (int wi = 0; wi < kWindow; ++wi) {
      w.waitRecv(1);
    }
    const Pending ackMsg = w.postBlocking(1, ack);
    for (const Duration ready : readyA) {
      w.waitSend(0, ready);
    }
    w.completeBlocking(0, ackMsg, ack);
  }
  return InterNodePairElapsed{latencyElapsed, w.t[0] - bwStart};
}

}  // namespace nodebench::mpisim::analytic
