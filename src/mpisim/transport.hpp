#pragma once
/// \file transport.hpp
/// \brief Timing model of one message path between two ranks.
///
/// A `PathTiming` is resolved once per (source rank, destination rank,
/// buffer spaces) tuple and supplies the constants of the two intra-node
/// protocols:
///  - *eager* (size <= threshold): one-way time = overhead + latency +
///    size/eagerBandwidth — this is the regime every latency table of the
///    paper reports;
///  - *rendezvous* (size > threshold): an RTS/CTS handshake (two extra
///    path traversals) followed by a single-copy transfer at
///    rendezvousBandwidth.
///
/// Host paths derive from HostMpiParams and the core-to-core relationship
/// (same NUMA / cross NUMA / cross socket / KNL mesh distance). Device
/// paths derive from DeviceMpiParams plus the topological GPU route —
/// sub-microsecond GPU-RMA on the MI250X systems, tens of microseconds of
/// host staging on the V100/A100 systems, exactly the contrast Table 5
/// reports.

#include <optional>

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "topo/topology.hpp"

namespace nodebench::mpisim {

/// Where a rank's message buffer lives.
struct BufferSpace {
  enum class Kind { Host, Device };
  Kind kind = Kind::Host;
  int device = -1;  ///< Visible device index when kind == Device.

  [[nodiscard]] static BufferSpace host() { return {Kind::Host, -1}; }
  [[nodiscard]] static BufferSpace onDevice(int d) { return {Kind::Device, d}; }
  friend constexpr bool operator==(const BufferSpace&,
                                   const BufferSpace&) = default;
};

/// Placement of one rank on the cluster: node index (0 for single-node
/// worlds, the paper's scope) plus the core / GPU within that node.
/// Every node of a simulated cluster is an identical copy of the machine.
struct RankPlacement {
  topo::CoreId core;
  std::optional<int> gpu;  ///< Bound accelerator (for device buffers).
  int node = 0;            ///< Cluster node hosting the rank.
};

/// Inter-node interconnect parameters (the future-work extension of the
/// paper: injection bandwidth, per-hop latency, topology radix). Used by
/// MpiWorld when ranks sit on different nodes.
struct InterNodeParams {
  std::string name;              ///< e.g. "Slingshot-11".
  Duration nicOverhead;          ///< Per-message software+NIC cost per side.
  Duration perHopLatency;        ///< Per switch traversal.
  Bandwidth injectionBandwidth;  ///< Per-node NIC limit (shared by ranks).
  Bandwidth linkBandwidth;       ///< Per network link.
  int switchRadix = 16;          ///< Nodes per leaf switch (2-level tree).
  ByteCount eagerThreshold = ByteCount::kib(8);

  // --- fault injection (inert at the defaults) ---------------------------
  /// Per-message Bernoulli loss probability of the fabric; each lost copy
  /// is retransmitted after a capped exponential backoff, adding delay
  /// instead of losing the message. Draws come from a counter-based stream
  /// seeded by `faultSeed` and the (source, destination, sequence) message
  /// identity, so they are deterministic and scheduling-independent.
  double packetLossRate = 0.0;
  Duration retransmitTimeout = Duration::microseconds(10.0);  ///< First backoff.
  Duration retransmitCap = Duration::microseconds(160.0);     ///< Backoff ceiling.
  int maxRetransmits = 16;       ///< Give up (throw) beyond this many.
  std::uint64_t faultSeed = 0;   ///< Base seed of the loss-draw stream.

  /// Switch traversals between two nodes: 1 through the shared leaf
  /// switch, 3 across the spine (leaf-spine-leaf).
  [[nodiscard]] int hops(int nodeA, int nodeB) const {
    NB_EXPECTS(switchRadix > 0);
    return nodeA / switchRadix == nodeB / switchRadix ? 1 : 3;
  }
};

/// Resolved timing constants of one direction of one path.
struct PathTiming {
  Duration sendOverhead;   ///< Software cost on the sending side.
  Duration recvOverhead;   ///< Software cost on the receiving side.
  Duration latency;        ///< One-way wire/fabric latency.
  Bandwidth eagerBandwidth;
  Bandwidth rendezvousBandwidth;
  ByteCount eagerThreshold;

  /// One-way eager message time (paper's "MPI latency" regime).
  [[nodiscard]] Duration eagerOneWay(ByteCount size) const;
};

/// Resolves the path between two ranks for the given buffer spaces.
/// Preconditions: distinct placements; device buffers require the machine
/// to have device MPI parameters and the ranks to have bound GPUs
/// matching the buffer spaces.
[[nodiscard]] PathTiming resolvePath(const machines::Machine& machine,
                                     const RankPlacement& src,
                                     const RankPlacement& dst,
                                     const BufferSpace& srcSpace,
                                     const BufferSpace& dstSpace);

/// Inter-node variant: when the ranks live on different nodes the path is
/// the network, not the node fabric. Device buffers add the machine's
/// device-MPI base cost (GPU <-> NIC staging / RMA setup).
/// Precondition: src.node != dst.node.
[[nodiscard]] PathTiming resolveInterNodePath(
    const machines::Machine& machine, const InterNodeParams& network,
    const RankPlacement& src, const RankPlacement& dst,
    const BufferSpace& srcSpace, const BufferSpace& dstSpace);

}  // namespace nodebench::mpisim
