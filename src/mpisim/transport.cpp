#include "mpisim/transport.hpp"

namespace nodebench::mpisim {

using topo::CpuPath;
using topo::GpuId;

Duration PathTiming::eagerOneWay(ByteCount size) const {
  Duration t = sendOverhead + latency + recvOverhead;
  if (size.count() > 0) {
    t += eagerBandwidth.transferTime(size);
  }
  return t;
}

namespace {

/// Host wire latency between two cores.
Duration hostHopLatency(const machines::Machine& machine, topo::CoreId a,
                        topo::CoreId b) {
  const machines::HostMpiParams& p = machine.hostMpi;
  const CpuPath path = machine.topology.cpuPath(a, b);
  const auto& coreA = machine.topology.core(a);
  const auto& coreB = machine.topology.core(b);
  if (coreA.mesh && coreB.mesh) {
    // KNL: base cost plus per-tile-hop mesh traversal.
    return p.meshBase +
           p.meshPerHop * static_cast<double>(path.meshDistance);
  }
  if (!path.sameSocket) {
    return p.crossSocketHop;
  }
  return path.sameNuma ? p.sameNumaHop : p.crossNumaHop;
}

PathTiming hostPath(const machines::Machine& machine, const RankPlacement& src,
                    const RankPlacement& dst) {
  const machines::HostMpiParams& p = machine.hostMpi;
  PathTiming t;
  t.sendOverhead = p.softwareOverhead * 0.5;
  t.recvOverhead = p.softwareOverhead * 0.5;
  t.latency = hostHopLatency(machine, src.core, dst.core);
  t.eagerBandwidth = p.eagerBandwidth;
  t.rendezvousBandwidth = p.rendezvousBandwidth;
  t.eagerThreshold = p.eagerThreshold;
  return t;
}

PathTiming devicePath(const machines::Machine& machine,
                      const RankPlacement& src, const RankPlacement& dst,
                      const BufferSpace& srcSpace,
                      const BufferSpace& dstSpace) {
  NB_EXPECTS_MSG(machine.deviceMpi.has_value(),
                 "device buffers on a machine without device MPI support");
  const machines::DeviceMpiParams& dp = *machine.deviceMpi;

  // The memoized routes live as long as the topology, so a pointer avoids
  // copying the hop vector on every message.
  const topo::Route* route = nullptr;
  const topo::NodeTopology& topo = machine.topology;
  if (srcSpace.kind == BufferSpace::Kind::Device &&
      dstSpace.kind == BufferSpace::Kind::Device) {
    NB_EXPECTS_MSG(src.gpu && dst.gpu, "ranks must have bound GPUs");
    NB_EXPECTS(srcSpace.device == *src.gpu && dstSpace.device == *dst.gpu);
    NB_EXPECTS_MSG(srcSpace.device != dstSpace.device,
                   "device-to-device MPI requires two distinct GPUs");
    route = &topo.routeGpuToGpu(GpuId{srcSpace.device},
                                GpuId{dstSpace.device});
  } else if (srcSpace.kind == BufferSpace::Kind::Device) {
    const GpuId g{srcSpace.device};
    route = &topo.routeHostToGpu(topo.core(dst.core).socket, g);
  } else {
    const GpuId g{dstSpace.device};
    route = &topo.routeHostToGpu(topo.core(src.core).socket, g);
  }

  PathTiming t;
  t.sendOverhead = dp.baseOneWay * 0.5;
  t.recvOverhead = dp.baseOneWay * 0.5;
  t.latency = route->latency;
  // Large-message device transfers stream over the physical route; the
  // eager regime shares the same fabric (the paper's sizes are tiny).
  t.eagerBandwidth = route->bottleneck;
  t.rendezvousBandwidth = route->bottleneck;
  t.eagerThreshold = machine.hostMpi.eagerThreshold;
  return t;
}

}  // namespace

PathTiming resolvePath(const machines::Machine& machine,
                       const RankPlacement& src, const RankPlacement& dst,
                       const BufferSpace& srcSpace,
                       const BufferSpace& dstSpace) {
  NB_EXPECTS_MSG(src.node == dst.node,
                 "resolvePath is intra-node; use resolveInterNodePath");
  const bool anyDevice = srcSpace.kind == BufferSpace::Kind::Device ||
                         dstSpace.kind == BufferSpace::Kind::Device;
  if (anyDevice) {
    return devicePath(machine, src, dst, srcSpace, dstSpace);
  }
  return hostPath(machine, src, dst);
}

PathTiming resolveInterNodePath(const machines::Machine& machine,
                                const InterNodeParams& network,
                                const RankPlacement& src,
                                const RankPlacement& dst,
                                const BufferSpace& srcSpace,
                                const BufferSpace& dstSpace) {
  NB_EXPECTS(src.node != dst.node);
  PathTiming t;
  t.sendOverhead = machine.hostMpi.softwareOverhead * 0.5 +
                   network.nicOverhead;
  t.recvOverhead = machine.hostMpi.softwareOverhead * 0.5 +
                   network.nicOverhead;
  t.latency = network.perHopLatency *
              static_cast<double>(network.hops(src.node, dst.node));
  const Bandwidth wire =
      min(network.injectionBandwidth, network.linkBandwidth);
  t.eagerBandwidth = wire;
  t.rendezvousBandwidth = wire;
  t.eagerThreshold = network.eagerThreshold;

  // Device buffers cross the GPU <-> NIC path on each device side.
  const auto deviceSide = [&](const BufferSpace& space) {
    if (space.kind != BufferSpace::Kind::Device) {
      return Duration::zero();
    }
    NB_EXPECTS_MSG(machine.deviceMpi.has_value(),
                   "device buffers on a machine without device MPI support");
    return machine.deviceMpi->baseOneWay * 0.5;
  };
  t.sendOverhead += deviceSide(srcSpace);
  t.recvOverhead += deviceSide(dstSpace);
  return t;
}

}  // namespace nodebench::mpisim
