#include "mpisim/trace.hpp"

#include <cstdio>

#include "core/table.hpp"

namespace nodebench::mpisim {

std::string_view traceKindName(TraceRecord::Kind kind) {
  switch (kind) {
    case TraceRecord::Kind::Compute: return "compute";
    case TraceRecord::Kind::Send: return "send";
    case TraceRecord::Kind::Recv: return "recv";
    case TraceRecord::Kind::SendPost: return "isend";
    case TraceRecord::Kind::WaitRecv: return "wait-recv";
    case TraceRecord::Kind::WaitSend: return "wait-send";
  }
  return "?";
}

Duration Tracer::totalFor(int rank, TraceRecord::Kind kind) const {
  Duration total = Duration::zero();
  for (const TraceRecord& r : records_) {
    if (r.rank == rank && r.kind == kind) {
      total += r.end - r.begin;
    }
  }
  return total;
}

std::string Tracer::toChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[256];
  for (const TraceRecord& r : records_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"peer\":%d,\"bytes\":%llu,"
        "\"tag\":%d}}",
        std::string(traceKindName(r.kind)).c_str(), r.rank, r.begin.us(),
        (r.end - r.begin).us(), r.peer,
        static_cast<unsigned long long>(r.bytes), r.tag);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::summaryTable(int ranks) const {
  NB_EXPECTS(ranks > 0);
  Table t({"Rank", "compute (us)", "send (us)", "recv (us)", "isend (us)",
           "wait (us)"});
  t.setTitle("Per-rank virtual time by operation kind");
  for (int r = 0; r < ranks; ++r) {
    const double wait = totalFor(r, TraceRecord::Kind::WaitRecv).us() +
                        totalFor(r, TraceRecord::Kind::WaitSend).us();
    t.addRow({std::to_string(r),
              formatFixed(totalFor(r, TraceRecord::Kind::Compute).us(), 1),
              formatFixed(totalFor(r, TraceRecord::Kind::Send).us(), 1),
              formatFixed(totalFor(r, TraceRecord::Kind::Recv).us(), 1),
              formatFixed(totalFor(r, TraceRecord::Kind::SendPost).us(), 1),
              formatFixed(wait, 1)});
  }
  return t.renderAscii();
}

}  // namespace nodebench::mpisim
