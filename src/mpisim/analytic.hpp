#pragma once
/// \file analytic.hpp
/// \brief Closed-form composition of the two-rank transfer kernels that
/// dominate the benchmark suite (DESIGN.md §12).
///
/// When no fault plan, channel contention, or tracing session can observe
/// the event-by-event interleaving, a two-rank exchange is a straight-line
/// recurrence over four pieces of state: each rank's virtual clock and each
/// direction's channel-free time. This module evaluates those recurrences
/// directly — replicating `Communicator::send/recv/isend/wait` *operation
/// by operation*, in the same floating-point order — so the composed result
/// is bit-identical to running the virtual-time scheduler, at a tiny
/// fraction of the cost (no fibers, no mailboxes, no heap traffic).
///
/// Eligibility (enforced by callers via `fastPathEligible()` plus their own
/// kernel-specific checks; the `simcore` conformance suite locks in the
/// bit-identity claim):
///  - exactly two ranks, symmetric buffer spaces (host/host or each rank's
///    own bound device — the only shapes the paper's benchmarks use);
///  - no packet-loss fault plan (`lossDelay` would consume per-pair RNG
///    sequence numbers and inject backoffs);
///  - no active tracing session (`trace::current() == nullptr`): the event
///    path emits per-op Send/Recv/LinkOccupancy events that the closed form
///    intentionally skips;
///  - no virtual-time watchdog (a `TimeoutError` can only be raised by the
///    scheduler the fast path bypasses).
///
/// The knob: `NODEBENCH_SIMCORE_FASTPATH=0` disables the fast path globally
/// (read once); `setFastPathEnabled()` overrides programmatically (used by
/// the conformance tests to force both paths and compare).

#include <optional>

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "mpisim/transport.hpp"

namespace nodebench::mpisim::analytic {

/// Whether the closed-form fast path is enabled at all (env knob and/or
/// programmatic override). Does not consider per-call eligibility.
[[nodiscard]] bool fastPathEnabled();

/// Programmatic override of the env default (thread-safe, process-wide).
/// Conformance tests and benchmarks use this to pin a specific path.
void setFastPathEnabled(bool on);

/// True when a closed-form composition may replace an event-by-event run
/// right now: enabled, and no tracing session is active on this thread.
/// Callers add their own kernel checks (fault plan, contention, watchdog).
[[nodiscard]] bool fastPathEligible();

/// Elapsed virtual time on rank A for `iterations` blocking ping-pong
/// round trips of `messageSize` (the `osu_latency` truth kernel, exactly
/// as `LatencyBenchmark::truthOneWay` programs it). Handles both the eager
/// and rendezvous protocol regimes. `network` must be set when the two
/// placements live on different nodes.
[[nodiscard]] Duration pingPongElapsed(
    const machines::Machine& machine, const RankPlacement& rankA,
    const RankPlacement& rankB, const BufferSpace& spaceA,
    const BufferSpace& spaceB, ByteCount messageSize, int iterations,
    const std::optional<InterNodeParams>& network = std::nullopt);

/// Elapsed virtual time on rank A for the windowed-stream kernel
/// (`osu_bw` / `osu_bibw` truth in `BandwidthBenchmark::truthGBps`):
/// `iterations` windows of `windowSize` isends (mirrored when
/// `bidirectional`), each closed by a 4-byte ack from rank B.
[[nodiscard]] Duration windowedStreamElapsed(
    const machines::Machine& machine, const RankPlacement& rankA,
    const RankPlacement& rankB, const BufferSpace& spaceA,
    const BufferSpace& spaceB, ByteCount messageSize, int windowSize,
    int iterations, bool bidirectional,
    const std::optional<InterNodeParams>& network = std::nullopt);

/// Rank 0's measured elapsed times for the single-pair inter-node kernel
/// in `netsim::measureInterNode` (barrier; latency ping-pong; barrier;
/// windowed 64 KiB stream with 4-byte acks). Only valid for one pair —
/// with more, NIC sharing couples the pairs and the event path must run.
struct InterNodePairElapsed {
  Duration latencyElapsed;  ///< Phase-1 ping-pong elapsed on rank 0.
  Duration streamElapsed;   ///< Phase-2 windowed-stream elapsed on rank 0.
};
[[nodiscard]] InterNodePairElapsed interNodePairElapsed(
    const machines::Machine& machine, const InterNodeParams& network,
    bool deviceBuffers, ByteCount messageSize, int iterations);

}  // namespace nodebench::mpisim::analytic
