#pragma once
/// \file trace.hpp
/// \brief Timeline tracing of simulated MPI executions.
///
/// When a Tracer is attached to an MpiWorld, every communicator operation
/// records its [begin, end] interval in virtual time. The trace exports
/// to the Chrome trace-event JSON format (chrome://tracing, Perfetto),
/// giving the simulated runs the same timeline-debugging workflow real
/// MPI tools provide.

#include <string>
#include <vector>

#include "core/units.hpp"

namespace nodebench::mpisim {

struct TraceRecord {
  enum class Kind { Compute, Send, Recv, SendPost, WaitRecv, WaitSend };
  int rank = -1;
  Kind kind = Kind::Compute;
  Duration begin;
  Duration end;
  int peer = -1;           ///< -1 for compute phases.
  std::uint64_t bytes = 0;
  int tag = 0;
};

[[nodiscard]] std::string_view traceKindName(TraceRecord::Kind kind);

class Tracer {
 public:
  void record(const TraceRecord& r) { records_.push_back(r); }
  void clear() { records_.clear(); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  /// Total time spent per kind on one rank (trace analytics).
  [[nodiscard]] Duration totalFor(int rank, TraceRecord::Kind kind) const;

  /// Chrome trace-event JSON: one complete ("X") event per record,
  /// tid = rank, timestamps in microseconds of virtual time.
  [[nodiscard]] std::string toChromeJson() const;

  /// Per-rank time-per-kind summary rendered as an ASCII table
  /// (microseconds). `ranks` is the number of rank rows to emit.
  [[nodiscard]] std::string summaryTable(int ranks) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace nodebench::mpisim
