#include "mpisim/world.hpp"

#include <algorithm>
#include <string>

#include "core/rng.hpp"

namespace nodebench::mpisim {

namespace {

constexpr int kBarrierTag = -4711;
constexpr int kBcastTag = -4712;
constexpr int kReduceTag = -4713;
constexpr int kAllreduceTag = -4714;
constexpr int kAllgatherTag = -4715;
constexpr int kAlltoallTag = -4716;

/// Combine rate of reduction arithmetic (bytes per nanosecond): reduction
/// collectives pay size/this per combine step in addition to transfers.
constexpr double kCombineBytesPerNs = 10.0;

/// The receiver's buffer space mirrors the sender's kind: host pairs with
/// host, device pairs with the peer rank's bound device. This matches
/// every benchmark in the paper (both OSU modes use symmetric buffers).
BufferSpace mirroredSpace(const BufferSpace& srcSpace,
                          const RankPlacement& peer) {
  if (srcSpace.kind == BufferSpace::Kind::Host) {
    return BufferSpace::host();
  }
  NB_EXPECTS_MSG(peer.gpu.has_value(),
                 "device-space message to a rank without a bound GPU");
  return BufferSpace::onDevice(*peer.gpu);
}

}  // namespace

MpiWorld::MpiWorld(const machines::Machine& machine,
                   std::vector<RankPlacement> placements,
                   std::optional<InterNodeParams> network)
    : machine_(&machine),
      placements_(std::move(placements)),
      network_(std::move(network)),
      traceSink_(trace::current()) {
  NB_EXPECTS_MSG(placements_.size() >= 2, "an MPI world needs >= 2 ranks");
  for (const RankPlacement& p : placements_) {
    NB_EXPECTS(p.core.value >= 0 &&
               p.core.value < machine.topology.coreCount());
    if (p.gpu) {
      NB_EXPECTS(*p.gpu >= 0 && *p.gpu < machine.topology.gpuCount());
    }
    NB_EXPECTS(p.node >= 0);
    NB_EXPECTS_MSG(p.node == 0 || network_.has_value(),
                   "multi-node placements require InterNodeParams");
  }
}

PathTiming MpiWorld::pathBetween(int src, int dst,
                                 const BufferSpace& srcSpace,
                                 const BufferSpace& dstSpace) const {
  const RankPlacement& a = placements_[src];
  const RankPlacement& b = placements_[dst];
  if (a.node != b.node) {
    return resolveInterNodePath(*machine_, *network_, a, b, srcSpace,
                                dstSpace);
  }
  return resolvePath(*machine_, a, b, srcSpace, dstSpace);
}

void MpiWorld::run(const RankFn& fn) {
  NB_EXPECTS(fn != nullptr);
  // The SPMD path used by every measurement loop builds its process
  // closures over the one `fn` directly. It used to materialize
  // std::vector<RankFn>(N, fn) first — N copies of a std::function whose
  // captured state usually exceeds the small-buffer optimization, i.e. N
  // heap allocations per run(), multiplied by every binary repetition of
  // every benchmark. The closures borrow `fn`, which outlives
  // scheduler_.run() below.
  resetRunState();
  std::vector<sim::VirtualTimeScheduler::ProcessFn> procs;
  procs.reserve(placements_.size());
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    procs.push_back([this, i, &fn](sim::VirtualProcess& proc) {
      Communicator comm(*this, proc, static_cast<int>(i));
      fn(comm);
    });
  }
  scheduler_.run(procs);
}

void MpiWorld::runEach(const std::vector<RankFn>& fns) {
  NB_EXPECTS(fns.size() == placements_.size());
  resetRunState();
  std::vector<sim::VirtualTimeScheduler::ProcessFn> procs;
  procs.reserve(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    procs.push_back([this, i, &fns](sim::VirtualProcess& proc) {
      Communicator comm(*this, proc, static_cast<int>(i));
      fns[i](comm);
    });
  }
  scheduler_.run(procs);
}

void MpiWorld::resetRunState() {
  mailboxes_.assign(placements_.size(), Mailbox{});
  channels_.assign(placements_.size() * placements_.size(),
                   Duration::zero());
  int maxNode = 0;
  for (const RankPlacement& p : placements_) {
    maxNode = std::max(maxNode, p.node);
  }
  nodeInjection_.assign(static_cast<std::size_t>(maxNode) + 1,
                        Duration::zero());
  pairSeq_.assign(placements_.size() * placements_.size(), 0);
  retransmits_ = 0;
  nextRtsId_ = 1;
}

bool MpiWorld::tryMatch(int myRank, int source, int tag, MsgKind kind,
                        Message& out) {
  auto& box = mailboxes_[myRank].messages;
  const auto it = std::find_if(box.begin(), box.end(), [&](const Message& m) {
    return m.source == source && m.tag == tag && m.kind == kind;
  });
  if (it == box.end()) {
    return false;
  }
  out = *it;
  box.erase(it);
  return true;
}

Duration MpiWorld::lossDelay(int src, int dst, Duration base) {
  if (!network_ || network_->packetLossRate <= 0.0 || !interNode(src, dst)) {
    return Duration::zero();
  }
  const InterNodeParams& net = *network_;
  NB_EXPECTS(net.packetLossRate < 1.0);
  NB_EXPECTS(net.maxRetransmits >= 1);
  NB_EXPECTS(net.retransmitTimeout > Duration::zero());
  const std::size_t pair =
      static_cast<std::size_t>(src) * placements_.size() +
      static_cast<std::size_t>(dst);
  // One sequence number per original message; each transmission attempt
  // draws from its own SplitMix64 stream, so the draw depends only on the
  // message identity — never on scheduling or other pairs' traffic.
  const std::uint64_t seq = pairSeq_[pair]++;
  SplitMix64 draws(net.faultSeed ^
                   (0x9e3779b97f4a7c15ull * (seq + 1) +
                    0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(src) +
                    0x94d049bb133111ebull * static_cast<std::uint64_t>(dst)));
  Duration delay = Duration::zero();
  Duration backoff = net.retransmitTimeout;
  for (int attempt = 0;; ++attempt) {
    const double u =
        static_cast<double>(draws.next() >> 11) * 0x1.0p-53;
    if (u >= net.packetLossRate) {
      return delay;  // this copy got through
    }
    if (attempt + 1 >= net.maxRetransmits) {
      throw Error("inter-node message " + std::to_string(src) + "->" +
                  std::to_string(dst) + " lost after " +
                  std::to_string(net.maxRetransmits) +
                  " transmission attempts (packet loss rate " +
                  std::to_string(net.packetLossRate) + ")");
    }
    ++retransmits_;
    if (traceSink_ != nullptr) {
      // The lost copy went out at base+delay and its backoff runs until
      // the resend — the instant Retransmit event each Loss pairs with.
      const int srcNode = placements_[src].node;
      const int dstNode = placements_[dst].node;
      traceSink_->event(trace::Event{trace::Category::Loss,
                                     trace::ActorKind::Node, srcNode,
                                     dstNode, base + delay, backoff, 0});
      traceSink_->event(trace::Event{
          trace::Category::Retransmit, trace::ActorKind::Node, srcNode,
          dstNode, base + delay + backoff, Duration::zero(), 0});
      traceSink_->count("mpisim.retransmits");
    }
    delay += backoff;
    backoff = min(backoff * 2.0, net.retransmitCap);
  }
}

void MpiWorld::emitLinkEvent(int src, int dst, Duration start,
                             Duration end) {
  if (traceSink_ == nullptr || end <= start) {
    return;
  }
  if (interNode(src, dst)) {
    traceSink_->event(trace::Event{
        trace::Category::LinkOccupancy, trace::ActorKind::Node,
        placements_[src].node, placements_[dst].node, start, end - start,
        0});
    return;
  }
  traceSink_->event(trace::Event{trace::Category::LinkOccupancy,
                                 trace::ActorKind::Link, src * size() + dst,
                                 dst, start, end - start, 0});
}

Duration& MpiWorld::channelFree(int src, int dst) {
  if (interNode(src, dst)) {
    // All inter-node traffic leaving one node shares its NIC.
    return nodeInjection_[placements_[src].node];
  }
  return channels_[static_cast<std::size_t>(src) * placements_.size() + dst];
}

int Communicator::size() const { return world_->size(); }

void Communicator::trace(TraceRecord::Kind kind, Duration begin, int peer,
                         std::uint64_t bytes, int tag) {
  if (world_->tracer_ == nullptr) {
    return;
  }
  world_->tracer_->record(TraceRecord{rank_, kind, begin, now(), peer,
                                      bytes, tag});
}

void Communicator::emitRankEvent(trace::Category category, Duration begin,
                                 int peer, std::uint64_t bytes) {
  trace::TraceBuffer* tb = world_->traceSink_;
  if (tb == nullptr) {
    return;
  }
  // Per rank, ops are recorded in execution order with begin = the op's
  // entry time, so rank-lane events are monotone in virtual time (an
  // invariant the trace property suite asserts).
  tb->event(trace::Event{category, trace::ActorKind::Rank, rank_, peer,
                         begin, now() - begin, bytes});
}

void Communicator::send(int dest, int tag, ByteCount size,
                        BufferSpace space) {
  MpiWorld& w = *world_;
  NB_EXPECTS(dest >= 0 && dest < w.size());
  NB_EXPECTS_MSG(dest != rank_, "self-sends are not modelled");
  const Duration traceBegin = now();
  const RankPlacement& peer = w.placements_[dest];
  const BufferSpace dstSpace = mirroredSpace(space, peer);
  const PathTiming path = w.pathBetween(rank_, dest, space, dstSpace);

  proc_->advance(path.sendOverhead);

  if (size <= path.eagerThreshold) {
    Duration& chan = w.channelFree(rank_, dest);
    const Duration start = max(now(), chan);
    Duration transfer = Duration::zero();
    if (size.count() > 0) {
      transfer = path.eagerBandwidth.transferTime(size);
    }
    // Lost copies keep the channel (the NIC, for inter-node pairs) busy
    // through their backoff-and-resend cycles.
    transfer += w.lossDelay(rank_, dest, start);
    chan = start + transfer;
    w.emitLinkEvent(rank_, dest, start, chan);
    w.mailboxes_[dest].messages.push_back(
        MpiWorld::Message{rank_, tag, MpiWorld::MsgKind::Eager, size,
                          start + transfer + path.latency, 0});
    proc_->wake(dest);
    trace(TraceRecord::Kind::Send, traceBegin, dest, size.count(), tag);
    emitRankEvent(trace::Category::Send, traceBegin, dest, size.count());
    return;
  }

  // Rendezvous: RTS -> (wait for CTS) -> bulk data.
  const std::uint64_t rtsId = w.nextRtsId_++;
  w.mailboxes_[dest].messages.push_back(MpiWorld::Message{
      rank_, tag, MpiWorld::MsgKind::Rts, size, now() + path.latency, rtsId});
  proc_->wake(dest);

  MpiWorld::Message cts;
  proc_->blockUntil([&] {
    return w.tryMatch(rank_, dest, tag, MpiWorld::MsgKind::Cts, cts);
  });
  NB_ENSURES_MSG(cts.rtsId == rtsId, "rendezvous handshake out of order");
  proc_->advanceTo(cts.arrival);
  proc_->advance(path.recvOverhead);  // processing the CTS costs software time

  proc_->advanceTo(max(now(), w.channelFree(rank_, dest)));
  const Duration bulkStart = now();
  // A blocking sender sits through any retransmit backoffs of the bulk
  // transfer (its buffer is pinned until the copy drains).
  proc_->advance(path.rendezvousBandwidth.transferTime(size) +
                 w.lossDelay(rank_, dest, bulkStart));
  w.channelFree(rank_, dest) = now();
  w.emitLinkEvent(rank_, dest, bulkStart, now());
  w.mailboxes_[dest].messages.push_back(MpiWorld::Message{
      rank_, tag, MpiWorld::MsgKind::Data, size, now() + path.latency, rtsId});
  proc_->wake(dest);
  trace(TraceRecord::Kind::Send, traceBegin, dest, size.count(), tag);
  emitRankEvent(trace::Category::Send, traceBegin, dest, size.count());
}

void Communicator::recv(int source, int tag, ByteCount size,
                        BufferSpace space) {
  MpiWorld& w = *world_;
  NB_EXPECTS(source >= 0 && source < w.size());
  NB_EXPECTS_MSG(source != rank_, "self-receives are not modelled");
  const Duration traceBegin = now();
  const RankPlacement& peer = w.placements_[source];
  // Constants of the reverse control path (CTS) match the forward path by
  // symmetry of the transport model.
  const BufferSpace peerSpace = mirroredSpace(space, peer);
  const PathTiming path = w.pathBetween(source, rank_, peerSpace, space);

  // Either an eager payload or a rendezvous RTS can arrive first; match
  // whichever the sender chose for this size.
  MpiWorld::Message msg;
  proc_->blockUntil([&] {
    return w.tryMatch(rank_, source, tag, MpiWorld::MsgKind::Eager, msg) ||
           w.tryMatch(rank_, source, tag, MpiWorld::MsgKind::Rts, msg);
  });
  NB_EXPECTS_MSG(msg.size <= size, "matched message exceeds receive buffer");

  if (msg.kind == MpiWorld::MsgKind::Eager) {
    proc_->advanceTo(msg.arrival);
    proc_->advance(path.recvOverhead);
    trace(TraceRecord::Kind::Recv, traceBegin, source, msg.size.count(), tag);
    emitRankEvent(trace::Category::Recv, traceBegin, source,
                  msg.size.count());
    return;
  }

  // Rendezvous: processing the RTS and posting the CTS both cost software
  // time — this handshake overhead is why real MPI latency curves step up
  // at the eager threshold even though the rendezvous copy path is faster
  // per byte.
  proc_->advanceTo(msg.arrival);
  proc_->advance(path.recvOverhead + path.sendOverhead);
  w.mailboxes_[source].messages.push_back(
      MpiWorld::Message{rank_, tag, MpiWorld::MsgKind::Cts, ByteCount{0},
                        now() + path.latency, msg.rtsId});
  proc_->wake(source);

  MpiWorld::Message data;
  proc_->blockUntil([&] {
    return w.tryMatch(rank_, source, tag, MpiWorld::MsgKind::Data, data);
  });
  NB_ENSURES_MSG(data.rtsId == msg.rtsId, "rendezvous data out of order");
  proc_->advanceTo(data.arrival);
  proc_->advance(path.recvOverhead);
  trace(TraceRecord::Kind::Recv, traceBegin, source, msg.size.count(), tag);
  emitRankEvent(trace::Category::Recv, traceBegin, source, msg.size.count());
}

Request Communicator::isend(int dest, int tag, ByteCount size,
                            BufferSpace space) {
  MpiWorld& w = *world_;
  NB_EXPECTS(dest >= 0 && dest < w.size());
  NB_EXPECTS_MSG(dest != rank_, "self-sends are not modelled");
  const Duration traceBegin = now();
  const RankPlacement& peer = w.placements_[dest];
  const BufferSpace dstSpace = mirroredSpace(space, peer);
  const PathTiming path = w.pathBetween(rank_, dest, space, dstSpace);

  proc_->advance(path.sendOverhead);  // post cost

  Duration& chan = w.channelFree(rank_, dest);
  const Duration start = max(now(), chan);
  // Retransmit cycles of a lost copy extend the channel occupancy either
  // way (the NIC is re-sending instead of taking new work).
  const Duration lossDelay = w.lossDelay(rank_, dest, start);
  Duration ready;
  Duration arrival;
  if (size <= path.eagerThreshold) {
    // Eager: buffered immediately; payload pipelines on the channel.
    Duration transfer = Duration::zero();
    if (size.count() > 0) {
      transfer = path.eagerBandwidth.transferTime(size);
    }
    chan = start + transfer + lossDelay;
    arrival = chan + path.latency;
    ready = now();  // buffer reusable right away
  } else {
    // Simplified pipelined rendezvous: the handshake and the single-copy
    // transfer are modelled analytically on the channel (a full
    // message-level handshake would need a progress thread, which real
    // non-blocking rendezvous implementations hide in the library).
    const Duration handshake =
        path.sendOverhead + path.recvOverhead + path.latency * 2.0;
    const Duration transfer = path.rendezvousBandwidth.transferTime(size);
    chan = start + handshake + transfer + lossDelay;
    arrival = chan + path.latency;
    ready = chan;  // sender buffer in use until the copy drains
  }
  w.emitLinkEvent(rank_, dest, start, chan);
  w.mailboxes_[dest].messages.push_back(MpiWorld::Message{
      rank_, tag, MpiWorld::MsgKind::Eager, size, arrival, 0});
  proc_->wake(dest);

  trace(TraceRecord::Kind::SendPost, traceBegin, dest, size.count(), tag);
  emitRankEvent(trace::Category::Send, traceBegin, dest, size.count());
  Request r(Request::Kind::Send, dest, tag, size, ready);
  r.space_ = space;
  return r;
}

Request Communicator::irecv(int source, int tag, ByteCount size,
                            BufferSpace space) {
  MpiWorld& w = *world_;
  NB_EXPECTS(source >= 0 && source < w.size());
  NB_EXPECTS_MSG(source != rank_, "self-receives are not modelled");
  Request r(Request::Kind::Recv, source, tag, size, Duration::zero());
  r.space_ = space;
  return r;
}

void Communicator::wait(Request& request) {
  NB_EXPECTS_MSG(request.valid(), "wait on an invalid/completed request");
  MpiWorld& w = *world_;
  if (request.kind_ == Request::Kind::Send) {
    const Duration traceBegin = now();
    proc_->advanceTo(request.ready_);
    trace(TraceRecord::Kind::WaitSend, traceBegin, request.peer_,
          request.size_.count(), request.tag_);
    request.id_ = -1;
    return;
  }
  const Duration traceBegin = now();
  // Receive: match like a blocking recv (isend always posts Eager-kind
  // messages; a blocking rendezvous sender may post an RTS instead).
  const RankPlacement& peer = w.placements_[request.peer_];
  const BufferSpace peerSpace = mirroredSpace(request.space_, peer);
  const PathTiming path =
      w.pathBetween(request.peer_, rank_, peerSpace, request.space_);
  MpiWorld::Message msg;
  proc_->blockUntil([&] {
    return w.tryMatch(rank_, request.peer_, request.tag_,
                      MpiWorld::MsgKind::Eager, msg);
  });
  NB_EXPECTS_MSG(msg.size <= request.size_,
                 "matched message exceeds receive buffer");
  proc_->advanceTo(msg.arrival);
  proc_->advance(path.recvOverhead);
  trace(TraceRecord::Kind::WaitRecv, traceBegin, request.peer_,
        msg.size.count(), request.tag_);
  emitRankEvent(trace::Category::Recv, traceBegin, request.peer_,
                msg.size.count());
  request.id_ = -1;
}

void Communicator::waitAll(std::vector<Request>& requests) {
  for (Request& r : requests) {
    wait(r);
  }
}

void Communicator::sendrecv(int dest, int sendTag, ByteCount sendSize,
                            int source, int recvTag, ByteCount recvSize,
                            BufferSpace space) {
  Request out = isend(dest, sendTag, sendSize, space);
  recv(source, recvTag, recvSize, space);
  wait(out);
}

void Communicator::barrier() {
  const ByteCount none{0};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      recv(r, kBarrierTag, none);
    }
    for (int r = 1; r < size(); ++r) {
      send(r, kBarrierTag, none);
    }
  } else {
    send(0, kBarrierTag, none);
    recv(0, kBarrierTag, none);
  }
}

void Communicator::bcast(int root, ByteCount size, BufferSpace space) {
  const int n = this->size();
  NB_EXPECTS(root >= 0 && root < n);
  const int vrank = (rank_ - root + n) % n;
  const auto real = [&](int vr) { return (vr + root) % n; };

  // Binomial tree: receive from the parent (the set bit), then forward to
  // children below it.
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      recv(real(vrank ^ mask), kBcastTag, size, space);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      send(real(vrank + mask), kBcastTag, size, space);
    }
    mask >>= 1;
  }
}

void Communicator::reduce(int root, ByteCount size, BufferSpace space) {
  const int n = this->size();
  NB_EXPECTS(root >= 0 && root < n);
  const int vrank = (rank_ - root + n) % n;
  const auto real = [&](int vr) { return (vr + root) % n; };
  const Duration combine =
      Duration::nanoseconds(size.asDouble() / kCombineBytesPerNs);

  // Binomial tree, leaves inward (commutative reduction).
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int child = vrank | mask;
      if (child < n) {
        recv(real(child), kReduceTag, size, space);
        compute(combine);
      }
    } else {
      send(real(vrank & ~mask), kReduceTag, size, space);
      break;
    }
    mask <<= 1;
  }
}

void Communicator::allreduce(ByteCount size, BufferSpace space) {
  const int n = this->size();
  const bool powerOfTwo = (n & (n - 1)) == 0;
  if (!powerOfTwo) {
    reduce(0, size, space);
    bcast(0, size, space);
    return;
  }
  const Duration combine =
      Duration::nanoseconds(size.asDouble() / kCombineBytesPerNs);
  // Recursive doubling: log2(n) pairwise exchanges with combines.
  for (int mask = 1; mask < n; mask <<= 1) {
    const int partner = rank_ ^ mask;
    Request out = isend(partner, kAllreduceTag, size, space);
    recv(partner, kAllreduceTag, size, space);
    wait(out);
    compute(combine);
  }
}

void Communicator::allgather(ByteCount size, BufferSpace space) {
  const int n = this->size();
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  // Ring: n-1 steps, each forwarding one block. Non-blocking sends keep
  // the uniform ring direction deadlock-free for any message size.
  for (int step = 0; step < n - 1; ++step) {
    Request out = isend(next, kAllgatherTag, size, space);
    recv(prev, kAllgatherTag, size, space);
    wait(out);
  }
}

void Communicator::alltoall(ByteCount sizePerRank, BufferSpace space) {
  const int n = this->size();
  // Pairwise exchange: at step i, swap blocks with rank^i (power-of-two
  // worlds) or with the (rank +/- i) pair otherwise.
  const bool powerOfTwo = (n & (n - 1)) == 0;
  for (int step = 1; step < n; ++step) {
    const int sendTo =
        powerOfTwo ? (rank_ ^ step) : (rank_ + step) % n;
    const int recvFrom =
        powerOfTwo ? (rank_ ^ step) : (rank_ - step + n) % n;
    Request out = isend(sendTo, kAlltoallTag, sizePerRank, space);
    recv(recvFrom, kAlltoallTag, sizePerRank, space);
    wait(out);
  }
}

}  // namespace nodebench::mpisim
