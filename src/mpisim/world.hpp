#pragma once
/// \file world.hpp
/// \brief "minimpi": a blocking point-to-point message-passing runtime on
/// the virtual-time scheduler.
///
/// Each rank runs as a virtual-time process; `send`/`recv` are blocking
/// with MPI-like matching on (source, tag). Small messages use the eager
/// protocol (the sender deposits the payload's arrival time and
/// continues); large messages use rendezvous (RTS -> CTS -> data, sender
/// blocks for the handshake). Timing constants come from the transport
/// model, so a ping-pong over this runtime *is* the paper's OSU latency
/// measurement on the simulated machine.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/units.hpp"
#include "machines/machine.hpp"
#include "mpisim/trace.hpp"
#include "mpisim/transport.hpp"
#include "sim/vt_scheduler.hpp"
#include "trace/trace.hpp"

namespace nodebench::mpisim {

class MpiWorld;

/// Handle of a pending non-blocking operation. Obtained from
/// Communicator::isend / irecv; completed by wait / waitAll.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return id_ >= 0; }

 private:
  friend class Communicator;
  enum class Kind { Send, Recv };
  Request(Kind kind, int peer, int tag, ByteCount size, Duration ready)
      : kind_(kind), peer_(peer), tag_(tag), size_(size), ready_(ready),
        id_(0) {}

  Kind kind_ = Kind::Send;
  int peer_ = -1;
  int tag_ = 0;
  ByteCount size_;
  /// Send: time the sender's buffer is reusable. Recv: unused (the
  /// arrival is discovered at wait time by matching the mailbox).
  Duration ready_;
  BufferSpace space_;
  int id_ = -1;
};

/// Per-rank handle, valid only inside the rank function.
class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] Duration now() const { return proc_->now(); }

  /// Models local computation.
  void compute(Duration dt) {
    const Duration begin = now();
    proc_->advance(dt);
    trace(TraceRecord::Kind::Compute, begin, -1, 0, 0);
    emitRankEvent(trace::Category::Compute, begin, -1, 0);
  }

  /// Blocking standard-mode send of `size` bytes from `space` memory.
  void send(int dest, int tag, ByteCount size,
            BufferSpace space = BufferSpace::host());

  /// Blocking receive matching (source, tag). `size` is the receive
  /// buffer size; the matched message must not exceed it.
  void recv(int source, int tag, ByteCount size,
            BufferSpace space = BufferSpace::host());

  // --- non-blocking point-to-point (osu_bw / osu_bibw style windows) ----

  /// Posts a send and returns immediately after the software post cost.
  /// Message transfers serialize on the per-destination channel (a
  /// window of isends pipelines at the path bandwidth, the behaviour
  /// osu_bw measures). Large messages use a simplified pipelined
  /// rendezvous whose completion gates the sender at wait().
  [[nodiscard]] Request isend(int dest, int tag, ByteCount size,
                              BufferSpace space = BufferSpace::host());

  /// Posts a receive; matching happens at wait().
  [[nodiscard]] Request irecv(int source, int tag, ByteCount size,
                              BufferSpace space = BufferSpace::host());

  /// Completes one request (blocking).
  void wait(Request& request);

  /// Completes all requests in order.
  void waitAll(std::vector<Request>& requests);

  /// Combined exchange (MPI_Sendrecv): posts the send non-blocking,
  /// performs the receive, then completes the send — deadlock-free for
  /// symmetric exchange patterns of any message size.
  void sendrecv(int dest, int sendTag, ByteCount sendSize, int source,
                int recvTag, ByteCount recvSize,
                BufferSpace space = BufferSpace::host());

  // --- collectives (each documented with its algorithm) ------------------

  /// Linear barrier through rank 0 (gather then release).
  void barrier();

  /// Binomial-tree broadcast of `size` bytes from `root`.
  void bcast(int root, ByteCount size,
             BufferSpace space = BufferSpace::host());

  /// Binomial-tree reduction of `size` bytes to `root`; per-byte combine
  /// cost models the arithmetic.
  void reduce(int root, ByteCount size,
              BufferSpace space = BufferSpace::host());

  /// Allreduce: recursive doubling for power-of-two communicators,
  /// reduce-to-0 + broadcast otherwise.
  void allreduce(ByteCount size, BufferSpace space = BufferSpace::host());

  /// Ring allgather: each rank contributes `size` bytes and receives the
  /// contributions of all others in size-1 ring steps.
  void allgather(ByteCount size, BufferSpace space = BufferSpace::host());

  /// Pairwise-exchange alltoall: `sizePerRank` bytes to every peer.
  void alltoall(ByteCount sizePerRank,
                BufferSpace space = BufferSpace::host());

 private:
  friend class MpiWorld;
  Communicator(MpiWorld& world, sim::VirtualProcess& proc, int rank)
      : world_(&world), proc_(&proc), rank_(rank) {}

  /// Records [begin, now()] to the world's tracer, when attached.
  void trace(TraceRecord::Kind kind, Duration begin, int peer,
             std::uint64_t bytes, int tag);

  /// Records [begin, now()] as a rank-lane event into the trace buffer
  /// the world captured at construction (no-op when tracing is off).
  void emitRankEvent(trace::Category category, Duration begin, int peer,
                     std::uint64_t bytes);

  MpiWorld* world_;
  sim::VirtualProcess* proc_;
  int rank_;
};

/// Owns rank placements, mailboxes and the scheduler.
class MpiWorld {
 public:
  using RankFn = std::function<void(Communicator&)>;

  /// Precondition: at least two ranks; placements reference valid cores
  /// (and GPUs, when set) of the machine's topology. Ranks on node > 0
  /// require `network` (every node is an identical copy of the machine).
  MpiWorld(const machines::Machine& machine,
           std::vector<RankPlacement> placements,
           std::optional<InterNodeParams> network = std::nullopt);

  [[nodiscard]] int size() const {
    return static_cast<int>(placements_.size());
  }
  [[nodiscard]] const machines::Machine& machine() const { return *machine_; }

  /// Runs the same function on every rank (SPMD).
  void run(const RankFn& fn);

  /// Runs a distinct function per rank. Precondition: fns.size() == size().
  void runEach(const std::vector<RankFn>& fns);

  /// Attaches a timeline tracer (nullptr detaches). The tracer must
  /// outlive every subsequent run; records accumulate across runs.
  void setTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Arms the underlying scheduler's virtual-time watchdog: a run whose
  /// virtual clock exceeds `deadline` aborts with sim::TimeoutError
  /// instead of spinning (e.g. a fault-injected retransmit storm).
  void setWatchdog(Duration deadline) { scheduler_.setWatchdog(deadline); }

  /// Inter-node messages retransmitted in the last completed run (0 when
  /// the network has no packet loss). Reset at each run.
  [[nodiscard]] std::uint64_t retransmitCount() const { return retransmits_; }

  /// Pins the scheduler execution mode for subsequent runs (simulated
  /// results are mode-independent; the simcore cross-check suite runs
  /// both modes and compares). Default: VirtualTimeScheduler's default.
  void setSchedulerMode(sim::VirtualTimeScheduler::Mode m) {
    scheduler_.setMode(m);
  }

  /// Process-switch count of the last completed run (determinism
  /// diagnostics; identical across scheduler modes).
  [[nodiscard]] std::uint64_t schedulerSwitchCount() const {
    return scheduler_.switchCount();
  }

 private:
  friend class Communicator;

  enum class MsgKind { Eager, Rts, Cts, Data };

  struct Message {
    int source = -1;
    int tag = 0;
    MsgKind kind = MsgKind::Eager;
    ByteCount size;
    Duration arrival;       ///< Virtual time the payload is available.
    std::uint64_t rtsId = 0;  ///< Pairs Rts/Cts/Data of one rendezvous.
  };

  struct Mailbox {
    std::deque<Message> messages;
  };

  /// Pops the first message matching (source, tag, kind); nullopt-like
  /// behaviour via bool return. Only called by the owning (running) rank.
  bool tryMatch(int myRank, int source, int tag, MsgKind kind, Message& out);

  /// Resets the per-run mailbox/channel/sequence state shared by run()
  /// and runEach(). The assigns reuse each vector's existing capacity,
  /// so repeated runs on one world do not reallocate.
  void resetRunState();

  /// Per directed rank pair: the time the transfer channel next becomes
  /// free. Back-to-back (non-blocking) sends between a pair serialize on
  /// this channel, which is what makes windowed bandwidth tests converge
  /// to the path bandwidth instead of overlapping magically. Inter-node
  /// messages serialize on the *source node's* injection channel instead,
  /// so concurrent pairs on one node share the NIC (the congestion effect
  /// the paper's future-work section wants to measure).
  [[nodiscard]] Duration& channelFree(int src, int dst);

  /// Resolves intra- vs inter-node timing for a directed rank pair.
  [[nodiscard]] PathTiming pathBetween(int src, int dst,
                                       const BufferSpace& srcSpace,
                                       const BufferSpace& dstSpace) const;

  [[nodiscard]] bool interNode(int src, int dst) const {
    return placements_[src].node != placements_[dst].node;
  }

  /// Extra delivery delay of one data-bearing inter-node message under the
  /// network's packet-loss model: draws deterministic Bernoulli losses per
  /// transmission attempt (counter-based stream keyed by source,
  /// destination and per-pair sequence number), sums capped-exponential
  /// backoffs for each lost copy and counts them in retransmits_. Returns
  /// zero for intra-node pairs or a loss-free network; throws Error when
  /// `maxRetransmits` consecutive copies of one message are lost.
  /// `base` is the virtual time transmission attempts begin (the channel
  /// grant), anchoring the paired Loss/Retransmit trace events.
  [[nodiscard]] Duration lossDelay(int src, int dst, Duration base);

  /// Records a busy interval [start, end) of the directed channel
  /// (intra-node pair link, or the source node's NIC injection channel
  /// for inter-node pairs). Intervals per channel are disjoint by
  /// construction — each transfer starts at or after the previous
  /// channel-free time — which the trace invariant suite checks.
  void emitLinkEvent(int src, int dst, Duration start, Duration end);

  const machines::Machine* machine_;
  std::vector<RankPlacement> placements_;
  std::optional<InterNodeParams> network_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Duration> channels_;  ///< size() * size(), row-major by src.
  std::vector<Duration> nodeInjection_;  ///< Per node, indexed by node id.
  std::vector<std::uint64_t> pairSeq_;  ///< Per directed pair message sequence.
  std::uint64_t retransmits_ = 0;       ///< Lost copies resent in this run.
  std::uint64_t nextRtsId_ = 1;
  Tracer* tracer_ = nullptr;
  /// Trace buffer captured at construction (the constructing thread is
  /// the tracing scope's thread; rank threads are not). Null when
  /// tracing is disabled — every emit site is then one pointer check.
  trace::TraceBuffer* traceSink_ = nullptr;
  sim::VirtualTimeScheduler scheduler_;
};

}  // namespace nodebench::mpisim
