#include "ompenv/placement.hpp"

#include <algorithm>
#include <set>

namespace nodebench::ompenv {

int ThreadPlacement::coresUsed() const {
  std::set<int> cores;
  for (const ThreadSlot& t : threads) {
    cores.insert(t.core.value);
  }
  return static_cast<int>(cores.size());
}

int ThreadPlacement::numaDomainsUsed(const topo::NodeTopology& topo) const {
  std::set<int> numas;
  for (const ThreadSlot& t : threads) {
    numas.insert(topo.core(t.core).numa.value);
  }
  return static_cast<int>(numas.size());
}

int ThreadPlacement::socketsUsed(const topo::NodeTopology& topo) const {
  std::set<int> sockets;
  for (const ThreadSlot& t : threads) {
    sockets.insert(topo.core(t.core).socket.value);
  }
  return static_cast<int>(sockets.size());
}

int ThreadPlacement::maxSmtOccupancy() const {
  int best = 0;
  for (const ThreadSlot& t : threads) {
    best = std::max(best, t.smtSlot + 1);
  }
  return best;
}

namespace {

/// Cores in id order (close policy / OS default order).
std::vector<topo::CoreId> coresInOrder(const topo::NodeTopology& topo) {
  std::vector<topo::CoreId> out;
  out.reserve(topo.coreCount());
  for (int i = 0; i < topo.coreCount(); ++i) {
    out.push_back(topo::CoreId{i});
  }
  return out;
}

/// Cores interleaved across sockets (spread policy): socket0.core0,
/// socket1.core0, socket0.core1, ...
std::vector<topo::CoreId> coresSpread(const topo::NodeTopology& topo) {
  std::vector<std::vector<topo::CoreId>> bySocket(topo.socketCount());
  for (int i = 0; i < topo.coreCount(); ++i) {
    const topo::CoreId id{i};
    bySocket[topo.core(id).socket.value].push_back(id);
  }
  std::vector<topo::CoreId> out;
  out.reserve(topo.coreCount());
  std::size_t index = 0;
  for (bool any = true; any; ++index) {
    any = false;
    for (auto& socketCores : bySocket) {
      if (index < socketCores.size()) {
        out.push_back(socketCores[index]);
        any = true;
      }
    }
  }
  return out;
}

int totalHardwareThreads(const topo::NodeTopology& topo) {
  int total = 0;
  for (int i = 0; i < topo.coreCount(); ++i) {
    total += topo.core(topo::CoreId{i}).smtThreads;
  }
  return total;
}

}  // namespace

ThreadPlacement place(const topo::NodeTopology& topo, const OmpConfig& cfg) {
  NB_EXPECTS(topo.coreCount() > 0);
  const int hwThreads = totalHardwareThreads(topo);
  int n = cfg.numThreads.value_or(hwThreads);
  NB_EXPECTS(n > 0);
  n = std::min(n, hwThreads);

  const bool spread = cfg.procBind == ProcBind::Spread;
  const std::vector<topo::CoreId> order =
      spread ? coresSpread(topo) : coresInOrder(topo);

  ThreadPlacement placement;
  placement.bound = cfg.bound();
  placement.threads.reserve(static_cast<std::size_t>(n));

  // One thread per core first; wrap into higher SMT slots only once every
  // core in the visit order already carries a thread. This matches how
  // both close and spread policies behave for the Table 1 team sizes
  // (#cores fills slot 0 everywhere; #threads fills all SMT slots).
  int assigned = 0;
  for (int smtSlot = 0; assigned < n; ++smtSlot) {
    bool progressed = false;
    for (const topo::CoreId core : order) {
      if (assigned >= n) {
        break;
      }
      if (smtSlot < topo.core(core).smtThreads) {
        placement.threads.push_back(ThreadSlot{core, smtSlot});
        ++assigned;
        progressed = true;
      }
    }
    NB_ENSURES(progressed);  // guaranteed because n <= hwThreads
  }
  return placement;
}

}  // namespace nodebench::ompenv
