#pragma once
/// \file placement.hpp
/// \brief Maps an OpenMP environment configuration onto a concrete thread
/// placement over a node topology.
///
/// The placement is what the host memory model consumes: which cores (and
/// how many SMT slots per core) are occupied, how many sockets and NUMA
/// domains participate, and whether the threads are pinned. Binding
/// effects — the whole point of the paper's Table 1 sweep — then fall out
/// of the memory model's per-NUMA saturation and unbound-migration terms.

#include <vector>

#include "ompenv/omp_config.hpp"
#include "topo/topology.hpp"

namespace nodebench::ompenv {

/// One OpenMP thread's home.
struct ThreadSlot {
  topo::CoreId core;
  int smtSlot = 0;  ///< 0 = first hardware thread of the core.
};

/// Resolved placement of an OpenMP team.
struct ThreadPlacement {
  std::vector<ThreadSlot> threads;
  bool bound = false;  ///< Pinned (OMP_PROC_BIND set and not "false").

  [[nodiscard]] int threadCount() const {
    return static_cast<int>(threads.size());
  }

  /// Number of distinct cores occupied.
  [[nodiscard]] int coresUsed() const;

  /// Number of distinct NUMA domains occupied.
  [[nodiscard]] int numaDomainsUsed(const topo::NodeTopology& topo) const;

  /// Number of distinct sockets occupied.
  [[nodiscard]] int socketsUsed(const topo::NodeTopology& topo) const;

  /// Max threads stacked on any single core (SMT pressure).
  [[nodiscard]] int maxSmtOccupancy() const;
};

/// Computes the placement of `cfg` on `topo`.
///
/// Policies:
///  - close (or bind=true with default places): fill cores in id order,
///    one thread per core first, wrapping into SMT slots when the team is
///    larger than the core count;
///  - spread: stride threads round-robin across sockets, then across cores
///    within each socket;
///  - unbound (OMP_PROC_BIND unset/false): the OS spreads threads over
///    cores in id order but the placement is flagged `bound=false`, which
///    the memory model penalizes (migration, imperfect NUMA locality).
///
/// Thread count defaults to the total hardware-thread count when
/// `cfg.numThreads` is unset; it is clamped to the hardware-thread count
/// (oversubscription is outside this model's scope).
[[nodiscard]] ThreadPlacement place(const topo::NodeTopology& topo,
                                    const OmpConfig& cfg);

}  // namespace nodebench::ompenv
