#pragma once
/// \file omp_config.hpp
/// \brief Model of the OpenMP runtime environment variables the paper
/// sweeps in Table 1: `OMP_NUM_THREADS`, `OMP_PROC_BIND`, `OMP_PLACES`.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace nodebench::ompenv {

/// `OMP_PROC_BIND` values used by the paper (subset of OpenMP 5).
enum class ProcBind { NotSet, True, False, Close, Spread };

/// `OMP_PLACES` values used by the paper.
enum class Places { NotSet, Threads, Cores, Sockets };

[[nodiscard]] std::string_view procBindName(ProcBind b);
[[nodiscard]] std::string_view placesName(Places p);

/// One OpenMP environment combination.
struct OmpConfig {
  /// Unset means "not set": the runtime defaults to one thread per
  /// hardware thread.
  std::optional<int> numThreads;
  ProcBind procBind = ProcBind::NotSet;
  Places places = Places::NotSet;

  /// Parses environment-variable strings ("" or unparsable -> NotSet; the
  /// thread count must be a positive integer when present).
  [[nodiscard]] static OmpConfig parse(std::string_view numThreadsValue,
                                       std::string_view procBindValue,
                                       std::string_view placesValue);

  /// Whether threads are pinned (any bind policy other than NotSet/False).
  [[nodiscard]] bool bound() const {
    return procBind != ProcBind::NotSet && procBind != ProcBind::False;
  }

  /// "OMP_NUM_THREADS=16 OMP_PROC_BIND=spread OMP_PLACES=cores" style
  /// rendering for logs and the Table 1 bench.
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const OmpConfig&, const OmpConfig&) = default;
};

/// The eight environment combinations of Table 1, instantiated for a
/// machine with `cores` physical cores and `hwThreads` hardware threads
/// (cores x SMT ways). Order matches the paper's table: the first two are
/// the single-thread cases, the remaining six the "all threads" cases.
[[nodiscard]] std::vector<OmpConfig> table1Combinations(int cores,
                                                        int hwThreads);

}  // namespace nodebench::ompenv
