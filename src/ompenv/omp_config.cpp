#include "ompenv/omp_config.hpp"

#include "core/strings.hpp"

namespace nodebench::ompenv {

std::string_view procBindName(ProcBind b) {
  switch (b) {
    case ProcBind::NotSet: return "not set";
    case ProcBind::True: return "true";
    case ProcBind::False: return "false";
    case ProcBind::Close: return "close";
    case ProcBind::Spread: return "spread";
  }
  return "?";
}

std::string_view placesName(Places p) {
  switch (p) {
    case Places::NotSet: return "not set";
    case Places::Threads: return "threads";
    case Places::Cores: return "cores";
    case Places::Sockets: return "sockets";
  }
  return "?";
}

OmpConfig OmpConfig::parse(std::string_view numThreadsValue,
                           std::string_view procBindValue,
                           std::string_view placesValue) {
  OmpConfig cfg;
  if (auto n = parseUnsigned(numThreadsValue); n && *n > 0) {
    cfg.numThreads = static_cast<int>(*n);
  }
  const std::string bind = toLower(trim(procBindValue));
  if (bind == "true") {
    cfg.procBind = ProcBind::True;
  } else if (bind == "false") {
    cfg.procBind = ProcBind::False;
  } else if (bind == "close") {
    cfg.procBind = ProcBind::Close;
  } else if (bind == "spread") {
    cfg.procBind = ProcBind::Spread;
  }
  const std::string places = toLower(trim(placesValue));
  if (places == "threads") {
    cfg.places = Places::Threads;
  } else if (places == "cores") {
    cfg.places = Places::Cores;
  } else if (places == "sockets") {
    cfg.places = Places::Sockets;
  }
  return cfg;
}

std::string OmpConfig::toString() const {
  std::string out = "OMP_NUM_THREADS=";
  out += numThreads ? std::to_string(*numThreads) : std::string("<unset>");
  out += " OMP_PROC_BIND=";
  out += procBind == ProcBind::NotSet ? "<unset>"
                                      : std::string(procBindName(procBind));
  out += " OMP_PLACES=";
  out += places == Places::NotSet ? "<unset>" : std::string(placesName(places));
  return out;
}

std::vector<OmpConfig> table1Combinations(int cores, int hwThreads) {
  NB_EXPECTS(cores > 0);
  NB_EXPECTS(hwThreads >= cores);
  std::vector<OmpConfig> out;
  out.reserve(8);
  // Single-thread rows.
  out.push_back(OmpConfig{1, ProcBind::NotSet, Places::NotSet});
  out.push_back(OmpConfig{1, ProcBind::True, Places::NotSet});
  // "#cores" rows.
  out.push_back(OmpConfig{cores, ProcBind::NotSet, Places::NotSet});
  out.push_back(OmpConfig{cores, ProcBind::True, Places::NotSet});
  out.push_back(OmpConfig{cores, ProcBind::Spread, Places::Cores});
  // "#threads" rows (all SMT hardware threads). On machines without SMT
  // these duplicate the #cores rows, exactly as running the paper's recipe
  // there would.
  out.push_back(OmpConfig{hwThreads, ProcBind::NotSet, Places::NotSet});
  out.push_back(OmpConfig{hwThreads, ProcBind::True, Places::NotSet});
  out.push_back(OmpConfig{hwThreads, ProcBind::Close, Places::Threads});
  return out;
}

}  // namespace nodebench::ompenv
