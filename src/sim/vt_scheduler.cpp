#include "sim/vt_scheduler.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "trace/trace.hpp"

// Cooperative mode uses POSIX ucontext fibers. Fiber stack switches are
// invisible to the sanitizers' shadow-stack bookkeeping (tsan would need
// __tsan_switch_to_fiber annotations, asan fake-stack equivalents), and
// the whole point of the sanitized builds is to check the thread-mode
// handoffs — so cooperative support is compiled out under any sanitizer
// and those builds always run Mode::Threads.
#if defined(__linux__)
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_MEMORY__)
#define NODEBENCH_VT_COOP 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define NODEBENCH_VT_COOP 0
#else
#define NODEBENCH_VT_COOP 1
#endif
#else
#define NODEBENCH_VT_COOP 1
#endif
#else
#define NODEBENCH_VT_COOP 0
#endif

#if NODEBENCH_VT_COOP
#include <ucontext.h>

#include <memory>
#include <vector>
#endif

namespace nodebench::sim {

namespace {

std::string deadlockMessage(const std::string& reason,
                            const std::vector<RankStateSnapshot>& ranks) {
  std::string msg = reason;
  for (const RankStateSnapshot& r : ranks) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\n  rank %d: %s at t=%.3f us", r.rank,
                  r.state.c_str(), r.clock.us());
    msg += buf;
  }
  return msg;
}

/// Scoped lock that is a no-op in cooperative mode: there, every process
/// runs on the calling thread and the scheduler state needs no mutex.
struct ModeLock {
  std::unique_lock<std::mutex> lock;
  ModeLock(std::mutex& mu, bool cooperative) {
    if (!cooperative) {
      lock = std::unique_lock(mu);
    }
  }
  [[nodiscard]] std::unique_lock<std::mutex>* ptr() {
    return lock.owns_lock() ? &lock : nullptr;
  }
};

}  // namespace

#if NODEBENCH_VT_COOP

/// Fiber contexts of one cooperative run. The scheduler loop in
/// runCooperative owns `main`; each rank's continuation lives in its
/// fiber's `ctx` (the initial makecontext before first resume, the
/// suspension point inside waitUntilRunning afterwards).
struct VirtualTimeScheduler::CoopRuntime {
  struct Fiber {
    ucontext_t ctx;
    std::unique_ptr<char[]> stack;
  };
  /// 512 KiB per rank: rank functions reach resolvePath/topology code with
  /// modest frames, so this is generous headroom; Linux commits pages
  /// lazily, so untouched stack costs address space only.
  static constexpr std::size_t kStackBytes = 512u * 1024u;

  ucontext_t main;
  std::vector<Fiber> fibers;
  const std::vector<ProcessFn>* fns = nullptr;
};

/// makecontext passes ints only; the scheduler pointer travels as two
/// 32-bit halves (the portable ucontext idiom). processBody catches
/// everything a process function can throw, so no exception ever unwinds
/// past the fiber's root frame; returning resumes uc_link == the
/// scheduler loop's context.
void VirtualTimeScheduler::coopTrampoline(unsigned int hi, unsigned int lo,
                                          int rank) {
  auto* self = reinterpret_cast<VirtualTimeScheduler*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  self->processBody(rank,
                    (*self->coop_->fns)[static_cast<std::size_t>(rank)]);
}

void VirtualTimeScheduler::coopYieldToMain(int rank) {
  CoopRuntime::Fiber& f = coop_->fibers[static_cast<std::size_t>(rank)];
  NB_ENSURES(swapcontext(&f.ctx, &coop_->main) == 0);
}

void VirtualTimeScheduler::runCooperative(const std::vector<ProcessFn>& fns) {
  coop_ = std::make_unique<CoopRuntime>();
  coop_->fns = &fns;
  coop_->fibers.resize(fns.size());
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    CoopRuntime::Fiber& f = coop_->fibers[i];
    f.stack = std::make_unique<char[]>(CoopRuntime::kStackBytes);
    NB_ENSURES(getcontext(&f.ctx) == 0);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = CoopRuntime::kStackBytes;
    f.ctx.uc_link = &coop_->main;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&coopTrampoline), 3,
                static_cast<unsigned int>(self >> 32),
                static_cast<unsigned int>(self & 0xffffffffu),
                static_cast<int>(i));
  }
  coopActive_ = true;
  // Resume whichever fiber the shared scheduling logic marked Running;
  // every handoff funnels back through here (fiber yields to main, main
  // resumes the next runner), so this loop is the whole execution engine.
  while (true) {
    int next = -1;
    for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
      if (slots_[i].state == State::Running) {
        next = i;
        break;
      }
    }
    if (next < 0) {
      break;
    }
    NB_ENSURES(swapcontext(&coop_->main,
                           &coop_->fibers[static_cast<std::size_t>(next)]
                                .ctx) == 0);
  }
  if (aborted_) {
    // Mirror of thread mode's "every thread wakes and unwinds": resume the
    // remaining fibers in rank order; each observes aborted_, throws, and
    // finishes through processBody's catch.
    for (std::size_t i = 0; i < coop_->fibers.size(); ++i) {
      while (slots_[i].state != State::Finished) {
        NB_ENSURES(swapcontext(&coop_->main, &coop_->fibers[i].ctx) == 0);
      }
    }
  }
  coopActive_ = false;
  coop_.reset();
}

bool VirtualTimeScheduler::cooperativeSupported() { return true; }

#else  // !NODEBENCH_VT_COOP

struct VirtualTimeScheduler::CoopRuntime {};

void VirtualTimeScheduler::coopYieldToMain(int) {
  throw Error("cooperative scheduling not compiled in");
}

void VirtualTimeScheduler::runCooperative(const std::vector<ProcessFn>&) {
  throw Error("cooperative scheduling not compiled in");
}

bool VirtualTimeScheduler::cooperativeSupported() { return false; }

#endif  // NODEBENCH_VT_COOP

VirtualTimeScheduler::VirtualTimeScheduler() : mode_(defaultMode()) {}

VirtualTimeScheduler::~VirtualTimeScheduler() = default;

VirtualTimeScheduler::Mode VirtualTimeScheduler::defaultMode() {
  static const Mode mode = [] {
    if (!cooperativeSupported()) {
      return Mode::Threads;
    }
    if (const char* env = std::getenv("NODEBENCH_VT_MODE")) {
      if (std::strcmp(env, "threads") == 0) {
        return Mode::Threads;
      }
      if (std::strcmp(env, "cooperative") == 0) {
        return Mode::Cooperative;
      }
    }
    return Mode::Cooperative;
  }();
  return mode;
}

void VirtualTimeScheduler::setMode(Mode m) {
  NB_EXPECTS_MSG(!coopActive_, "cannot change mode during a run");
  mode_ = (m == Mode::Cooperative && !cooperativeSupported()) ? Mode::Threads
                                                              : m;
}

DeadlockError::DeadlockError(const std::string& reason,
                             std::vector<RankStateSnapshot> ranks)
    : Error(deadlockMessage(reason, ranks)), ranks_(std::move(ranks)) {}

Duration VirtualProcess::now() const {
  auto& s = *sched_;
  ModeLock lock(s.mu_, s.coopActive_);
  return s.slots_[rank_].clock;
}

void VirtualProcess::advance(Duration dt) {
  NB_EXPECTS(dt >= Duration::zero());
  auto& s = *sched_;
  ModeLock lock(s.mu_, s.coopActive_);
  s.slots_[rank_].clock += dt;
  s.yieldIfEarlier(lock.ptr(), rank_);
}

void VirtualProcess::advanceTo(Duration t) {
  auto& s = *sched_;
  ModeLock lock(s.mu_, s.coopActive_);
  auto& clock = s.slots_[rank_].clock;
  clock = max(clock, t);
  s.yieldIfEarlier(lock.ptr(), rank_);
}

void VirtualProcess::blockUntil(const std::function<bool()>& pred) {
  NB_EXPECTS(pred != nullptr);
  auto& s = *sched_;
  ModeLock lock(s.mu_, s.coopActive_);
  while (!pred()) {
    s.slots_[rank_].state = VirtualTimeScheduler::State::Blocked;
    const int next = s.pickNextLocked();
    if (next < 0) {
      auto ranks = s.snapshotLocked();
      if (!s.firstError_) {
        s.firstError_ = std::make_exception_ptr(DeadlockError(
            "virtual-time deadlock: every live process is blocked", ranks));
      }
      s.abortAllLocked();
      throw DeadlockError("virtual-time deadlock detected by rank " +
                              std::to_string(rank_),
                          std::move(ranks));
    }
    s.switchToLocked(next);
    s.waitUntilRunning(lock.ptr(), rank_);
  }
}

void VirtualProcess::wake(int otherRank) {
  auto& s = *sched_;
  NB_EXPECTS(otherRank >= 0 &&
             static_cast<std::size_t>(otherRank) < s.slots_.size());
  ModeLock lock(s.mu_, s.coopActive_);
  if (s.slots_[otherRank].state == VirtualTimeScheduler::State::Blocked) {
    s.slots_[otherRank].state = VirtualTimeScheduler::State::Ready;
  }
}

int VirtualTimeScheduler::pickNextLocked() const {
  int best = -1;
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    if (slots_[i].state != State::Ready) {
      continue;
    }
    if (best < 0 || slots_[i].clock < slots_[best].clock) {
      best = i;
    }
  }
  return best;
}

void VirtualTimeScheduler::switchToLocked(int next) {
  NB_EXPECTS(next >= 0 && static_cast<std::size_t>(next) < slots_.size());
  NB_ENSURES(slots_[next].state == State::Ready);
  slots_[next].state = State::Running;
  ++switches_;
  if (!coopActive_) {
    cv_.notify_all();
  }
}

void VirtualTimeScheduler::waitUntilRunning(
    std::unique_lock<std::mutex>* lock, int rank) {
  if (lock != nullptr) {
    cv_.wait(*lock, [&] {
      return aborted_ || slots_[rank].state == State::Running;
    });
  } else {
    while (!aborted_ && slots_[rank].state != State::Running) {
      coopYieldToMain(rank);
    }
  }
  if (aborted_) {
    throw Error("virtual-time system aborted (see primary error)");
  }
}

void VirtualTimeScheduler::checkWatchdogLocked(int rank) {
  if (slots_[rank].clock <= watchdog_) {
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "virtual-time watchdog expired: rank %d reached t=%.3f us "
                "(deadline %.3f us)",
                rank, slots_[rank].clock.us(), watchdog_.us());
  if (!firstError_) {
    firstError_ = std::make_exception_ptr(
        TimeoutError(deadlockMessage(buf, snapshotLocked())));
  }
  abortAllLocked();
  throw TimeoutError(buf);
}

void VirtualTimeScheduler::yieldIfEarlier(
    std::unique_lock<std::mutex>* lock, int rank) {
  // Every virtual-time advance funnels through here, so this is the one
  // place the watchdog needs to observe runaway clocks.
  checkWatchdogLocked(rank);
  // Re-enter the ready pool; if we are still the earliest runnable process
  // we simply keep running, otherwise hand over.
  slots_[rank].state = State::Ready;
  const int next = pickNextLocked();
  NB_ENSURES(next >= 0);  // at least this process is Ready
  if (next == rank) {
    slots_[rank].state = State::Running;
    return;
  }
  switchToLocked(next);
  waitUntilRunning(lock, rank);
}

void VirtualTimeScheduler::abortAllLocked() {
  aborted_ = true;
  if (!coopActive_) {
    cv_.notify_all();
  }
}

std::vector<RankStateSnapshot> VirtualTimeScheduler::snapshotLocked() const {
  std::vector<RankStateSnapshot> out;
  out.reserve(slots_.size());
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    const char* name = "?";
    switch (slots_[i].state) {
      case State::Ready: name = "ready"; break;
      case State::Running: name = "running"; break;
      case State::Blocked: name = "blocked"; break;
      case State::Finished: name = "finished"; break;
    }
    out.push_back(RankStateSnapshot{i, name, slots_[i].clock});
  }
  return out;
}

void VirtualTimeScheduler::setWatchdog(Duration deadline) {
  NB_EXPECTS(deadline > Duration::zero());
  watchdog_ = deadline;
}

void VirtualTimeScheduler::processBody(int rank, const ProcessFn& fn) {
  VirtualProcess self(*this, rank);
  try {
    {
      ModeLock lock(mu_, coopActive_);
      waitUntilRunning(lock.ptr(), rank);
    }
    fn(self);
    ModeLock lock(mu_, coopActive_);
    slots_[rank].state = State::Finished;
    const int next = pickNextLocked();
    if (next >= 0) {
      switchToLocked(next);
    } else {
      // No runnable process remains. If someone is still blocked, the
      // system can never finish: deadlock.
      bool anyBlocked = false;
      for (const auto& slot : slots_) {
        anyBlocked = anyBlocked || slot.state == State::Blocked;
      }
      if (anyBlocked) {
        if (!firstError_) {
          firstError_ = std::make_exception_ptr(DeadlockError(
              "virtual-time deadlock: last runnable process finished while "
              "others are still blocked",
              snapshotLocked()));
        }
        abortAllLocked();
      }
    }
  } catch (...) {
    ModeLock lock(mu_, coopActive_);
    if (!firstError_) {
      firstError_ = std::current_exception();
    }
    slots_[rank].state = State::Finished;
    abortAllLocked();
  }
}

void VirtualTimeScheduler::runThreads(const std::vector<ProcessFn>& fns) {
  std::vector<std::thread> threads;
  threads.reserve(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    threads.emplace_back([this, i, &fns] {
      processBody(static_cast<int>(i), fns[i]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void VirtualTimeScheduler::run(const std::vector<ProcessFn>& fns) {
  NB_EXPECTS(!fns.empty());
  slots_.assign(fns.size(), Slot{});
  aborted_ = false;
  firstError_ = nullptr;
  switches_ = 0;  // per-run count: see switchCount()
  // Rank 0 starts as the unique runner (all clocks are zero; ties break by
  // rank, so this matches pickNextLocked()).
  slots_[0].state = State::Running;

  if (mode_ == Mode::Cooperative && cooperativeSupported()) {
    runCooperative(fns);
  } else {
    runThreads(fns);
  }
  // run() is called on the tracing scope's own thread, and both modes are
  // fully drained by now — safe to read switches_ without the lock and to
  // record into the thread-local buffer.
  if (trace::TraceBuffer* tb = trace::current()) {
    tb->count("vt.runs");
    tb->count("vt.switches", switches_);
  }
  if (firstError_) {
    std::rethrow_exception(firstError_);
  }
}

}  // namespace nodebench::sim
