#include "sim/vt_scheduler.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "trace/trace.hpp"

namespace nodebench::sim {

namespace {

std::string deadlockMessage(const std::string& reason,
                            const std::vector<RankStateSnapshot>& ranks) {
  std::string msg = reason;
  for (const RankStateSnapshot& r : ranks) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\n  rank %d: %s at t=%.3f us", r.rank,
                  r.state.c_str(), r.clock.us());
    msg += buf;
  }
  return msg;
}

}  // namespace

DeadlockError::DeadlockError(const std::string& reason,
                             std::vector<RankStateSnapshot> ranks)
    : Error(deadlockMessage(reason, ranks)), ranks_(std::move(ranks)) {}

Duration VirtualProcess::now() const {
  std::unique_lock lock(sched_->mu_);
  return sched_->slots_[rank_].clock;
}

void VirtualProcess::advance(Duration dt) {
  NB_EXPECTS(dt >= Duration::zero());
  auto& s = *sched_;
  std::unique_lock lock(s.mu_);
  s.slots_[rank_].clock += dt;
  s.yieldIfEarlierLocked(lock, rank_);
}

void VirtualProcess::advanceTo(Duration t) {
  auto& s = *sched_;
  std::unique_lock lock(s.mu_);
  auto& clock = s.slots_[rank_].clock;
  clock = max(clock, t);
  s.yieldIfEarlierLocked(lock, rank_);
}

void VirtualProcess::blockUntil(const std::function<bool()>& pred) {
  NB_EXPECTS(pred != nullptr);
  auto& s = *sched_;
  std::unique_lock lock(s.mu_);
  while (!pred()) {
    s.slots_[rank_].state = VirtualTimeScheduler::State::Blocked;
    const int next = s.pickNextLocked();
    if (next < 0) {
      auto ranks = s.snapshotLocked();
      if (!s.firstError_) {
        s.firstError_ = std::make_exception_ptr(DeadlockError(
            "virtual-time deadlock: every live process is blocked", ranks));
      }
      s.abortAllLocked();
      throw DeadlockError("virtual-time deadlock detected by rank " +
                              std::to_string(rank_),
                          std::move(ranks));
    }
    s.switchToLocked(next);
    s.waitUntilRunningLocked(lock, rank_);
  }
}

void VirtualProcess::wake(int otherRank) {
  auto& s = *sched_;
  NB_EXPECTS(otherRank >= 0 &&
             static_cast<std::size_t>(otherRank) < s.slots_.size());
  std::unique_lock lock(s.mu_);
  if (s.slots_[otherRank].state == VirtualTimeScheduler::State::Blocked) {
    s.slots_[otherRank].state = VirtualTimeScheduler::State::Ready;
  }
}

int VirtualTimeScheduler::pickNextLocked() const {
  int best = -1;
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    if (slots_[i].state != State::Ready) {
      continue;
    }
    if (best < 0 || slots_[i].clock < slots_[best].clock) {
      best = i;
    }
  }
  return best;
}

void VirtualTimeScheduler::switchToLocked(int next) {
  NB_EXPECTS(next >= 0 && static_cast<std::size_t>(next) < slots_.size());
  NB_ENSURES(slots_[next].state == State::Ready);
  slots_[next].state = State::Running;
  ++switches_;
  cv_.notify_all();
}

void VirtualTimeScheduler::waitUntilRunningLocked(
    std::unique_lock<std::mutex>& lock, int rank) {
  cv_.wait(lock, [&] {
    return aborted_ || slots_[rank].state == State::Running;
  });
  if (aborted_) {
    throw Error("virtual-time system aborted (see primary error)");
  }
}

void VirtualTimeScheduler::checkWatchdogLocked(int rank) {
  if (slots_[rank].clock <= watchdog_) {
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "virtual-time watchdog expired: rank %d reached t=%.3f us "
                "(deadline %.3f us)",
                rank, slots_[rank].clock.us(), watchdog_.us());
  if (!firstError_) {
    firstError_ = std::make_exception_ptr(
        TimeoutError(deadlockMessage(buf, snapshotLocked())));
  }
  abortAllLocked();
  throw TimeoutError(buf);
}

void VirtualTimeScheduler::yieldIfEarlierLocked(
    std::unique_lock<std::mutex>& lock, int rank) {
  // Every virtual-time advance funnels through here, so this is the one
  // place the watchdog needs to observe runaway clocks.
  checkWatchdogLocked(rank);
  // Re-enter the ready pool; if we are still the earliest runnable process
  // we simply keep running, otherwise hand over.
  slots_[rank].state = State::Ready;
  const int next = pickNextLocked();
  NB_ENSURES(next >= 0);  // at least this process is Ready
  if (next == rank) {
    slots_[rank].state = State::Running;
    return;
  }
  switchToLocked(next);
  waitUntilRunningLocked(lock, rank);
}

void VirtualTimeScheduler::abortAllLocked() {
  aborted_ = true;
  cv_.notify_all();
}

std::vector<RankStateSnapshot> VirtualTimeScheduler::snapshotLocked() const {
  std::vector<RankStateSnapshot> out;
  out.reserve(slots_.size());
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    const char* name = "?";
    switch (slots_[i].state) {
      case State::Ready: name = "ready"; break;
      case State::Running: name = "running"; break;
      case State::Blocked: name = "blocked"; break;
      case State::Finished: name = "finished"; break;
    }
    out.push_back(RankStateSnapshot{i, name, slots_[i].clock});
  }
  return out;
}

void VirtualTimeScheduler::setWatchdog(Duration deadline) {
  NB_EXPECTS(deadline > Duration::zero());
  watchdog_ = deadline;
}

void VirtualTimeScheduler::processBody(int rank, const ProcessFn& fn) {
  VirtualProcess self(*this, rank);
  try {
    {
      std::unique_lock lock(mu_);
      waitUntilRunningLocked(lock, rank);
    }
    fn(self);
    std::unique_lock lock(mu_);
    slots_[rank].state = State::Finished;
    const int next = pickNextLocked();
    if (next >= 0) {
      switchToLocked(next);
    } else {
      // No runnable process remains. If someone is still blocked, the
      // system can never finish: deadlock.
      bool anyBlocked = false;
      for (const auto& slot : slots_) {
        anyBlocked = anyBlocked || slot.state == State::Blocked;
      }
      if (anyBlocked) {
        if (!firstError_) {
          firstError_ = std::make_exception_ptr(DeadlockError(
              "virtual-time deadlock: last runnable process finished while "
              "others are still blocked",
              snapshotLocked()));
        }
        abortAllLocked();
      }
    }
  } catch (...) {
    std::unique_lock lock(mu_);
    if (!firstError_) {
      firstError_ = std::current_exception();
    }
    slots_[rank].state = State::Finished;
    abortAllLocked();
  }
}

void VirtualTimeScheduler::run(const std::vector<ProcessFn>& fns) {
  NB_EXPECTS(!fns.empty());
  slots_.assign(fns.size(), Slot{});
  aborted_ = false;
  firstError_ = nullptr;
  switches_ = 0;  // per-run count: see switchCount()
  // Rank 0 starts as the unique runner (all clocks are zero; ties break by
  // rank, so this matches pickNextLocked()).
  slots_[0].state = State::Running;

  std::vector<std::thread> threads;
  threads.reserve(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    threads.emplace_back([this, i, &fns] {
      processBody(static_cast<int>(i), fns[i]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // run() is called on the tracing scope's own thread, and the joins
  // above make this the unique post-run point — safe to read switches_
  // without the lock and to record into the thread-local buffer.
  if (trace::TraceBuffer* tb = trace::current()) {
    tb->count("vt.runs");
    tb->count("vt.switches", switches_);
  }
  if (firstError_) {
    std::rethrow_exception(firstError_);
  }
}

}  // namespace nodebench::sim
