#include "sim/event_queue.hpp"

#include <utility>

namespace nodebench::sim {

void EventQueue::scheduleAt(Duration when, Action action) {
  NB_EXPECTS_MSG(when >= now_, "cannot schedule an event in the past");
  NB_EXPECTS(action != nullptr);
  heap_.push(Event{when, nextSeq_++, std::move(action)});
}

void EventQueue::scheduleAfter(Duration delay, Action action) {
  NB_EXPECTS(delay >= Duration::zero());
  scheduleAt(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the action must be moved out before
  // pop, so copy the metadata and move the closure via const_cast-free
  // re-push-less approach: take a copy of the event.
  Event ev = heap_.top();
  heap_.pop();
  NB_ENSURES(ev.when >= now_);
  now_ = ev.when;
  ev.action();
  return true;
}

void EventQueue::runAll() {
  while (step()) {
  }
}

void EventQueue::runUntil(Duration deadline) {
  NB_EXPECTS(deadline >= now_);
  while (!heap_.empty() && heap_.top().when <= deadline) {
    step();
  }
  now_ = deadline;
}

}  // namespace nodebench::sim
