#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace nodebench::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void EventQueue::siftUp(std::size_t i) {
  const std::uint32_t idx = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!runsBefore(idx, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = idx;
}

void EventQueue::siftDown(std::size_t i) {
  const std::uint32_t idx = heap_[i];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= size) {
      break;
    }
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, size);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (runsBefore(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!runsBefore(heap_[best], idx)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = idx;
}

void EventQueue::scheduleAt(Duration when, Action action) {
  NB_EXPECTS_MSG(when >= now_, "cannot schedule an event in the past");
  NB_EXPECTS(action != nullptr);
  std::uint32_t idx;
  if (!freeSlots_.empty()) {
    idx = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  slot.when = when;
  slot.seq = nextSeq_++;
  slot.action = std::move(action);
  heap_.push_back(idx);
  siftUp(heap_.size() - 1);
}

void EventQueue::scheduleAfter(Duration delay, Action action) {
  NB_EXPECTS(delay >= Duration::zero());
  scheduleAt(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  const std::uint32_t idx = heap_.front();
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    siftDown(0);
  }
  Slot& slot = slots_[idx];
  NB_ENSURES(slot.when >= now_);
  now_ = slot.when;
  // Owned-slot pop: move the closure out, then recycle the slot *before*
  // running it, so an action that reschedules reuses this very slot and
  // the hot loop stays allocation-free.
  Action action = std::move(slot.action);
  slot.action = nullptr;
  freeSlots_.push_back(idx);
  action();
  return true;
}

void EventQueue::runAll() {
  while (step()) {
  }
}

void EventQueue::runUntil(Duration deadline) {
  NB_EXPECTS(deadline >= now_);
  while (!heap_.empty() && slots_[heap_.front()].when <= deadline) {
    step();
  }
  now_ = deadline;
}

}  // namespace nodebench::sim
