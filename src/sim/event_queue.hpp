#pragma once
/// \file event_queue.hpp
/// \brief A minimal discrete-event simulation core.
///
/// Events are closures scheduled at absolute simulated times; execution
/// order is (time, insertion sequence), which makes simultaneous events
/// deterministic. The GPU runtime simulator (`gpusim`) and several tests
/// are built on this engine.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench::sim {

/// Discrete-event queue with a monotonically advancing simulated clock.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Duration now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Schedules `action` at absolute time `when`.
  /// Precondition: `when >= now()` (the simulator never travels backwards).
  void scheduleAt(Duration when, Action action);

  /// Schedules `action` `delay` after the current time.
  void scheduleAfter(Duration delay, Action action);

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty.
  void runAll();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if no event fired). Precondition: deadline >= now().
  void runUntil(Duration deadline);

 private:
  struct Event {
    Duration when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when.ns() != b.when.ns()) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Duration now_ = Duration::zero();
  std::uint64_t nextSeq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace nodebench::sim
