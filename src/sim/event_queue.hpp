#pragma once
/// \file event_queue.hpp
/// \brief A minimal discrete-event simulation core.
///
/// Events are closures scheduled at absolute simulated times; execution
/// order is (time, insertion sequence), which makes simultaneous events
/// deterministic. The GPU runtime simulator (`gpusim`) and several tests
/// are built on this engine.
///
/// Storage (DESIGN.md §12): events live in a slot pool indexed by a flat
/// 4-ary min-heap of slot indices. A 4-ary heap halves the tree depth of a
/// binary heap and keeps each node's children in one cache line of
/// indices; the pool recycles slots through a free list, so a steady-state
/// schedule/pop loop performs no allocation (the gbench suite counts).
/// Popping moves the action out of the owned slot — no copy out of a
/// `priority_queue::top()` const reference.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench::sim {

/// Discrete-event queue with a monotonically advancing simulated clock.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Duration now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Schedules `action` at absolute time `when`.
  /// Precondition: `when >= now()` (the simulator never travels backwards).
  void scheduleAt(Duration when, Action action);

  /// Schedules `action` `delay` after the current time.
  void scheduleAfter(Duration delay, Action action);

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty.
  void runAll();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (even if no event fired). Precondition: deadline >= now().
  void runUntil(Duration deadline);

 private:
  /// Pooled event storage; `action` is empty while the slot sits on the
  /// free list.
  struct Slot {
    Duration when = Duration::zero();
    std::uint64_t seq = 0;
    Action action;
  };

  /// True when slot `a` runs strictly before slot `b`.
  [[nodiscard]] bool runsBefore(std::uint32_t a, std::uint32_t b) const {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    if (x.when.ns() != y.when.ns()) {
      return x.when < y.when;
    }
    return x.seq < y.seq;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);

  Duration now_ = Duration::zero();
  std::uint64_t nextSeq_ = 0;
  std::vector<std::uint32_t> heap_;  ///< 4-ary min-heap of slot indices.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
};

}  // namespace nodebench::sim
