#pragma once
/// \file vt_scheduler.hpp
/// \brief Virtual-time scheduler: runs N "rank processes" (real threads)
/// whose *simulated* clocks are coordinated so that only the runnable
/// process with the smallest local virtual time executes at any moment.
///
/// This is the substrate of the message-passing runtime (`mpisim`). The
/// design trades parallel host execution for determinism: exactly one
/// process runs at a time, scheduling order is (virtual time, rank), so a
/// given program produces bit-identical simulated timings on every run.
///
/// Blocking operations (e.g. a receive with no matching send) are expressed
/// through `blockUntil(pred)`: the process leaves the runnable set until
/// another process calls `wake()` on it, after which the predicate is
/// re-evaluated while the process is the unique runner (so predicate state
/// needs no further synchronization). If every live process is blocked the
/// scheduler reports deadlock by throwing in all participants.

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench::sim {

/// Snapshot of one rank process at the moment a scheduling failure was
/// detected. Carried by DeadlockError / TimeoutError so injected-fault
/// hangs and genuine runtime bugs are distinguishable from the error
/// alone: which ranks were blocked, and at what virtual time.
struct RankStateSnapshot {
  int rank = -1;
  std::string state;             ///< "ready" / "running" / "blocked" / "finished".
  Duration clock = Duration::zero();  ///< Local virtual time at detection.
};

/// Thrown in every participating process when the virtual-time system
/// deadlocks (all live processes blocked). The message lists the per-rank
/// state table; `ranks()` exposes it structurally.
class DeadlockError : public Error {
 public:
  using Error::Error;
  DeadlockError(const std::string& reason,
                std::vector<RankStateSnapshot> ranks);

  [[nodiscard]] const std::vector<RankStateSnapshot>& ranks() const {
    return ranks_;
  }

 private:
  std::vector<RankStateSnapshot> ranks_;
};

/// Thrown in every participating process when a process's virtual clock
/// exceeds the scheduler's watchdog deadline — the virtual-time analogue
/// of a wall-clock timeout. Distinguishes "the system is livelocked /
/// runaway" (e.g. an injected fault causing endless retransmits) from a
/// true deadlock, instead of hanging or mis-reporting.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

class VirtualTimeScheduler;

/// Handle through which a rank process interacts with virtual time.
/// Only valid inside the process function it was passed to.
class VirtualProcess {
 public:
  [[nodiscard]] int rank() const { return rank_; }

  /// Current local virtual time.
  [[nodiscard]] Duration now() const;

  /// Advances local time by `dt` and yields if another runnable process is
  /// now earlier. Precondition: dt >= 0.
  void advance(Duration dt);

  /// Advances local time to `max(now, t)` and yields.
  void advanceTo(Duration t);

  /// Blocks until `pred()` is true. The predicate is evaluated only while
  /// this process is the unique runner; it is re-checked each time some
  /// other process calls `wake(rank())`.
  void blockUntil(const std::function<bool()>& pred);

  /// Marks another (possibly blocked) process as runnable so that its
  /// `blockUntil` predicate is re-evaluated.
  void wake(int otherRank);

 private:
  friend class VirtualTimeScheduler;
  VirtualProcess(VirtualTimeScheduler& sched, int rank)
      : sched_(&sched), rank_(rank) {}

  VirtualTimeScheduler* sched_;
  int rank_;
};

/// Runs a set of process functions to completion under virtual time.
class VirtualTimeScheduler {
 public:
  using ProcessFn = std::function<void(VirtualProcess&)>;

  /// Runs all processes; returns when every process function has returned.
  /// Rethrows the first exception raised by any process (by rank order of
  /// detection). Precondition: !fns.empty().
  void run(const std::vector<ProcessFn>& fns);

  /// Arms a virtual-time watchdog: if any process's local clock exceeds
  /// `deadline`, the run aborts with TimeoutError in every participant.
  /// The deadline persists across runs (scheduler configuration, not
  /// per-run state); `Duration::infinity()` (the default) disables it.
  /// Precondition: deadline > 0.
  void setWatchdog(Duration deadline);

  [[nodiscard]] Duration watchdog() const { return watchdog_; }

  /// Total number of process switches in the last completed `run`
  /// (determinism diagnostics for tests). Reset to zero at `run` entry,
  /// so back-to-back runs on one scheduler report per-run counts rather
  /// than a lifetime total. Only meaningful *between* runs: while `run`
  /// is in flight the counter is mutated under the scheduler's internal
  /// lock and a concurrent read would race.
  [[nodiscard]] std::uint64_t switchCount() const { return switches_; }

 private:
  friend class VirtualProcess;

  enum class State { Ready, Running, Blocked, Finished };

  struct Slot {
    Duration clock = Duration::zero();
    State state = State::Ready;
  };

  // All of the below are guarded by mu_.
  [[nodiscard]] int pickNextLocked() const;  // min-clock Ready; -1 if none
  void switchToLocked(int next);
  void waitUntilRunningLocked(std::unique_lock<std::mutex>& lock, int rank);
  void yieldIfEarlierLocked(std::unique_lock<std::mutex>& lock, int rank);
  void checkWatchdogLocked(int rank);
  void abortAllLocked();
  [[nodiscard]] std::vector<RankStateSnapshot> snapshotLocked() const;

  void processBody(int rank, const ProcessFn& fn);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  bool aborted_ = false;
  std::exception_ptr firstError_;
  std::uint64_t switches_ = 0;
  Duration watchdog_ = Duration::infinity();
};

}  // namespace nodebench::sim
